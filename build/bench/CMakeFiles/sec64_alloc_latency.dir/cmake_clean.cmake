file(REMOVE_RECURSE
  "CMakeFiles/sec64_alloc_latency.dir/sec64_alloc_latency.cpp.o"
  "CMakeFiles/sec64_alloc_latency.dir/sec64_alloc_latency.cpp.o.d"
  "sec64_alloc_latency"
  "sec64_alloc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_alloc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
