# Empty dependencies file for sec64_alloc_latency.
# This may be replaced when dependencies are built.
