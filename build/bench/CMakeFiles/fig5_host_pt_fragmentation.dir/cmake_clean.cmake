file(REMOVE_RECURSE
  "CMakeFiles/fig5_host_pt_fragmentation.dir/fig5_host_pt_fragmentation.cpp.o"
  "CMakeFiles/fig5_host_pt_fragmentation.dir/fig5_host_pt_fragmentation.cpp.o.d"
  "fig5_host_pt_fragmentation"
  "fig5_host_pt_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_host_pt_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
