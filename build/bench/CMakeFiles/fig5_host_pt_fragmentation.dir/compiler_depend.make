# Empty compiler generated dependencies file for fig5_host_pt_fragmentation.
# This may be replaced when dependencies are built.
