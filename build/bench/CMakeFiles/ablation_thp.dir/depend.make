# Empty dependencies file for ablation_thp.
# This may be replaced when dependencies are built.
