file(REMOVE_RECURSE
  "CMakeFiles/ablation_thp.dir/ablation_thp.cpp.o"
  "CMakeFiles/ablation_thp.dir/ablation_thp.cpp.o.d"
  "ablation_thp"
  "ablation_thp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
