# Empty compiler generated dependencies file for fig6_perf_objdet.
# This may be replaced when dependencies are built.
