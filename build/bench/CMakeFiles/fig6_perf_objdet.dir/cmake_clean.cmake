file(REMOVE_RECURSE
  "CMakeFiles/fig6_perf_objdet.dir/fig6_perf_objdet.cpp.o"
  "CMakeFiles/fig6_perf_objdet.dir/fig6_perf_objdet.cpp.o.d"
  "fig6_perf_objdet"
  "fig6_perf_objdet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_perf_objdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
