file(REMOVE_RECURSE
  "CMakeFiles/table1_fragmentation_effect.dir/table1_fragmentation_effect.cpp.o"
  "CMakeFiles/table1_fragmentation_effect.dir/table1_fragmentation_effect.cpp.o.d"
  "table1_fragmentation_effect"
  "table1_fragmentation_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fragmentation_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
