# Empty compiler generated dependencies file for table1_fragmentation_effect.
# This may be replaced when dependencies are built.
