file(REMOVE_RECURSE
  "CMakeFiles/ablation_translation_caches.dir/ablation_translation_caches.cpp.o"
  "CMakeFiles/ablation_translation_caches.dir/ablation_translation_caches.cpp.o.d"
  "ablation_translation_caches"
  "ablation_translation_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_translation_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
