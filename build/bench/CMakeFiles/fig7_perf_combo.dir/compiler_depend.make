# Empty compiler generated dependencies file for fig7_perf_combo.
# This may be replaced when dependencies are built.
