file(REMOVE_RECURSE
  "CMakeFiles/fig7_perf_combo.dir/fig7_perf_combo.cpp.o"
  "CMakeFiles/fig7_perf_combo.dir/fig7_perf_combo.cpp.o.d"
  "fig7_perf_combo"
  "fig7_perf_combo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perf_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
