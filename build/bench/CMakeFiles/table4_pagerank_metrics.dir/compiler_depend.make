# Empty compiler generated dependencies file for table4_pagerank_metrics.
# This may be replaced when dependencies are built.
