file(REMOVE_RECURSE
  "CMakeFiles/table4_pagerank_metrics.dir/table4_pagerank_metrics.cpp.o"
  "CMakeFiles/table4_pagerank_metrics.dir/table4_pagerank_metrics.cpp.o.d"
  "table4_pagerank_metrics"
  "table4_pagerank_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pagerank_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
