# Empty compiler generated dependencies file for sec61_low_tlb_pressure.
# This may be replaced when dependencies are built.
