file(REMOVE_RECURSE
  "CMakeFiles/sec61_low_tlb_pressure.dir/sec61_low_tlb_pressure.cpp.o"
  "CMakeFiles/sec61_low_tlb_pressure.dir/sec61_low_tlb_pressure.cpp.o.d"
  "sec61_low_tlb_pressure"
  "sec61_low_tlb_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_low_tlb_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
