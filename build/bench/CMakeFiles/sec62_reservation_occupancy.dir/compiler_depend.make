# Empty compiler generated dependencies file for sec62_reservation_occupancy.
# This may be replaced when dependencies are built.
