file(REMOVE_RECURSE
  "CMakeFiles/sec62_reservation_occupancy.dir/sec62_reservation_occupancy.cpp.o"
  "CMakeFiles/sec62_reservation_occupancy.dir/sec62_reservation_occupancy.cpp.o.d"
  "sec62_reservation_occupancy"
  "sec62_reservation_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_reservation_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
