
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ptm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ptm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ptm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ptm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ptm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/ptm_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/ptm_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ptm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
