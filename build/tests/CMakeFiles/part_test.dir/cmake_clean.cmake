file(REMOVE_RECURSE
  "CMakeFiles/part_test.dir/part_test.cpp.o"
  "CMakeFiles/part_test.dir/part_test.cpp.o.d"
  "part_test"
  "part_test.pdb"
  "part_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
