# Empty compiler generated dependencies file for part_test.
# This may be replaced when dependencies are built.
