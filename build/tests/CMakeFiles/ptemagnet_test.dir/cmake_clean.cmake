file(REMOVE_RECURSE
  "CMakeFiles/ptemagnet_test.dir/ptemagnet_test.cpp.o"
  "CMakeFiles/ptemagnet_test.dir/ptemagnet_test.cpp.o.d"
  "ptemagnet_test"
  "ptemagnet_test.pdb"
  "ptemagnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptemagnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
