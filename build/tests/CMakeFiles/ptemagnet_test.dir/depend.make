# Empty dependencies file for ptemagnet_test.
# This may be replaced when dependencies are built.
