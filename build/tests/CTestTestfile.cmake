# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/buddy_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/page_table_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/part_test[1]_include.cmake")
include("/root/repo/build/tests/ptemagnet_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/mmu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/huge_page_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
