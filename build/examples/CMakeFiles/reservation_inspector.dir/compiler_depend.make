# Empty compiler generated dependencies file for reservation_inspector.
# This may be replaced when dependencies are built.
