file(REMOVE_RECURSE
  "CMakeFiles/reservation_inspector.dir/reservation_inspector.cpp.o"
  "CMakeFiles/reservation_inspector.dir/reservation_inspector.cpp.o.d"
  "reservation_inspector"
  "reservation_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
