# Empty compiler generated dependencies file for walk_trajectory.
# This may be replaced when dependencies are built.
