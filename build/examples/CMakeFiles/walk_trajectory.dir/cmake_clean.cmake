file(REMOVE_RECURSE
  "CMakeFiles/walk_trajectory.dir/walk_trajectory.cpp.o"
  "CMakeFiles/walk_trajectory.dir/walk_trajectory.cpp.o.d"
  "walk_trajectory"
  "walk_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
