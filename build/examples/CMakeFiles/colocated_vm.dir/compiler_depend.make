# Empty compiler generated dependencies file for colocated_vm.
# This may be replaced when dependencies are built.
