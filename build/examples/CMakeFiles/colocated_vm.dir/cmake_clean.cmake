file(REMOVE_RECURSE
  "CMakeFiles/colocated_vm.dir/colocated_vm.cpp.o"
  "CMakeFiles/colocated_vm.dir/colocated_vm.cpp.o.d"
  "colocated_vm"
  "colocated_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
