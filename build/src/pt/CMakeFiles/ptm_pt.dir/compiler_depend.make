# Empty compiler generated dependencies file for ptm_pt.
# This may be replaced when dependencies are built.
