file(REMOVE_RECURSE
  "libptm_pt.a"
)
