
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/page_table.cpp" "src/pt/CMakeFiles/ptm_pt.dir/page_table.cpp.o" "gcc" "src/pt/CMakeFiles/ptm_pt.dir/page_table.cpp.o.d"
  "/root/repo/src/pt/pte.cpp" "src/pt/CMakeFiles/ptm_pt.dir/pte.cpp.o" "gcc" "src/pt/CMakeFiles/ptm_pt.dir/pte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
