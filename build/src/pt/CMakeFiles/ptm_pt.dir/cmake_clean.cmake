file(REMOVE_RECURSE
  "CMakeFiles/ptm_pt.dir/page_table.cpp.o"
  "CMakeFiles/ptm_pt.dir/page_table.cpp.o.d"
  "CMakeFiles/ptm_pt.dir/pte.cpp.o"
  "CMakeFiles/ptm_pt.dir/pte.cpp.o.d"
  "libptm_pt.a"
  "libptm_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
