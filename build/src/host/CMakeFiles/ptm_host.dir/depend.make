# Empty dependencies file for ptm_host.
# This may be replaced when dependencies are built.
