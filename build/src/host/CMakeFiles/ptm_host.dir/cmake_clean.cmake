file(REMOVE_RECURSE
  "CMakeFiles/ptm_host.dir/host_kernel.cpp.o"
  "CMakeFiles/ptm_host.dir/host_kernel.cpp.o.d"
  "libptm_host.a"
  "libptm_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
