file(REMOVE_RECURSE
  "libptm_host.a"
)
