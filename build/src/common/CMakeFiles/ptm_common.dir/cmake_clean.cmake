file(REMOVE_RECURSE
  "CMakeFiles/ptm_common.dir/log.cpp.o"
  "CMakeFiles/ptm_common.dir/log.cpp.o.d"
  "CMakeFiles/ptm_common.dir/stats.cpp.o"
  "CMakeFiles/ptm_common.dir/stats.cpp.o.d"
  "libptm_common.a"
  "libptm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
