file(REMOVE_RECURSE
  "libptm_cache.a"
)
