file(REMOVE_RECURSE
  "CMakeFiles/ptm_cache.dir/cache.cpp.o"
  "CMakeFiles/ptm_cache.dir/cache.cpp.o.d"
  "CMakeFiles/ptm_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/ptm_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/ptm_cache.dir/replacement.cpp.o"
  "CMakeFiles/ptm_cache.dir/replacement.cpp.o.d"
  "libptm_cache.a"
  "libptm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
