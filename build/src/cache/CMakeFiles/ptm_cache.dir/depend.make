# Empty dependencies file for ptm_cache.
# This may be replaced when dependencies are built.
