file(REMOVE_RECURSE
  "CMakeFiles/ptm_mem.dir/buddy_allocator.cpp.o"
  "CMakeFiles/ptm_mem.dir/buddy_allocator.cpp.o.d"
  "CMakeFiles/ptm_mem.dir/physical_memory.cpp.o"
  "CMakeFiles/ptm_mem.dir/physical_memory.cpp.o.d"
  "libptm_mem.a"
  "libptm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
