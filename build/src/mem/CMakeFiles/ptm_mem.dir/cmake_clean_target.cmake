file(REMOVE_RECURSE
  "libptm_mem.a"
)
