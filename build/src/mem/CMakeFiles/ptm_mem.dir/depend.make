# Empty dependencies file for ptm_mem.
# This may be replaced when dependencies are built.
