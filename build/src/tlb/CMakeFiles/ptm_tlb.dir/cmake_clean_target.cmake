file(REMOVE_RECURSE
  "libptm_tlb.a"
)
