# Empty compiler generated dependencies file for ptm_tlb.
# This may be replaced when dependencies are built.
