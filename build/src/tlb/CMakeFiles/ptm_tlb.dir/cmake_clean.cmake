file(REMOVE_RECURSE
  "CMakeFiles/ptm_tlb.dir/tlb.cpp.o"
  "CMakeFiles/ptm_tlb.dir/tlb.cpp.o.d"
  "libptm_tlb.a"
  "libptm_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
