# Empty dependencies file for ptm_workload.
# This may be replaced when dependencies are built.
