file(REMOVE_RECURSE
  "CMakeFiles/ptm_workload.dir/catalog.cpp.o"
  "CMakeFiles/ptm_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/ptm_workload.dir/patterns.cpp.o"
  "CMakeFiles/ptm_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/ptm_workload.dir/synthetic.cpp.o"
  "CMakeFiles/ptm_workload.dir/synthetic.cpp.o.d"
  "libptm_workload.a"
  "libptm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
