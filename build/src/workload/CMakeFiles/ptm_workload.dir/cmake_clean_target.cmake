file(REMOVE_RECURSE
  "libptm_workload.a"
)
