file(REMOVE_RECURSE
  "libptm_core.a"
)
