file(REMOVE_RECURSE
  "CMakeFiles/ptm_core.dir/part.cpp.o"
  "CMakeFiles/ptm_core.dir/part.cpp.o.d"
  "CMakeFiles/ptm_core.dir/ptemagnet_provider.cpp.o"
  "CMakeFiles/ptm_core.dir/ptemagnet_provider.cpp.o.d"
  "libptm_core.a"
  "libptm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
