
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/guest_kernel.cpp" "src/vm/CMakeFiles/ptm_vm.dir/guest_kernel.cpp.o" "gcc" "src/vm/CMakeFiles/ptm_vm.dir/guest_kernel.cpp.o.d"
  "/root/repo/src/vm/huge_page_provider.cpp" "src/vm/CMakeFiles/ptm_vm.dir/huge_page_provider.cpp.o" "gcc" "src/vm/CMakeFiles/ptm_vm.dir/huge_page_provider.cpp.o.d"
  "/root/repo/src/vm/page_provider.cpp" "src/vm/CMakeFiles/ptm_vm.dir/page_provider.cpp.o" "gcc" "src/vm/CMakeFiles/ptm_vm.dir/page_provider.cpp.o.d"
  "/root/repo/src/vm/process.cpp" "src/vm/CMakeFiles/ptm_vm.dir/process.cpp.o" "gcc" "src/vm/CMakeFiles/ptm_vm.dir/process.cpp.o.d"
  "/root/repo/src/vm/virtual_address_space.cpp" "src/vm/CMakeFiles/ptm_vm.dir/virtual_address_space.cpp.o" "gcc" "src/vm/CMakeFiles/ptm_vm.dir/virtual_address_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ptm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/ptm_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ptm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ptm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/ptm_tlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
