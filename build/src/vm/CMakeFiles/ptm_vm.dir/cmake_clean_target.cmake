file(REMOVE_RECURSE
  "libptm_vm.a"
)
