file(REMOVE_RECURSE
  "CMakeFiles/ptm_vm.dir/guest_kernel.cpp.o"
  "CMakeFiles/ptm_vm.dir/guest_kernel.cpp.o.d"
  "CMakeFiles/ptm_vm.dir/huge_page_provider.cpp.o"
  "CMakeFiles/ptm_vm.dir/huge_page_provider.cpp.o.d"
  "CMakeFiles/ptm_vm.dir/page_provider.cpp.o"
  "CMakeFiles/ptm_vm.dir/page_provider.cpp.o.d"
  "CMakeFiles/ptm_vm.dir/process.cpp.o"
  "CMakeFiles/ptm_vm.dir/process.cpp.o.d"
  "CMakeFiles/ptm_vm.dir/virtual_address_space.cpp.o"
  "CMakeFiles/ptm_vm.dir/virtual_address_space.cpp.o.d"
  "libptm_vm.a"
  "libptm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
