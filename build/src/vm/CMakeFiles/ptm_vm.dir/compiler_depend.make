# Empty compiler generated dependencies file for ptm_vm.
# This may be replaced when dependencies are built.
