file(REMOVE_RECURSE
  "CMakeFiles/ptm_mmu.dir/nested_walker.cpp.o"
  "CMakeFiles/ptm_mmu.dir/nested_walker.cpp.o.d"
  "libptm_mmu.a"
  "libptm_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
