file(REMOVE_RECURSE
  "libptm_mmu.a"
)
