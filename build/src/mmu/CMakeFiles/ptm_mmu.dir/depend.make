# Empty dependencies file for ptm_mmu.
# This may be replaced when dependencies are built.
