/**
 * @file
 * Tests for the PTEMagnet provider wired into the guest kernel: the
 * reservation fast/slow paths, free semantics, reclamation, fork rules,
 * the enablement policy, and frame-accounting invariants.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/ptemagnet_provider.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::core {
namespace {

using FrameUse = mem::FrameUse;

class PtemagnetTest : public ::testing::Test {
  protected:
    static constexpr std::uint64_t kFrames = 4096;

    PtemagnetTest() : kernel_(kFrames)
    {
        auto provider = std::make_unique<PtemagnetProvider>(&kernel_);
        provider_ = provider.get();
        kernel_.set_provider(std::move(provider));
    }

    /// Fault in one page and return its guest frame.
    std::uint64_t
    fault(vm::Process &proc, std::uint64_t gvpn)
    {
        mmu::FaultOutcome outcome = kernel_.handle_fault(proc, gvpn);
        EXPECT_TRUE(outcome.ok);
        return outcome.frame;
    }

    vm::GuestKernel kernel_;
    PtemagnetProvider *provider_ = nullptr;
};

TEST_F(PtemagnetTest, FirstFaultReservesWholeGroup)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);

    std::uint64_t gfn = fault(proc, gvpn);
    EXPECT_EQ(provider_->stats().reservations_created.value(), 1u);
    // The chunk is aligned and the faulting page got slot (gvpn % 8).
    EXPECT_EQ(gfn % 8, gvpn % 8);
    // The other 7 frames are marked Reserved, the mapped one Data.
    EXPECT_EQ(kernel_.memory().count_use(FrameUse::Reserved), 7u);
    EXPECT_EQ(kernel_.memory().count_use(FrameUse::Data, proc.pid()), 1u);
}

TEST_F(PtemagnetTest, GroupFaultsGetContiguousFrames)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn0 = page_number(base);
    ASSERT_EQ(gvpn0 % 8, 0u) << "mmap regions are naturally aligned here";

    std::uint64_t first = fault(proc, gvpn0);
    for (unsigned i = 1; i < 8; ++i) {
        std::uint64_t gfn = fault(proc, gvpn0 + i);
        EXPECT_EQ(gfn, first + i) << "page " << i;
    }
    // The reservation filled up: its entry is gone and only one buddy
    // call was ever made.
    EXPECT_EQ(provider_->total_live_reservations(), 0u);
    EXPECT_EQ(provider_->stats().part_hits.value(), 7u);
    EXPECT_EQ(provider_->stats().buddy_calls.value(), 1u);
    EXPECT_EQ(kernel_.memory().count_use(FrameUse::Reserved), 0u);
}

TEST_F(PtemagnetTest, InterleavedProcessesStayContiguous)
{
    // The headline property: even with perfectly interleaved faults from
    // two processes, each process's group is physically contiguous.
    vm::Process &a = kernel_.create_process("a");
    vm::Process &b = kernel_.create_process("b");
    std::uint64_t vpn_a = page_number(a.vas().mmap(kReservationBytes));
    std::uint64_t vpn_b = page_number(b.vas().mmap(kReservationBytes));

    std::uint64_t base_a = fault(a, vpn_a);
    std::uint64_t base_b = fault(b, vpn_b);
    for (unsigned i = 1; i < 8; ++i) {
        EXPECT_EQ(fault(a, vpn_a + i), base_a + i);
        EXPECT_EQ(fault(b, vpn_b + i), base_b + i);
    }
}

TEST_F(PtemagnetTest, FreeBeforeFullReturnsFrameToReservation)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);

    std::uint64_t gfn0 = fault(proc, gvpn);
    fault(proc, gvpn + 1);
    std::uint64_t free_before = kernel_.buddy().free_frames_count();
    kernel_.free_page(proc, gvpn);
    // Frame went back to the reservation, not the buddy.
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_before);
    EXPECT_EQ(kernel_.memory().info(gfn0).use, FrameUse::Reserved);
    // Re-faulting the page returns the very same frame.
    EXPECT_EQ(fault(proc, gvpn), gfn0);
}

TEST_F(PtemagnetTest, FreeingAllPagesReturnsWholeChunk)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t free_at_start = kernel_.buddy().free_frames_count();

    fault(proc, gvpn);
    fault(proc, gvpn + 3);
    kernel_.free_page(proc, gvpn);
    kernel_.free_page(proc, gvpn + 3);

    // Everything except the page-table nodes created by the mappings is
    // free again (PT pages persist until process exit, as in Linux).
    std::uint64_t pt_nodes = proc.page_table().node_count() - 1;
    EXPECT_EQ(kernel_.buddy().free_frames_count(),
              free_at_start - pt_nodes);
    EXPECT_EQ(provider_->total_live_reservations(), 0u);
    EXPECT_EQ(kernel_.memory().count_use(FrameUse::Reserved), 0u);
    kernel_.buddy().check_invariants();
}

TEST_F(PtemagnetTest, FreeAfterFullGroupUsesDefaultPath)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    for (unsigned i = 0; i < 8; ++i)
        fault(proc, gvpn + i);

    std::uint64_t free_before = kernel_.buddy().free_frames_count();
    kernel_.free_page(proc, gvpn + 2);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_before + 1)
        << "no reservation covers the group: frame goes to the buddy";
}

TEST_F(PtemagnetTest, ReclaimReleasesOnlyUnmappedFrames)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(4 * kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    // Open four reservations, one page each.
    for (unsigned group = 0; group < 4; ++group)
        fault(proc, gvpn + group * 8);
    EXPECT_EQ(provider_->total_unmapped_reserved(), 4u * 7u);

    std::uint64_t free_before = kernel_.buddy().free_frames_count();
    std::uint64_t freed = provider_->reclaim(1000);
    EXPECT_EQ(freed, 28u);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_before + 28);
    EXPECT_EQ(provider_->total_unmapped_reserved(), 0u);
    // The four mapped pages are untouched.
    EXPECT_EQ(proc.rss_pages(), 4u);
    for (unsigned group = 0; group < 4; ++group)
        EXPECT_TRUE(proc.page_table().lookup(gvpn + group * 8));
}

TEST_F(PtemagnetTest, FaultAfterReclaimOpensFreshReservation)
{
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t gfn0 = fault(proc, gvpn);
    provider_->reclaim(1000);

    // A later fault in the same group cannot reuse the released chunk.
    std::uint64_t gfn1 = fault(proc, gvpn + 1);
    EXPECT_NE(gfn1, gfn0 + 1);
    // Freeing the pre-reclaim page must not corrupt the new entry.
    kernel_.free_page(proc, gvpn);
    EXPECT_TRUE(provider_->part_of(proc.pid())->find(gvpn / 8));
    kernel_.buddy().check_invariants();
}

TEST_F(PtemagnetTest, FallbackToSinglePagesWhenFragmented)
{
    // Exhaust contiguity: allocate everything, free every other frame.
    vm::Process &proc = kernel_.create_process("app");
    std::vector<std::uint64_t> frames;
    while (auto frame = kernel_.buddy().allocate_frame())
        frames.push_back(*frame);
    for (std::size_t i = 0; i < frames.size(); i += 2)
        kernel_.buddy().free(frames[i]);
    ASSERT_FALSE(kernel_.buddy().can_allocate(3));

    Addr base = proc.vas().mmap(kReservationBytes);
    std::uint64_t gfn = fault(proc, page_number(base));
    (void)gfn;
    EXPECT_EQ(provider_->stats().fallback_singles.value(), 1u);
    EXPECT_EQ(provider_->total_live_reservations(), 0u);
    // Cleanup for the kernel's destructor invariants.
    kernel_.free_page(proc, page_number(base));
    for (std::size_t i = 1; i < frames.size(); i += 2)
        kernel_.buddy().free(frames[i]);
}

TEST_F(PtemagnetTest, ChildServedFromParentReservation)
{
    vm::Process &parent = kernel_.create_process("parent");
    Addr base = parent.vas().mmap(kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t parent_gfn = fault(parent, gvpn);

    vm::Process &child = kernel_.fork(parent);
    // The child faults on a page the parent never touched: served from
    // the parent's reservation, keeping the group contiguous (§4.4).
    std::uint64_t child_gfn = fault(child, gvpn + 1);
    EXPECT_EQ(child_gfn, parent_gfn + 1);
    EXPECT_EQ(provider_->stats().child_served_by_parent.value(), 1u);
}

TEST_F(PtemagnetTest, EnablePredicateBypassesSmallProcesses)
{
    provider_->set_enabled_predicate([](const vm::Process &proc) {
        return proc.name() != "small";
    });
    vm::Process &small = kernel_.create_process("small");
    Addr base = small.vas().mmap(kReservationBytes);
    fault(small, page_number(base));
    EXPECT_EQ(provider_->stats().disabled_allocs.value(), 1u);
    EXPECT_EQ(provider_->total_live_reservations(), 0u);
}

TEST_F(PtemagnetTest, MemoryLimitPolicySelectsBigContainers)
{
    // §4.4: the orchestrator declares memory.limit_in_bytes; PTEMagnet
    // engages only above the threshold.
    provider_->use_memory_limit_policy(64 * 1024 * 1024);
    vm::Process &big = kernel_.create_process("big");
    big.set_memory_limit_bytes(512ull * 1024 * 1024);
    vm::Process &small = kernel_.create_process("small");
    small.set_memory_limit_bytes(16 * 1024 * 1024);

    Addr big_base = big.vas().mmap(kReservationBytes);
    Addr small_base = small.vas().mmap(kReservationBytes);
    fault(big, page_number(big_base));
    fault(small, page_number(small_base));

    EXPECT_EQ(provider_->stats().reservations_created.value(), 1u);
    EXPECT_EQ(provider_->stats().disabled_allocs.value(), 1u);
    EXPECT_NE(provider_->part_of(big.pid()), nullptr);
    EXPECT_EQ(provider_->part_of(small.pid()), nullptr);
}

TEST_F(PtemagnetTest, ProcessExitReleasesReservations)
{
    std::uint64_t free_at_start = kernel_.buddy().free_frames_count();
    vm::Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(2 * kReservationBytes);
    fault(proc, page_number(base));
    fault(proc, page_number(base) + 8);
    kernel_.exit_process(proc);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_at_start);
    kernel_.buddy().check_invariants();
}

TEST_F(PtemagnetTest, KernelPressureTriggersProviderReclaim)
{
    // Configure watermarks, then eat almost all free memory so the next
    // fault dips below the low watermark.
    kernel_.set_reclaim_policy({.low_watermark_frames = kFrames / 2,
                                .high_watermark_frames = kFrames / 2 + 64});
    vm::Process &proc = kernel_.create_process("app");
    Addr big = proc.vas().mmap((kFrames / 2) * kPageSize);
    std::uint64_t gvpn = page_number(big);
    for (std::uint64_t i = 0; i < kFrames / 2; i += 8)
        fault(proc, gvpn + i);  // one page per group: 7/8 reserved
    EXPECT_GT(kernel_.stats().reclaim_runs.value(), 0u);
    EXPECT_GT(kernel_.stats().frames_reclaimed.value(), 0u);
}

TEST_F(PtemagnetTest, GranularityFourPages)
{
    vm::GuestKernel kernel(1024);
    auto provider = std::make_unique<PtemagnetProvider>(&kernel, 4);
    PtemagnetProvider *raw = provider.get();
    kernel.set_provider(std::move(provider));
    vm::Process &proc = kernel.create_process("app");
    Addr base = proc.vas().mmap(8 * kPageSize);
    std::uint64_t gvpn = page_number(base);

    mmu::FaultOutcome first = kernel.handle_fault(proc, gvpn);
    ASSERT_TRUE(first.ok);
    mmu::FaultOutcome fifth = kernel.handle_fault(proc, gvpn + 4);
    ASSERT_TRUE(fifth.ok);
    // Pages 0 and 4 are in different 4-page groups: two reservations.
    EXPECT_EQ(raw->stats().reservations_created.value(), 2u);
}

}  // namespace
}  // namespace ptm::core
