/**
 * @file
 * Unit and concurrency tests for PaRT, the Page Reservation Table.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/part.hpp"

namespace ptm::core {
namespace {

TEST(Part, ClaimOnEmptyTableMisses)
{
    Part part;
    ClaimResult result = part.claim(5, 3);
    EXPECT_FALSE(result.found);
    EXPECT_EQ(part.stats().lookups.load(), 1u);
    EXPECT_EQ(part.stats().hits.load(), 0u);
}

TEST(Part, CreateThenClaimHandsOutChunkFrames)
{
    Part part;
    EXPECT_EQ(part.create(10, 800, 2), 802u);
    for (unsigned offset : {0u, 1u, 3u, 7u}) {
        ClaimResult claim = part.claim(10, offset);
        ASSERT_TRUE(claim.found);
        EXPECT_EQ(claim.gfn, 800u + offset);
    }
    EXPECT_EQ(part.live_reservations(), 1u);
}

TEST(Part, FullMaskDeletesEntry)
{
    Part part;
    part.create(3, 80, 0);
    for (unsigned offset = 1; offset < 8; ++offset) {
        ClaimResult claim = part.claim(3, offset);
        ASSERT_TRUE(claim.found);
        EXPECT_EQ(claim.deleted_full, offset == 7);
    }
    EXPECT_EQ(part.live_reservations(), 0u);
    EXPECT_FALSE(part.find(3).has_value());
    EXPECT_FALSE(part.claim(3, 0).found) << "deleted entry cannot serve";
    EXPECT_EQ(part.stats().deletes_full.load(), 1u);
}

TEST(Part, UnmappedReservedAccounting)
{
    Part part;
    EXPECT_EQ(part.unmapped_reserved_pages(), 0u);
    part.create(1, 8, 0);
    EXPECT_EQ(part.unmapped_reserved_pages(), 7u);
    part.claim(1, 1);
    part.claim(1, 2);
    EXPECT_EQ(part.unmapped_reserved_pages(), 5u);
    part.release(1, 2);
    EXPECT_EQ(part.unmapped_reserved_pages(), 6u);
    // Fill the group: the entry disappears and contributes nothing.
    for (unsigned offset : {2u, 3u, 4u, 5u, 6u, 7u})
        part.claim(1, offset);
    EXPECT_EQ(part.unmapped_reserved_pages(), 0u);
}

TEST(Part, ReleaseToEmptyDeletesAndReportsBase)
{
    Part part;
    part.create(7, 3200, 4);
    ReleaseResult released = part.release(7, 4);
    ASSERT_TRUE(released.found);
    EXPECT_TRUE(released.deleted_empty);
    EXPECT_EQ(released.base_gfn, 3200u);
    EXPECT_EQ(part.live_reservations(), 0u);
    EXPECT_EQ(part.unmapped_reserved_pages(), 0u);
    EXPECT_EQ(part.stats().deletes_free.load(), 1u);
}

TEST(Part, ReleaseKeepsEntryWhileOthersMapped)
{
    Part part;
    part.create(7, 3200, 4);
    part.claim(7, 5);
    ReleaseResult released = part.release(7, 4);
    ASSERT_TRUE(released.found);
    EXPECT_FALSE(released.deleted_empty);
    EXPECT_EQ(released.final_mask, 1u << 5);
    // The released page can be claimed again (frame reuse).
    ClaimResult again = part.claim(7, 4);
    ASSERT_TRUE(again.found);
    EXPECT_EQ(again.gfn, 3204u);
}

TEST(Part, ReleaseOnUnknownGroupMisses)
{
    Part part;
    EXPECT_FALSE(part.release(99, 0).found);
}

TEST(Part, FindReturnsSnapshot)
{
    Part part;
    part.create(42, 1000, 1);
    auto view = part.find(42);
    ASSERT_TRUE(view);
    EXPECT_EQ(view->group, 42u);
    EXPECT_EQ(view->base_gfn, 1000u);
    EXPECT_EQ(view->mask, 1u << 1);
}

TEST(Part, DistantGroupsDoNotCollide)
{
    // Groups differing only in high radix digits must be independent.
    Part part;
    std::uint64_t a = 5;
    std::uint64_t b = 5 + (1ull << 27);  // differs at the root level
    part.create(a, 100, 0);
    part.create(b, 200, 0);
    EXPECT_EQ(part.find(a)->base_gfn, 100u);
    EXPECT_EQ(part.find(b)->base_gfn, 200u);
}

TEST(Part, DrainVisitsAndRemovesEverything)
{
    Part part;
    for (std::uint64_t group = 0; group < 100; group += 7)
        part.create(group, group * 8, 0);
    std::uint64_t visited = 0;
    std::uint64_t unmapped = 0;
    part.drain([&](const ReservationView &view) {
        ++visited;
        unmapped += 8 - std::popcount(view.mask);
        EXPECT_EQ(view.base_gfn, view.group * 8);
    });
    EXPECT_EQ(visited, 15u);
    EXPECT_EQ(unmapped, 15u * 7u);
    EXPECT_EQ(part.live_reservations(), 0u);
    EXPECT_EQ(part.unmapped_reserved_pages(), 0u);
}

TEST(Part, GranularityVariants)
{
    for (unsigned pages : {2u, 4u, 16u, 32u}) {
        Part part(pages);
        EXPECT_EQ(part.pages_per_group(), pages);
        part.create(1, 64, 0);
        EXPECT_EQ(part.unmapped_reserved_pages(), pages - 1);
        bool deleted = false;
        for (unsigned offset = 1; offset < pages; ++offset)
            deleted = part.claim(1, offset).deleted_full;
        EXPECT_TRUE(deleted) << pages;
        EXPECT_EQ(part.live_reservations(), 0u);
    }
}

/// Concurrency hammer: many threads claim/release/create against
/// disjoint and overlapping groups; per-group invariants must hold.
class PartConcurrencyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartConcurrencyTest, ParallelClaimsNeverDuplicateFrames)
{
    const unsigned threads = GetParam();
    Part part;
    constexpr std::uint64_t kGroups = 64;

    // Pre-create one reservation per group.
    for (std::uint64_t group = 0; group < kGroups; ++group)
        part.create(group, group * 8, 7);  // offset 7 pre-claimed

    // Each of offsets 0..6 of each group must be claimed exactly once
    // across all threads.
    std::atomic<int> claims[kGroups][8] = {};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&part, &claims, t]() {
            Rng rng(1000 + t);
            for (int i = 0; i < 20000; ++i) {
                std::uint64_t group = rng.below(kGroups);
                unsigned offset = static_cast<unsigned>(rng.below(7));
                ClaimResult claim = part.claim(group, offset);
                if (claim.found && !claim.already_mapped) {
                    EXPECT_EQ(claim.gfn, group * 8 + offset);
                    claims[group][offset].fetch_add(1);
                    // Release it again so others can contend for it,
                    // unless the claim completed the group.
                    if (!claim.deleted_full)
                        part.release(group, offset);
                }
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    // Consistency: every group is either fully deleted (claimed to
    // completion at some point) or still live with only offset 7 set.
    for (std::uint64_t group = 0; group < kGroups; ++group) {
        auto view = part.find(group);
        if (view) {
            EXPECT_EQ(view->mask & (1u << 7), 1u << 7);
        }
    }
}

TEST_P(PartConcurrencyTest, ParallelCreateInDisjointRegions)
{
    const unsigned threads = GetParam();
    Part part;
    constexpr std::uint64_t kPerThread = 2000;

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&part, t]() {
            // Thread-private group range: exercises hand-over-hand
            // descent through shared upper nodes.
            std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                part.create(base + i, (base + i) * 8, 0);
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    EXPECT_EQ(part.live_reservations(), threads * kPerThread);
    for (unsigned t = 0; t < threads; ++t) {
        std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
        auto view = part.find(base + kPerThread / 2);
        ASSERT_TRUE(view);
        EXPECT_EQ(view->base_gfn, (base + kPerThread / 2) * 8);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, PartConcurrencyTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace ptm::core
