/**
 * @file
 * Trace frontend tests: .ptt encode/decode round-trips, record→replay
 * determinism for every catalog workload, and StreamCache equivalence
 * (the memoized stream must be observably identical to the generator).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/experiment.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace ptm::workload {
namespace {

/// Context that logs calls and hands out deterministic bases.
class LoggingContext final : public WorkloadContext {
  public:
    Addr
    mmap(Addr bytes) override
    {
        log.push_back("mmap:" + std::to_string(bytes));
        Addr base = next_base_;
        next_base_ += ((bytes + 0xfff) & ~0xfffULL);
        return base;
    }
    void
    munmap(Addr base) override
    {
        log.push_back("munmap:" + std::to_string(base));
    }
    void
    free_page(Addr gva) override
    {
        log.push_back("free:" + std::to_string(gva));
    }

    std::vector<std::string> log;

  private:
    Addr next_base_ = 0x7000'0000;
};

TEST(PttCodec, OpsRoundTripThroughZigzagDeltas)
{
    StreamEncoder enc;
    enc.setup_end();
    // Forward jumps, backward jumps, repeats — deltas of both signs.
    const MemOp ops[] = {{0x1000, false}, {0x1040, true},  {0x0800, false},
                         {0x0800, true},  {0xffff'0000, false}};
    for (const MemOp &op : ops)
        enc.op(op);
    enc.eos();

    DecodeState state;
    LoggingContext ctx;
    decode_setup(enc.bytes().data(), enc.bytes().size(), state, ctx);
    MemOp out[8];
    unsigned n = decode_ops(enc.bytes().data(), enc.bytes().size(), state,
                            ctx, out, 8);
    ASSERT_EQ(n, 5u);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(out[i].gva, ops[i].gva) << i;
        EXPECT_EQ(out[i].write, ops[i].write) << i;
    }
    EXPECT_EQ(decode_ops(enc.bytes().data(), enc.bytes().size(), state,
                         ctx, out, 8),
              0u);
    EXPECT_TRUE(state.finished);
}

TEST(PttCodec, InteractionsApplyOnlyAtBatchHead)
{
    StreamEncoder enc;
    enc.mmap(0x2000, 0x7000'0000);
    enc.setup_end();
    enc.op({0x7000'0000, true});
    enc.op({0x7000'0040, false});
    enc.free_page(0x7000'0000);
    enc.op({0x7000'1000, true});
    enc.eos();

    DecodeState state;
    LoggingContext ctx;
    decode_setup(enc.bytes().data(), enc.bytes().size(), state, ctx);
    ASSERT_EQ(ctx.log.size(), 1u);
    EXPECT_EQ(ctx.log[0], "mmap:8192");

    MemOp out[8];
    // The free_page after op 2 must END the batch, not be applied mid-way.
    unsigned n = decode_ops(enc.bytes().data(), enc.bytes().size(), state,
                            ctx, out, 8);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(ctx.log.size(), 1u);
    // Next call applies it before producing the third op.
    n = decode_ops(enc.bytes().data(), enc.bytes().size(), state, ctx, out,
                   8);
    EXPECT_EQ(n, 1u);
    ASSERT_EQ(ctx.log.size(), 2u);
    EXPECT_EQ(ctx.log[1], "free:1879048192");
    EXPECT_EQ(out[0].gva, 0x7000'1000u);
}

TEST(PttCodec, InitEndOnBatchBoundaryIsConsumedEagerly)
{
    StreamEncoder enc;
    enc.setup_end();
    enc.op({0x1000, false});
    enc.init_end();
    enc.op({0x2000, false});
    enc.eos();

    DecodeState state;
    LoggingContext ctx;
    decode_setup(enc.bytes().data(), enc.bytes().size(), state, ctx);
    EXPECT_TRUE(state.in_init);
    MemOp out[1];
    // Batch ends exactly at the op that completed init: the marker right
    // past it must still flip the flag before the caller looks.
    ASSERT_EQ(decode_ops(enc.bytes().data(), enc.bytes().size(), state,
                         ctx, out, 1),
              1u);
    EXPECT_FALSE(state.in_init);
}

TEST(RecordingWorkloadTest, StreamMatchesSerialGeneratorExactly)
{
    WorkloadOptions options;
    options.scale = 0.02;
    options.seed = 5;
    options.total_ops = 2'000;

    // Serial reference run.
    LoggingContext ref_ctx;
    auto ref = make_workload("mcf", options);
    ref->setup(ref_ctx);
    std::vector<MemOp> ref_ops;
    while (auto op = ref->next(ref_ctx))
        ref_ops.push_back(*op);

    // Recorded (batched) run, then decode.
    LoggingContext rec_ctx;
    RecordingWorkload rec(make_workload("mcf", options));
    rec.setup(rec_ctx);
    MemOp buf[64];
    while (rec.next_batch(rec_ctx, buf, 64) != 0) {
    }

    DecodeState state;
    LoggingContext replay_ctx;
    const auto &bytes = rec.encoder().bytes();
    decode_setup(bytes.data(), bytes.size(), state, replay_ctx);
    std::vector<MemOp> replay_ops;
    unsigned n;
    while ((n = decode_ops(bytes.data(), bytes.size(), state, replay_ctx,
                           buf, 64)) != 0) {
        replay_ops.insert(replay_ops.end(), buf, buf + n);
    }
    EXPECT_TRUE(state.finished);

    ASSERT_EQ(replay_ops.size(), ref_ops.size());
    for (std::size_t i = 0; i < ref_ops.size(); ++i) {
        ASSERT_EQ(replay_ops[i].gva, ref_ops[i].gva) << "op " << i;
        ASSERT_EQ(replay_ops[i].write, ref_ops[i].write) << "op " << i;
    }
    EXPECT_EQ(replay_ctx.log, ref_ctx.log);
}

}  // namespace
}  // namespace ptm::workload

namespace ptm::sim {
namespace {

ScenarioConfig
tiny_config(const std::string &victim)
{
    // 0.05 is the smallest scale every catalog benchmark tolerates (gcc
    // overruns its region below that — a generator quirk predating the
    // trace frontend).
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim(victim)
                                .with_scale(0.05)
                                .with_measure_ops(4'000)
                                .with_seed(13);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

/// Full simulated-state comparison (metrics + all stats + scalars).
void
expect_same_result(const ScenarioResult &a, const ScenarioResult &b,
                   const std::string &label)
{
    EXPECT_EQ(a.victim_cycles, b.victim_cycles) << label;
    EXPECT_EQ(a.victim_ops, b.victim_ops) << label;
    EXPECT_EQ(a.victim_rss_pages, b.victim_rss_pages) << label;
    EXPECT_EQ(a.total_ops, b.total_ops) << label;
    const auto &am = a.metrics.values();
    const auto &bm = b.metrics.values();
    ASSERT_EQ(am.size(), bm.size()) << label;
    for (const auto &[name, value] : am) {
        auto it = bm.find(name);
        ASSERT_NE(it, bm.end()) << label << ": " << name;
        EXPECT_EQ(value, it->second) << label << ": " << name;
    }
    ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
    for (std::size_t i = 0; i < a.stats.entries().size(); ++i) {
        const auto &ea = a.stats.entries()[i];
        const auto &eb = b.stats.entries()[i];
        ASSERT_EQ(ea.path, eb.path) << label;
        if (ea.is_histogram) {
            EXPECT_EQ(ea.histogram.count, eb.histogram.count)
                << label << ": " << ea.path;
            EXPECT_EQ(ea.histogram.sum, eb.histogram.sum)
                << label << ": " << ea.path;
        } else {
            EXPECT_EQ(ea.value, eb.value) << label << ": " << ea.path;
        }
    }
}

std::string
temp_trace_path(const std::string &tag)
{
    return "trace_roundtrip_" + tag + ".ptt";
}

TEST(TraceRoundtrip, EveryCatalogBenchmarkReplaysIdentically)
{
    for (const std::string &victim : workload::benchmark_names()) {
        SCOPED_TRACE(victim);
        const std::string path = temp_trace_path(victim);
        ScenarioConfig config = tiny_config(victim);
        ScenarioResult recorded =
            run_scenario(ScenarioConfig(config).with_trace_record(path));
        ScenarioResult replayed =
            run_scenario(ScenarioConfig(config).with_trace_replay(path));
        expect_same_result(recorded, replayed, victim);
        std::remove(path.c_str());
    }
}

TEST(TraceRoundtrip, RecordingDoesNotPerturbTheRun)
{
    const std::string path = temp_trace_path("perturb");
    ScenarioConfig config = tiny_config("pagerank");
    ScenarioResult plain = run_scenario(config);
    ScenarioResult recorded =
        run_scenario(ScenarioConfig(config).with_trace_record(path));
    expect_same_result(plain, recorded, "record-wrapper");
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, MultiJobTraceReplaysAcrossPolicyLegs)
{
    // One recorded trace must drive both the buddy and the PTEMagnet leg:
    // op streams are policy-independent by construction, and this is the
    // property that lets sweeps share a single trace.
    const std::string path = temp_trace_path("multijob");
    ScenarioConfig config = tiny_config("pagerank")
                                .with_corunner("stress-ng", 2)
                                .with_warmup_ops(2'000);
    ScenarioResult recorded =
        run_scenario(ScenarioConfig(config).with_trace_record(path));
    ScenarioResult replayed =
        run_scenario(ScenarioConfig(config).with_trace_replay(path));
    expect_same_result(recorded, replayed, "buddy-leg");

    ScenarioResult magnet_direct =
        run_scenario(ScenarioConfig(config).with_ptemagnet());
    ScenarioResult magnet_replayed = run_scenario(ScenarioConfig(config)
                                                      .with_ptemagnet()
                                                      .with_trace_replay(
                                                          path));
    expect_same_result(magnet_direct, magnet_replayed, "magnet-leg");
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, ReplayRejectsJobCountMismatch)
{
    const std::string path = temp_trace_path("mismatch");
    ScenarioConfig config = tiny_config("pagerank");
    run_scenario(ScenarioConfig(config).with_trace_record(path));
    EXPECT_THROW(run_scenario(ScenarioConfig(config)
                                  .with_corunner("stress-ng", 2)
                                  .with_trace_replay(path)),
                 SimError);
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, LoadRejectsGarbage)
{
    const std::string path = temp_trace_path("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_THROW(workload::TraceFile::load(path), SimError);
    std::remove(path.c_str());
    EXPECT_THROW(workload::TraceFile::load("does_not_exist.ptt"),
                 SimError);
}

TEST(StreamCacheTest, MemoizedStreamsMatchBareGenerators)
{
    ScenarioConfig config = tiny_config("cc").with_corunner("stress-ng", 1);
    // Leg 1: generators, memo disabled.
    ::setenv("PTM_NO_STREAM_MEMO", "1", 1);
    ASSERT_FALSE(workload::StreamCache::enabled());
    ScenarioResult bare = run_scenario(config);
    ::unsetenv("PTM_NO_STREAM_MEMO");
    ASSERT_TRUE(workload::StreamCache::enabled());
    // Leg 2 populates the cache; leg 3 replays from it.
    ScenarioResult first = run_scenario(config);
    ScenarioResult memoized = run_scenario(config);
    expect_same_result(bare, first, "cache-fill");
    expect_same_result(bare, memoized, "cache-replay");
}

}  // namespace
}  // namespace ptm::sim
