/**
 * @file
 * Cloud-serving workload tier tests: the string-keyed workload factory
 * (fail-fast unknown names, params-keyed stream memoization), Zipfian
 * sampler statistics, determinism of the kv_tier / fork_storm / ws_estimate
 * generators across repeats and suite thread counts, and the armed
 * dirty ring's pure-observer contract.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/suite.hpp"
#include "workload/serving.hpp"
#include "workload/workload_factory.hpp"

namespace ptm::sim {
namespace {

// ---- factory ---------------------------------------------------------

TEST(WorkloadFactory, ServingTierAndCatalogShareTheRegistry)
{
    EXPECT_TRUE(workload::workload_registered("kv_tier"));
    EXPECT_TRUE(workload::workload_registered("fork_storm"));
    EXPECT_TRUE(workload::workload_registered("ws_estimate"));
    // Catalog benchmarks come through the same factory.
    EXPECT_TRUE(workload::workload_registered("pagerank"));
    EXPECT_TRUE(workload::workload_registered("stress-ng"));

    workload::WorkloadOptions options;
    options.scale = 0.1;
    auto w = workload::make_workload("kv_tier", options);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), "kv_tier");
    EXPECT_GT(w->static_footprint(), 0u);
}

TEST(WorkloadFactory, UnknownNameFailsFastListingRegistered)
{
    EXPECT_THROW(workload::make_workload("no_such_workload", {}),
                 SimError);
    try {
        workload::make_workload("no_such_workload", {});
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no_such_workload"), std::string::npos);
        EXPECT_NE(what.find("kv_tier"), std::string::npos);
    }
    // The fluent config setter fails at config-build time the same way.
    EXPECT_THROW(ScenarioConfig{}.with_workload("no_such_workload"),
                 SimError);
}

TEST(WorkloadFactory, WorkloadSweepAxisSelectsVictims)
{
    ExperimentSuite suite("serving_axis");
    suite.sweep("w", "workload",
                std::vector<std::string>{"kv_tier", "fork_storm",
                                         "ws_estimate"},
                ScenarioConfig{});
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_EQ(suite.entries()[0].config.victim, "kv_tier");
    EXPECT_EQ(suite.entries()[1].config.victim, "fork_storm");
    EXPECT_EQ(suite.entries()[2].config.victim, "ws_estimate");
    EXPECT_EQ(suite.entries()[2].name, "w/workload=ws_estimate");
    EXPECT_EQ(suite.entries()[2].sweep_text, "ws_estimate");
}

// ---- Zipfian sampler -------------------------------------------------

TEST(ZipfianSampler, ChiSquaredAgainstAnalyticMass)
{
    const std::uint64_t n = 1000;
    const double theta = 0.99;
    const std::uint64_t draws = 200'000;
    workload::ZipfianSampler zipf(n, theta);
    Rng rng(42);

    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const std::uint64_t rank = zipf.next(rng);
        ASSERT_LT(rank, n);
        ++counts[rank];
    }

    // The head carries most of the mass (theta=0.99): rank 0 alone is
    // ~13% of all draws and ranks decay monotonically on average.
    EXPECT_GT(counts[0], draws / 10);
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[200]);

    // Chi-squared over the top 64 ranks plus an aggregated tail bucket,
    // against the analytic Zipf mass. The Gray et al. rejection-free
    // approximation is exact for ranks 0-1 and systematically
    // over-samples ranks 2-5 by ~5-16%, which alone contributes ~400
    // here; the bound admits that known bias while staying orders of
    // magnitude below what a wrong zetan/eta/alpha would produce.
    double chi2 = 0.0;
    double tail_obs = static_cast<double>(draws);
    double tail_exp = static_cast<double>(draws);
    for (std::uint64_t r = 0; r < 64; ++r) {
        const double expected =
            zipf.mass(r) * static_cast<double>(draws);
        const double observed = static_cast<double>(counts[r]);
        chi2 += (observed - expected) * (observed - expected) / expected;
        tail_obs -= observed;
        tail_exp -= expected;
    }
    ASSERT_GT(tail_exp, 0.0);
    chi2 += (tail_obs - tail_exp) * (tail_obs - tail_exp) / tail_exp;
    EXPECT_LT(chi2, 1000.0)
        << "sampler diverges from analytic Zipf mass";

    // mass() itself is a distribution over the n ranks.
    double total = 0.0;
    for (std::uint64_t r = 0; r < n; ++r)
        total += zipf.mass(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfianSampler, DeterministicForSeedAndConfig)
{
    workload::ZipfianSampler zipf(4096, 0.99);
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(zipf.next(a), zipf.next(b));
}

// ---- generator determinism through the scenario runner ---------------

ScenarioConfig
serving_config(const std::string &name)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_workload(name)
                                .with_scale(0.2)
                                .with_measure_ops(15'000)
                                .with_warmup_ops(0);
    return config;
}

TEST(ServingDeterminism, KvTierIdenticalAcrossRepeatsAndSuiteThreads)
{
    const ScenarioConfig config = serving_config("kv_tier");
    ScenarioResult first = run_scenario(config);
    EXPECT_GE(first.victim_ops, 15'000u);
    EXPECT_GT(first.victim_rss_pages, 0u);

    ScenarioResult again = run_scenario(config);
    EXPECT_EQ(first.victim_cycles, again.victim_cycles);
    EXPECT_EQ(first.victim_ops, again.victim_ops);
    EXPECT_EQ(first.victim_rss_pages, again.victim_rss_pages);
    EXPECT_EQ(first.buddy_calls, again.buddy_calls);

    for (unsigned threads : {1u, 4u}) {
        ExperimentSuite suite("kv_threads");
        suite.add("kv", config, RunKind::Single);
        suite.add("kv-echo", config, RunKind::Single);
        SuiteOptions options;
        options.threads = threads;
        options.write_json = false;
        options.announce = false;
        SuiteResult result = suite.run(options);
        ASSERT_FALSE(result.at("kv").failed());
        EXPECT_EQ(result.at("kv").single.victim_cycles,
                  first.victim_cycles);
        EXPECT_EQ(result.at("kv-echo").single.victim_cycles,
                  first.victim_cycles);
    }
}

TEST(ServingDeterminism, KvTierStreamKeyedByWorkloadParams)
{
    // Same name/seed/scale but different generator knobs must not share
    // a memoized stream: the StreamCache key covers workload_params.
    ScenarioConfig few = serving_config("kv_tier");
    few.with_workload_param("value_lines", 2);
    ScenarioConfig many = serving_config("kv_tier");
    many.with_workload_param("value_lines", 12);
    ScenarioResult a = run_scenario(few);
    ScenarioResult b = run_scenario(many);
    EXPECT_NE(a.victim_cycles, b.victim_cycles);

    // And the same knobs replayed from the memo stay bit-identical.
    ScenarioResult c = run_scenario(few);
    EXPECT_EQ(a.victim_cycles, c.victim_cycles);
}

TEST(ServingDeterminism, ForkStormBitIdenticalUnderArmedFaultPlan)
{
    ScenarioConfig config = serving_config("fork_storm");
    config.with_fault_plan(FaultPlan{}.periodic_pressure(5'000));

    ScenarioResult a = run_scenario(config);
    ScenarioResult b = run_scenario(config);
    EXPECT_TRUE(a.fault_plan_armed);
    EXPECT_GE(a.victim_ops, 15'000u);
    EXPECT_EQ(a.victim_cycles, b.victim_cycles);
    EXPECT_EQ(a.victim_ops, b.victim_ops);
    EXPECT_EQ(a.injected_denials, b.injected_denials);
    EXPECT_EQ(a.pressure_episodes, b.pressure_episodes);
    EXPECT_EQ(a.frames_reclaimed, b.frames_reclaimed);
    EXPECT_EQ(a.fallback_singles, b.fallback_singles);
}

// ---- dirty ring: pure observer when nothing consumes the estimate ----

TEST(DirtyRingObserver, ArmedRingNeverPerturbsTheSimulation)
{
    const ScenarioConfig disarmed = serving_config("ws_estimate");
    ScenarioConfig armed = disarmed;
    // Ring armed but feeding nothing: overcommit is off, so estimates
    // are computed and never consumed. Simulated state must not move.
    armed.with_dirty_ring(DirtyRingConfig{}
                              .with_ring_entries(128)
                              .with_epoch_ops(4096)
                              .with_reclaim_by_ws(false));

    ScenarioResult base = run_scenario(disarmed);
    ScenarioResult observed = run_scenario(armed);

    // The observer saw traffic...
    EXPECT_TRUE(observed.dirty_ring_armed);
    EXPECT_GT(observed.dirty_ring_logged, 0u);
    EXPECT_GE(observed.dirty_ring_epochs, 1u);
    EXPECT_GT(observed.ws_estimate_pages, 0u);
    // ...without changing a single simulated number.
    EXPECT_EQ(base.victim_cycles, observed.victim_cycles);
    EXPECT_EQ(base.victim_ops, observed.victim_ops);
    EXPECT_EQ(base.victim_rss_pages, observed.victim_rss_pages);
    EXPECT_EQ(base.buddy_calls, observed.buddy_calls);
    EXPECT_EQ(base.total_ops, observed.total_ops);

    // Disarmed runs keep the golden metric set: no ring keys appear.
    EXPECT_FALSE(base.dirty_ring_armed);
    EXPECT_FALSE(base.metrics.has("dirty_ring_logged"));
    EXPECT_FALSE(base.metrics.has("ws_estimate_pages"));
    EXPECT_TRUE(observed.metrics.has("ws_estimate_pages"));
}

}  // namespace
}  // namespace ptm::sim
