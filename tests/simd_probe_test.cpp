/**
 * @file
 * SIMD probe property tests: the vector scans of common/simd.hpp must be
 * decision-identical to the always-compiled scalar references on every
 * backend (SSE2/NEON and the PTM_NO_SIMD scalar build run the same
 * suite), and cache::Cache must make identical hit/victim decisions to a
 * reference model built from the scalar scans and the virtual
 * replacement policies — across associativities and policies.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "tlb/assoc_cache.hpp"

namespace ptm {
namespace {

TEST(SimdProbe, FindU32MatchesScalarReference)
{
    Rng rng(0xF00D);
    for (unsigned trial = 0; trial < 2'000; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(33));
        std::vector<std::uint32_t> keys(n);
        // Small alphabet: forces absent needles, present needles, and
        // repeated values (the multi-match sentinel case) alike.
        for (auto &k : keys)
            k = static_cast<std::uint32_t>(rng.below(8));
        const std::uint32_t needle =
            static_cast<std::uint32_t>(rng.below(10));
        EXPECT_EQ(simd::find_u32(keys.data(), n, needle),
                  simd::find_u32_scalar(keys.data(), n, needle))
            << "trial " << trial;
        EXPECT_EQ(simd::find_u32_hot(keys.data(), n, needle),
                  simd::find_u32_scalar(keys.data(), n, needle))
            << "trial " << trial;
    }
    // The empty-way scan: many lanes hold the sentinel; first wins.
    std::uint32_t sent[8] = {7, ~0U, 3, ~0U, ~0U, 1, ~0U, ~0U};
    EXPECT_EQ(simd::find_u32(sent, 8, ~0U), 1u);
}

TEST(SimdProbe, FindU64MatchesScalarReference)
{
    Rng rng(0xBEEF);
    for (unsigned trial = 0; trial < 2'000; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(17));
        std::vector<std::uint64_t> keys(n);
        for (auto &k : keys)
            k = rng.below(8);
        const std::uint64_t needle = rng.below(10);
        EXPECT_EQ(simd::find_u64(keys.data(), n, needle),
                  simd::find_u64_scalar(keys.data(), n, needle))
            << "trial " << trial;
    }
    std::uint64_t sent[5] = {~0ULL, 4, ~0ULL, 9, ~0ULL};
    EXPECT_EQ(simd::find_u64(sent, 5, ~0ULL), 0u);
}

TEST(SimdProbe, MinIndexU64ReturnsFirstMinimum)
{
    Rng rng(0xCAFE);
    for (unsigned trial = 0; trial < 2'000; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(16));
        std::vector<std::uint64_t> values(n);
        // Tiny range so ties are common: ties must keep the lowest
        // index (the LRU tie-break AssocCache::insert relies on).
        for (auto &v : values)
            v = rng.below(4);
        unsigned expect = 0;
        for (unsigned w = 1; w < n; ++w) {
            if (values[w] < values[expect])
                expect = w;
        }
        EXPECT_EQ(simd::min_index_u64(values.data(), n), expect)
            << "trial " << trial;
    }
}

// ---- cache::Cache decision identity --------------------------------

/**
 * Reference cache: scalar scans, one virtual ReplacementPolicy per set,
 * first-empty-way fills — the documented decision procedure of
 * cache::Cache with none of its accelerators (memo, MRU hint, live
 * counts, SIMD scans, 32-bit tag packing).
 */
class RefCache {
  public:
    RefCache(std::uint64_t sets, unsigned ways,
             cache::ReplacementKind kind, Rng *rng)
        : sets_(sets), ways_(ways), lines_(sets * ways, ~0ULL)
    {
        for (std::uint64_t s = 0; s < sets; ++s)
            policies_.push_back(
                cache::make_replacement_policy(kind, ways, rng));
    }

    bool
    access(std::uint64_t line)
    {
        const std::uint64_t set = line & (sets_ - 1);
        std::uint64_t *ways = &lines_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (ways[w] == line) {
                policies_[set]->touch(w);
                return true;
            }
        }
        unsigned w = 0;
        while (w < ways_ && ways[w] != ~0ULL)
            ++w;
        if (w == ways_)
            w = policies_[set]->victim();
        ways[w] = line;
        policies_[set]->touch(w);
        return false;
    }

    void
    invalidate(std::uint64_t line)
    {
        const std::uint64_t set = line & (sets_ - 1);
        std::uint64_t *ways = &lines_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (ways[w] == line)
                ways[w] = ~0ULL;
        }
    }

    bool
    resident(std::uint64_t line) const
    {
        const std::uint64_t set = line & (sets_ - 1);
        for (unsigned w = 0; w < ways_; ++w) {
            if (lines_[set * ways_ + w] == line)
                return true;
        }
        return false;
    }

    std::uint64_t
    resident_lines() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t l : lines_)
            n += static_cast<std::uint64_t>(l != ~0ULL);
        return n;
    }

  private:
    std::uint64_t sets_;
    unsigned ways_;
    std::vector<std::uint64_t> lines_;
    std::vector<std::unique_ptr<cache::ReplacementPolicy>> policies_;
};

TEST(SimdProbe, CacheDecisionsMatchReferenceAcrossWaysAndPolicies)
{
    constexpr std::uint64_t kSets = 16;
    const unsigned all_ways[] = {1, 2, 4, 8, 16};
    const cache::ReplacementKind kinds[] = {
        cache::ReplacementKind::Lru,
        cache::ReplacementKind::TreePlru,
        cache::ReplacementKind::Random,
    };

    for (unsigned ways : all_ways) {
        for (cache::ReplacementKind kind : kinds) {
            SCOPED_TRACE(cache::replacement_kind_name(kind) + "/" +
                         std::to_string(ways) + "w");
            // Two independent RNGs with one seed: draw sequences stay
            // aligned exactly as long as the decisions do.
            Rng cache_rng(99), ref_rng(99), stream(1234 + ways);
            cache::CacheGeometry geometry;
            geometry.name = "probe";
            geometry.size_bytes = kSets * ways * kCacheLineSize;
            geometry.ways = ways;
            geometry.replacement = kind;
            cache::Cache cache(geometry, &cache_rng);
            RefCache ref(kSets, ways, kind, &ref_rng);

            // 4x-capacity line pool: plenty of conflict misses; sprinkle
            // invalidations so sets refill through the empty-way scan.
            const std::uint64_t pool = kSets * ways * 4;
            for (unsigned i = 0; i < 6'000; ++i) {
                const std::uint64_t line = stream.below(pool);
                if (i % 17 == 13) {
                    cache.invalidate(line);
                    ref.invalidate(line);
                    continue;
                }
                ASSERT_EQ(cache.access(line, cache::AccessKind::Data),
                          ref.access(line))
                    << "op " << i << " line " << line;
            }

            EXPECT_EQ(cache.resident_lines(), ref.resident_lines());
            for (std::uint64_t line = 0; line < pool; ++line) {
                ASSERT_EQ(cache.probe(line), ref.resident(line))
                    << "line " << line;
            }
        }
    }
}

TEST(SimdProbe, AssocCacheLookupMatchesScalarProbeSemantics)
{
    // The TLB structure's lookup/insert go through find_u64 +
    // min-stamp-tie-low; a shadow map replaying the documented LRU
    // decision procedure must agree on every hit and every eviction.
    constexpr unsigned kSets2 = 8, kWays = 4;
    tlb::AssocCache<std::uint64_t> cache(kSets2 * kWays, kWays);

    struct Entry {
        std::uint64_t key = ~0ULL;
        std::uint64_t value = 0;
        std::uint64_t stamp = 0;
    };
    std::vector<Entry> shadow(kSets2 * kWays);
    std::uint64_t clock = 0;

    Rng stream(77);
    const std::uint64_t pool = kSets2 * kWays * 3;
    for (unsigned i = 0; i < 4'000; ++i) {
        const std::uint64_t key = stream.below(pool);
        Entry *set = &shadow[(key & (kSets2 - 1)) * kWays];

        const auto shadow_lookup = [&]() -> Entry * {
            for (unsigned w = 0; w < kWays; ++w) {
                if (set[w].key == key)
                    return &set[w];
            }
            return nullptr;
        };

        if (i % 13 == 7) {
            cache.invalidate(key);
            if (Entry *e = shadow_lookup())
                e->key = ~0ULL;
            continue;
        }
        std::optional<std::uint64_t> got = cache.lookup(key);
        Entry *want = shadow_lookup();
        ASSERT_EQ(got.has_value(), want != nullptr) << "op " << i;
        if (want != nullptr) {
            EXPECT_EQ(*got, want->value) << "op " << i;
            want->stamp = ++clock;
        } else {
            // Miss path: insert, preferring empty ways, else the
            // smallest stamp with the lowest way winning ties.
            const std::uint64_t value = key * 3 + 1;
            cache.insert(key, value);
            unsigned slot = kWays;
            for (unsigned w = 0; w < kWays; ++w) {
                if (set[w].key == ~0ULL) {
                    slot = w;
                    break;
                }
            }
            if (slot == kWays) {
                slot = 0;
                for (unsigned w = 1; w < kWays; ++w) {
                    if (set[w].stamp < set[slot].stamp)
                        slot = w;
                }
            }
            set[slot] = Entry{key, value, ++clock};
        }
    }

    for (std::uint64_t key = 0; key < pool; ++key) {
        Entry *set = &shadow[(key & (kSets2 - 1)) * kWays];
        bool resident = false;
        std::uint64_t value = 0;
        for (unsigned w = 0; w < kWays; ++w) {
            if (set[w].key == key) {
                resident = true;
                value = set[w].value;
            }
        }
        std::optional<std::uint64_t> got = cache.probe(key);
        ASSERT_EQ(got.has_value(), resident) << "key " << key;
        if (resident)
            EXPECT_EQ(*got, value) << "key " << key;
    }
}

}  // namespace
}  // namespace ptm
