/**
 * @file
 * Tests for the THP-like eager backing provider (the §2.3 comparison
 * policy).
 */
#include <gtest/gtest.h>

#include "vm/guest_kernel.hpp"
#include "vm/huge_page_provider.hpp"

namespace ptm::vm {
namespace {

class HugePageTest : public ::testing::Test {
  protected:
    HugePageTest() : kernel_(8192)
    {
        auto provider = std::make_unique<HugePageProvider>(&kernel_);
        provider_ = provider.get();
        kernel_.set_provider(std::move(provider));
    }

    GuestKernel kernel_;
    HugePageProvider *provider_ = nullptr;
};

TEST_F(HugePageTest, FirstFaultBacksWholeRegionEagerly)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(512 * kPageSize);
    std::uint64_t gvpn = page_number(base);

    mmu::FaultOutcome outcome = kernel_.handle_fault(proc, gvpn);
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(provider_->stats().regions_backed.value(), 1u);
    // Every page of the (VMA-covered) region got mapped immediately.
    EXPECT_EQ(proc.rss_pages(), 512u);
    for (unsigned i = 0; i < 512; ++i)
        EXPECT_TRUE(proc.page_table().lookup(gvpn + i)) << i;
}

TEST_F(HugePageTest, MappingsAreContiguousAndAligned)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(512 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    kernel_.handle_fault(proc, gvpn + 100);

    std::uint64_t first = proc.page_table().lookup(gvpn)->frame();
    EXPECT_EQ(first % 512, 0u);
    for (unsigned i = 1; i < 512; ++i)
        EXPECT_EQ(proc.page_table().lookup(gvpn + i)->frame(), first + i);
}

TEST_F(HugePageTest, PartialVmaLeavesUnusedBackedFrames)
{
    Process &proc = kernel_.create_process("app");
    // A small VMA: the eager region spans 512 pages but only 64 are
    // inside the mapping (the huge-page regions are VA-aligned, and the
    // mmap area base is 2 MiB-aligned here).
    Addr base = proc.vas().mmap(64 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    ASSERT_EQ(gvpn % 512, 0u);
    kernel_.handle_fault(proc, gvpn);

    EXPECT_EQ(proc.rss_pages(), 64u);
    EXPECT_EQ(provider_->unused_backed_pages(proc.pid()), 512u - 64u);
    EXPECT_EQ(kernel_.memory().count_use(mem::FrameUse::Kernel,
                                         proc.pid()),
              512u - 64u);
}

TEST_F(HugePageTest, LaterVmaFaultServedFromRetainedFrames)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(64 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    kernel_.handle_fault(proc, gvpn);
    std::uint64_t first = proc.page_table().lookup(gvpn)->frame();

    // A new VMA lands inside the already-backed region: faults there are
    // served from the retained frames, preserving contiguity.
    Addr more = proc.vas().mmap(64 * kPageSize);
    std::uint64_t more_vpn = page_number(more);
    ASSERT_EQ(more_vpn / 512, gvpn / 512) << "same huge region";
    kernel_.handle_fault(proc, more_vpn);
    EXPECT_EQ(proc.page_table().lookup(more_vpn)->frame(),
              first + (more_vpn - gvpn));
}

TEST_F(HugePageTest, FallsBackWhenNoContiguousBlock)
{
    GuestKernel small(600);
    auto provider = std::make_unique<HugePageProvider>(&small);
    HugePageProvider *raw = provider.get();
    small.set_provider(std::move(provider));
    Process &proc = small.create_process("app");
    // Eat frames until no order-9 block remains.
    while (small.buddy().can_allocate(9))
        ASSERT_TRUE(small.buddy().allocate(9));
    Addr base = proc.vas().mmap(512 * kPageSize);
    mmu::FaultOutcome outcome =
        small.handle_fault(proc, page_number(base));
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(raw->stats().fallback_singles.value(), 1u);
    EXPECT_EQ(proc.rss_pages(), 1u);
}

TEST_F(HugePageTest, ExitReturnsRetainedFrames)
{
    std::uint64_t free_at_start = kernel_.buddy().free_frames_count();
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(64 * kPageSize);
    kernel_.handle_fault(proc, page_number(base));
    EXPECT_GT(provider_->unused_backed_pages(proc.pid()), 0u);
    kernel_.exit_process(proc);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_at_start);
    kernel_.buddy().check_invariants();
}

}  // namespace
}  // namespace ptm::vm
