/**
 * @file
 * Tests for the robustness layer: deterministic fault injection
 * (sim/fault_injection), graceful degradation under buddy exhaustion and
 * injected memory pressure, and the crash-isolated ExperimentSuite
 * driver (failed entries never perturb their siblings).
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/ptemagnet_provider.hpp"
#include "sim/suite.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::sim {
namespace {

// ---- FaultInjector unit behaviour ------------------------------------

TEST(FaultInjectorTest, DefaultPlanIsInert)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.armed());
    EXPECT_TRUE(plan.deny_guest(0, 1).armed());
    EXPECT_TRUE(FaultPlan{}.periodic_pressure(100).armed());
    // A zero cadence adds nothing.
    EXPECT_FALSE(FaultPlan{}.periodic_pressure(0).armed());
}

TEST(FaultInjectorTest, GateDeniesExactlyTheConfiguredWindow)
{
    FaultPlan plan;
    plan.deny_guest(0, /*count=*/3, /*after=*/2);
    FaultInjector injector(plan);

    mem::BuddyAllocator buddy(0, 64);
    buddy.set_alloc_gate(injector.guest_gate());

    int denied = 0;
    for (int i = 0; i < 10; ++i) {
        if (!buddy.allocate_frame())
            ++denied;
    }
    EXPECT_EQ(denied, 3);
    EXPECT_EQ(injector.stats().injected_denials.value(), 3u);
    EXPECT_EQ(injector.stats().gate_calls.value(), 10u);
}

TEST(FaultInjectorTest, OrderFilterLeavesOtherOrdersAlone)
{
    FaultPlan plan;
    plan.deny_guest(/*order=*/3, /*count=*/1'000);
    FaultInjector injector(plan);

    mem::BuddyAllocator buddy(0, 64);
    buddy.set_alloc_gate(injector.guest_gate());

    EXPECT_FALSE(buddy.allocate(3).has_value());
    EXPECT_TRUE(buddy.allocate_frame().has_value());
    EXPECT_EQ(injector.stats().injected_denials.value(), 1u);
}

TEST(FaultInjectorTest, HostGateIsIndependentOfGuestGate)
{
    FaultPlan plan;
    plan.deny_host(0, /*count=*/1'000);
    FaultInjector injector(plan);

    mem::BuddyAllocator guest_buddy(0, 64);
    mem::BuddyAllocator host_buddy(0, 64);
    guest_buddy.set_alloc_gate(injector.guest_gate());
    host_buddy.set_alloc_gate(injector.host_gate());

    EXPECT_TRUE(guest_buddy.allocate_frame().has_value());
    EXPECT_FALSE(host_buddy.allocate_frame().has_value());
}

TEST(FaultInjectorTest, PressureEpisodeOpensSweepsAndCloses)
{
    FaultPlan plan;
    plan.pressure({.open_at_fault = 5,
                   .close_after = 6,
                   .sweep_period = 2,
                   .target_frames = 64});
    FaultInjector injector(plan);

    std::uint64_t sweeps = 0;
    for (int tick = 1; tick <= 20; ++tick) {
        if (std::uint64_t target = injector.pressure_tick()) {
            EXPECT_EQ(target, 64u);
            ++sweeps;
        }
    }
    // Opens at tick 5 (sweep), sweeps at ages 2 and 4, closes at age 6.
    EXPECT_EQ(sweeps, 3u);
    EXPECT_EQ(injector.stats().pressure_episodes.value(), 1u);
    EXPECT_EQ(injector.stats().reclaim_sweeps.value(), 3u);
}

TEST(FaultInjectorTest, ProbabilisticDenialsAreSeedDeterministic)
{
    FaultPlan plan;
    plan.deny_guest_probability(AllocDenyRule::kAnyOrder, 0.5);
    plan.with_seed(1234);

    auto denial_pattern = [&plan]() {
        FaultInjector injector(plan);
        mem::BuddyAllocator buddy(0, 1024);
        buddy.set_alloc_gate(injector.guest_gate());
        std::string pattern;
        for (int i = 0; i < 200; ++i)
            pattern += buddy.allocate_frame() ? '1' : '0';
        return pattern;
    };

    std::string first = denial_pattern();
    EXPECT_EQ(first, denial_pattern());
    EXPECT_NE(first.find('0'), std::string::npos);
    EXPECT_NE(first.find('1'), std::string::npos);

    plan.with_seed(99);
    EXPECT_NE(first, denial_pattern());
}

// ---- graceful degradation at the kernel level ------------------------

TEST(FaultInjectionKernelTest, PtemagnetFallsBackToSinglesUnderDenial)
{
    // Deny every order-3 (reservation-chunk) allocation: the provider
    // must degrade to single frames, not fail the faults.
    FaultPlan plan;
    plan.deny_guest(3, 1'000'000);
    FaultInjector injector(plan);

    vm::GuestKernel kernel(1024);
    auto provider =
        std::make_unique<core::PtemagnetProvider>(&kernel, 8);
    core::PtemagnetProvider *ptm = provider.get();
    kernel.set_provider(std::move(provider));
    kernel.buddy().set_alloc_gate(injector.guest_gate());

    vm::Process &proc = kernel.create_process("victim");
    Addr base = proc.vas().mmap(64 * kPageSize);
    std::uint64_t first = page_number(base);
    for (std::uint64_t i = 0; i < 64; ++i) {
        mmu::FaultOutcome out = kernel.handle_fault(proc, first + i);
        ASSERT_TRUE(out.ok) << "fault " << i << " failed";
    }

    EXPECT_EQ(ptm->stats().reservations_created.value(), 0u);
    EXPECT_EQ(ptm->stats().fallback_singles.value(), 64u);
    EXPECT_EQ(kernel.stats().oom_events.value(), 0u);
    EXPECT_GE(injector.stats().injected_denials.value(), 64u);
}

TEST(FaultInjectionKernelTest, ExhaustedGuestReportsOomWithoutAborting)
{
    // 64 frames cannot back a 256-page touch: the kernel must surface
    // the condition as a failed fault or a SimError — never abort.
    vm::GuestKernel kernel(64);
    vm::Process &proc = kernel.create_process("hog");
    Addr base = proc.vas().mmap(256 * kPageSize);
    std::uint64_t first = page_number(base);

    bool saw_oom = false;
    for (std::uint64_t i = 0; i < 256 && !saw_oom; ++i) {
        try {
            saw_oom = !kernel.handle_fault(proc, first + i).ok;
        } catch (const SimError &) {
            saw_oom = true;  // PT-node exhaustion path
        }
    }
    EXPECT_TRUE(saw_oom);
}

// ---- scenario-level robustness ---------------------------------------

ScenarioConfig
tiny_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("pagerank")
                                .with_scale(0.05)
                                .with_measure_ops(10'000);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

void
expect_identical(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.metrics.values(), b.metrics.values());
    EXPECT_EQ(a.victim_cycles, b.victim_cycles);
    EXPECT_EQ(a.victim_ops, b.victim_ops);
    EXPECT_EQ(a.victim_rss_pages, b.victim_rss_pages);
    EXPECT_EQ(a.reservations_created, b.reservations_created);
    EXPECT_EQ(a.part_hits, b.part_hits);
    EXPECT_EQ(a.buddy_calls, b.buddy_calls);
    EXPECT_EQ(a.injected_denials, b.injected_denials);
    EXPECT_EQ(a.pressure_episodes, b.pressure_episodes);
    EXPECT_EQ(a.reclaim_sweeps, b.reclaim_sweeps);
    EXPECT_EQ(a.frames_reclaimed, b.frames_reclaimed);
    EXPECT_EQ(a.fallback_singles, b.fallback_singles);
    EXPECT_EQ(a.oom_events, b.oom_events);
}

TEST(FaultInjectionScenarioTest, PressureDrivesReclaimAndRunCompletes)
{
    ScenarioResult run = run_scenario(
        ScenarioConfig(tiny_config())
            .with_ptemagnet()
            .with_fault_plan(FaultPlan{}.periodic_pressure(500)));

    EXPECT_TRUE(run.fault_plan_armed);
    EXPECT_GE(run.pressure_episodes, 1u);
    EXPECT_GT(run.reclaim_sweeps, 0u);
    EXPECT_GT(run.frames_reclaimed, 0u);
    EXPECT_EQ(run.oom_events, 0u);
    EXPECT_GE(run.victim_ops, 10'000u);
    // Armed runs export the robustness counters as metrics...
    EXPECT_TRUE(run.metrics.has("frames_reclaimed"));

    // ...unarmed runs must not (the golden metric snapshot covers them).
    ScenarioResult unarmed =
        run_scenario(ScenarioConfig(tiny_config()).with_ptemagnet());
    EXPECT_FALSE(unarmed.fault_plan_armed);
    EXPECT_FALSE(unarmed.metrics.has("frames_reclaimed"));
    EXPECT_FALSE(unarmed.metrics.has("injected_denials"));
}

TEST(FaultInjectionScenarioTest, DenialForcesFallbackWithoutFailure)
{
    ScenarioResult run = run_scenario(
        ScenarioConfig(tiny_config())
            .with_ptemagnet()
            .with_fault_plan(FaultPlan{}.deny_guest(3, 1'000'000)));

    EXPECT_GT(run.injected_denials, 0u);
    EXPECT_GT(run.fallback_singles, 0u);
    EXPECT_EQ(run.reservations_created, 0u);
    EXPECT_EQ(run.oom_events, 0u);
    EXPECT_GE(run.victim_ops, 10'000u);
}

TEST(FaultInjectionScenarioTest, BuddyBaselineOomThrowsSimError)
{
    // The stock buddy kernel has no reservations to fall back on: a
    // guest far too small for the workload must throw (recoverable),
    // never abort the process.
    ScenarioConfig doomed = tiny_config();
    doomed.platform.guest_frames = 512;
    EXPECT_THROW(run_scenario(doomed), SimError);
}

TEST(FaultInjectionScenarioTest, SamePlanSeedIsBitIdentical)
{
    ScenarioConfig config =
        ScenarioConfig(tiny_config())
            .with_ptemagnet()
            .with_fault_plan(FaultPlan{}
                                 .with_seed(77)
                                 .deny_guest_probability(3, 0.3)
                                 .periodic_pressure(700));
    ScenarioResult first = run_scenario(config);
    ScenarioResult second = run_scenario(config);
    expect_identical(first, second);
    EXPECT_GT(first.injected_denials, 0u);
}

// ---- crash-isolated suite driver -------------------------------------

SuiteOptions
quiet(unsigned threads)
{
    SuiteOptions options;
    options.threads = threads;
    options.write_json = false;
    options.announce = false;
    return options;
}

ScenarioConfig
doomed_config()
{
    ScenarioConfig config = tiny_config();
    config.platform.guest_frames = 512;
    return config;
}

TEST(SuiteIsolationTest, FailedEntryLeavesSiblingsBitIdentical)
{
    ExperimentSuite with_failure("isolation");
    with_failure.add("alpha", tiny_config());
    with_failure.add("doomed", doomed_config(), RunKind::Single);
    with_failure.add("omega",
                     ScenarioConfig(tiny_config()).with_ptemagnet(),
                     RunKind::Single);

    ExperimentSuite control("control");
    control.add("alpha", tiny_config());
    control.add("omega",
                ScenarioConfig(tiny_config()).with_ptemagnet(),
                RunKind::Single);

    SuiteResult failed_run = with_failure.run(quiet(4));
    SuiteResult control_run = control.run(quiet(4));

    const EntryResult &doomed = failed_run.at("doomed");
    EXPECT_TRUE(doomed.failed());
    EXPECT_EQ(doomed.status, EntryStatus::Failed);
    EXPECT_NE(doomed.error.find("OOM"), std::string::npos)
        << doomed.error;
    EXPECT_EQ(doomed.attempts, 1u);
    EXPECT_EQ(failed_run.failed_count(), 1u);

    // Siblings are untouched by the failure.
    expect_identical(failed_run.at("alpha").paired.baseline,
                     control_run.at("alpha").paired.baseline);
    expect_identical(failed_run.at("alpha").paired.ptemagnet,
                     control_run.at("alpha").paired.ptemagnet);
    expect_identical(failed_run.at("omega").single,
                     control_run.at("omega").single);
    EXPECT_FALSE(failed_run.at("alpha").failed());
    EXPECT_FALSE(failed_run.at("omega").failed());

    // Failed entries drop out of the summary statistics.
    EXPECT_EQ(failed_run.improvements().size(), 1u);
    EXPECT_EQ(failed_run.geomean(), control_run.geomean());
}

TEST(SuiteIsolationTest, RetriesAreCountedAndDeterministicallyFutile)
{
    ExperimentSuite suite("retry");
    suite.add("doomed", doomed_config(), RunKind::Single);

    SuiteOptions options = quiet(2);
    options.retries = 2;
    SuiteResult result = suite.run(options);

    const EntryResult &entry = result.at("doomed");
    EXPECT_TRUE(entry.failed());
    EXPECT_EQ(entry.attempts, 3u);  // 1 try + 2 retries
}

TEST(SuiteIsolationTest, ArmedSuiteIsBitIdenticalAcrossThreadCounts)
{
    auto build = []() {
        ExperimentSuite suite("armed_determinism");
        suite.sweep("pagerank", "pressure_every", {0, 2'000, 500},
                    ScenarioConfig{}
                        .with_victim("pagerank")
                        .with_scale(0.05)
                        .with_measure_ops(8'000)
                        .with_ptemagnet(),
                    RunKind::Single);
        return suite;
    };

    SuiteResult serial = build().run(quiet(1));
    SuiteResult parallel = build().run(quiet(4));

    ASSERT_EQ(serial.entries().size(), 3u);
    ASSERT_EQ(parallel.entries().size(), 3u);
    for (std::size_t i = 0; i < serial.entries().size(); ++i) {
        EXPECT_FALSE(serial.entries()[i].failed());
        expect_identical(serial.entries()[i].single,
                         parallel.entries()[i].single);
    }
    // The armed legs actually exercised the pressure machinery.
    EXPECT_GT(serial.at("pagerank/pressure_every=500")
                  .single.frames_reclaimed,
              0u);
    EXPECT_EQ(serial.at("pagerank/pressure_every=0")
                  .single.pressure_episodes,
              0u);
}

}  // namespace
}  // namespace ptm::sim
