/**
 * @file
 * Tests for the nested (2D) page walker: translation correctness, fault
 * delegation, TLB/PWC/nested-TLB interplay, and the architectural
 * 24-access bound of §2.5.
 */
#include <gtest/gtest.h>

#include <set>

#include "cache/hierarchy.hpp"
#include "host/host_kernel.hpp"
#include "mmu/nested_walker.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::mmu {
namespace {

class WalkerTest : public ::testing::Test {
  protected:
    WalkerTest()
        : host_(4096), vm_(host_.create_vm()), guest_(4096),
          hierarchy_(tiny_hierarchy(), 1)
    {
    }

    static cache::HierarchyConfig
    tiny_hierarchy()
    {
        cache::HierarchyConfig config;
        config.l1 = {"L1D", 1024, 2, cache::ReplacementKind::Lru};
        config.l2 = {"L2", 4096, 4, cache::ReplacementKind::Lru};
        config.llc = {"LLC", 16384, 4, cache::ReplacementKind::Lru};
        return config;
    }

    // FaultHook is a non-owning fn-pointer + context, so the fixture
    // provides static trampolines bound to itself (and, for guest
    // faults, to the process under test).
    static FaultOutcome
    host_fault(void *ctx, std::uint64_t gfn)
    {
        auto *self = static_cast<WalkerTest *>(ctx);
        return self->host_.handle_fault(self->vm_, gfn);
    }

    static FaultOutcome
    guest_fault(void *ctx, std::uint64_t gvpn)
    {
        auto *self = static_cast<WalkerTest *>(ctx);
        return self->guest_.handle_fault(*self->fault_proc_, gvpn);
    }

    NestedWalker
    make_walker(tlb::TlbConfig config = {})
    {
        return NestedWalker(
            0, config, &hierarchy_,
            HostContext{
                .page_table = &vm_.page_table(),
                .fault_handler = FaultHook(&WalkerTest::host_fault, this),
            });
    }

    GuestContext
    guest_context(vm::Process &proc)
    {
        fault_proc_ = &proc;
        return GuestContext{
            .page_table = &proc.page_table(),
            .fault_handler = FaultHook(&WalkerTest::guest_fault, this),
        };
    }

    host::HostKernel host_;
    host::VmInstance &vm_;
    vm::GuestKernel guest_;
    cache::MemoryHierarchy hierarchy_;
    vm::Process *fault_proc_ = nullptr;
};

TEST_F(WalkerTest, ColdTranslationFaultsAndResolves)
{
    NestedWalker walker = make_walker();
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    TranslationResult result = walker.translate(ctx, gva);
    EXPECT_TRUE(result.faulted);
    EXPECT_FALSE(result.tlb_hit);
    EXPECT_GT(result.cycles, 0u);

    // End-to-end correctness: gva -> gfn (guest PT) -> hfn (host PT).
    auto gpte = proc.page_table().lookup(page_number(gva));
    ASSERT_TRUE(gpte);
    auto hpte = vm_.page_table().lookup(gpte->frame());
    ASSERT_TRUE(hpte);
    EXPECT_EQ(result.hfn, hpte->frame());
}

TEST_F(WalkerTest, SecondTranslationHitsL1Tlb)
{
    NestedWalker walker = make_walker();
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    TranslationResult first = walker.translate(ctx, gva);
    TranslationResult second = walker.translate(ctx, gva);
    EXPECT_TRUE(second.tlb_hit);
    EXPECT_EQ(second.cycles, 0u);
    EXPECT_EQ(second.hfn, first.hfn);
    EXPECT_EQ(walker.stats().tlb_l1_hits.value(), 1u);
    EXPECT_EQ(walker.stats().guest_faults.value(), 1u);
}

TEST_F(WalkerTest, ArchitecturalAccessBound24)
{
    // §2.5: with no PWC and no nested TLB, a fully-warm-PT translation
    // issues exactly 4 gPT accesses and 5 host walks x 4 hPT accesses.
    tlb::TlbConfig config;
    config.pwc_enabled = false;
    config.nested_tlb_enabled = false;
    NestedWalker walker = make_walker(config);
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    walker.translate(ctx, gva);  // faults in all mappings
    walker.flush_all();
    walker.reset_stats();

    TranslationResult result = walker.translate(ctx, gva);
    EXPECT_FALSE(result.faulted);
    EXPECT_EQ(walker.stats().guest_pt_accesses.value(), 4u);
    EXPECT_EQ(walker.stats().host_pt_accesses.value(), 20u);
    EXPECT_EQ(walker.stats().guest_pt_accesses.value() +
                  walker.stats().host_pt_accesses.value(),
              24u);
}

TEST_F(WalkerTest, NestedTlbShortensHostSide)
{
    tlb::TlbConfig config;
    config.pwc_enabled = false;
    NestedWalker walker = make_walker(config);
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    walker.translate(ctx, gva);
    // Drop only the data TLB: nested TLB entries survive.
    walker.tlb().flush();
    walker.reset_stats();
    walker.translate(ctx, gva);
    EXPECT_EQ(walker.stats().guest_pt_accesses.value(), 4u);
    EXPECT_EQ(walker.stats().host_pt_accesses.value(), 0u)
        << "all five gpa->hpa translations served by the nested TLB";
    EXPECT_EQ(walker.stats().nested_tlb_hits.value(), 5u);
}

TEST_F(WalkerTest, PwcSkipsUpperGuestLevels)
{
    tlb::TlbConfig config;
    config.nested_tlb_enabled = true;
    NestedWalker walker = make_walker(config);
    vm::Process &proc = guest_.create_process("app");
    Addr region = proc.vas().mmap(2 * kPageSize);
    GuestContext ctx = guest_context(proc);

    // Pre-install both mappings so the walks below never fault.
    guest_.handle_fault(proc, page_number(region));
    guest_.handle_fault(proc, page_number(region) + 1);

    walker.translate(ctx, region);
    walker.reset_stats();
    // The adjacent page shares all non-leaf nodes: the PWC lets the
    // walker start at the leaf (1 gPT access instead of 4).
    walker.translate(ctx, region + kPageSize);
    EXPECT_EQ(walker.stats().guest_pt_accesses.value(), 1u);
}

TEST_F(WalkerTest, InvalidateForcesRewalk)
{
    NestedWalker walker = make_walker();
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    walker.translate(ctx, gva);
    walker.invalidate(page_number(gva));
    TranslationResult result = walker.translate(ctx, gva);
    EXPECT_FALSE(result.tlb_hit);
    EXPECT_FALSE(result.faulted) << "mapping still installed";
}

TEST_F(WalkerTest, WalkCyclesMatchHierarchyLatencies)
{
    tlb::TlbConfig config;
    config.pwc_enabled = false;
    config.nested_tlb_enabled = false;
    NestedWalker walker = make_walker(config);
    vm::Process &proc = guest_.create_process("app");
    Addr gva = proc.vas().mmap(kPageSize);
    GuestContext ctx = guest_context(proc);

    walker.translate(ctx, gva);
    walker.flush_all();
    hierarchy_.flush_all();
    walker.reset_stats();

    TranslationResult result = walker.translate(ctx, gva);
    EXPECT_EQ(result.cycles, result.walk_cycles) << "no faults";
    EXPECT_EQ(result.walk_cycles, walker.stats().walk_cycles.value());
    EXPECT_EQ(walker.stats().walk_cycles.value(),
              walker.stats().guest_pt_cycles.value() +
                  walker.stats().host_pt_cycles.value());
    // All 24 accesses with cold caches touch at least some memory.
    EXPECT_GT(walker.stats().host_pt_mem_accesses.value(), 0u);
}

TEST_F(WalkerTest, DistinctPagesGetDistinctHostFrames)
{
    NestedWalker walker = make_walker();
    vm::Process &proc = guest_.create_process("app");
    Addr region = proc.vas().mmap(64 * kPageSize);
    GuestContext ctx = guest_context(proc);

    std::set<std::uint64_t> hfns;
    for (unsigned i = 0; i < 64; ++i)
        hfns.insert(walker.translate(ctx, region + i * kPageSize).hfn);
    EXPECT_EQ(hfns.size(), 64u);
}

TEST_F(WalkerTest, StlbHitCostsPenalty)
{
    tlb::TlbConfig config;
    config.l1_entries = 4;
    config.l1_ways = 4;
    config.l2_entries = 64;
    config.l2_ways = 4;
    NestedWalker walker = make_walker(config);
    vm::Process &proc = guest_.create_process("app");
    Addr region = proc.vas().mmap(16 * kPageSize);
    GuestContext ctx = guest_context(proc);

    // Touch 8 pages: the 4-entry L1 TLB cannot hold them all.
    for (unsigned i = 0; i < 8; ++i)
        walker.translate(ctx, region + i * kPageSize);
    TranslationResult result = walker.translate(ctx, region);
    EXPECT_TRUE(result.tlb_hit);
    EXPECT_EQ(result.cycles, NestedWalker::kStlbHitPenalty);
    EXPECT_GT(walker.stats().tlb_l2_hits.value(), 0u);
}

}  // namespace
}  // namespace ptm::mmu
