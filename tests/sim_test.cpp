/**
 * @file
 * Integration tests: whole-system scenarios asserting the paper's
 * qualitative claims end-to-end (small scales to keep ctest fast).
 */
#include <gtest/gtest.h>

#include "core/ptemagnet_provider.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace ptm::sim {
namespace {

PlatformConfig
small_platform()
{
    PlatformConfig platform;
    platform.guest_frames = 32 * 1024;
    platform.host_frames = 48 * 1024;
    return platform;
}

ScenarioConfig
small_scenario(const std::string &victim, bool ptemagnet)
{
    ScenarioConfig config;
    config.victim = victim;
    config.corunners = {{"objdet", 4}};
    config.policy_name = ptemagnet ? "ptemagnet" : "buddy";
    config.scale = 0.125;
    config.measure_ops = 60'000;
    config.corunner_warmup_ops = 20'000;
    config.platform = small_platform();
    return config;
}

TEST(SystemTest, JobRunsAndAccumulatesCycles)
{
    System system(small_platform(), 1);
    workload::WorkloadOptions options;
    options.scale = 0.125;
    Job &job = system.add_job(workload::make_workload("gcc", options));
    system.run_ops(job, 1000);
    EXPECT_GE(job.stats().ops.value(), 1000u);
    EXPECT_GT(job.stats().cycles.value(),
              job.stats().ops.value());
    EXPECT_GT(system.guest().stats().faults_handled.value(), 0u);
    EXPECT_GT(system.host().stats().pages_backed.value(), 0u);
}

TEST(SystemTest, DeterministicGivenSeed)
{
    auto run = []() {
        ScenarioConfig config = small_scenario("pagerank", false);
        config.measure_ops = 20'000;
        return run_scenario(config).victim_cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(SystemTest, SeedChangesOutcome)
{
    ScenarioConfig config = small_scenario("pagerank", false);
    config.measure_ops = 20'000;
    ScenarioResult a = run_scenario(config);
    config.seed = 99;
    ScenarioResult b = run_scenario(config);
    EXPECT_NE(a.victim_cycles, b.victim_cycles);
}

TEST(SystemTest, PtemagnetDrivesFragmentationToOne)
{
    ScenarioResult result = run_scenario(small_scenario("pagerank", true));
    EXPECT_DOUBLE_EQ(result.fragmentation.average_hpte_lines, 1.0);
    EXPECT_DOUBLE_EQ(result.fragmentation.fragmented_fraction, 0.0);
}

TEST(SystemTest, BaselineFragmentsUnderColocation)
{
    ScenarioResult result =
        run_scenario(small_scenario("pagerank", false));
    EXPECT_GT(result.fragmentation.average_hpte_lines, 1.5);
    EXPECT_GT(result.fragmentation.fragmented_fraction, 0.3);
}

TEST(SystemTest, PtemagnetNeverSlower)
{
    // The paper's deployment-critical claim (§6.1), probed on a
    // TLB-heavy and a TLB-light benchmark.
    for (const char *victim : {"pagerank", "gcc"}) {
        PairedResult pair = run_paired(small_scenario(victim, false));
        EXPECT_GE(pair.improvement_percent(), -0.5)
            << victim << " must not regress";
    }
}

TEST(SystemTest, PtemagnetCutsBuddyCallsRoughly8x)
{
    PairedResult pair = run_paired(small_scenario("pagerank", false));
    EXPECT_LT(pair.ptemagnet.buddy_calls * 4, pair.baseline.buddy_calls);
    EXPECT_GT(pair.ptemagnet.part_hits, pair.ptemagnet.buddy_calls);
}

TEST(SystemTest, MetricSetContainsPaperCounters)
{
    ScenarioResult result = run_scenario(small_scenario("xz", false));
    for (const char *name :
         {"execution_time", "cache_misses", "tlb_misses",
          "page_walk_cycles", "host_pt_walk_cycles",
          "guest_pt_mem_accesses", "host_pt_mem_accesses",
          "host_pt_fragmentation"}) {
        EXPECT_TRUE(result.metrics.has(name)) << name;
        EXPECT_GE(result.metrics.get(name), 0.0) << name;
    }
}

TEST(SystemTest, IdenticalAccessStreamsAcrossProviders)
{
    // PTEMagnet must not change *what* the application does — only the
    // frames behind it. TLB miss counts are a fingerprint of the access
    // stream.
    PairedResult pair = run_paired(small_scenario("cc", false));
    EXPECT_EQ(pair.baseline.metrics.get("tlb_misses"),
              pair.ptemagnet.metrics.get("tlb_misses"));
    EXPECT_EQ(pair.baseline.victim_ops, pair.ptemagnet.victim_ops);
}

TEST(SystemTest, GranularitySweepIsMonotonic)
{
    ScenarioConfig config = small_scenario("pagerank", true);
    config.measure_ops = 30'000;
    double prev = 100.0;
    for (unsigned pages : {2u, 4u, 8u}) {
        config.reservation_pages = pages;
        ScenarioResult result = run_scenario(config);
        EXPECT_LE(result.fragmentation.average_hpte_lines, prev + 1e-9)
            << pages;
        prev = result.fragmentation.average_hpte_lines;
    }
    EXPECT_DOUBLE_EQ(prev, 1.0) << "8-page groups pack perfectly";
}

TEST(SystemTest, UnusedReservationFractionIsSmall)
{
    ScenarioResult result = run_scenario(small_scenario("cc", true));
    EXPECT_LT(result.peak_unused_reservation_fraction, 0.02)
        << "paper: <0.2% of footprint; generous bound for small scale";
}

TEST(SystemTest, Table1ProtocolShowsFragmentationSlowdown)
{
    // Baseline-kernel execution with fragmented memory must be slower
    // than standalone at equal work, with TLB misses unchanged.
    ScenarioConfig config;
    config.victim = "pagerank";
    config.scale = 0.125;
    config.measure_ops = 60'000;
    config.stop_corunners_after_init = true;
    config.platform = small_platform();

    ScenarioResult standalone = run_scenario(config);
    config.corunners = {{"stress-ng", 8}};
    ScenarioResult colocated = run_scenario(config);

    EXPECT_GT(colocated.fragmentation.average_hpte_lines,
              standalone.fragmentation.average_hpte_lines * 1.5);
    EXPECT_GT(colocated.victim_cycles, standalone.victim_cycles);
    EXPECT_EQ(colocated.metrics.get("tlb_misses"),
              standalone.metrics.get("tlb_misses"));
}

TEST(SystemTest, ForkedJobSharesThenDiverges)
{
    System system(small_platform(), 2);
    workload::WorkloadOptions options;
    options.scale = 0.05;
    Job &parent =
        system.add_job(workload::make_workload("gcc", options));
    system.run_ops(parent, 2000);  // parent faults in some memory
    std::uint64_t parent_rss = parent.process().rss_pages();
    ASSERT_GT(parent_rss, 0u);

    Job &child =
        system.fork_job(parent, workload::make_workload("gcc", options));
    EXPECT_EQ(child.process().rss_pages(), parent_rss);

    // Both keep running; COW breaks must not corrupt translations.
    system.run_ops(parent, 2000);
    system.run_ops(child, 2000);
    EXPECT_GT(system.guest().stats().write_faults.value(), 0u);
}

TEST(SystemTest, StressWorkersChurnWithoutLeaks)
{
    System system(small_platform(), 2);
    workload::WorkloadOptions options;
    options.scale = 0.125;
    system.add_job(workload::make_workload("stress-ng", options));
    Job &anchor =
        system.add_job(workload::make_workload("pyaes", options));
    system.run_ops(anchor, 30'000);
    system.guest().buddy().check_invariants();
    // The churner's live memory is bounded by its live-chunk window.
    EXPECT_LT(system.guest().buddy().allocated_frames_count(),
              system.guest().buddy().total_frames() / 2);
}

}  // namespace
}  // namespace ptm::sim
