/**
 * @file
 * Golden-metrics regression test: pins the complete simulated metric set
 * of one fixed-seed paired scenario (pagerank victim + stress-ng churn,
 * buddy vs PTEMagnet) and of one direct System run (every WalkerStats
 * counter, the hierarchy's per-kind serving counters, per-level
 * CacheStats) against a checked-in snapshot.
 *
 * Purpose: hot-path refactors (SoA tag stores, devirtualized replacement,
 * walker changes) must keep simulated behaviour bit-identical. Any
 * divergence — a different victim, a perturbed LRU order, a dropped
 * counter — fails here loudly instead of silently shifting paper figures.
 *
 * If a change *intentionally* alters simulated behaviour, regenerate the
 * snapshot and justify the diff in the PR:
 *
 *     PTM_GOLDEN_PRINT=1 ./golden_metrics_test
 *
 * prints the new snapshot blocks in source form.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

namespace ptm::sim {
namespace {

bool
print_mode()
{
    return std::getenv("PTM_GOLDEN_PRINT") != nullptr;
}

ScenarioConfig
golden_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("pagerank")
                                .with_corunner("stress-ng", 2)
                                .with_scale(0.05)
                                .with_measure_ops(15'000)
                                .with_warmup_ops(5'000)
                                .with_seed(7);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

using Snapshot = std::map<std::string, double>;

/// Every simulated (deterministic) scalar of a ScenarioResult. Host-side
/// provenance (host_seconds, ops/sec) is intentionally absent.
Snapshot
snapshot_of(const ScenarioResult &r)
{
    Snapshot s;
    for (const auto &[name, value] : r.metrics.values())
        s["metrics." + name] = value;
    s["victim_cycles"] = static_cast<double>(r.victim_cycles);
    s["victim_ops"] = static_cast<double>(r.victim_ops);
    s["victim_rss_pages"] = static_cast<double>(r.victim_rss_pages);
    s["frag.average_hpte_lines"] = r.fragmentation.average_hpte_lines;
    s["frag.fragmented_fraction"] = r.fragmentation.fragmented_fraction;
    s["frag.max_hpte_lines"] = r.fragmentation.max_hpte_lines;
    s["frag.groups"] = static_cast<double>(r.fragmentation.groups);
    s["peak_unused_reservation_fraction"] =
        r.peak_unused_reservation_fraction;
    s["reservations_created"] = static_cast<double>(r.reservations_created);
    s["part_hits"] = static_cast<double>(r.part_hits);
    s["buddy_calls"] = static_cast<double>(r.buddy_calls);
    s["total_ops"] = static_cast<double>(r.total_ops);
    return s;
}

void
print_snapshot(const char *label, const Snapshot &snapshot)
{
    std::printf("const Snapshot %s = {\n", label);
    for (const auto &[name, value] : snapshot)
        std::printf("    {\"%s\", %.17g},\n", name.c_str(), value);
    std::printf("};\n");
}

void
expect_matches(const Snapshot &actual, const Snapshot &golden,
               const char *label)
{
    for (const auto &[name, value] : golden) {
        auto it = actual.find(name);
        ASSERT_NE(it, actual.end())
            << label << ": metric '" << name << "' disappeared";
        EXPECT_EQ(it->second, value)
            << label << ": '" << name << "' diverged from the snapshot";
    }
    for (const auto &[name, value] : actual) {
        EXPECT_TRUE(golden.count(name))
            << label << ": new metric '" << name
            << "' is missing from the snapshot — regenerate it";
    }
}

// ---- checked-in snapshots (PTM_GOLDEN_PRINT=1 regenerates) -----------

const Snapshot kGoldenBaseline = {
    {"buddy_calls", 38394},
    {"frag.average_hpte_lines", 5.4705882352941178},
    {"frag.fragmented_fraction", 0.99264705882352944},
    {"frag.groups", 136},
    {"frag.max_hpte_lines", 8},
    {"metrics.cache_misses", 1924},
    {"metrics.execution_time", 574345},
    {"metrics.fragmented_group_fraction", 0.99264705882352944},
    {"metrics.guest_pt_mem_accesses", 18},
    {"metrics.host_pt_fragmentation", 5.4705882352941178},
    {"metrics.host_pt_mem_accesses", 22},
    {"metrics.host_pt_walk_cycles", 27868},
    {"metrics.page_walk_cycles", 39206},
    {"metrics.tlb_misses", 1090},
    {"part_hits", 0},
    {"peak_unused_reservation_fraction", 0},
    {"reservations_created", 0},
    {"total_ops", 53220},
    {"victim_cycles", 574345},
    {"victim_ops", 15000},
    {"victim_rss_pages", 1076},
};
const Snapshot kGoldenPtemagnet = {
    {"buddy_calls", 7280},
    {"frag.average_hpte_lines", 1},
    {"frag.fragmented_fraction", 0},
    {"frag.groups", 136},
    {"frag.max_hpte_lines", 1},
    {"metrics.cache_misses", 1897},
    {"metrics.execution_time", 559805},
    {"metrics.fragmented_group_fraction", 0},
    {"metrics.guest_pt_mem_accesses", 9},
    {"metrics.host_pt_fragmentation", 1},
    {"metrics.host_pt_mem_accesses", 14},
    {"metrics.host_pt_walk_cycles", 22974},
    {"metrics.page_walk_cycles", 31798},
    {"metrics.tlb_misses", 1090},
    {"part_hits", 30940},
    {"peak_unused_reservation_fraction", 0.011152416356877323},
    {"reservations_created", 7280},
    {"total_ops", 53220},
    {"victim_cycles", 559805},
    {"victim_ops", 15000},
    {"victim_rss_pages", 1076},
};
const Snapshot kGoldenSystem = {
    {"cache.l1_0.hits", 35034},
    {"cache.l1_0.misses", 7799},
    {"cache.l1_0.resident_lines", 256},
    {"cache.l2_0.hits", 3061},
    {"cache.l2_0.misses", 4738},
    {"cache.l2_0.resident_lines", 1024},
    {"cache.llc.hits", 1065},
    {"cache.llc.misses", 62618},
    {"cache.llc.resident_lines", 4096},
    {"hier.data.accesses", 78220},
    {"hier.data.cycles", 12522392},
    {"hier.data.served_by.L1", 19686},
    {"hier.data.served_by.L2", 2100},
    {"hier.data.served_by.LLC", 7},
    {"hier.data.served_by.memory", 56427},
    {"hier.guest-pt.accesses", 58701},
    {"hier.guest-pt.cycles", 1416202},
    {"hier.guest-pt.served_by.L1", 52893},
    {"hier.guest-pt.served_by.L2", 355},
    {"hier.guest-pt.served_by.LLC", 0},
    {"hier.guest-pt.served_by.memory", 5453},
    {"hier.host-pt.accesses", 127274},
    {"hier.host-pt.cycles", 725274},
    {"hier.host-pt.served_by.L1", 124033},
    {"hier.host-pt.served_by.L2", 1445},
    {"hier.host-pt.served_by.LLC", 1058},
    {"hier.host-pt.served_by.memory", 738},
    {"system.total_steps", 78220},
    {"walker.fault_cycles", 3625720},
    {"walker.guest_faults", 1076},
    {"walker.guest_pt_accesses", 3680},
    {"walker.guest_pt_cycles", 58446},
    {"walker.guest_pt_mem_accesses", 186},
    {"walker.host_faults", 662},
    {"walker.host_pt_accesses", 13077},
    {"walker.host_pt_cycles", 98240},
    {"walker.host_pt_mem_accesses", 167},
    {"walker.host_walks", 2608},
    {"walker.nested_tlb_hits", 3671},
    {"walker.tlb_l1_hits", 20228},
    {"walker.tlb_l2_hits", 3249},
    {"walker.tlb_misses", 2599},
    {"walker.translations", 26076},
    {"walker.walk_cycles", 156686},
};

TEST(GoldenMetrics, PairedScenarioMatchesSnapshot)
{
    PairedResult paired = run_paired(golden_config());
    Snapshot baseline = snapshot_of(paired.baseline);
    Snapshot ptemagnet = snapshot_of(paired.ptemagnet);

    if (print_mode()) {
        print_snapshot("kGoldenBaseline", baseline);
        print_snapshot("kGoldenPtemagnet", ptemagnet);
        return;
    }
    expect_matches(baseline, kGoldenBaseline, "baseline leg");
    expect_matches(ptemagnet, kGoldenPtemagnet, "ptemagnet leg");
}

/// Direct System run pinning the raw counter planes the hot path feeds:
/// all WalkerStats counters of the victim core, the hierarchy's per-kind
/// serving matrix, and per-level CacheStats totals.
TEST(GoldenMetrics, SystemCountersMatchSnapshot)
{
    PlatformConfig platform;
    platform.guest_frames = 16 * 1024;
    platform.host_frames = 24 * 1024;
    platform.seed = 99;

    System system(platform, 3);
    workload::WorkloadOptions options;
    options.scale = 0.05;
    options.seed = 7;
    Job &victim =
        system.add_job(workload::make_workload("pagerank", options));
    workload::WorkloadOptions co = options;
    co.seed = 1008;
    system.add_job(workload::make_workload("stress-ng", co));
    co.seed = 1009;
    system.add_job(workload::make_workload("objdet", co));

    system.run_until_init_done(victim);
    system.run_ops(victim, 25'000);

    Snapshot s;
    const mmu::WalkerStats &w = victim.walker().stats();
    s["walker.translations"] = static_cast<double>(w.translations.value());
    s["walker.tlb_l1_hits"] = static_cast<double>(w.tlb_l1_hits.value());
    s["walker.tlb_l2_hits"] = static_cast<double>(w.tlb_l2_hits.value());
    s["walker.tlb_misses"] = static_cast<double>(w.tlb_misses.value());
    s["walker.walk_cycles"] = static_cast<double>(w.walk_cycles.value());
    s["walker.guest_pt_cycles"] =
        static_cast<double>(w.guest_pt_cycles.value());
    s["walker.host_pt_cycles"] =
        static_cast<double>(w.host_pt_cycles.value());
    s["walker.host_walks"] = static_cast<double>(w.host_walks.value());
    s["walker.nested_tlb_hits"] =
        static_cast<double>(w.nested_tlb_hits.value());
    s["walker.guest_pt_accesses"] =
        static_cast<double>(w.guest_pt_accesses.value());
    s["walker.host_pt_accesses"] =
        static_cast<double>(w.host_pt_accesses.value());
    s["walker.guest_pt_mem_accesses"] =
        static_cast<double>(w.guest_pt_mem_accesses.value());
    s["walker.host_pt_mem_accesses"] =
        static_cast<double>(w.host_pt_mem_accesses.value());
    s["walker.guest_faults"] = static_cast<double>(w.guest_faults.value());
    s["walker.host_faults"] = static_cast<double>(w.host_faults.value());
    s["walker.fault_cycles"] = static_cast<double>(w.fault_cycles.value());

    const cache::HierarchyStats &h = system.hierarchy().stats();
    for (unsigned k = 0; k < cache::kAccessKindCount; ++k) {
        std::string kind = cache::access_kind_name(
            static_cast<cache::AccessKind>(k));
        for (unsigned l = 0; l < cache::kServedByCount; ++l) {
            std::string level =
                cache::served_by_name(static_cast<cache::ServedBy>(l));
            s["hier." + kind + ".served_by." + level] =
                static_cast<double>(h.served[k][l].value());
        }
        s["hier." + kind + ".accesses"] =
            static_cast<double>(h.accesses[k].value());
        s["hier." + kind + ".cycles"] =
            static_cast<double>(h.cycles[k].value());
    }

    auto cache_totals = [&s](const std::string &name,
                             const cache::Cache &cache) {
        s["cache." + name + ".hits"] =
            static_cast<double>(cache.stats().total_hits());
        s["cache." + name + ".misses"] =
            static_cast<double>(cache.stats().total_misses());
        s["cache." + name + ".resident_lines"] =
            static_cast<double>(cache.resident_lines());
    };
    cache_totals("l1_0", system.hierarchy().l1(0));
    cache_totals("l2_0", system.hierarchy().l2(0));
    cache_totals("llc", system.hierarchy().llc());

    s["system.total_steps"] = static_cast<double>(system.total_steps());

    if (print_mode()) {
        print_snapshot("kGoldenSystem", s);
        return;
    }
    expect_matches(s, kGoldenSystem, "system counters");
}

}  // namespace
}  // namespace ptm::sim
