/**
 * @file
 * Unit tests for the cache model: replacement policies, single cache
 * behaviour, and the multi-level hierarchy with latency accounting.
 */
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/replacement.hpp"
#include "common/rng.hpp"

namespace ptm::cache {
namespace {

TEST(Replacement, LruEvictsLeastRecentlyUsed)
{
    auto lru = make_replacement_policy(ReplacementKind::Lru, 4, nullptr);
    lru->touch(0);
    lru->touch(1);
    lru->touch(2);
    lru->touch(3);
    lru->touch(0);  // 1 is now the oldest
    EXPECT_EQ(lru->victim(), 1u);
    lru->touch(1);
    EXPECT_EQ(lru->victim(), 2u);
}

TEST(Replacement, TreePlruAvoidsRecentWay)
{
    auto plru =
        make_replacement_policy(ReplacementKind::TreePlru, 8, nullptr);
    for (unsigned w = 0; w < 8; ++w)
        plru->touch(w);
    // The victim is never the most recently touched way.
    for (unsigned w = 0; w < 8; ++w) {
        plru->touch(w);
        EXPECT_NE(plru->victim(), w);
    }
}

TEST(Replacement, RandomStaysInRange)
{
    Rng rng(1);
    auto random =
        make_replacement_policy(ReplacementKind::Random, 4, &rng);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(random->victim(), 4u);
}

TEST(Cache, HitAfterMiss)
{
    Cache cache({"t", 4096, 4, ReplacementKind::Lru});
    EXPECT_FALSE(cache.access(10, AccessKind::Data));
    EXPECT_TRUE(cache.access(10, AccessKind::Data));
    EXPECT_EQ(cache.stats().misses[0].value(), 1u);
    EXPECT_EQ(cache.stats().hits[0].value(), 1u);
}

TEST(Cache, ConflictEvictionWithLru)
{
    // 4 KiB, 2-way, 64B lines -> 32 sets. Lines k, k+32, k+64 map to the
    // same set; the third install evicts the least recently used.
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    EXPECT_FALSE(cache.access(0, AccessKind::Data));
    EXPECT_FALSE(cache.access(32, AccessKind::Data));
    EXPECT_FALSE(cache.access(64, AccessKind::Data));  // evicts line 0
    EXPECT_FALSE(cache.access(0, AccessKind::Data));
    EXPECT_TRUE(cache.access(64, AccessKind::Data));   // survived
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    cache.access(0, AccessKind::Data);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(99));
    // probe counts nothing
    EXPECT_EQ(cache.stats().total_hits() + cache.stats().total_misses(),
              1u);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    cache.access(5, AccessKind::Data);
    cache.access(6, AccessKind::Data);
    cache.invalidate(5);
    EXPECT_FALSE(cache.probe(5));
    EXPECT_TRUE(cache.probe(6));
    cache.flush();
    EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST(Cache, PerKindStats)
{
    Cache cache({"t", 4096, 4, ReplacementKind::Lru});
    cache.access(1, AccessKind::Data);
    cache.access(2, AccessKind::GuestPt);
    cache.access(3, AccessKind::HostPt);
    cache.access(3, AccessKind::HostPt);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::Data)].value(), 1u);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::GuestPt)].value(),
              1u);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::HostPt)].value(),
              1u);
    EXPECT_EQ(cache.stats().hits[unsigned(AccessKind::HostPt)].value(), 1u);
}

HierarchyConfig
tiny_config()
{
    HierarchyConfig config;
    config.l1 = {"L1D", 1024, 2, ReplacementKind::Lru};
    config.l2 = {"L2", 4096, 4, ReplacementKind::Lru};
    config.llc = {"LLC", 16384, 4, ReplacementKind::Lru};
    return config;
}

TEST(Hierarchy, ColdAccessServedByMemoryThenL1)
{
    MemoryHierarchy hier(tiny_config(), 2);
    AccessResult first = hier.access(0, 0x1000, AccessKind::Data);
    EXPECT_EQ(first.served_by, ServedBy::Memory);
    EXPECT_EQ(first.latency, hier.config().memory_latency);
    AccessResult second = hier.access(0, 0x1000, AccessKind::Data);
    EXPECT_EQ(second.served_by, ServedBy::L1);
    EXPECT_EQ(second.latency, hier.config().l1_latency);
}

TEST(Hierarchy, SharedLlcPrivateL1)
{
    MemoryHierarchy hier(tiny_config(), 2);
    hier.access(0, 0x2000, AccessKind::Data);  // core 0 warms all levels
    // Core 1 misses its private L1/L2 but hits the shared LLC.
    AccessResult r = hier.access(1, 0x2000, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Llc);
}

TEST(Hierarchy, SameLineDifferentWordsHit)
{
    MemoryHierarchy hier(tiny_config(), 1);
    hier.access(0, 0x3000, AccessKind::Data);
    AccessResult r = hier.access(0, 0x3008, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::L1) << "same 64B line must hit";
}

TEST(Hierarchy, ServedByMemoryCounters)
{
    MemoryHierarchy hier(tiny_config(), 1);
    hier.access(0, 0x0, AccessKind::HostPt);
    hier.access(0, 0x40, AccessKind::HostPt);
    hier.access(0, 0x0, AccessKind::HostPt);
    EXPECT_EQ(hier.stats().served_by_memory(AccessKind::HostPt), 2u);
    EXPECT_EQ(hier.stats().accesses[unsigned(AccessKind::HostPt)].value(),
              3u);
}

TEST(Hierarchy, CapacityEvictionFallsBackToMemory)
{
    MemoryHierarchy hier(tiny_config(), 1);
    // Touch far more distinct lines than the LLC holds (16 KiB = 256
    // lines), then re-touch the first line: it must have been evicted.
    for (Addr a = 0; a < 64 * 1024; a += kCacheLineSize)
        hier.access(0, a, AccessKind::Data);
    AccessResult r = hier.access(0, 0, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Memory);
}

TEST(Hierarchy, FlushAllClearsEverything)
{
    MemoryHierarchy hier(tiny_config(), 2);
    hier.access(0, 0x5000, AccessKind::Data);
    hier.flush_all();
    EXPECT_FALSE(hier.probe(0, 0x5000));
    AccessResult r = hier.access(0, 0x5000, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Memory);
}

TEST(Hierarchy, LatencyOrdering)
{
    MemoryHierarchy hier(tiny_config(), 1);
    EXPECT_LT(hier.latency_of(ServedBy::L1), hier.latency_of(ServedBy::L2));
    EXPECT_LT(hier.latency_of(ServedBy::L2),
              hier.latency_of(ServedBy::Llc));
    EXPECT_LT(hier.latency_of(ServedBy::Llc),
              hier.latency_of(ServedBy::Memory));
}

/// Property sweep: for every replacement policy, a working-set that fits
/// in the cache eventually stops missing.
class PolicySweep : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(PolicySweep, FittingWorkingSetConverges)
{
    Rng rng(9);
    Cache cache({"t", 8192, 4, GetParam()}, &rng);  // 128 lines
    // 64-line working set, touched round-robin for many rounds.
    std::uint64_t misses_last_round = 0;
    for (int round = 0; round < 50; ++round) {
        std::uint64_t before = cache.stats().total_misses();
        for (std::uint64_t line = 0; line < 64; ++line)
            cache.access(line, AccessKind::Data);  // 2 lines per set
        misses_last_round = cache.stats().total_misses() - before;
    }
    EXPECT_EQ(misses_last_round, 0u)
        << replacement_kind_name(GetParam())
        << " should retain a working set half its capacity";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(ReplacementKind::Lru,
                                           ReplacementKind::TreePlru,
                                           ReplacementKind::Random));

}  // namespace
}  // namespace ptm::cache
