/**
 * @file
 * Unit tests for the cache model: replacement policies, single cache
 * behaviour, and the multi-level hierarchy with latency accounting.
 */
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/replacement.hpp"
#include "common/rng.hpp"

namespace ptm::cache {
namespace {

TEST(Replacement, LruEvictsLeastRecentlyUsed)
{
    auto lru = make_replacement_policy(ReplacementKind::Lru, 4, nullptr);
    lru->touch(0);
    lru->touch(1);
    lru->touch(2);
    lru->touch(3);
    lru->touch(0);  // 1 is now the oldest
    EXPECT_EQ(lru->victim(), 1u);
    lru->touch(1);
    EXPECT_EQ(lru->victim(), 2u);
}

TEST(Replacement, TreePlruAvoidsRecentWay)
{
    auto plru =
        make_replacement_policy(ReplacementKind::TreePlru, 8, nullptr);
    for (unsigned w = 0; w < 8; ++w)
        plru->touch(w);
    // The victim is never the most recently touched way.
    for (unsigned w = 0; w < 8; ++w) {
        plru->touch(w);
        EXPECT_NE(plru->victim(), w);
    }
}

TEST(Replacement, RandomStaysInRange)
{
    Rng rng(1);
    auto random =
        make_replacement_policy(ReplacementKind::Random, 4, &rng);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(random->victim(), 4u);
}

TEST(Cache, HitAfterMiss)
{
    Cache cache({"t", 4096, 4, ReplacementKind::Lru});
    EXPECT_FALSE(cache.access(10, AccessKind::Data));
    EXPECT_TRUE(cache.access(10, AccessKind::Data));
    EXPECT_EQ(cache.stats().misses[0].value(), 1u);
    EXPECT_EQ(cache.stats().hits[0].value(), 1u);
}

TEST(Cache, ConflictEvictionWithLru)
{
    // 4 KiB, 2-way, 64B lines -> 32 sets. Lines k, k+32, k+64 map to the
    // same set; the third install evicts the least recently used.
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    EXPECT_FALSE(cache.access(0, AccessKind::Data));
    EXPECT_FALSE(cache.access(32, AccessKind::Data));
    EXPECT_FALSE(cache.access(64, AccessKind::Data));  // evicts line 0
    EXPECT_FALSE(cache.access(0, AccessKind::Data));
    EXPECT_TRUE(cache.access(64, AccessKind::Data));   // survived
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    cache.access(0, AccessKind::Data);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(99));
    // probe counts nothing
    EXPECT_EQ(cache.stats().total_hits() + cache.stats().total_misses(),
              1u);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache cache({"t", 4096, 2, ReplacementKind::Lru});
    cache.access(5, AccessKind::Data);
    cache.access(6, AccessKind::Data);
    cache.invalidate(5);
    EXPECT_FALSE(cache.probe(5));
    EXPECT_TRUE(cache.probe(6));
    cache.flush();
    EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST(Cache, PerKindStats)
{
    Cache cache({"t", 4096, 4, ReplacementKind::Lru});
    cache.access(1, AccessKind::Data);
    cache.access(2, AccessKind::GuestPt);
    cache.access(3, AccessKind::HostPt);
    cache.access(3, AccessKind::HostPt);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::Data)].value(), 1u);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::GuestPt)].value(),
              1u);
    EXPECT_EQ(cache.stats().misses[unsigned(AccessKind::HostPt)].value(),
              1u);
    EXPECT_EQ(cache.stats().hits[unsigned(AccessKind::HostPt)].value(), 1u);
}

HierarchyConfig
tiny_config()
{
    HierarchyConfig config;
    config.l1 = {"L1D", 1024, 2, ReplacementKind::Lru};
    config.l2 = {"L2", 4096, 4, ReplacementKind::Lru};
    config.llc = {"LLC", 16384, 4, ReplacementKind::Lru};
    return config;
}

TEST(Hierarchy, ColdAccessServedByMemoryThenL1)
{
    MemoryHierarchy hier(tiny_config(), 2);
    AccessResult first = hier.access(0, 0x1000, AccessKind::Data);
    EXPECT_EQ(first.served_by, ServedBy::Memory);
    EXPECT_EQ(first.latency, hier.config().memory_latency);
    AccessResult second = hier.access(0, 0x1000, AccessKind::Data);
    EXPECT_EQ(second.served_by, ServedBy::L1);
    EXPECT_EQ(second.latency, hier.config().l1_latency);
}

TEST(Hierarchy, SharedLlcPrivateL1)
{
    MemoryHierarchy hier(tiny_config(), 2);
    hier.access(0, 0x2000, AccessKind::Data);  // core 0 warms all levels
    // Core 1 misses its private L1/L2 but hits the shared LLC.
    AccessResult r = hier.access(1, 0x2000, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Llc);
}

TEST(Hierarchy, SameLineDifferentWordsHit)
{
    MemoryHierarchy hier(tiny_config(), 1);
    hier.access(0, 0x3000, AccessKind::Data);
    AccessResult r = hier.access(0, 0x3008, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::L1) << "same 64B line must hit";
}

TEST(Hierarchy, ServedByMemoryCounters)
{
    MemoryHierarchy hier(tiny_config(), 1);
    hier.access(0, 0x0, AccessKind::HostPt);
    hier.access(0, 0x40, AccessKind::HostPt);
    hier.access(0, 0x0, AccessKind::HostPt);
    EXPECT_EQ(hier.stats().served_by_memory(AccessKind::HostPt), 2u);
    EXPECT_EQ(hier.stats().accesses[unsigned(AccessKind::HostPt)].value(),
              3u);
}

TEST(Hierarchy, CapacityEvictionFallsBackToMemory)
{
    MemoryHierarchy hier(tiny_config(), 1);
    // Touch far more distinct lines than the LLC holds (16 KiB = 256
    // lines), then re-touch the first line: it must have been evicted.
    for (Addr a = 0; a < 64 * 1024; a += kCacheLineSize)
        hier.access(0, a, AccessKind::Data);
    AccessResult r = hier.access(0, 0, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Memory);
}

TEST(Hierarchy, FlushAllClearsEverything)
{
    MemoryHierarchy hier(tiny_config(), 2);
    hier.access(0, 0x5000, AccessKind::Data);
    hier.flush_all();
    EXPECT_FALSE(hier.probe(0, 0x5000));
    AccessResult r = hier.access(0, 0x5000, AccessKind::Data);
    EXPECT_EQ(r.served_by, ServedBy::Memory);
}

TEST(Hierarchy, LatencyOrdering)
{
    MemoryHierarchy hier(tiny_config(), 1);
    EXPECT_LT(hier.latency_of(ServedBy::L1), hier.latency_of(ServedBy::L2));
    EXPECT_LT(hier.latency_of(ServedBy::L2),
              hier.latency_of(ServedBy::Llc));
    EXPECT_LT(hier.latency_of(ServedBy::Llc),
              hier.latency_of(ServedBy::Memory));
}

/// Property sweep: for every replacement policy, a working-set that fits
/// in the cache eventually stops missing.
class PolicySweep : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(PolicySweep, FittingWorkingSetConverges)
{
    Rng rng(9);
    Cache cache({"t", 8192, 4, GetParam()}, &rng);  // 128 lines
    // 64-line working set, touched round-robin for many rounds.
    std::uint64_t misses_last_round = 0;
    for (int round = 0; round < 50; ++round) {
        std::uint64_t before = cache.stats().total_misses();
        for (std::uint64_t line = 0; line < 64; ++line)
            cache.access(line, AccessKind::Data);  // 2 lines per set
        misses_last_round = cache.stats().total_misses() - before;
    }
    EXPECT_EQ(misses_last_round, 0u)
        << replacement_kind_name(GetParam())
        << " should retain a working set half its capacity";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(ReplacementKind::Lru,
                                           ReplacementKind::TreePlru,
                                           ReplacementKind::Random));

// ---------------------------------------------------------------------
// Construction-time geometry validation: a malformed shape must die with
// a clear message instead of mis-indexing silently.

TEST(CacheDeathTest, ZeroWaysIsFatal)
{
    EXPECT_EXIT(Cache cache({"bad", 4096, 0, ReplacementKind::Lru}),
                ::testing::ExitedWithCode(1), "zero ways");
}

TEST(CacheDeathTest, NonPowerOfTwoSetCountIsFatal)
{
    // 12 KiB, 4-way, 64B lines -> 48 sets.
    EXPECT_EXIT(Cache cache({"bad", 12288, 4, ReplacementKind::Lru}),
                ::testing::ExitedWithCode(1),
                "not a nonzero power of two");
}

TEST(CacheDeathTest, ZeroSetsIsFatal)
{
    // 64 bytes across 4 ways: less than one full set.
    EXPECT_EXIT(Cache cache({"bad", 64, 4, ReplacementKind::Lru}),
                ::testing::ExitedWithCode(1),
                "not a nonzero power of two");
}

TEST(CacheDeathTest, RandomReplacementWithoutRngIsFatal)
{
    EXPECT_EXIT(Cache cache({"bad", 4096, 4, ReplacementKind::Random}),
                ::testing::ExitedWithCode(1), "needs an Rng");
}

// ---------------------------------------------------------------------
// Reference-model comparison: the flattened Cache against the obvious
// per-set implementation — a tag/valid pair per way plus one virtual
// ReplacementPolicy object per set. Any divergence in hit/miss outcome
// or eviction choice shows up as a mismatch on a randomized trace.

class ReferenceCache {
  public:
    ReferenceCache(const CacheGeometry &geometry, Rng *rng)
        : ways_(geometry.ways), num_sets_(geometry.num_sets())
    {
        while ((std::uint64_t{1} << set_shift_) < num_sets_)
            ++set_shift_;
        sets_.resize(num_sets_);
        for (Set &set : sets_) {
            set.tags.assign(ways_, 0);
            set.valid.assign(ways_, false);
            set.policy = make_replacement_policy(geometry.replacement,
                                                 ways_, rng);
        }
    }

    bool
    access(std::uint64_t line)
    {
        Set &set = sets_[line & (num_sets_ - 1)];
        const std::uint64_t tag = line >> set_shift_;
        for (unsigned w = 0; w < ways_; ++w) {
            if (set.valid[w] && set.tags[w] == tag) {
                set.policy->touch(w);
                return true;
            }
        }
        unsigned way = ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            if (!set.valid[w]) {
                way = w;
                break;
            }
        }
        if (way == ways_)
            way = set.policy->victim();
        set.valid[way] = true;
        set.tags[way] = tag;
        set.policy->touch(way);
        return false;
    }

    void
    invalidate(std::uint64_t line)
    {
        Set &set = sets_[line & (num_sets_ - 1)];
        const std::uint64_t tag = line >> set_shift_;
        for (unsigned w = 0; w < ways_; ++w) {
            if (set.valid[w] && set.tags[w] == tag) {
                set.valid[w] = false;
                return;
            }
        }
    }

  private:
    struct Set {
        std::vector<std::uint64_t> tags;
        std::vector<bool> valid;
        std::unique_ptr<ReplacementPolicy> policy;
    };

    unsigned ways_;
    std::uint64_t num_sets_;
    unsigned set_shift_ = 0;
    std::vector<Set> sets_;
};

class ReferenceSweep : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReferenceSweep, RandomizedTraceMatchesReferenceModel)
{
    // 8 KiB, 4-way -> 32 sets, 128 lines; a 512-line trace keeps every
    // set churning through evictions. A sprinkle of invalidations
    // exercises the stale-tag and refill paths.
    const CacheGeometry geometry{"t", 8192, 4, GetParam()};
    Rng flat_rng(77);
    Rng ref_rng(77);  // same seed: eviction draws must align one-to-one
    Cache flat(geometry, &flat_rng);
    ReferenceCache ref(geometry, &ref_rng);

    Rng trace(1234);
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t line = trace.below(512);
        if (trace.chance(0.02)) {
            flat.invalidate(line);
            ref.invalidate(line);
            continue;
        }
        bool flat_hit = flat.access(line, AccessKind::Data);
        bool ref_hit = ref.access(line);
        ASSERT_EQ(flat_hit, ref_hit)
            << replacement_kind_name(GetParam()) << " diverged at access "
            << i << ", line " << line;
        flat_hit ? ++hits : ++misses;
    }
    EXPECT_EQ(flat.stats().total_hits(), hits);
    EXPECT_EQ(flat.stats().total_misses(), misses);
    EXPECT_GT(hits, 0u);
    EXPECT_GT(misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReferenceSweep,
                         ::testing::Values(ReplacementKind::Lru,
                                           ReplacementKind::TreePlru,
                                           ReplacementKind::Random));

TEST(Cache, TreePlruNonPowerOfTwoWaysMatchesReference)
{
    // 6 ways rounds up to 8 PLRU leaves; the victim clamp must agree
    // with the reference policy's.
    const CacheGeometry geometry{"t", 6144, 6, ReplacementKind::TreePlru};
    Cache flat(geometry);
    ReferenceCache ref(geometry, nullptr);
    Rng trace(5);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t line = trace.below(256);
        ASSERT_EQ(flat.access(line, AccessKind::Data), ref.access(line))
            << "diverged at access " << i << ", line " << line;
    }
}

}  // namespace
}  // namespace ptm::cache
