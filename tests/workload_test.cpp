/**
 * @file
 * Tests for access patterns, the synthetic workload machinery, and the
 * benchmark catalog.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/catalog.hpp"
#include "workload/patterns.hpp"
#include "workload/synthetic.hpp"

namespace ptm::workload {
namespace {

/// Minimal in-memory WorkloadContext for driving workloads standalone.
class FakeContext final : public WorkloadContext {
  public:
    Addr
    mmap(Addr bytes) override
    {
        Addr base = cursor_;
        cursor_ += page_ceil(bytes) + 16 * kPageSize;
        live_.insert(base);
        ++mmaps;
        return base;
    }

    void
    munmap(Addr base) override
    {
        ASSERT_TRUE(live_.erase(base) == 1) << "munmap of unknown region";
        ++munmaps;
    }

    void free_page(Addr) override { ++page_frees; }

    int mmaps = 0;
    int munmaps = 0;
    int page_frees = 0;

  private:
    Addr cursor_ = 1ull << 32;
    std::set<Addr> live_;
};

Region
bind(AccessPattern &pattern, Addr size)
{
    Region region{1ull << 30, size};
    pattern.bind(region);
    return region;
}

TEST(Patterns, SequentialWrapsAndStaysInRegion)
{
    SequentialPattern pattern(kCacheLineSize, 0.0);
    Region region = bind(pattern, 4 * kPageSize);
    Rng rng(1);
    Addr prev = 0;
    for (int i = 0; i < 1000; ++i) {
        MemOp op = pattern.next(rng);
        ASSERT_GE(op.gva, region.base);
        ASSERT_LT(op.gva, region.base + region.size);
        if (i > 0 && op.gva != region.base) {
            EXPECT_EQ(op.gva, prev + kCacheLineSize);
        }
        prev = op.gva;
    }
}

TEST(Patterns, RandomCoversRegion)
{
    RandomPattern pattern(0.0);
    Region region = bind(pattern, 16 * kPageSize);
    Rng rng(2);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 2000; ++i) {
        MemOp op = pattern.next(rng);
        ASSERT_GE(op.gva, region.base);
        ASSERT_LT(op.gva, region.base + region.size);
        pages.insert(page_number(op.gva));
    }
    EXPECT_EQ(pages.size(), 16u);
}

TEST(Patterns, WriteFractionRoughlyHolds)
{
    RandomPattern pattern(0.3);
    (void)bind(pattern, 4 * kPageSize);
    Rng rng(3);
    int writes = 0;
    for (int i = 0; i < 10000; ++i)
        writes += pattern.next(rng).write;
    EXPECT_NEAR(writes / 10000.0, 0.3, 0.03);
}

TEST(Patterns, PageSweepVisitsWindowPagesAscending)
{
    PageSweepPattern pattern(8, 1, 0.0);
    (void)bind(pattern, 64 * kPageSize);
    Rng rng(4);
    // One full window: 8 consecutive ascending pages.
    std::vector<std::uint64_t> pages;
    for (int i = 0; i < 8; ++i)
        pages.push_back(page_number(pattern.next(rng).gva));
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(pages[i], pages[i - 1] + 1);
    EXPECT_EQ(pages[0] % 8, 0u) << "windows are aligned";
}

TEST(Patterns, PageSweepDeterministicWordPerPage)
{
    PageSweepPattern pattern(4, 1, 0.0, /*revisits=*/2);
    bind(pattern, 4 * kPageSize);  // single window -> revisit same pages
    Rng rng(5);
    std::vector<Addr> first_sweep;
    for (int i = 0; i < 4; ++i)
        first_sweep.push_back(pattern.next(rng).gva);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pattern.next(rng).gva, first_sweep[i])
            << "revisit touches identical words";
}

TEST(Patterns, ClusteredStaysInsideCluster)
{
    ClusteredPattern pattern(64 * 1024, 16, 0.0);
    Region region = bind(pattern, 1024 * 1024);
    Rng rng(6);
    for (int round = 0; round < 50; ++round) {
        Addr first = pattern.next(rng).gva;
        Addr cluster_base = (first - region.base) & ~Addr{64 * 1024 - 1};
        for (int i = 1; i < 16; ++i) {
            Addr offset = pattern.next(rng).gva - region.base;
            EXPECT_GE(offset, cluster_base);
            EXPECT_LT(offset, cluster_base + 64 * 1024);
        }
    }
}

TEST(Synthetic, InitTouchesEveryPageOnceInOrder)
{
    SyntheticWorkload w("t", 1);
    w.add_region(4 * kPageSize);
    w.add_region(2 * kPageSize);
    w.add_pattern(0, random_uniform(), 1.0);
    FakeContext ctx;
    w.setup(ctx);
    EXPECT_EQ(ctx.mmaps, 2);

    std::vector<std::uint64_t> pages;
    while (w.in_init_phase()) {
        auto op = w.next(ctx);
        ASSERT_TRUE(op);
        EXPECT_TRUE(op->write);
        pages.push_back(page_number(op->gva));
    }
    EXPECT_EQ(pages.size(), 6u);
    std::set<std::uint64_t> unique(pages.begin(), pages.end());
    EXPECT_EQ(unique.size(), 6u);
    // Ascending within each region.
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(pages[i], pages[i - 1] + 1);
}

TEST(Synthetic, TotalOpsBoundsComputePhase)
{
    SyntheticWorkload w("t", 1);
    w.add_region(kPageSize);
    w.add_pattern(0, sequential(64), 1.0);
    w.set_total_ops(100);
    w.set_line_repeats(1);
    FakeContext ctx;
    w.setup(ctx);
    int ops = 0;
    while (w.next(ctx))
        ++ops;
    EXPECT_EQ(ops, 1 + 100) << "init (1 page) + 100 compute ops";
}

TEST(Synthetic, LineRepeatsStayInLine)
{
    SyntheticWorkload w("t", 1);
    w.add_region(16 * kPageSize);
    w.add_pattern(0, random_uniform(), 1.0);
    w.set_line_repeats(4);
    FakeContext ctx;
    w.setup(ctx);
    while (w.in_init_phase())
        w.next(ctx);

    for (int burst = 0; burst < 100; ++burst) {
        MemOp first = *w.next(ctx);
        for (int i = 1; i < 4; ++i) {
            MemOp repeat = *w.next(ctx);
            EXPECT_EQ(line_number(repeat.gva), line_number(first.gva));
        }
    }
}

TEST(Synthetic, ChurnAllocatesTouchesAndFrees)
{
    SyntheticWorkload w("t", 1);
    w.set_init_touch(false);
    w.set_churn({.chunk_bytes = 4 * kPageSize,
                 .ops_between_churn = 0,
                 .live_chunks = 2});
    FakeContext ctx;
    w.setup(ctx);

    std::map<std::uint64_t, int> touches;
    for (int i = 0; i < 40; ++i) {
        auto op = w.next(ctx);
        ASSERT_TRUE(op);
        EXPECT_TRUE(op->write);
        ++touches[page_number(op->gva)];
    }
    // 40 ops / 4 pages per chunk = 10 chunks allocated; at most 2 live.
    EXPECT_EQ(ctx.mmaps, 10);
    EXPECT_EQ(ctx.munmaps, 8);
    for (const auto &[page, count] : touches)
        EXPECT_EQ(count, 1) << "every chunk page touched exactly once";
}

TEST(Synthetic, DeterministicAcrossInstances)
{
    auto make = []() {
        auto w = std::make_unique<SyntheticWorkload>("t", 77);
        w->add_region(64 * kPageSize);
        w->add_pattern(0, page_sweep(8, 2, 0.3), 0.6);
        w->add_pattern(0, random_uniform(0.1), 0.4);
        return w;
    };
    auto a = make();
    auto b = make();
    FakeContext ctx_a;
    FakeContext ctx_b;
    a->setup(ctx_a);
    b->setup(ctx_b);
    for (int i = 0; i < 5000; ++i) {
        auto op_a = a->next(ctx_a);
        auto op_b = b->next(ctx_b);
        ASSERT_TRUE(op_a && op_b);
        EXPECT_EQ(op_a->gva, op_b->gva);
        EXPECT_EQ(op_a->write, op_b->write);
    }
}

TEST(Catalog, AllNamesBuildAndReportFootprints)
{
    for (const std::string &name : benchmark_names()) {
        auto w = make_workload(name);
        EXPECT_EQ(w->name(), name);
        EXPECT_GT(w->static_footprint(), 0u) << name;
    }
    for (const std::string &name : corunner_names()) {
        auto w = make_workload(name);
        EXPECT_EQ(w->name(), name);
    }
    for (const std::string &name : low_pressure_names()) {
        auto w = make_workload(name);
        EXPECT_EQ(w->name(), name);
        // The defining property of this class: small footprints.
        EXPECT_LT(w->static_footprint(), 8ull * 1024 * 1024) << name;
    }
    auto stress = make_workload("stress-ng");
    EXPECT_EQ(stress->static_footprint(), 0u) << "pure churn";
}

TEST(Catalog, ScaleShrinksFootprint)
{
    WorkloadOptions half;
    half.scale = 0.5;
    auto full = make_workload("pagerank");
    auto scaled = make_workload("pagerank", half);
    EXPECT_NEAR(static_cast<double>(scaled->static_footprint()),
                static_cast<double>(full->static_footprint()) / 2.0,
                static_cast<double>(kPageSize) * 4);
}

TEST(Catalog, SeedChangesStream)
{
    WorkloadOptions a;
    a.seed = 1;
    WorkloadOptions b;
    b.seed = 2;
    auto wa = make_workload("mcf", a);
    auto wb = make_workload("mcf", b);
    FakeContext ctx_a;
    FakeContext ctx_b;
    wa->setup(ctx_a);
    wb->setup(ctx_b);
    while (wa->in_init_phase())
        wa->next(ctx_a);
    while (wb->in_init_phase())
        wb->next(ctx_b);
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        if (wa->next(ctx_a)->gva == wb->next(ctx_b)->gva)
            ++same;
    }
    EXPECT_LT(same, 150);
}

}  // namespace
}  // namespace ptm::workload
