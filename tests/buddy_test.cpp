/**
 * @file
 * Unit and property tests for the binary buddy allocator — the substrate
 * whose allocation-order behaviour drives the paper's fragmentation story.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "mem/buddy_allocator.hpp"
#include "mem/physical_memory.hpp"

namespace ptm::mem {
namespace {

TEST(Buddy, FreshZoneServesAscendingContiguousFrames)
{
    // §2.4 baseline: a single allocator client receives contiguous
    // physical pages, preserving virtual-space locality.
    BuddyAllocator buddy(0, 4096);
    for (std::uint64_t i = 0; i < 2048; ++i) {
        auto frame = buddy.allocate_frame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(*frame, i);
    }
}

TEST(Buddy, LifoReuseOfFreedFrames)
{
    // Linux free lists are LIFO: the most recently freed page is handed
    // out first — the mechanism by which co-runner churn scatters a
    // victim's allocations.
    BuddyAllocator buddy(0, 1024);
    auto a = buddy.allocate_frame();
    auto b = buddy.allocate_frame();
    auto c = buddy.allocate_frame();
    ASSERT_TRUE(a && b && c);
    buddy.free(*a);
    buddy.free(*b);
    // a(0) and b(1) coalesce into an order-1 block. The order-0 list still
    // holds frame 3 (left over from c's split), which is preferred over
    // splitting the coalesced block; the block is split only afterwards.
    ASSERT_TRUE(c);
    EXPECT_EQ(*buddy.allocate_frame(), 3u);
    EXPECT_EQ(*buddy.allocate_frame(), 0u);
    EXPECT_EQ(*buddy.allocate_frame(), 1u);
}

TEST(Buddy, LifoReuseWithoutCoalesce)
{
    BuddyAllocator buddy(0, 1024);
    std::vector<std::uint64_t> frames;
    for (int i = 0; i < 8; ++i)
        frames.push_back(*buddy.allocate_frame());
    // Free two non-buddy frames: 1 then 4. 4 freed last => returned first.
    buddy.free(frames[1]);
    buddy.free(frames[4]);
    EXPECT_EQ(*buddy.allocate_frame(), frames[4]);
    EXPECT_EQ(*buddy.allocate_frame(), frames[1]);
}

TEST(Buddy, HighOrderAllocationIsAligned)
{
    BuddyAllocator buddy(0, 4096);
    buddy.allocate_frame();  // disturb alignment
    auto block = buddy.allocate(3);
    ASSERT_TRUE(block);
    EXPECT_EQ(*block % 8, 0u) << "order-3 block must be 8-frame aligned";
}

TEST(Buddy, FullCoalesceRestoresMaxOrderBlocks)
{
    BuddyAllocator buddy(0, 2048);
    std::vector<std::uint64_t> frames;
    for (int i = 0; i < 2048; ++i)
        frames.push_back(*buddy.allocate_frame());
    EXPECT_FALSE(buddy.allocate_frame().has_value());
    for (std::uint64_t f : frames)
        buddy.free(f);
    EXPECT_EQ(buddy.free_frames_count(), 2048u);
    // Everything must have coalesced back to two 1024-frame blocks.
    EXPECT_EQ(buddy.free_blocks_at_order(BuddyAllocator::kMaxOrder), 2u);
    buddy.check_invariants();
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator buddy(0, 16);
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(buddy.allocate_frame());
    EXPECT_FALSE(buddy.allocate_frame().has_value());
    EXPECT_EQ(buddy.stats().failed_allocs.value(), 1u);
}

TEST(Buddy, CanAllocateTracksFragmentation)
{
    BuddyAllocator buddy(0, 16);
    std::vector<std::uint64_t> frames;
    for (int i = 0; i < 16; ++i)
        frames.push_back(*buddy.allocate_frame());
    // Free every other frame: 8 frames free but no order-1 block.
    for (int i = 0; i < 16; i += 2)
        buddy.free(frames[i]);
    EXPECT_EQ(buddy.free_frames_count(), 8u);
    EXPECT_TRUE(buddy.can_allocate(0));
    EXPECT_FALSE(buddy.can_allocate(1));
    EXPECT_FALSE(buddy.allocate(3).has_value());
}

TEST(Buddy, AllocateSplitFreesIndividually)
{
    BuddyAllocator buddy(0, 64);
    auto base = buddy.allocate_split(3);
    ASSERT_TRUE(base);
    // Every frame of the chunk is individually freeable.
    for (unsigned i = 0; i < 8; ++i)
        buddy.free(*base + i);
    EXPECT_EQ(buddy.free_frames_count(), 64u);
    buddy.check_invariants();
    // And the chunk coalesced back: an order-3 allocation succeeds again.
    EXPECT_TRUE(buddy.allocate(3).has_value());
}

TEST(Buddy, NonPowerOfTwoRange)
{
    BuddyAllocator buddy(0, 1000);
    std::uint64_t total = 0;
    while (auto f = buddy.allocate_frame()) {
        ++total;
        (void)f;
    }
    EXPECT_EQ(total, 1000u);
}

TEST(Buddy, NonZeroBaseFrame)
{
    BuddyAllocator buddy(5000, 512);
    auto f = buddy.allocate_frame();
    ASSERT_TRUE(f);
    EXPECT_GE(*f, 5000u);
    EXPECT_LT(*f, 5512u);
    auto block = buddy.allocate(3);
    ASSERT_TRUE(block);
    EXPECT_EQ((*block - 5000) % 8, 0u)
        << "alignment is relative to the zone base";
    buddy.check_invariants();
}

/// Property test: randomized alloc/free traces keep all invariants and
/// never hand out overlapping blocks.
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyPropertyTest, RandomTraceKeepsInvariants)
{
    Rng rng(GetParam());
    const std::uint64_t frames = 1u << 12;
    BuddyAllocator buddy(0, frames);
    std::vector<std::pair<std::uint64_t, unsigned>> live;  // base, order
    std::vector<bool> owned(frames, false);

    for (int step = 0; step < 4000; ++step) {
        bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            unsigned order = static_cast<unsigned>(rng.below(4));
            auto block = buddy.allocate(order);
            if (!block)
                continue;
            std::uint64_t size = 1ull << order;
            ASSERT_EQ(*block % size, 0u);
            for (std::uint64_t i = 0; i < size; ++i) {
                ASSERT_FALSE(owned[*block + i])
                    << "allocator handed out an owned frame";
                owned[*block + i] = true;
            }
            live.emplace_back(*block, order);
        } else {
            std::size_t idx = rng.below(live.size());
            auto [base, order] = live[idx];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
            buddy.free(base);
            for (std::uint64_t i = 0; i < (1ull << order); ++i)
                owned[base + i] = false;
        }
        if (step % 512 == 0)
            buddy.check_invariants();
    }

    for (auto [base, order] : live) {
        (void)order;
        buddy.free(base);
    }
    EXPECT_EQ(buddy.free_frames_count(), frames);
    buddy.check_invariants();
    EXPECT_EQ(buddy.free_blocks_at_order(BuddyAllocator::kMaxOrder),
              frames >> BuddyAllocator::kMaxOrder);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(PhysicalMemory, UseTracking)
{
    PhysicalMemory mem(0, 128);
    EXPECT_EQ(mem.count_use(FrameUse::Free), 128u);
    mem.set_use(10, 4, FrameUse::Data, 7);
    EXPECT_EQ(mem.count_use(FrameUse::Data), 4u);
    EXPECT_EQ(mem.count_use(FrameUse::Data, 7), 4u);
    EXPECT_EQ(mem.count_use(FrameUse::Data, 8), 0u);
    EXPECT_EQ(mem.info(11).owner, 7);
    mem.set_use(10, 4, FrameUse::Free);
    EXPECT_EQ(mem.count_use(FrameUse::Free), 128u);
    EXPECT_EQ(mem.info(11).owner, -1);
}

TEST(PhysicalMemory, UseNames)
{
    EXPECT_EQ(PhysicalMemory::use_name(FrameUse::Reserved), "reserved");
    EXPECT_EQ(PhysicalMemory::use_name(FrameUse::PageTable), "page-table");
}

}  // namespace
}  // namespace ptm::mem
