/**
 * @file
 * Tests for the guest kernel model: address spaces, fault handling,
 * frame accounting, region freeing, and fork/COW semantics.
 */
#include <gtest/gtest.h>

#include <vector>

#include "vm/guest_kernel.hpp"
#include "vm/virtual_address_space.hpp"

namespace ptm::vm {
namespace {

TEST(Vas, MmapIsEagerAndPageGranular)
{
    VirtualAddressSpace vas;
    Addr a = vas.mmap(10 * kPageSize);
    Addr b = vas.mmap(1);  // rounds up to one page
    EXPECT_NE(a, b);
    EXPECT_TRUE(vas.is_mapped(page_number(a)));
    EXPECT_TRUE(vas.is_mapped(page_number(a) + 9));
    EXPECT_TRUE(vas.is_mapped(page_number(b)));
    EXPECT_EQ(vas.total_pages(), 11u);
}

TEST(Vas, RegionsDoNotOverlap)
{
    VirtualAddressSpace vas;
    std::vector<Vma> vmas;
    for (int i = 0; i < 50; ++i)
        vas.mmap((i % 7 + 1) * kPageSize);
    vmas = vas.vmas();
    for (std::size_t i = 1; i < vmas.size(); ++i)
        EXPECT_LE(vmas[i - 1].end_page, vmas[i].begin_page);
}

TEST(Vas, BrkGrowsHeapContiguously)
{
    VirtualAddressSpace vas;
    Addr first = vas.brk(3 * kPageSize);
    Addr second = vas.brk(2 * kPageSize);
    EXPECT_EQ(second, first + 3 * kPageSize);
    // One contiguous heap VMA of 5 pages.
    const Vma *vma = vas.find(page_number(first));
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->pages(), 5u);
}

TEST(Vas, MunmapRemovesRegion)
{
    VirtualAddressSpace vas;
    Addr a = vas.mmap(4 * kPageSize);
    auto vma = vas.munmap(a);
    ASSERT_TRUE(vma);
    EXPECT_EQ(vma->pages(), 4u);
    EXPECT_FALSE(vas.is_mapped(page_number(a)));
    EXPECT_FALSE(vas.munmap(a).has_value());
}

TEST(Vas, FindOutsideRegions)
{
    VirtualAddressSpace vas;
    vas.mmap(kPageSize);
    EXPECT_EQ(vas.find(0), nullptr);
    EXPECT_EQ(vas.find(~0ull >> 12), nullptr);
}

class GuestKernelTest : public ::testing::Test {
  protected:
    GuestKernelTest() : kernel_(2048) {}

    std::uint64_t
    fault(Process &proc, std::uint64_t gvpn)
    {
        mmu::FaultOutcome outcome = kernel_.handle_fault(proc, gvpn);
        EXPECT_TRUE(outcome.ok);
        EXPECT_GT(outcome.cycles, 0u);
        return outcome.frame;
    }

    GuestKernel kernel_;
};

TEST_F(GuestKernelTest, FaultMapsAndAccounts)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(4 * kPageSize);
    std::uint64_t gvpn = page_number(base);

    std::uint64_t gfn = fault(proc, gvpn);
    auto pte = proc.page_table().lookup(gvpn);
    ASSERT_TRUE(pte);
    EXPECT_EQ(pte->frame(), gfn);
    EXPECT_EQ(proc.rss_pages(), 1u);
    EXPECT_EQ(kernel_.memory().info(gfn).use, mem::FrameUse::Data);
    EXPECT_EQ(kernel_.memory().info(gfn).owner, proc.pid());
    EXPECT_EQ(kernel_.stats().faults_handled.value(), 1u);
}

TEST_F(GuestKernelTest, SequentialFaultsGetContiguousFramesInIsolation)
{
    // §2.4: a lone process keeps physical contiguity. The very first
    // fault also allocates the page-table path, so contiguity starts
    // from the second data frame.
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(16 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    fault(proc, gvpn);
    std::uint64_t second = fault(proc, gvpn + 1);
    for (unsigned i = 2; i < 16; ++i)
        EXPECT_EQ(fault(proc, gvpn + i), second + (i - 1));
}

TEST_F(GuestKernelTest, InterleavedFaultsFragment)
{
    // §2.4: interleaved faults from two processes destroy contiguity —
    // the defect PTEMagnet exists to fix (the default provider is the
    // stock buddy path here).
    Process &a = kernel_.create_process("a");
    Process &b = kernel_.create_process("b");
    std::uint64_t vpn_a = page_number(a.vas().mmap(8 * kPageSize));
    std::uint64_t vpn_b = page_number(b.vas().mmap(8 * kPageSize));

    std::uint64_t prev = fault(a, vpn_a);
    bool contiguous = true;
    for (unsigned i = 1; i < 8; ++i) {
        fault(b, vpn_b + i);  // interloper
        std::uint64_t gfn = fault(a, vpn_a + i);
        contiguous = contiguous && (gfn == prev + 1);
        prev = gfn;
    }
    EXPECT_FALSE(contiguous);
}

TEST_F(GuestKernelTest, FreeRegionReturnsEverything)
{
    Process &proc = kernel_.create_process("app");
    std::uint64_t free_at_start = kernel_.buddy().free_frames_count();
    Addr base = proc.vas().mmap(8 * kPageSize);
    for (unsigned i = 0; i < 8; ++i)
        fault(proc, page_number(base) + i);

    kernel_.free_region(proc, base);
    EXPECT_EQ(proc.rss_pages(), 0u);
    EXPECT_FALSE(proc.vas().is_mapped(page_number(base)));
    // Only page-table node frames remain allocated.
    EXPECT_EQ(free_at_start - kernel_.buddy().free_frames_count(),
              proc.page_table().node_count() - 1);
    kernel_.buddy().check_invariants();
}

TEST_F(GuestKernelTest, SpuriousFaultIsIdempotent)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kPageSize);
    std::uint64_t gfn = fault(proc, page_number(base));
    std::uint64_t used = kernel_.buddy().allocated_frames_count();
    // A second fault on the mapped page returns the same frame and
    // allocates nothing (the real kernel's spurious-fault path).
    EXPECT_EQ(fault(proc, page_number(base)), gfn);
    EXPECT_EQ(kernel_.buddy().allocated_frames_count(), used);
    EXPECT_EQ(kernel_.stats().faults_handled.value(), 1u);
}

TEST_F(GuestKernelTest, ForkSharesPagesCopyOnWrite)
{
    Process &parent = kernel_.create_process("parent");
    Addr base = parent.vas().mmap(4 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t gfn = fault(parent, gvpn);

    Process &child = kernel_.fork(parent);
    EXPECT_EQ(child.parent_pid(), parent.pid());
    auto parent_pte = parent.page_table().lookup(gvpn);
    auto child_pte = child.page_table().lookup(gvpn);
    ASSERT_TRUE(parent_pte && child_pte);
    EXPECT_EQ(parent_pte->frame(), gfn);
    EXPECT_EQ(child_pte->frame(), gfn);
    EXPECT_TRUE(parent_pte->cow());
    EXPECT_TRUE(child_pte->cow());
    EXPECT_FALSE(parent_pte->writable());
    EXPECT_TRUE(kernel_.is_cow(parent, gvpn));
}

TEST_F(GuestKernelTest, CowBreakCopiesForWriter)
{
    Process &parent = kernel_.create_process("parent");
    Addr base = parent.vas().mmap(kPageSize);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t shared_gfn = fault(parent, gvpn);
    Process &child = kernel_.fork(parent);

    Cycles cost = kernel_.handle_write(child, gvpn);
    EXPECT_GT(cost, 0u);
    auto child_pte = child.page_table().lookup(gvpn);
    ASSERT_TRUE(child_pte);
    EXPECT_NE(child_pte->frame(), shared_gfn);
    EXPECT_TRUE(child_pte->writable());
    EXPECT_FALSE(child_pte->cow());
    // Parent still points at the original frame, still COW until its
    // own write.
    EXPECT_EQ(parent.page_table().lookup(gvpn)->frame(), shared_gfn);

    // Parent's write: last owner takes the frame back in place, no copy.
    Cycles parent_cost = kernel_.handle_write(parent, gvpn);
    EXPECT_GT(parent_cost, 0u);
    EXPECT_LT(parent_cost, cost);
    EXPECT_EQ(parent.page_table().lookup(gvpn)->frame(), shared_gfn);
    EXPECT_TRUE(parent.page_table().lookup(gvpn)->writable());
}

TEST_F(GuestKernelTest, WriteToPrivatePageIsFree)
{
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kPageSize);
    fault(proc, page_number(base));
    EXPECT_EQ(kernel_.handle_write(proc, page_number(base)), 0u);
}

TEST_F(GuestKernelTest, SharedFrameFreedOnlyByLastOwner)
{
    Process &parent = kernel_.create_process("parent");
    Addr base = parent.vas().mmap(kPageSize);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t gfn = fault(parent, gvpn);
    Process &child = kernel_.fork(parent);

    std::uint64_t free_before = kernel_.buddy().free_frames_count();
    kernel_.free_page(child, gvpn);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_before)
        << "frame still referenced by the parent";
    // Parent still has a valid mapping to the frame.
    EXPECT_EQ(parent.page_table().lookup(gvpn)->frame(), gfn);
    kernel_.free_page(parent, gvpn);
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_before + 1);
}

TEST_F(GuestKernelTest, InvalidationHookFires)
{
    std::vector<std::pair<std::int32_t, std::uint64_t>> invalidations;
    kernel_.on_translation_invalidated =
        [&invalidations](std::int32_t pid, std::uint64_t gvpn) {
            invalidations.emplace_back(pid, gvpn);
        };
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(kPageSize);
    std::uint64_t gvpn = page_number(base);
    fault(proc, gvpn);
    kernel_.free_page(proc, gvpn);
    ASSERT_EQ(invalidations.size(), 1u);
    EXPECT_EQ(invalidations[0].first, proc.pid());
    EXPECT_EQ(invalidations[0].second, gvpn);
}

TEST_F(GuestKernelTest, OomReportsFailure)
{
    GuestKernel tiny(8);
    Process &proc = tiny.create_process("app");
    Addr base = proc.vas().mmap(32 * kPageSize);
    std::uint64_t gvpn = page_number(base);
    bool failed = false;
    for (unsigned i = 0; i < 32 && !failed; ++i)
        failed = !tiny.handle_fault(proc, gvpn + i).ok;
    EXPECT_TRUE(failed);
    EXPECT_GT(tiny.stats().oom_events.value(), 0u);
}

TEST_F(GuestKernelTest, ExitReclaimsAllMemory)
{
    std::uint64_t free_at_start = kernel_.buddy().free_frames_count();
    Process &proc = kernel_.create_process("app");
    Addr base = proc.vas().mmap(32 * kPageSize);
    for (unsigned i = 0; i < 32; ++i)
        fault(proc, page_number(base) + i);
    std::int32_t pid = proc.pid();
    kernel_.exit_process(proc);
    EXPECT_FALSE(kernel_.has_process(pid));
    EXPECT_EQ(kernel_.buddy().free_frames_count(), free_at_start);
    kernel_.buddy().check_invariants();
}

}  // namespace
}  // namespace ptm::vm
