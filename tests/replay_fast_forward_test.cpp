/**
 * @file
 * Replay fast-forward tests: a .ptt replay whose warmup/init phases run
 * functionally (ScenarioConfig::replay_fast_forward) must produce
 * measured-phase results bit-identical to a full-fidelity replay that
 * flushes microarchitectural state at the same boundary
 * (cold_measurement) — across policies and translation tables — and the
 * config validation must reject unsupported combinations.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "sim/experiment.hpp"

namespace ptm::sim {
namespace {

ScenarioConfig
tiny_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("pagerank")
                                .with_corunner("stress-ng", 1)
                                .with_warmup_ops(2'000)
                                .with_scale(0.05)
                                .with_measure_ops(4'000)
                                .with_seed(29);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

/**
 * Measured-phase identity: every result field derived from the
 * measurement window or from functional (mapping/allocator) state must
 * match exactly. Lifetime-scoped microarchitectural counters (cache and
 * TLB structure stats, hashed-table probes) legitimately differ — the
 * fast-forwarded run never exercises them during init — so the stats
 * comparison covers the Measurement-scoped path families instead of the
 * whole snapshot.
 */
void
expect_measured_identical(const ScenarioResult &a, const ScenarioResult &b,
                          const std::string &label)
{
    EXPECT_EQ(a.victim_cycles, b.victim_cycles) << label;
    EXPECT_EQ(a.victim_ops, b.victim_ops) << label;
    EXPECT_EQ(a.victim_rss_pages, b.victim_rss_pages) << label;
    EXPECT_EQ(a.total_ops, b.total_ops) << label;
    EXPECT_EQ(a.fragmentation.average_hpte_lines,
              b.fragmentation.average_hpte_lines)
        << label;
    EXPECT_EQ(a.fragmentation.fragmented_fraction,
              b.fragmentation.fragmented_fraction)
        << label;
    EXPECT_EQ(a.peak_unused_reservation_fraction,
              b.peak_unused_reservation_fraction)
        << label;
    EXPECT_EQ(a.reservations_created, b.reservations_created) << label;
    EXPECT_EQ(a.buddy_calls, b.buddy_calls) << label;
    EXPECT_EQ(a.provider_held_pages, b.provider_held_pages) << label;
    EXPECT_EQ(a.oom_events, b.oom_events) << label;

    const auto &am = a.metrics.values();
    const auto &bm = b.metrics.values();
    ASSERT_EQ(am.size(), bm.size()) << label;
    for (const auto &[name, value] : am) {
        auto it = bm.find(name);
        ASSERT_NE(it, bm.end()) << label << ": " << name;
        EXPECT_EQ(value, it->second) << label << ": " << name;
    }

    const auto measurement_scoped = [](const std::string &path) {
        return path.find(".job.") != std::string::npos ||
               path.find(".walker.") != std::string::npos ||
               path.find(".wrf.") != std::string::npos;
    };
    ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
    unsigned compared = 0;
    for (std::size_t i = 0; i < a.stats.entries().size(); ++i) {
        const auto &ea = a.stats.entries()[i];
        const auto &eb = b.stats.entries()[i];
        ASSERT_EQ(ea.path, eb.path) << label;
        if (!measurement_scoped(ea.path))
            continue;
        ++compared;
        if (ea.is_histogram) {
            EXPECT_EQ(ea.histogram.count, eb.histogram.count)
                << label << ": " << ea.path;
            EXPECT_EQ(ea.histogram.sum, eb.histogram.sum)
                << label << ": " << ea.path;
        } else {
            EXPECT_EQ(ea.value, eb.value) << label << ": " << ea.path;
        }
    }
    EXPECT_GT(compared, 0u) << label;
}

TEST(ReplayFastForward, MeasuredPhaseIdenticalToColdFullFidelityRun)
{
    const std::string path = "replay_ff_identity.ptt";
    ScenarioConfig config = tiny_config();
    run_scenario(ScenarioConfig(config).with_trace_record(path));

    ScenarioResult cold = run_scenario(
        ScenarioConfig(config).with_trace_replay(path).with_cold_measurement());
    ScenarioResult fast =
        run_scenario(ScenarioConfig(config)
                         .with_trace_replay(path)
                         .with_replay_fast_forward());
    expect_measured_identical(cold, fast, "buddy-leg");

    // The same trace must fast-forward the PTEMagnet leg too: fault
    // order — hence allocation and reservation state — is preserved.
    ScenarioResult magnet_cold = run_scenario(ScenarioConfig(config)
                                                  .with_ptemagnet()
                                                  .with_trace_replay(path)
                                                  .with_cold_measurement());
    ScenarioResult magnet_fast =
        run_scenario(ScenarioConfig(config)
                         .with_ptemagnet()
                         .with_trace_replay(path)
                         .with_replay_fast_forward());
    expect_measured_identical(magnet_cold, magnet_fast, "magnet-leg");
    EXPECT_GT(magnet_fast.reservations_created, 0u);

    std::remove(path.c_str());
}

TEST(ReplayFastForward, HashedTablesFastForwardIdentically)
{
    // The functional slow path drives TranslationTable::walk() directly;
    // the hashed table's probe-sequence walks (and its growth/rehash
    // behaviour under fault-ordered insertion) must replay identically.
    const std::string path = "replay_ff_hashed.ptt";
    ScenarioConfig config = tiny_config().with_table("hashed");
    run_scenario(ScenarioConfig(config).with_trace_record(path));

    ScenarioResult cold = run_scenario(
        ScenarioConfig(config).with_trace_replay(path).with_cold_measurement());
    ScenarioResult fast =
        run_scenario(ScenarioConfig(config)
                         .with_trace_replay(path)
                         .with_replay_fast_forward());
    expect_measured_identical(cold, fast, "hashed-leg");
    std::remove(path.c_str());
}

TEST(ReplayFastForward, RequiresReplayAndExcludedInit)
{
    ScenarioConfig config = tiny_config().with_replay_fast_forward();
    // No trace to replay: the init phase would have to be simulated.
    EXPECT_THROW(run_scenario(config), SimError);

    const std::string path = "replay_ff_validate.ptt";
    run_scenario(ScenarioConfig(tiny_config()).with_trace_record(path));
    // measure_init contradicts skipping the init phase's timing.
    EXPECT_THROW(run_scenario(ScenarioConfig(tiny_config())
                                  .with_trace_replay(path)
                                  .with_replay_fast_forward()
                                  .with_measure_init()),
                 SimError);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace ptm::sim
