/**
 * @file
 * Multi-VM host tests: frame repossession after a VM kill, survivor
 * isolation, and the overcommit survival ladder (balloon sweeps, backoff,
 * deterministic OOM-kill) through sim::System.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "host/host_kernel.hpp"
#include "mem/buddy_allocator.hpp"
#include "sim/experiment.hpp"
#include "sim/overcommit.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace ptm::sim {
namespace {

TEST(MultiVmHost, KilledVmFramesMergeBackAndSurvivorsKeepMappings)
{
    host::HostKernel host(64 * 1024);
    std::vector<host::VmInstance *> vms;
    for (int i = 0; i < 4; ++i)
        vms.push_back(&host.create_vm());

    // Interleave contiguous 64-gfn runs across the four VMs so each VM's
    // data frames land in chunks separated by the other VMs' chunks —
    // the inter-VM fragmentation pattern a churny host produces.
    for (unsigned round = 0; round < 8; ++round) {
        for (host::VmInstance *vm : vms) {
            for (unsigned i = 0; i < 64; ++i) {
                ASSERT_TRUE(host.handle_fault(*vm, round * 64 + i).ok);
            }
        }
    }

    // Record every survivor mapping before the kill.
    std::map<std::pair<std::int32_t, std::uint64_t>, std::uint64_t> before;
    for (unsigned v = 0; v < 4; ++v) {
        if (v == 1)
            continue;
        for (std::uint64_t gfn = 0; gfn < 8 * 64; ++gfn) {
            auto pte = vms[v]->page_table().lookup(gfn);
            ASSERT_TRUE(pte.has_value());
            before[{vms[v]->id(), gfn}] = pte->frame();
        }
    }

    std::vector<std::size_t> blocks_before;
    for (unsigned o = 0; o <= mem::BuddyAllocator::kMaxOrder; ++o)
        blocks_before.push_back(host.buddy().free_blocks_at_order(o));
    const std::uint64_t free_before = host.buddy().free_frames_count();

    const std::uint64_t repossessed = host.destroy_vm(*vms[1]);
    host.buddy().check_invariants();

    // All of the killed VM's frames came back: 512 data frames plus its
    // page-table nodes.
    EXPECT_GE(repossessed, 8 * 64u);
    EXPECT_EQ(host.buddy().free_frames_count(), free_before + repossessed);
    EXPECT_EQ(host.stats().vms_destroyed.value(), 1u);
    EXPECT_EQ(host.live_vm_count(), 3u);

    // The freed frames merged: each contiguous 64-frame run must contain
    // at least one aligned order>=3 block, so high-order free blocks
    // appear where there were none.
    std::uint64_t delta_frames = 0;
    bool merged_high_order = false;
    for (unsigned o = 0; o <= mem::BuddyAllocator::kMaxOrder; ++o) {
        std::size_t now = host.buddy().free_blocks_at_order(o);
        if (now > blocks_before[o]) {
            delta_frames +=
                static_cast<std::uint64_t>(now - blocks_before[o]) << o;
            if (o >= 3)
                merged_high_order = true;
        }
    }
    EXPECT_GE(delta_frames, repossessed);
    EXPECT_TRUE(merged_high_order);

    // Survivors are untouched: identical frames, still owned.
    for (const auto &[key, frame] : before) {
        const auto &[vm_id, gfn] = key;
        for (host::VmInstance *vm : vms) {
            if (vm->id() != vm_id)
                continue;
            auto pte = vm->page_table().lookup(gfn);
            ASSERT_TRUE(pte.has_value());
            EXPECT_EQ(pte->frame(), frame);
            EXPECT_EQ(host.memory().info(frame).owner, vm_id);
        }
    }

    // The host keeps servicing survivors (and reuses repossessed frames).
    EXPECT_TRUE(host.handle_fault(*vms[0], 100'000).ok);
}

struct OomRunSummary {
    std::uint64_t oom_kills = 0;
    std::uint64_t reclaim_sweeps = 0;
    std::uint64_t balloon_pages = 0;
    std::vector<std::string> statuses;
    std::vector<std::uint64_t> job_cycles;
};

OomRunSummary
run_oom_scenario()
{
    PlatformConfig platform;
    platform.guest_frames = 4096;
    // Far less than four VMs' combined footprint: the survival ladder
    // must engage and kill at least one VM.
    platform.host_frames = 3072;

    System system(platform, 4);
    for (unsigned k = 1; k < 4; ++k)
        system.boot_vm();
    system.set_overcommit(OvercommitPolicy{}
                              .with_watermarks(64, 128)
                              .with_balloon_step(64)
                              .with_backoff(4, 32));
    for (unsigned k = 0; k < 4; ++k) {
        workload::WorkloadOptions options;
        options.scale = 1.0;
        options.seed = 77 + k;
        options.total_ops = 50'000;
        system.add_job(k, workload::make_workload("xalancbmk", options));
    }
    system.run_until([]() { return false; });  // until all jobs finish

    OomRunSummary summary;
    summary.oom_kills = system.overcommit_stats().oom_kills.value();
    summary.reclaim_sweeps =
        system.overcommit_stats().reclaim_sweeps.value();
    summary.balloon_pages =
        system.overcommit_stats().balloon_pages.value();
    for (unsigned k = 0; k < system.num_vms(); ++k)
        summary.statuses.push_back(system.vm_slot(k).status);
    for (const auto &job : system.jobs())
        summary.job_cycles.push_back(job->stats().cycles.value());
    return summary;
}

TEST(MultiVmSystem, OvercommitSurvivesViaDeterministicOomKill)
{
    OomRunSummary run = run_oom_scenario();

    // The run completed (no SimError escaped) and the ladder engaged.
    EXPECT_GE(run.oom_kills, 1u);
    EXPECT_GE(run.reclaim_sweeps, 1u);
    EXPECT_EQ(run.statuses.size(), 4u);
    // VM 0 is protected by default; some other VM was the victim.
    EXPECT_EQ(run.statuses[0], "alive");
    unsigned killed = 0;
    for (unsigned k = 1; k < 4; ++k)
        killed += run.statuses[k] == "oom_killed" ? 1 : 0;
    EXPECT_EQ(killed, run.oom_kills);

    // Bit-identical on repeat: same kills, same victims, same cycles.
    OomRunSummary again = run_oom_scenario();
    EXPECT_EQ(again.oom_kills, run.oom_kills);
    EXPECT_EQ(again.statuses, run.statuses);
    EXPECT_EQ(again.job_cycles, run.job_cycles);
    EXPECT_EQ(again.balloon_pages, run.balloon_pages);
}

TEST(MultiVmSystem, KillVmReturnsCoresForChurnReuse)
{
    PlatformConfig platform;
    platform.guest_frames = 4096;
    platform.host_frames = 32 * 1024;

    System system(platform, 2);
    unsigned second = system.boot_vm();
    workload::WorkloadOptions options;
    options.scale = 0.05;
    options.total_ops = 2'000;
    system.add_job(0, workload::make_workload("stress-ng", options));
    system.add_job(second,
                   workload::make_workload("stress-ng", options));
    EXPECT_FALSE(system.has_free_core());

    system.kill_vm(second, "churn_killed", "test kill");
    EXPECT_FALSE(system.vm_alive(second));
    EXPECT_EQ(system.vm_slot(second).status, "churn_killed");
    EXPECT_GT(system.vm_slot(second).frames_repossessed, 0u);
    EXPECT_TRUE(system.has_free_core());

    // A freshly booted VM reuses the released core and runs to the end.
    unsigned third = system.boot_vm();
    Job &job = system.add_job(
        third, workload::make_workload("stress-ng", options));
    system.run_until([]() { return false; });
    EXPECT_TRUE(job.finished());
    EXPECT_GT(job.stats().ops.value(), 0u);
    // The reused core keeps registry paths unique: the new job's stats
    // live under the new VM's namespace.
    EXPECT_EQ(job.stat_prefix().rfind("vm2.core", 0), 0u);
}

TEST(MultiVmScenario, ChurnStormRunsDeterministically)
{
    ScenarioConfig config;
    config.victim = "stress-ng";
    config.scale = 0.3;
    config.measure_ops = 30'000;
    config.corunner_warmup_ops = 0;
    config.platform.guest_frames = 4096;
    config.platform.host_frames = 24 * 1024;
    config.overcommit = OvercommitPolicy{}
                            .with_watermarks(128, 256)
                            .with_balloon_step(64)
                            .with_backoff(4, 64);
    config.churn = ChurnPlan::storm(/*seed=*/9, /*begin_step=*/500,
                                    /*end_step=*/20'000, /*boots=*/6,
                                    /*kills=*/3, /*forks=*/2)
                       .with_scale(0.1)
                       .with_guest_frames(2048);

    ScenarioResult a = run_scenario(config);
    ScenarioResult b = run_scenario(config);

    EXPECT_GT(a.churn_boots, 0u);
    EXPECT_EQ(a.vms.size(), static_cast<std::size_t>(1 + a.churn_boots));
    EXPECT_EQ(a.churn_boots, b.churn_boots);
    EXPECT_EQ(a.churn_kills, b.churn_kills);
    EXPECT_EQ(a.churn_forks, b.churn_forks);
    EXPECT_EQ(a.oom_kills, b.oom_kills);
    EXPECT_EQ(a.victim_cycles, b.victim_cycles);
    EXPECT_EQ(a.host_reclaim_sweeps, b.host_reclaim_sweeps);
    ASSERT_EQ(a.vms.size(), b.vms.size());
    for (std::size_t i = 0; i < a.vms.size(); ++i) {
        EXPECT_EQ(a.vms[i].status, b.vms[i].status);
        EXPECT_EQ(a.vms[i].ops, b.vms[i].ops);
        EXPECT_EQ(a.vms[i].walk_cycles, b.vms[i].walk_cycles);
        EXPECT_EQ(a.vms[i].backed_pages, b.vms[i].backed_pages);
    }
    // Churn-killed VMs carry their degradation record.
    if (a.churn_kills > 0) {
        unsigned churn_killed = 0;
        for (const VmRecord &rec : a.vms)
            churn_killed += rec.status == "churn_killed" ? 1 : 0;
        EXPECT_EQ(churn_killed, a.churn_kills);
    }
}

struct WsReclaimOutcome {
    std::vector<std::uint64_t> balloon_pages;  // per VM, guest frames taken
    std::vector<std::uint64_t> ws_estimate;    // per VM, last closed epoch
    std::uint64_t ws_guided_sweeps = 0;
    std::uint64_t reclaim_sweeps = 0;
};

/**
 * Three VMs under an armed dirty ring: VM 0 runs a hot in-place writer
 * (plus a late-starting job to generate armed host faults), VM 1 runs a
 * touch-then-free churner that finishes and goes idle with a large
 * backed-but-free surplus, VM 2 runs another hot writer. When the
 * reclaim daemon arms mid-run, a ws-guided sweep must balloon the idle
 * VM 1 — not the lower-indexed hot VM 0 that the historic index-order
 * sweep would hit first.
 */
WsReclaimOutcome
run_ws_reclaim(bool reclaim_by_ws)
{
    PlatformConfig platform;
    platform.guest_frames = 4096;
    platform.host_frames = 32 * 1024;

    System system(platform, 4);
    for (unsigned k = 1; k < 3; ++k)
        system.boot_vm();
    system.arm_dirty_ring(DirtyRingConfig{}
                              .with_ring_entries(256)
                              .with_epoch_ops(2048)
                              .with_reclaim_by_ws(reclaim_by_ws));

    auto hot_options = [](std::uint64_t seed) {
        workload::WorkloadOptions options;
        options.seed = seed;
        options.params.set("heap_mb", 4.0);
        options.params.set("hot_pages", 256.0);
        return options;
    };
    Job &hot0 = system.add_job(
        0, workload::make_workload("ws_estimate", hot_options(11)));
    system.add_job(
        2, workload::make_workload("ws_estimate", hot_options(13)));

    workload::WorkloadOptions churny;
    churny.seed = 12;
    churny.scale = 1.0;
    churny.total_ops = 25'000;
    Job &idle1 =
        system.add_job(1, workload::make_workload("stress-ng", churny));

    // The fault source: paused through the warm phases, its init sweep
    // later faults fresh pages so the armed daemon actually ticks.
    workload::WorkloadOptions late_options = hot_options(14);
    late_options.params.set("heap_mb", 8.0);
    Job &late = system.add_job(
        0, workload::make_workload("ws_estimate", late_options));
    late.set_paused(true);

    // Phase 1: VM 1 churns through its footprint, then finishes.
    system.run_until([&idle1]() { return idle1.finished(); });
    system.churn_tick();
    // Phase 2: epochs close while VM 1 stays idle — its estimate decays
    // to zero, the hot VMs keep logging their working sets.
    for (int i = 0; i < 3; ++i) {
        system.run_ops(hot0, 3'000);
        system.churn_tick();
    }

    // Phase 3: arm the daemon just above the current free-frame level,
    // then let the late job's init faults drive it below the watermark.
    const std::uint64_t free_now =
        system.host().buddy().free_frames_count();
    system.set_overcommit(OvercommitPolicy{}
                              .with_watermarks(free_now + 8, free_now + 40)
                              .with_balloon_step(128)
                              .with_backoff(1, 4)
                              .with_oom_kill(false));
    late.set_paused(false);
    // A short window: a couple of sweeps, well within the idle VM's
    // backed-but-free surplus, so victim selection (not exhaustion)
    // decides who gets ballooned.
    system.run_ops(late, 64);

    WsReclaimOutcome outcome;
    for (unsigned k = 0; k < system.num_vms(); ++k) {
        outcome.balloon_pages.push_back(
            system.guest(k).stats().balloon_pages_taken.value());
        const obs::DirtyRing *ring = system.dirty_ring(k);
        outcome.ws_estimate.push_back(
            ring != nullptr && ring->has_estimate()
                ? ring->estimate_pages()
                : 0);
    }
    outcome.ws_guided_sweeps =
        system.overcommit_stats().ws_guided_sweeps.value();
    outcome.reclaim_sweeps =
        system.overcommit_stats().reclaim_sweeps.value();
    return outcome;
}

TEST(MultiVmSystem, WsEstimateGuidesReclaimTowardIdleVms)
{
    WsReclaimOutcome guided = run_ws_reclaim(/*reclaim_by_ws=*/true);
    ASSERT_EQ(guided.balloon_pages.size(), 3u);
    EXPECT_GE(guided.reclaim_sweeps, 1u);
    EXPECT_GE(guided.ws_guided_sweeps, 1u);
    EXPECT_EQ(guided.ws_guided_sweeps, guided.reclaim_sweeps);

    // The idle VM went cold (estimate ~0) while the hot VMs kept
    // logging their working sets.
    EXPECT_LT(guided.ws_estimate[1], guided.ws_estimate[0]);
    EXPECT_LT(guided.ws_estimate[1], guided.ws_estimate[2]);

    // Victim selection: every balloon visit went to the idle VM; the
    // hot VMs — including lower-indexed VM 0, which the historic
    // index-order sweep would visit first — were never touched.
    EXPECT_GT(guided.balloon_pages[1], 0u);
    EXPECT_EQ(guided.balloon_pages[0], 0u);
    EXPECT_EQ(guided.balloon_pages[2], 0u);

    // Control: the same scenario with guidance off sweeps in slot
    // order, ballooning hot VM 0 first on every sweep.
    WsReclaimOutcome indexed = run_ws_reclaim(/*reclaim_by_ws=*/false);
    EXPECT_EQ(indexed.ws_guided_sweeps, 0u);
    EXPECT_GE(indexed.reclaim_sweeps, 1u);
    EXPECT_GT(indexed.balloon_pages[0], 0u);
    EXPECT_GE(indexed.balloon_pages[0], indexed.balloon_pages[1]);

    // Deterministic: a guided repeat reproduces every number.
    WsReclaimOutcome again = run_ws_reclaim(/*reclaim_by_ws=*/true);
    EXPECT_EQ(again.balloon_pages, guided.balloon_pages);
    EXPECT_EQ(again.ws_estimate, guided.ws_estimate);
    EXPECT_EQ(again.ws_guided_sweeps, guided.ws_guided_sweeps);
    EXPECT_EQ(again.reclaim_sweeps, guided.reclaim_sweeps);
}

}  // namespace
}  // namespace ptm::sim
