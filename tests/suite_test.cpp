/**
 * @file
 * Tests for the experiment driver layer: the JSON model, the thread
 * pool, and — most importantly — that ExperimentSuite's parallel
 * execution is bit-identical to serial execution (every `System` is
 * self-contained, so scheduling runs across threads must not perturb
 * results).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/suite.hpp"

namespace ptm::sim {
namespace {

// ---- Json ------------------------------------------------------------

TEST(JsonTest, BuildsAndDumpsCompact)
{
    Json doc = Json::object();
    doc.set("name", "fig6");
    doc.set("count", std::uint64_t{42});
    doc.set("ratio", 0.5);
    doc.set("ok", true);
    Json arr = Json::array();
    arr.push_back(1).push_back(2);
    doc.set("values", std::move(arr));

    EXPECT_EQ(doc.dump(),
              "{\"name\":\"fig6\",\"count\":42,\"ratio\":0.5,"
              "\"ok\":true,\"values\":[1,2]}");
}

TEST(JsonTest, ParsesWhatItDumps)
{
    Json doc = Json::object();
    doc.set("text", "line\n\"quoted\"\tand \\ backslash");
    doc.set("negative", -17.25);
    doc.set("big", std::uint64_t{1} << 52);
    doc.set("null_field", nullptr);
    Json nested = Json::object();
    nested.set("inner", Json::array());
    doc.set("nested", std::move(nested));

    Json reparsed = Json::parse(doc.dump(2));
    EXPECT_EQ(reparsed.at("text").as_string(),
              "line\n\"quoted\"\tand \\ backslash");
    EXPECT_DOUBLE_EQ(reparsed.at("negative").as_double(), -17.25);
    EXPECT_EQ(reparsed.at("big").as_u64(), std::uint64_t{1} << 52);
    EXPECT_TRUE(reparsed.at("null_field").is_null());
    EXPECT_TRUE(reparsed.at("nested").at("inner").is_array());
    // Insertion order survives the round trip.
    EXPECT_EQ(reparsed.as_object().front().first, "text");
}

TEST(JsonTest, ParsesHandwrittenDocument)
{
    Json doc = Json::parse(
        "  { \"a\" : [ 1 , 2.5 , true , null , \"x\\u0041\" ] } ");
    const JsonArray &a = doc.at("a").as_array();
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a[0].as_u64(), 1u);
    EXPECT_DOUBLE_EQ(a[1].as_double(), 2.5);
    EXPECT_TRUE(a[2].as_bool());
    EXPECT_TRUE(a[3].is_null());
    EXPECT_EQ(a[4].as_string(), "xA");
}

// ---- ThreadPool -------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i)
        pool.submit([&count]() { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);

    // The pool stays usable after a wait().
    pool.submit([&count]() { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, ThrowingTaskIsCapturedNotTerminal)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([]() { throw std::runtime_error("task exploded"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&count]() { count.fetch_add(1); });

    // Sibling tasks all ran; the first escaped exception surfaces from
    // wait() instead of std::terminate-ing the worker.
    try {
        pool.wait();
        FAIL() << "wait() swallowed the task exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task exploded");
    }
    EXPECT_EQ(count.load(), 20);

    // The error slot is cleared: the pool remains usable afterwards.
    pool.submit([&count]() { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 21);
}

// ---- suite fixtures ---------------------------------------------------

ScenarioConfig
tiny_config(const std::string &victim)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim(victim)
                                .with_corunner("objdet", 2)
                                .with_scale(0.05)
                                .with_measure_ops(15'000)
                                .with_warmup_ops(5'000);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

/// A suite exercising all entry shapes: paired, single, and a sweep.
ExperimentSuite
tiny_suite()
{
    ExperimentSuite suite("suite_test");
    suite.add("pagerank", tiny_config("pagerank"));
    suite.add("gcc_single",
              ScenarioConfig(tiny_config("gcc")).with_ptemagnet(),
              RunKind::Single);
    suite.sweep("pagerank", "reservation_pages", {4, 16},
                ScenarioConfig(tiny_config("pagerank")).with_ptemagnet(),
                RunKind::Single);
    return suite;
}

SuiteOptions
quiet(unsigned threads)
{
    SuiteOptions options;
    options.threads = threads;
    options.write_json = false;
    options.announce = false;
    return options;
}

void
expect_identical(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.metrics.values(), b.metrics.values());
    EXPECT_EQ(a.victim_cycles, b.victim_cycles);
    EXPECT_EQ(a.victim_ops, b.victim_ops);
    EXPECT_EQ(a.victim_rss_pages, b.victim_rss_pages);
    EXPECT_EQ(a.fragmentation.average_hpte_lines,
              b.fragmentation.average_hpte_lines);
    EXPECT_EQ(a.fragmentation.fragmented_fraction,
              b.fragmentation.fragmented_fraction);
    EXPECT_EQ(a.fragmentation.max_hpte_lines,
              b.fragmentation.max_hpte_lines);
    EXPECT_EQ(a.fragmentation.groups, b.fragmentation.groups);
    EXPECT_EQ(a.peak_unused_reservation_fraction,
              b.peak_unused_reservation_fraction);
    EXPECT_EQ(a.reservations_created, b.reservations_created);
    EXPECT_EQ(a.part_hits, b.part_hits);
    EXPECT_EQ(a.buddy_calls, b.buddy_calls);
}

// ---- ExperimentSuite --------------------------------------------------

TEST(SuiteTest, ParallelExecutionMatchesSerialBitForBit)
{
    ExperimentSuite suite = tiny_suite();
    SuiteResult serial = suite.run(quiet(1));
    SuiteResult parallel = suite.run(quiet(4));

    ASSERT_EQ(serial.entries().size(), parallel.entries().size());
    EXPECT_EQ(serial.entries().size(), 4u);
    EXPECT_GE(parallel.threads(), 4u);

    for (std::size_t i = 0; i < serial.entries().size(); ++i) {
        const EntryResult &s = serial.entries()[i];
        const EntryResult &p = parallel.entries()[i];
        EXPECT_EQ(s.entry.name, p.entry.name);
        ASSERT_EQ(s.is_paired(), p.is_paired());
        if (s.is_paired()) {
            expect_identical(s.paired.baseline, p.paired.baseline);
            expect_identical(s.paired.ptemagnet, p.paired.ptemagnet);
        } else {
            expect_identical(s.single, p.single);
        }
    }
}

TEST(SuiteTest, PairedEntryRunsBothPolicies)
{
    ExperimentSuite suite("paired");
    suite.add("pagerank", tiny_config("pagerank"));
    SuiteResult result = suite.run(quiet(2));

    const EntryResult &entry = result.at("pagerank");
    ASSERT_TRUE(entry.is_paired());
    // The baseline leg never creates reservations; the PTEMagnet leg
    // must.
    EXPECT_EQ(entry.paired.baseline.reservations_created, 0u);
    EXPECT_GT(entry.paired.ptemagnet.reservations_created, 0u);
    // And the pair matches what the serial primitive produces.
    PairedResult direct = run_paired(tiny_config("pagerank"));
    expect_identical(entry.paired.baseline, direct.baseline);
    expect_identical(entry.paired.ptemagnet, direct.ptemagnet);
}

TEST(SuiteTest, SweepRegistersNamedVariants)
{
    ExperimentSuite suite = tiny_suite();
    EXPECT_EQ(suite.size(), 4u);
    SuiteResult result = suite.run(quiet(4));

    ASSERT_TRUE(result.has("pagerank/reservation_pages=4"));
    ASSERT_TRUE(result.has("pagerank/reservation_pages=16"));
    const EntryResult &wide =
        result.at("pagerank/reservation_pages=16");
    EXPECT_EQ(wide.entry.sweep_param, "reservation_pages");
    EXPECT_EQ(wide.entry.config.reservation_pages, 16u);
    // Wider groups -> at least as few reservations created.
    const EntryResult &narrow =
        result.at("pagerank/reservation_pages=4");
    EXPECT_LE(wide.single.reservations_created,
              narrow.single.reservations_created);
}

TEST(SuiteTest, GeomeanCoversOnlyPairedEntries)
{
    ExperimentSuite suite = tiny_suite();
    SuiteResult result = suite.run(quiet(4));
    EXPECT_EQ(result.improvements().size(), 1u);  // one paired entry
    EXPECT_DOUBLE_EQ(result.geomean(),
                     geomean_improvement(result.improvements()));
}

TEST(SuiteTest, ScenarioResultJsonRoundTripsTheMetricSet)
{
    ScenarioResult run =
        run_scenario(ScenarioConfig(tiny_config("pagerank"))
                         .with_ptemagnet()
                         .with_measure_ops(5'000));

    ScenarioResult reread =
        scenario_result_from_json(Json::parse(to_json(run).dump(2)));
    expect_identical(run, reread);
    // Sanity: the metric set actually had content.
    EXPECT_TRUE(run.metrics.has("execution_time"));
    EXPECT_TRUE(run.metrics.has("host_pt_fragmentation"));
}

TEST(SuiteTest, WritesWellFormedBenchJson)
{
    ExperimentSuite suite("suite_json_test");
    suite.add("pagerank",
              ScenarioConfig(tiny_config("pagerank"))
                  .with_measure_ops(5'000));

    SuiteOptions options = quiet(2);
    options.write_json = true;
    options.json_dir = ::testing::TempDir();
    SuiteResult result = suite.run(options);

    std::string path =
        options.json_dir + "/BENCH_suite_json_test.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream text;
    text << in.rdbuf();

    Json doc = Json::parse(text.str());
    EXPECT_EQ(doc.at("suite").as_string(), "suite_json_test");
    EXPECT_EQ(doc.at("threads").as_u64(), 2u);
    const JsonArray &entries = doc.at("entries").as_array();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].at("kind").as_string(), "paired");
    EXPECT_EQ(entries[0].at("config").at("victim").as_string(),
              "pagerank");
    ScenarioResult ptm_leg =
        scenario_result_from_json(entries[0].at("ptemagnet"));
    expect_identical(ptm_leg, result.at("pagerank").paired.ptemagnet);
    EXPECT_DOUBLE_EQ(
        doc.at("summary").at("geomean_improvement_percent").as_double(),
        result.geomean());
    std::remove(path.c_str());
}

TEST(SuiteTest, FluentConfigBuildsDeclaratively)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("xz")
                                .with_corunner_preset("combo")
                                .with_ptemagnet(16)
                                .with_scale(0.25)
                                .with_measure_ops(1234)
                                .with_seed(7)
                                .with_warmup_ops(99)
                                .with_stop_corunners_after_init()
                                .with_measure_init();
    EXPECT_EQ(config.victim, "xz");
    EXPECT_EQ(config.corunners.size(),
              workload::corunner_preset("combo").size());
    EXPECT_EQ(config.resolved_policy(), "ptemagnet");
    EXPECT_EQ(config.resolved_policy_params().get_u64("group_pages"), 16u);
    EXPECT_EQ(config.reservation_pages, 16u);
    EXPECT_DOUBLE_EQ(config.scale, 0.25);
    EXPECT_EQ(config.measure_ops, 1234u);
    EXPECT_EQ(config.seed, 7u);
    EXPECT_EQ(config.corunner_warmup_ops, 99u);
    EXPECT_TRUE(config.stop_corunners_after_init);
    EXPECT_TRUE(config.measure_init);
}

TEST(SuiteTest, CorunnerPresetsMatchThePaperCombos)
{
    const auto &presets = workload::corunner_presets();
    ASSERT_TRUE(presets.count("objdet8"));
    ASSERT_TRUE(presets.count("combo"));
    ASSERT_TRUE(presets.count("stressng12"));
    ASSERT_TRUE(presets.count("none"));

    const auto &objdet8 = workload::corunner_preset("objdet8");
    ASSERT_EQ(objdet8.size(), 1u);
    EXPECT_EQ(objdet8[0].name, "objdet");
    EXPECT_EQ(objdet8[0].workers, 8u);

    // The Figure 7 combination covers every Table 3 co-runner.
    const auto &combo = workload::corunner_preset("combo");
    EXPECT_EQ(combo.size(), workload::corunner_names().size());
    unsigned workers = 0;
    for (const auto &spec : combo)
        workers += spec.workers;
    EXPECT_EQ(workers, 8u);

    EXPECT_TRUE(workload::corunner_preset("none").empty());
}

}  // namespace
}  // namespace ptm::sim
