/**
 * @file
 * Tests for the host kernel / hypervisor model.
 */
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "host/host_kernel.hpp"

namespace ptm::host {
namespace {

TEST(HostKernel, LazyBackingOnFault)
{
    HostKernel host(1024);
    VmInstance &vm = host.create_vm();
    EXPECT_EQ(vm.backed_pages(), 0u);

    mmu::FaultOutcome outcome = host.handle_fault(vm, 42);
    ASSERT_TRUE(outcome.ok);
    EXPECT_GT(outcome.cycles, 0u);
    auto pte = vm.page_table().lookup(42);
    ASSERT_TRUE(pte);
    EXPECT_EQ(pte->frame(), outcome.frame);
    EXPECT_EQ(vm.backed_pages(), 1u);
    EXPECT_EQ(host.stats().pages_backed.value(), 1u);
}

TEST(HostKernel, GuestFrameIsHostVirtualPageNumber)
{
    // The §3.1 identity: the host PT is indexed directly by the guest
    // frame number, so adjacent guest frames share a host PTE cache line.
    HostKernel host(1024);
    VmInstance &vm = host.create_vm();
    host.handle_fault(vm, 8);
    host.handle_fault(vm, 9);
    Addr line_a = *vm.page_table().leaf_entry_paddr(8) / kCacheLineSize;
    Addr line_b = *vm.page_table().leaf_entry_paddr(9) / kCacheLineSize;
    EXPECT_EQ(line_a, line_b);
    // ...while distant guest frames do not.
    host.handle_fault(vm, 9000);
    Addr line_c = *vm.page_table().leaf_entry_paddr(9000) / kCacheLineSize;
    EXPECT_NE(line_a, line_c);
}

TEST(HostKernel, FrameAccounting)
{
    HostKernel host(256);
    VmInstance &vm = host.create_vm();
    std::uint64_t before = host.buddy().free_frames_count();
    host.handle_fault(vm, 0);
    // One data frame plus up to 3 new page-table nodes (root exists).
    std::uint64_t used = before - host.buddy().free_frames_count();
    EXPECT_EQ(used, 4u);
    EXPECT_EQ(host.memory().count_use(mem::FrameUse::Data, vm.id()), 1u);
    EXPECT_GE(host.memory().count_use(mem::FrameUse::PageTable, vm.id()),
              3u);
}

TEST(HostKernel, OutOfMemoryReported)
{
    HostKernel host(8);
    VmInstance &vm = host.create_vm();
    bool failed = false;
    // Distant guest frames need fresh PT paths; 8 frames run out fast.
    for (unsigned i = 0; i < 4 && !failed; ++i) {
        failed = !host.handle_fault(vm, std::uint64_t{i} * 512 * 512).ok;
    }
    EXPECT_TRUE(failed);
}

TEST(HostKernel, VmBootPastCapacityThrowsRecoverableError)
{
    // Each radix VM boot consumes one host frame for the page-table
    // root: a 2-frame host admits two VMs and must refuse the third
    // with a recoverable SimError naming the shortfall — not an assert
    // deep inside the buddy allocator.
    HostKernel host(2);
    host.create_vm();
    host.create_vm();
    try {
        host.create_vm();
        FAIL() << "third create_vm() should have thrown";
    } catch (const SimError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("free frames"), std::string::npos)
            << message;
    }
    // The refusal left the host consistent: both admitted VMs work.
    EXPECT_EQ(host.live_vm_count(), 2u);
    host.buddy().check_invariants();
}

TEST(HostKernel, HashedVmBootPastCapacityThrowsAndLeaksNothing)
{
    // The hashed table allocates its bucket array at boot; a refused
    // boot must release any frames it already took.
    HostKernel host(12);
    host.set_translation_table("hashed",
                               PolicyParams{{"initial_frames", 8.0}});
    host.create_vm();  // takes 8 of the 12 frames
    const std::uint64_t free_before = host.buddy().free_frames_count();
    EXPECT_THROW(host.create_vm(), SimError);
    EXPECT_EQ(host.buddy().free_frames_count(), free_before);
    host.buddy().check_invariants();
}

TEST(HostKernel, MultipleVmsAreIndependent)
{
    HostKernel host(1024);
    VmInstance &vm1 = host.create_vm();
    VmInstance &vm2 = host.create_vm();
    host.handle_fault(vm1, 5);
    EXPECT_TRUE(vm1.page_table().lookup(5).has_value());
    EXPECT_FALSE(vm2.page_table().lookup(5).has_value());
    host.handle_fault(vm2, 5);
    EXPECT_NE(vm1.page_table().lookup(5)->frame(),
              vm2.page_table().lookup(5)->frame());
}

}  // namespace
}  // namespace ptm::host
