/**
 * @file
 * Factory/registry tests: the allocation-policy and translation-table
 * registries, their fail-fast error listings, the fluent ScenarioConfig
 * surface, the full {policy x table} scenario round-trip (through JSON),
 * and the hashed-vs-radix equivalence property test.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mem/buddy_allocator.hpp"
#include "pt/hashed_page_table.hpp"
#include "pt/page_table.hpp"
#include "pt/table_factory.hpp"
#include "sim/suite.hpp"
#include "vm/guest_kernel.hpp"
#include "vm/provider_factory.hpp"

namespace ptm::sim {
namespace {

bool
contains(const std::vector<std::string> &names, const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

// ---- registries ------------------------------------------------------

TEST(ProviderFactory, BuiltinPoliciesAreRegistered)
{
    const std::vector<std::string> names = vm::registered_providers();
    EXPECT_TRUE(contains(names, "buddy"));
    EXPECT_TRUE(contains(names, "ptemagnet"));
    EXPECT_TRUE(contains(names, "thp"));
    EXPECT_TRUE(contains(names, "reserve_thp"));
    EXPECT_GE(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(TableFactory, BuiltinTablesAreRegistered)
{
    const std::vector<std::string> names = pt::registered_tables();
    EXPECT_TRUE(contains(names, "radix"));
    EXPECT_TRUE(contains(names, "hashed"));
    EXPECT_GE(names.size(), 2u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ProviderFactory, UnknownPolicyFailsFastListingNames)
{
    vm::GuestKernel guest(1024);
    try {
        vm::make_provider("no_such_policy", &guest, {});
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no_such_policy"), std::string::npos);
        EXPECT_NE(what.find("buddy"), std::string::npos);
        EXPECT_NE(what.find("ptemagnet"), std::string::npos);
        EXPECT_NE(what.find("reserve_thp"), std::string::npos);
    }
}

TEST(TableFactory, UnknownTableFailsFastListingNames)
{
    try {
        pt::make_table("no_such_table", pt::FrameSource{}, {});
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no_such_table"), std::string::npos);
        EXPECT_NE(what.find("radix"), std::string::npos);
        EXPECT_NE(what.find("hashed"), std::string::npos);
    }
}

TEST(ProviderFactory, EveryRegisteredPolicyConstructs)
{
    for (const std::string &name : vm::registered_providers()) {
        vm::GuestKernel guest(4 * 1024);
        std::unique_ptr<vm::PhysicalPageProvider> provider =
            vm::make_provider(name, &guest, {});
        ASSERT_NE(provider, nullptr) << name;
    }
}

TEST(TableFactory, EveryRegisteredTableConstructsAndMaps)
{
    for (const std::string &name : pt::registered_tables()) {
        mem::BuddyAllocator buddy(0, 4096);
        pt::FrameSource source{
            .allocate = [&buddy]() { return buddy.allocate_frame(); },
            .release = [&buddy](std::uint64_t f) { buddy.free(f); },
        };
        std::unique_ptr<pt::TranslationTable> table =
            pt::make_table(name, source, {});
        ASSERT_NE(table, nullptr) << name;
        EXPECT_EQ(table->name(), name);
        EXPECT_TRUE(table->map(42, {.writable = true, .frame = 7}));
        auto pte = table->lookup(42);
        ASSERT_TRUE(pte.has_value()) << name;
        EXPECT_EQ(pte->frame(), 7u) << name;
    }
}

// ---- fluent config + fail-fast --------------------------------------

TEST(ScenarioConfigFluent, PolicyAndTableByName)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_policy("reserve_thp")
                                .with_policy_param("promotion_threshold", 64)
                                .with_table("hashed")
                                .with_table_param("initial_frames", 8);
    EXPECT_EQ(config.resolved_policy(), "reserve_thp");
    EXPECT_EQ(config.resolved_policy_params().get_u64(
                  "promotion_threshold"),
              64u);
    EXPECT_EQ(config.resolved_table(), "hashed");
    EXPECT_EQ(config.platform.table_params.get_u64("initial_frames"), 8u);
}

TEST(ScenarioConfigFluent, UnknownNamesThrowAtConfigTime)
{
    EXPECT_THROW(ScenarioConfig{}.with_policy("no_such_policy"), SimError);
    EXPECT_THROW(ScenarioConfig{}.with_table("no_such_table"), SimError);
}

TEST(ScenarioConfigFluent, PolicyNameResolution)
{
    ScenarioConfig config;
    // An unset name resolves to the buddy baseline.
    EXPECT_EQ(config.resolved_policy(), "buddy");
    config.policy_name = "ptemagnet";
    EXPECT_EQ(config.resolved_policy(), "ptemagnet");
    // reservation_pages folds into the param bag for ptemagnet runs.
    config.reservation_pages = 16;
    EXPECT_EQ(config.resolved_policy_params().get_u64("group_pages"),
              16u);
}

TEST(SuiteSweep, TextAxisSweepsPoliciesAndTables)
{
    ExperimentSuite suite("zoo_axes");
    suite.sweep("p", "policy",
                std::vector<std::string>{"buddy", "ptemagnet",
                                         "reserve_thp"},
                ScenarioConfig{});
    suite.sweep("t", "table",
                std::vector<std::string>{"radix", "hashed"},
                ScenarioConfig{});
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite.entries()[0].config.resolved_policy(), "buddy");
    EXPECT_EQ(suite.entries()[2].config.resolved_policy(), "reserve_thp");
    EXPECT_EQ(suite.entries()[2].sweep_text, "reserve_thp");
    EXPECT_EQ(suite.entries()[4].config.resolved_table(), "hashed");
    EXPECT_EQ(suite.entries()[4].name, "t/table=hashed");
}

TEST(SuiteSweep, UnknownTextValueFailsFast)
{
    ExperimentSuite suite("zoo_bad");
    EXPECT_THROW(
        suite.sweep("p", "policy",
                    std::vector<std::string>{"no_such_policy"},
                    ScenarioConfig{}),
        SimError);
}

// ---- scenario round-trip over the whole zoo -------------------------

ScenarioConfig
tiny_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("pagerank")
                                .with_corunner("objdet", 1)
                                .with_scale(0.05)
                                .with_measure_ops(5'000)
                                .with_warmup_ops(1'000);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    return config;
}

TEST(PolicyZoo, EveryPolicyTableComboRunsAndRoundTrips)
{
    for (const std::string &policy : vm::registered_providers()) {
        for (const std::string &table : pt::registered_tables()) {
            ScenarioConfig config =
                tiny_config().with_policy(policy).with_table(table);
            ScenarioResult result = run_scenario(config);
            EXPECT_GT(result.victim_ops, 0u) << policy << "+" << table;
            EXPECT_GT(result.victim_cycles, 0u) << policy << "+" << table;

            // Config JSON carries the factory names.
            Json cfg = to_json(config);
            EXPECT_EQ(cfg.at("policy").as_string(), policy);
            EXPECT_EQ(cfg.at("table").as_string(), table);

            // Result JSON round-trips, including the bloat axis.
            ScenarioResult back =
                scenario_result_from_json(to_json(result));
            EXPECT_EQ(back.victim_cycles, result.victim_cycles);
            EXPECT_EQ(back.victim_ops, result.victim_ops);
            EXPECT_EQ(back.provider_held_pages,
                      result.provider_held_pages);
            EXPECT_EQ(back.metrics.get("page_walk_cycles"),
                      result.metrics.get("page_walk_cycles"));
        }
    }
}

TEST(PolicyZoo, ReserveThpHoldsFramesAndPromotes)
{
    ScenarioConfig config = tiny_config()
                                .with_policy("reserve_thp")
                                .with_policy_param("promotion_threshold", 8);
    ScenarioResult result = run_scenario(config);
    EXPECT_GT(result.victim_ops, 0u);
    // The provider reports its parked frames as the bloat axis, and its
    // registry subtree exists.
    ASSERT_TRUE(result.stats.has("vm0.provider.reservations_created"));
    EXPECT_GT(result.stats.value("vm0.provider.reservations_created"),
              0.0);
    ASSERT_TRUE(result.stats.has("vm0.provider.promotions"));
    EXPECT_GT(result.stats.value("vm0.provider.promotions") +
                  static_cast<double>(result.provider_held_pages),
              0.0);
}

// ---- hashed vs radix equivalence property test ----------------------

class EquivalenceHarness {
  public:
    EquivalenceHarness()
        : radix_buddy_(0, 16 * 1024), hashed_buddy_(0, 16 * 1024),
          radix_(pt::FrameSource{
              .allocate =
                  [this]() { return radix_buddy_.allocate_frame(); },
              .release =
                  [this](std::uint64_t f) { radix_buddy_.free(f); },
          }),
          hashed_(pt::FrameSource{
              .allocate =
                  [this]() { return hashed_buddy_.allocate_frame(); },
              .release =
                  [this](std::uint64_t f) { hashed_buddy_.free(f); },
          })
    {
    }

    mem::BuddyAllocator radix_buddy_;
    mem::BuddyAllocator hashed_buddy_;
    pt::PageTable radix_;
    pt::HashedPageTable hashed_;
    std::map<std::uint64_t, std::uint64_t> reference_;
};

TEST(HashedVsRadix, RandomOperationSequencesStayEquivalent)
{
    for (std::uint64_t seed : {101u, 202u, 303u, 404u}) {
        EquivalenceHarness h;
        Rng rng(seed);
        for (int step = 0; step < 5000; ++step) {
            const std::uint64_t vpn = rng.below(1ull << 20);
            const std::uint64_t dice = rng.below(10);
            if (dice < 6) {
                const std::uint64_t frame = rng.below(1ull << 30);
                pt::PteFields fields{.writable = true, .frame = frame};
                EXPECT_TRUE(h.radix_.map(vpn, fields));
                EXPECT_TRUE(h.hashed_.map(vpn, fields));
                h.reference_[vpn] = frame;
            } else if (dice < 8) {
                h.radix_.unmap(vpn);
                h.hashed_.unmap(vpn);
                h.reference_.erase(vpn);
            } else {
                auto expect = h.reference_.find(vpn);
                auto r = h.radix_.lookup(vpn);
                auto g = h.hashed_.lookup(vpn);
                ASSERT_EQ(r.has_value(), expect != h.reference_.end());
                ASSERT_EQ(g.has_value(), expect != h.reference_.end());
                if (expect != h.reference_.end()) {
                    EXPECT_EQ(r->frame(), expect->second);
                    EXPECT_EQ(g->frame(), expect->second);
                }
            }
        }

        // Full sweep: every reference entry visible through both tables
        // and through their walk() paths.
        EXPECT_EQ(h.hashed_.entry_count(), h.reference_.size());
        for (const auto &[vpn, frame] : h.reference_) {
            pt::WalkSteps steps;
            pt::WalkResult rw = h.radix_.walk(vpn, steps);
            ASSERT_TRUE(rw.complete);
            EXPECT_EQ(steps[rw.steps - 1].pte.frame(), frame);
            pt::WalkResult hw = h.hashed_.walk(vpn, steps);
            ASSERT_TRUE(hw.complete);
            EXPECT_EQ(steps[hw.steps - 1].pte.frame(), frame);
            EXPECT_LE(hw.steps, pt::kMaxWalkSteps);
        }

        // Walks of never-mapped pages end incomplete on both tables.
        for (int probe = 0; probe < 64; ++probe) {
            const std::uint64_t vpn =
                (1ull << 21) + rng.below(1ull << 20);
            if (h.reference_.count(vpn) != 0)
                continue;
            pt::WalkSteps steps;
            EXPECT_FALSE(h.radix_.walk(vpn, steps).complete);
            EXPECT_FALSE(h.hashed_.walk(vpn, steps).complete);
        }
    }
}

TEST(HashedVsRadix, TinyScenarioProducesIdenticalTranslations)
{
    // Same workload, same seed, same policy — only the translation
    // structure differs. Walk *latencies* differ by design; the
    // architectural outcome (victim ops, RSS, data accesses) must not.
    ScenarioConfig radix = tiny_config();
    ScenarioConfig hashed = tiny_config().with_table("hashed");
    ScenarioResult r = run_scenario(radix);
    ScenarioResult h = run_scenario(hashed);
    EXPECT_EQ(r.victim_ops, h.victim_ops);
    EXPECT_EQ(r.victim_rss_pages, h.victim_rss_pages);
    EXPECT_EQ(r.metrics.get("cache_misses") >= 0.0, true);
}

}  // namespace
}  // namespace ptm::sim
