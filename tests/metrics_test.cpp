/**
 * @file
 * Tests for the fragmentation metric (against hand-constructed layouts)
 * and the experiment-layer helpers.
 */
#include <gtest/gtest.h>

#include "host/host_kernel.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::sim {
namespace {

/// Fixture with a guest process and a host VM whose mappings the test
/// lays out by hand, so the fragmentation metric has a known oracle.
class FragmentationMetricTest : public ::testing::Test {
  protected:
    FragmentationMetricTest()
        : host_(8192), vm_(host_.create_vm()), guest_(8192),
          proc_(guest_.create_process("app"))
    {
        base_vpn_ = page_number(proc_.vas().mmap(4 * kReservationBytes));
    }

    /// Map gvpn -> gfn in the guest and back gfn in the host.
    void
    map(std::uint64_t offset, std::uint64_t gfn)
    {
        ASSERT_TRUE(proc_.page_table().map(base_vpn_ + offset,
                                           {.writable = true,
                                            .frame = gfn}));
        if (!vm_.page_table().lookup(gfn))
            host_.handle_fault(vm_, gfn);
    }

    host::HostKernel host_;
    host::VmInstance &vm_;
    vm::GuestKernel guest_;
    vm::Process &proc_;
    std::uint64_t base_vpn_ = 0;
};

TEST_F(FragmentationMetricTest, EmptyProcessHasNoGroups)
{
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_EQ(report.groups, 0u);
    EXPECT_EQ(report.average_hpte_lines, 0.0);
}

TEST_F(FragmentationMetricTest, PerfectlyContiguousGroupScoresOne)
{
    for (unsigned i = 0; i < 8; ++i)
        map(i, 1000 + i);  // aligned: 1000 % 8 == 0
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_EQ(report.groups, 1u);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 1.0);
    EXPECT_DOUBLE_EQ(report.fragmented_fraction, 0.0);
}

TEST_F(FragmentationMetricTest, FullyScatteredGroupScoresEight)
{
    // Eight pages, each mapped 64 frames apart: eight distinct hPTE
    // lines — the worst case of §3.2.
    for (unsigned i = 0; i < 8; ++i)
        map(i, 1000 + i * 64);
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_EQ(report.groups, 1u);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 8.0);
    EXPECT_DOUBLE_EQ(report.fragmented_fraction, 1.0);
    EXPECT_DOUBLE_EQ(report.max_hpte_lines, 8.0);
}

TEST_F(FragmentationMetricTest, StrideTwoScoresTwo)
{
    // Pages interleaved with a co-runner at stride 2: frames 0,2,4,..,14
    // span exactly two hPTE lines.
    for (unsigned i = 0; i < 8; ++i)
        map(i, 2000 + i * 2);  // 2000 % 8 == 0
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 2.0);
}

TEST_F(FragmentationMetricTest, AveragesAcrossGroups)
{
    // Group 0 perfect, group 1 scattered over 4 lines (frame stride 4:
    // two pages per 8-frame cache line).
    for (unsigned i = 0; i < 8; ++i)
        map(i, 1000 + i);
    for (unsigned i = 0; i < 8; ++i)
        map(8 + i, 3000 + i * 4);
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_EQ(report.groups, 2u);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 2.5);
    EXPECT_DOUBLE_EQ(report.fragmented_fraction, 0.5);
    EXPECT_DOUBLE_EQ(report.max_hpte_lines, 4.0);
}

TEST_F(FragmentationMetricTest, PartialGroupsCountTheirMappedPagesOnly)
{
    map(0, 5000);
    map(1, 5001);
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_EQ(report.groups, 1u);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 1.0);
}

TEST_F(FragmentationMetricTest, UnalignedFramesCanStillSplitLines)
{
    // Contiguous but misaligned frames 1003..1010 straddle two lines —
    // contiguity alone is not enough; PTEMagnet's chunks are *aligned*.
    for (unsigned i = 0; i < 8; ++i)
        map(i, 1003 + i);
    FragmentationReport report = host_pt_fragmentation(proc_, vm_);
    EXPECT_DOUBLE_EQ(report.average_hpte_lines, 2.0);
}

TEST(ExperimentHelpers, GeomeanOfEqualValues)
{
    EXPECT_NEAR(geomean_improvement({4.0, 4.0, 4.0}), 4.0, 1e-9);
}

TEST(ExperimentHelpers, GeomeanIsBelowArithmeticMean)
{
    double geomean = geomean_improvement({1.0, 9.0});
    EXPECT_LT(geomean, 5.0);
    EXPECT_GT(geomean, 1.0);
}

TEST(ExperimentHelpers, GeomeanOfEmptyIsZero)
{
    EXPECT_EQ(geomean_improvement({}), 0.0);
}

TEST(ExperimentHelpers, ImprovementPercentSign)
{
    PairedResult pair;
    pair.baseline.victim_cycles = 100;
    pair.ptemagnet.victim_cycles = 93;
    EXPECT_NEAR(pair.improvement_percent(), 7.0, 1e-9);
    pair.ptemagnet.victim_cycles = 110;
    EXPECT_NEAR(pair.improvement_percent(), -10.0, 1e-9);
}

}  // namespace
}  // namespace ptm::sim
