/**
 * @file
 * Unit tests for the PTE codec and the 4-level radix page table.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "mem/buddy_allocator.hpp"
#include "pt/page_table.hpp"
#include "pt/pte.hpp"

namespace ptm::pt {
namespace {

TEST(Pte, EncodeDecodeRoundTrip)
{
    PteFields fields{.present = true,
                     .writable = true,
                     .user = true,
                     .accessed = true,
                     .dirty = false,
                     .cow = true,
                     .frame = 0x12345};
    Pte pte = Pte::encode(fields);
    PteFields back = pte.decode();
    EXPECT_EQ(back.present, fields.present);
    EXPECT_EQ(back.writable, fields.writable);
    EXPECT_EQ(back.user, fields.user);
    EXPECT_EQ(back.accessed, fields.accessed);
    EXPECT_EQ(back.dirty, fields.dirty);
    EXPECT_EQ(back.cow, fields.cow);
    EXPECT_EQ(back.frame, fields.frame);
}

TEST(Pte, ArchitecturalBitPositions)
{
    Pte pte = Pte::encode({.present = true, .writable = true, .frame = 1});
    EXPECT_EQ(pte.raw() & 0x1, 0x1u);             // P is bit 0
    EXPECT_EQ(pte.raw() & 0x2, 0x2u);             // W is bit 1
    EXPECT_EQ(pte.raw() & Pte::kFrameMask, 0x1000u);
}

TEST(Pte, EmptyIsNotPresent)
{
    EXPECT_FALSE(Pte{}.present());
}

TEST(PageTable, IndexExtraction)
{
    // vpn = 0b[lll...lll] with 9 bits per level, level 0 topmost.
    std::uint64_t vpn = (5ull << 27) | (17ull << 18) | (301ull << 9) | 511;
    EXPECT_EQ(PageTable::index_at(vpn, 0), 5u);
    EXPECT_EQ(PageTable::index_at(vpn, 1), 17u);
    EXPECT_EQ(PageTable::index_at(vpn, 2), 301u);
    EXPECT_EQ(PageTable::index_at(vpn, 3), 511u);
}

class PageTableTest : public ::testing::Test {
  protected:
    PageTableTest() : buddy_(0, 4096)
    {
        source_ = FrameSource{
            .allocate = [this]() { return buddy_.allocate_frame(); },
            .release = [this](std::uint64_t f) { buddy_.free(f); },
        };
    }

    mem::BuddyAllocator buddy_;
    FrameSource source_;
};

TEST_F(PageTableTest, MapAndLookup)
{
    PageTable pt(source_);
    EXPECT_FALSE(pt.lookup(100).has_value());
    EXPECT_TRUE(pt.map(100, {.frame = 777}));
    auto pte = pt.lookup(100);
    ASSERT_TRUE(pte.has_value());
    EXPECT_TRUE(pte->present());
    EXPECT_EQ(pte->frame(), 777u);
}

TEST_F(PageTableTest, UnmapRemovesTranslation)
{
    PageTable pt(source_);
    pt.map(100, {.frame = 777});
    pt.unmap(100);
    EXPECT_FALSE(pt.lookup(100).has_value());
    EXPECT_EQ(pt.stats().unmappings.value(), 1u);
}

TEST_F(PageTableTest, UpdateChangesLeaf)
{
    PageTable pt(source_);
    pt.map(100, {.writable = true, .frame = 1});
    EXPECT_TRUE(pt.update(100, {.writable = false, .cow = true, .frame = 1}));
    auto pte = pt.lookup(100);
    ASSERT_TRUE(pte);
    EXPECT_FALSE(pte->writable());
    EXPECT_TRUE(pte->cow());
}

TEST_F(PageTableTest, UpdateFailsWithoutPath)
{
    PageTable pt(source_);
    EXPECT_FALSE(pt.update(100, {.frame = 1}));
}

TEST_F(PageTableTest, NodeSharingAcrossNeighbours)
{
    PageTable pt(source_);
    // Root exists; mapping one page creates 3 more nodes.
    EXPECT_EQ(pt.node_count(), 1u);
    pt.map(0, {.frame = 1});
    EXPECT_EQ(pt.node_count(), 4u);
    // A neighbouring page shares the whole path.
    pt.map(1, {.frame = 2});
    EXPECT_EQ(pt.node_count(), 4u);
    // A page in a different leaf node adds exactly one node.
    pt.map(512, {.frame = 3});
    EXPECT_EQ(pt.node_count(), 5u);
    // A page in a very distant region adds a full path (3 nodes).
    pt.map(1ull << 30, {.frame = 4});
    EXPECT_EQ(pt.node_count(), 8u);
}

TEST_F(PageTableTest, WalkVisitsFourLevelsWithCorrectAddresses)
{
    PageTable pt(source_);
    std::uint64_t vpn = (3ull << 27) | (1ull << 18) | (2ull << 9) | 7;
    pt.map(vpn, {.frame = 424242});

    std::array<WalkStep, kPtLevels> steps;
    unsigned n = pt.walk(vpn, steps);
    ASSERT_EQ(n, 4u);
    EXPECT_EQ(steps[0].node_frame, pt.root_frame());
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(steps[i].level, i);
        EXPECT_EQ(steps[i].index, PageTable::index_at(vpn, i));
        EXPECT_EQ(steps[i].entry_paddr,
                  steps[i].node_frame * kPageSize +
                      steps[i].index * kPteSize);
        EXPECT_TRUE(steps[i].pte.present());
    }
    // Chain property: each step's PTE points at the next node.
    for (unsigned i = 0; i + 1 < 4; ++i)
        EXPECT_EQ(steps[i].pte.frame(), steps[i + 1].node_frame);
    EXPECT_EQ(steps[3].pte.frame(), 424242u);
}

TEST_F(PageTableTest, WalkStopsAtNonPresent)
{
    PageTable pt(source_);
    std::array<WalkStep, kPtLevels> steps;
    unsigned n = pt.walk(123456, steps);
    EXPECT_EQ(n, 1u);
    EXPECT_FALSE(steps[0].pte.present());
}

TEST_F(PageTableTest, AdjacentVpnsPackIntoOneLeafCacheLine)
{
    // The structural fact behind the whole paper: PTEs of 8 neighbouring
    // pages share one 64-byte line (Figure 3).
    PageTable pt(source_);
    std::set<std::uint64_t> lines;
    for (std::uint64_t vpn = 64; vpn < 72; ++vpn) {
        pt.map(vpn, {.frame = vpn});
        auto paddr = pt.leaf_entry_paddr(vpn);
        ASSERT_TRUE(paddr);
        lines.insert(line_number(*paddr));
    }
    EXPECT_EQ(lines.size(), 1u);
    // ...and the next group starts a new line.
    pt.map(72, {.frame = 72});
    EXPECT_FALSE(lines.count(line_number(*pt.leaf_entry_paddr(72))));
}

TEST_F(PageTableTest, DestructorReturnsAllNodeFrames)
{
    std::uint64_t free_before = buddy_.free_frames_count();
    {
        PageTable pt(source_);
        for (std::uint64_t vpn = 0; vpn < 10000; vpn += 97)
            pt.map(vpn, {.frame = vpn});
        EXPECT_LT(buddy_.free_frames_count(), free_before);
    }
    EXPECT_EQ(buddy_.free_frames_count(), free_before);
    buddy_.check_invariants();
}

TEST_F(PageTableTest, MapFailsOnNodeOom)
{
    // Tiny frame pool: eventually map() cannot create nodes.
    mem::BuddyAllocator tiny(0, 4);
    FrameSource source{
        .allocate = [&tiny]() { return tiny.allocate_frame(); },
        .release = [&tiny](std::uint64_t f) { tiny.free(f); },
    };
    PageTable pt(source);
    EXPECT_TRUE(pt.map(0, {.frame = 1}));  // uses root + 3 nodes = 4
    // A distant vpn needs 3 new nodes: none available.
    EXPECT_FALSE(pt.map(1ull << 30, {.frame = 2}));
}

TEST_F(PageTableTest, LeafEntryPaddrWithoutMapping)
{
    PageTable pt(source_);
    EXPECT_FALSE(pt.leaf_entry_paddr(55).has_value());
    pt.map(55, {.frame = 1});
    // Neighbours in the same leaf node have a slot address even while
    // unmapped — the slot exists once the node does.
    EXPECT_TRUE(pt.leaf_entry_paddr(56).has_value());
}

/// Property test: random map/lookup/unmap against a reference std::map.
class PageTablePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTablePropertyTest, MatchesReferenceModel)
{
    mem::BuddyAllocator buddy(0, 1u << 16);
    FrameSource source{
        .allocate = [&buddy]() { return buddy.allocate_frame(); },
        .release = [&buddy](std::uint64_t f) { buddy.free(f); },
    };
    PageTable pt(source);
    std::map<std::uint64_t, std::uint64_t> reference;
    Rng rng(GetParam());

    for (int step = 0; step < 5000; ++step) {
        std::uint64_t vpn = rng.below(1ull << 20);
        double action = rng.uniform();
        if (action < 0.6) {
            std::uint64_t frame = rng.below(1ull << 30);
            ASSERT_TRUE(pt.map(vpn, {.frame = frame}));
            reference[vpn] = frame;
        } else if (action < 0.8) {
            pt.unmap(vpn);
            reference.erase(vpn);
        } else {
            auto pte = pt.lookup(vpn);
            auto it = reference.find(vpn);
            if (it == reference.end()) {
                EXPECT_FALSE(pte.has_value());
            } else {
                ASSERT_TRUE(pte.has_value());
                EXPECT_EQ(pte->frame(), it->second);
            }
        }
    }
    // Full sweep at the end.
    for (const auto &[vpn, frame] : reference) {
        auto pte = pt.lookup(vpn);
        ASSERT_TRUE(pte.has_value());
        EXPECT_EQ(pte->frame(), frame);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace ptm::pt
