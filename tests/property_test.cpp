/**
 * @file
 * Cross-module property tests: randomized traces checked against simple
 * reference models (executable specifications).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/part.hpp"
#include "mem/buddy_allocator.hpp"
#include "tlb/assoc_cache.hpp"
#include "vm/virtual_address_space.hpp"

namespace ptm {
namespace {

/// Reference model for a set-associative LRU cache: per-set std::list in
/// recency order.
class ReferenceLru {
  public:
    ReferenceLru(unsigned sets, unsigned ways) : sets_(sets), ways_(ways),
                                                 lists_(sets)
    {
    }

    std::optional<std::uint64_t>
    lookup(std::uint64_t key)
    {
        auto &list = lists_[key % sets_];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (it->first == key) {
                auto entry = *it;
                list.erase(it);
                list.push_front(entry);
                return entry.second;
            }
        }
        return std::nullopt;
    }

    void
    insert(std::uint64_t key, std::uint64_t value)
    {
        auto &list = lists_[key % sets_];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (it->first == key) {
                list.erase(it);
                break;
            }
        }
        list.emplace_front(key, value);
        if (list.size() > ways_)
            list.pop_back();
    }

    void
    invalidate(std::uint64_t key)
    {
        auto &list = lists_[key % sets_];
        list.remove_if([key](const auto &e) { return e.first == key; });
    }

  private:
    unsigned sets_;
    unsigned ways_;
    std::vector<std::list<std::pair<std::uint64_t, std::uint64_t>>> lists_;
};

class AssocCacheProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AssocCacheProperty, MatchesReferenceLru)
{
    constexpr unsigned kEntries = 64;
    constexpr unsigned kWays = 4;
    tlb::AssocCache<std::uint64_t> cache(kEntries, kWays);
    ReferenceLru reference(kEntries / kWays, kWays);
    Rng rng(GetParam());

    for (int step = 0; step < 20000; ++step) {
        std::uint64_t key = rng.below(256);
        double action = rng.uniform();
        if (action < 0.45) {
            std::uint64_t value = rng.below(1u << 20);
            cache.insert(key, value);
            reference.insert(key, value);
        } else if (action < 0.9) {
            auto got = cache.lookup(key);
            auto expected = reference.lookup(key);
            ASSERT_EQ(got.has_value(), expected.has_value())
                << "key " << key << " at step " << step;
            if (got) {
                ASSERT_EQ(*got, *expected);
            }
        } else {
            cache.invalidate(key);
            reference.invalidate(key);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssocCacheProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class PartProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartProperty, MatchesReferenceReservationMap)
{
    core::Part part;
    struct RefEntry {
        std::uint64_t base = 0;
        std::uint32_t mask = 0;
    };
    std::map<std::uint64_t, RefEntry> reference;
    Rng rng(GetParam());
    std::uint64_t next_base = 1000;

    for (int step = 0; step < 30000; ++step) {
        std::uint64_t group = rng.below(128);
        unsigned offset = static_cast<unsigned>(rng.below(8));
        auto ref = reference.find(group);
        double action = rng.uniform();

        if (action < 0.5) {  // fault path
            core::ClaimResult claim = part.claim(group, offset);
            if (ref == reference.end()) {
                ASSERT_FALSE(claim.found);
                std::uint64_t base = next_base;
                next_base += 8;
                ASSERT_EQ(part.create(group, base, offset), base + offset);
                reference[group] = {base, 1u << offset};
            } else if (ref->second.mask & (1u << offset)) {
                ASSERT_TRUE(claim.found);
                ASSERT_TRUE(claim.already_mapped);
            } else {
                ASSERT_TRUE(claim.found);
                ASSERT_FALSE(claim.already_mapped);
                ASSERT_EQ(claim.gfn, ref->second.base + offset);
                ref->second.mask |= 1u << offset;
                if (ref->second.mask == 0xff) {
                    ASSERT_TRUE(claim.deleted_full);
                    reference.erase(ref);
                }
            }
        } else if (action < 0.8) {  // free path
            bool missing = ref == reference.end();
            bool bit_set =
                !missing && (ref->second.mask & (1u << offset));
            if (!missing && !bit_set) {
                // Releasing an unmapped bit of a live entry violates the
                // API contract (the kernel never does it); skip.
                continue;
            }
            core::ReleaseResult released = part.release(group, offset);
            if (missing) {
                ASSERT_FALSE(released.found);
                continue;
            }
            ASSERT_TRUE(released.found);
            ref->second.mask &= ~(1u << offset);
            ASSERT_EQ(released.final_mask, ref->second.mask);
            if (ref->second.mask == 0) {
                ASSERT_TRUE(released.deleted_empty);
                ASSERT_EQ(released.base_gfn, ref->second.base);
                reference.erase(ref);
            }
        } else {  // read path
            auto view = part.find(group);
            if (ref == reference.end()) {
                ASSERT_FALSE(view.has_value());
            } else {
                ASSERT_TRUE(view.has_value());
                ASSERT_EQ(view->base_gfn, ref->second.base);
                ASSERT_EQ(view->mask, ref->second.mask);
            }
        }

        // Aggregate gauges must track the reference exactly.
        if (step % 512 == 0) {
            std::uint64_t unmapped = 0;
            for (const auto &[g, entry] : reference)
                unmapped += 8 - std::popcount(entry.mask);
            ASSERT_EQ(part.live_reservations(), reference.size());
            ASSERT_EQ(part.unmapped_reserved_pages(), unmapped);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartProperty,
                         ::testing::Values(7, 14, 21, 28));

class BuddySplitProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BuddySplitProperty, SplitChunksAreAlignedDisjointAndReFreeable)
{
    const unsigned order = GetParam();
    mem::BuddyAllocator buddy(0, 1u << 14);
    std::vector<std::uint64_t> bases;
    while (auto base = buddy.allocate_split(order)) {
        EXPECT_EQ(*base % (1u << order), 0u);
        bases.push_back(*base);
    }
    EXPECT_EQ(bases.size(), (1u << 14) >> order);
    std::sort(bases.begin(), bases.end());
    for (std::size_t i = 1; i < bases.size(); ++i)
        EXPECT_EQ(bases[i], bases[i - 1] + (1u << order));
    // Free every chunk page-by-page in shuffled order; full coalesce.
    Rng rng(99);
    std::vector<std::uint64_t> frames;
    for (std::uint64_t base : bases) {
        for (unsigned i = 0; i < (1u << order); ++i)
            frames.push_back(base + i);
    }
    for (std::size_t i = frames.size(); i > 1; --i)
        std::swap(frames[i - 1], frames[rng.below(i)]);
    for (std::uint64_t frame : frames)
        buddy.free(frame);
    buddy.check_invariants();
    EXPECT_TRUE(buddy.allocate(mem::BuddyAllocator::kMaxOrder).has_value());
}

INSTANTIATE_TEST_SUITE_P(Orders, BuddySplitProperty,
                         ::testing::Values(1, 2, 3, 4, 9));

class VasProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VasProperty, RandomMmapMunmapKeepsRegionsConsistent)
{
    vm::VirtualAddressSpace vas;
    std::map<Addr, Addr> reference;  // base -> pages
    Rng rng(GetParam());

    for (int step = 0; step < 3000; ++step) {
        if (reference.empty() || rng.chance(0.6)) {
            Addr pages = rng.between(1, 64);
            Addr base = vas.mmap(pages * kPageSize);
            EXPECT_EQ(base % kPageSize, 0u);
            reference[base] = pages;
        } else {
            auto it = reference.begin();
            std::advance(it, rng.below(reference.size()));
            auto vma = vas.munmap(it->first);
            ASSERT_TRUE(vma.has_value());
            EXPECT_EQ(vma->pages(), it->second);
            reference.erase(it);
        }

        if (step % 256 == 0) {
            std::uint64_t total = 0;
            for (const auto &[base, pages] : reference) {
                total += pages;
                EXPECT_TRUE(vas.is_mapped(page_number(base)));
                EXPECT_TRUE(
                    vas.is_mapped(page_number(base) + pages - 1));
                EXPECT_FALSE(vas.is_mapped(page_number(base) + pages));
            }
            EXPECT_EQ(vas.total_pages(), total);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VasProperty,
                         ::testing::Values(3, 6, 9));

}  // namespace
}  // namespace ptm
