/**
 * @file
 * Unit and integration tests for the observability layer (ptm::obs):
 * registry path rules and reset scopes, histogram percentile correctness
 * against a reference sort, trace-sink JSON well-formedness, and the
 * bit-identity guarantee of disarmed tracing on a full System.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/stat_registry.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace ptm {
namespace {

using obs::ResetScope;
using obs::StatRegistry;
using obs::StatSnapshot;
using obs::TraceSink;

// ---- registry ------------------------------------------------------

TEST(StatRegistry, SnapshotReadsLiveCounters)
{
    Counter hits;
    Counter misses;
    StatRegistry registry;
    registry.counter("l1.hits", &hits);
    registry.counter("l1.misses", &misses);
    hits.inc(7);
    misses.inc(3);

    StatSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_TRUE(snap.has("l1.hits"));
    EXPECT_FALSE(snap.has("l1.evictions"));
    EXPECT_DOUBLE_EQ(snap.value("l1.hits"), 7.0);
    EXPECT_DOUBLE_EQ(snap.value("l1.misses"), 3.0);

    // The snapshot is a copy: later increments do not bleed into it.
    hits.inc(100);
    EXPECT_DOUBLE_EQ(snap.value("l1.hits"), 7.0);
    EXPECT_DOUBLE_EQ(registry.snapshot().value("l1.hits"), 107.0);
}

TEST(StatRegistry, SnapshotSummarizesHistograms)
{
    Histogram lat;
    StatRegistry registry;
    registry.histogram("walker.walk_cycles", &lat);
    for (std::uint64_t v = 1; v <= 100; ++v)
        lat.record(v);

    StatSnapshot snap = registry.snapshot();
    const obs::HistogramSummary &s = snap.histogram("walker.walk_cycles");
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.sum, 5050u);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, 100u);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    // Log2 buckets: the quantiles land on bucket upper bounds, so they
    // over-estimate by at most 2x and never under-estimate.
    EXPECT_GE(s.p50, 50u);
    EXPECT_LE(s.p50, 100u);
    EXPECT_GE(s.p99, 99u);
}

TEST(StatRegistryDeathTest, DuplicatePathIsFatal)
{
    Counter a;
    Counter b;
    StatRegistry registry;
    registry.counter("vm0.kernel.faults", &a);
    EXPECT_DEATH(registry.counter("vm0.kernel.faults", &b), "duplicate");
}

TEST(StatRegistryDeathTest, TypeMismatchOnReadIsFatal)
{
    Counter c;
    StatRegistry registry;
    registry.counter("x", &c);
    StatSnapshot snap = registry.snapshot();
    EXPECT_DEATH(snap.histogram("x"), "x");
    EXPECT_DEATH(snap.value("missing"), "missing");
}

TEST(StatRegistry, ResetHonorsScope)
{
    Counter lifetime;
    Counter window;
    Histogram hist;
    StatRegistry registry;
    registry.counter("buddy.alloc_calls", &lifetime,
                     ResetScope::Lifetime);
    registry.counter("core0.job.ops", &window, ResetScope::Measurement);
    registry.histogram("core0.walker.walk_cycles", &hist,
                       ResetScope::Measurement);
    lifetime.inc(5);
    window.inc(5);
    hist.record(42);

    registry.reset(ResetScope::Measurement);
    EXPECT_EQ(lifetime.value(), 5u);
    EXPECT_EQ(window.value(), 0u);
    EXPECT_EQ(hist.count(), 0u);

    registry.reset(ResetScope::Lifetime);
    EXPECT_EQ(lifetime.value(), 0u);
}

// ---- histogram percentiles vs a reference sort ---------------------

/// The ceil(q/100 * n)-th smallest sample — the rank percentile() aims at.
std::uint64_t
reference_percentile(std::vector<std::uint64_t> values, double q)
{
    std::sort(values.begin(), values.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

TEST(HistogramPercentiles, LinearPolicyIsExact)
{
    // With one bucket per value, percentile() must agree exactly with a
    // sorted reference for any distribution.
    Histogram h(BucketPolicy::Linear, 256);
    Rng rng(17);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 10'000; ++i) {
        std::uint64_t v = rng.below(256);
        values.push_back(v);
        h.record(v);
    }
    for (double q : {10.0, 50.0, 90.0, 99.0}) {
        EXPECT_EQ(h.percentile(q), reference_percentile(values, q))
            << "q=" << q;
    }
    EXPECT_EQ(h.p50(), reference_percentile(values, 50.0));
    EXPECT_EQ(h.p90(), reference_percentile(values, 90.0));
    EXPECT_EQ(h.p99(), reference_percentile(values, 99.0));
}

TEST(HistogramPercentiles, Log2PolicyBoundsTheReference)
{
    // Log2 buckets report the bucket's upper bound: never below the true
    // percentile and at most 2x above it.
    Histogram h;
    Rng rng(23);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 10'000; ++i) {
        std::uint64_t v = 1 + rng.below(100'000);
        values.push_back(v);
        h.record(v);
    }
    for (double q : {50.0, 90.0, 99.0}) {
        std::uint64_t truth = reference_percentile(values, q);
        std::uint64_t est = h.percentile(q);
        EXPECT_GE(est, truth) << "q=" << q;
        EXPECT_LE(est, 2 * truth) << "q=" << q;
    }
}

TEST(HistogramPercentiles, MergeMatchesCombinedRecording)
{
    Histogram a(BucketPolicy::Linear, 64);
    Histogram b(BucketPolicy::Linear, 64);
    Histogram both(BucketPolicy::Linear, 64);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.below(64);
        ((i % 2 == 0) ? a : b).record(v);
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    for (double q : {0.50, 0.90, 0.99})
        EXPECT_EQ(a.percentile(q), both.percentile(q)) << "q=" << q;
}

// ---- trace sink ----------------------------------------------------

TEST(TraceSinkTest, JsonRoundTripsThroughSimParser)
{
    TraceSink sink;
    sink.set_now(100, 2);
    sink.event_now("walk", "mmu", 40,
                   {{"gva", 0x1234000ull}, {"gpa", 0x5000ull},
                    {"hpa", 0x9000ull}});
    sink.event("guest_fault", "kernel", 150, 1200, 0,
               {{"pid", 1ull}, {"gvpn", 7ull}, {"gfn", 42ull}});

    sim::Json doc = sim::Json::parse(sink.to_json());
    const sim::JsonArray &events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);

    const sim::Json &walk = events[0];
    EXPECT_EQ(walk.at("name").as_string(), "walk");
    EXPECT_EQ(walk.at("cat").as_string(), "mmu");
    EXPECT_EQ(walk.at("ph").as_string(), "X");
    EXPECT_EQ(walk.at("ts").as_u64(), 100u);
    EXPECT_EQ(walk.at("dur").as_u64(), 40u);
    EXPECT_EQ(walk.at("tid").as_u64(), 2u);
    EXPECT_EQ(walk.at("args").at("gva").as_u64(), 0x1234000u);
    EXPECT_EQ(walk.at("args").at("gpa").as_u64(), 0x5000u);
    EXPECT_EQ(walk.at("args").at("hpa").as_u64(), 0x9000u);

    const sim::Json &fault = events[1];
    EXPECT_EQ(fault.at("name").as_string(), "guest_fault");
    EXPECT_EQ(fault.at("args").at("gfn").as_u64(), 42u);
}

TEST(TraceSinkTest, RetentionCapCountsDrops)
{
    TraceSink sink(4);
    for (unsigned i = 0; i < 10; ++i)
        sink.event("e", "c", i, 1, 0, {});
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    sim::Json doc = sim::Json::parse(sink.to_json());
    EXPECT_EQ(doc.at("otherData").at("dropped_events").as_u64(), 6u);
}

// ---- System integration --------------------------------------------

sim::PlatformConfig
tiny_platform()
{
    sim::PlatformConfig platform;
    platform.guest_frames = 32 * 1024;
    platform.host_frames = 48 * 1024;
    return platform;
}

/// Run a small two-job scenario, optionally with a trace sink armed,
/// and return the resulting metric set.
MetricSet
run_traced(TraceSink *sink)
{
    sim::System system(tiny_platform(), 2);
    system.enable_ptemagnet();
    if (sink != nullptr)
        system.set_trace_sink(sink);
    workload::WorkloadOptions options;
    options.scale = 0.125;
    sim::Job &victim =
        system.add_job(workload::make_workload("pagerank", options));
    options.seed = 2;
    system.add_job(workload::make_workload("objdet", options));
    system.run_until([&]() {
        return victim.stats().ops.value() >= 30'000;
    });
    return sim::collect_metrics(system, victim);
}

TEST(SystemObservability, DisarmedTraceIsBitIdentical)
{
    // The null-check-hook discipline: simulated state with tracing armed
    // must equal state with tracing disarmed, metric for metric.
    MetricSet disarmed = run_traced(nullptr);
    TraceSink sink;
    MetricSet armed = run_traced(&sink);

    EXPECT_GT(sink.size(), 0u);
    for (const auto &[name, value] : disarmed.values()) {
        EXPECT_DOUBLE_EQ(armed.get(name), value) << name;
    }
    // Sanity: the run did real work, so key metrics are nonzero.
    EXPECT_GT(disarmed.get("execution_time"), 0.0);
    EXPECT_GT(disarmed.get("tlb_misses"), 0.0);
}

TEST(SystemObservability, TraceCarriesWalkAndFaultEvents)
{
    TraceSink sink;
    run_traced(&sink);
    sim::Json doc = sim::Json::parse(sink.to_json());
    const sim::JsonArray &events = doc.at("traceEvents").as_array();
    ASSERT_FALSE(events.empty());

    bool saw_walk = false;
    bool saw_fault = false;
    for (const sim::Json &event : events) {
        const std::string &name = event.at("name").as_string();
        if (name == "walk") {
            saw_walk = true;
            EXPECT_TRUE(event.at("args").contains("gva"));
            EXPECT_TRUE(event.at("args").contains("gpa"));
            EXPECT_TRUE(event.at("args").contains("hpa"));
        } else if (name == "guest_fault") {
            saw_fault = true;
            EXPECT_TRUE(event.at("args").contains("gvpn"));
            EXPECT_TRUE(event.at("args").contains("gfn"));
        }
    }
    EXPECT_TRUE(saw_walk);
    EXPECT_TRUE(saw_fault);
}

TEST(SystemObservability, RegistryCoversEveryLayer)
{
    sim::System system(tiny_platform(), 1);
    system.enable_ptemagnet();
    workload::WorkloadOptions options;
    options.scale = 0.125;
    sim::Job &job =
        system.add_job(workload::make_workload("gcc", options));
    system.run_ops(job, 5'000);

    StatSnapshot snap = system.stat_registry().snapshot();
    // One representative path per component family.
    EXPECT_TRUE(snap.has("vm0.kernel.faults_handled"));
    EXPECT_TRUE(snap.has("vm0.buddy.alloc_calls"));
    EXPECT_TRUE(snap.has("vm0.provider.part_hits"));
    EXPECT_TRUE(snap.has("host.kernel.pages_backed"));
    EXPECT_TRUE(snap.has("vm0.hier.llc.hits.data"));
    EXPECT_TRUE(snap.has("vm0.core0.job.ops"));
    EXPECT_TRUE(snap.has("vm0.core0.walker.tlb_misses"));
    EXPECT_TRUE(snap.has("vm0.core0.l2tlb.misses"));
    EXPECT_TRUE(snap.has("vm0.core0.pwc_l0.hits"));
    EXPECT_TRUE(snap.has("vm0.core0.nested_tlb.hits"));
    EXPECT_TRUE(snap.has("vm0.core0.walker.walk_cycles_hist"));
    EXPECT_TRUE(snap.has("vm0.kernel.fault_latency"));
    EXPECT_TRUE(snap.has("vm0.buddy.split_depth"));

    EXPECT_GT(snap.value("vm0.core0.job.ops"), 0.0);
    const obs::HistogramSummary &walks =
        snap.histogram("vm0.core0.walker.walk_cycles_hist");
    EXPECT_GT(walks.count, 0u);
    EXPECT_GT(walks.p50, 0u);
    EXPECT_LE(walks.p50, walks.p99);

    // Measurement reset clears the window stats but not the allocators.
    system.reset_measurement();
    StatSnapshot after = system.stat_registry().snapshot();
    EXPECT_DOUBLE_EQ(after.value("vm0.core0.job.ops"), 0.0);
    EXPECT_EQ(after.histogram("vm0.core0.walker.walk_cycles_hist").count,
              0u);
    EXPECT_GT(after.value("vm0.buddy.alloc_calls"), 0.0);
}

TEST(SystemObservability, ScenarioResultCarriesStatsBlock)
{
    sim::ScenarioConfig config;
    config.victim = "pagerank";
    config.scale = 0.125;
    config.measure_ops = 20'000;
    config.corunner_warmup_ops = 0;
    config.platform = tiny_platform();
    sim::ScenarioResult result = sim::run_scenario(config);
    EXPECT_FALSE(result.stats.empty());
    EXPECT_GT(result.stats.value("vm0.core0.job.ops"), 0.0);
    EXPECT_GT(
        result.stats.histogram("vm0.core0.walker.walk_cycles_hist").count,
        0u);
}

}  // namespace
}  // namespace ptm
