/**
 * @file
 * Unit tests for src/common: address arithmetic, RNG, stats primitives.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptm {
namespace {

TEST(Types, PageArithmetic)
{
    EXPECT_EQ(page_floor(0x1234), 0x1000u);
    EXPECT_EQ(page_ceil(0x1234), 0x2000u);
    EXPECT_EQ(page_ceil(0x1000), 0x1000u);
    EXPECT_EQ(page_number(0x3fff), 3u);
    EXPECT_EQ(page_address(3), 0x3000u);
    EXPECT_EQ(line_number(0x7f), 1u);
    EXPECT_EQ(line_number(0x80), 2u);
}

TEST(Types, ConstantsMatchX86)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kCacheLineSize, 64u);
    EXPECT_EQ(kPtesPerCacheLine, 8u);
    EXPECT_EQ(kPtesPerNode, 512u);
    EXPECT_EQ(kPtLevels, 4u);
    // The paper's 32 KiB reservation: 8 PTEs/line * 4 KiB pages.
    EXPECT_EQ(kReservationBytes, 32u * 1024u);
}

TEST(Types, StrongPageIds)
{
    Gvpn a{5};
    Gvpn b{5};
    Gvpn c{6};
    EXPECT_EQ(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ(a.address(), 5u * kPageSize);
    EXPECT_EQ(a.next(), c);
    // Gvpn and Gfn are distinct types: no accidental cross-assignment.
    static_assert(!std::is_convertible_v<Gvpn, Gfn>);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LE(same, 1);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, HistogramClampsOverflow)
{
    Histogram h(BucketPolicy::Linear, 4);
    h.record(0);
    h.record(3);
    h.record(99);  // clamps into the last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 99u);
}

TEST(Stats, HistogramLog2Buckets)
{
    Histogram h;  // default: full-range Log2
    EXPECT_EQ(h.policy(), BucketPolicy::Log2);
    EXPECT_EQ(h.bucket_count(), Histogram::kLog2Buckets);
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(1024);
    EXPECT_EQ(h.bucket(0), 1u);  // value 0
    EXPECT_EQ(h.bucket(1), 1u);  // value 1
    EXPECT_EQ(h.bucket(2), 2u);  // values 2..3
    EXPECT_EQ(h.bucket(11), 1u);  // 1024 = 2^10, bit width 11
    EXPECT_EQ(h.sum(), 1030u);
}

TEST(Stats, MetricSetPercentChange)
{
    MetricSet base;
    base.set("walk_cycles", 100.0);
    base.set("exec_time", 50.0);
    MetricSet now;
    now.set("walk_cycles", 161.0);
    now.set("exec_time", 55.5);
    MetricSet delta = now.percent_change_from(base);
    EXPECT_NEAR(delta.get("walk_cycles"), 61.0, 1e-9);
    EXPECT_NEAR(delta.get("exec_time"), 11.0, 1e-9);
}

TEST(Log, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Error, PtmThrowFormatsMessageAndLocation)
{
    try {
        ptm_throw("guest OOM while testing pid %d", 42);
        FAIL() << "ptm_throw returned";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("guest OOM while testing pid 42"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("common_test.cpp"), std::string::npos) << what;
    }
}

TEST(Error, SimErrorIsARuntimeError)
{
    // Generic handlers (the suite driver's safety nets) must be able to
    // catch it as std::exception.
    EXPECT_THROW(ptm_throw("x"), std::runtime_error);
}

TEST(AssertDeathTest, MessageCarriesConditionAndContext)
{
    EXPECT_DEATH(ptm_assert(1 + 1 == 3, "while merging block %d", 9),
                 "assertion failed: 1 \\+ 1 == 3: while merging block 9");
}

TEST(AssertDeathTest, BareAssertReportsCondition)
{
    EXPECT_DEATH(ptm_assert(false), "assertion failed: false");
}

}  // namespace
}  // namespace ptm
