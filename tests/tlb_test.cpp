/**
 * @file
 * Unit tests for the associative cache template, the two-level TLB, the
 * page-walk caches, and the nested TLB.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tlb/assoc_cache.hpp"
#include "tlb/tlb.hpp"

namespace ptm::tlb {
namespace {

TEST(AssocCache, InsertLookup)
{
    AssocCache<std::uint64_t> cache(16, 4);
    EXPECT_FALSE(cache.lookup(5).has_value());
    cache.insert(5, 50);
    auto v = cache.lookup(5);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 50u);
    EXPECT_EQ(cache.stats().hits.value(), 1u);
    EXPECT_EQ(cache.stats().misses.value(), 1u);
}

TEST(AssocCache, LruEvictionWithinSet)
{
    // 8 entries, 4 ways -> 2 sets. Even keys map to set 0.
    AssocCache<std::uint64_t> cache(8, 4);
    for (std::uint64_t k = 0; k < 8; k += 2)
        cache.insert(k, k);
    cache.lookup(0);  // refresh 0; LRU of set 0 becomes 2
    cache.insert(8, 8);
    EXPECT_TRUE(cache.probe(0).has_value());
    EXPECT_FALSE(cache.probe(2).has_value()) << "LRU way must be evicted";
    EXPECT_EQ(cache.stats().evictions.value(), 1u);
}

TEST(AssocCache, InsertRefreshesExisting)
{
    AssocCache<std::uint64_t> cache(4, 4);
    cache.insert(1, 10);
    cache.insert(1, 11);
    EXPECT_EQ(*cache.probe(1), 11u);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(AssocCache, InvalidateSingleAndAll)
{
    AssocCache<std::uint64_t> cache(8, 2);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.invalidate(1);
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
    cache.invalidate_all();
    EXPECT_EQ(cache.occupancy(), 0u);
}

// ---------------------------------------------------------------------
// Construction-time geometry validation.

TEST(AssocCacheDeathTest, ZeroWaysIsFatal)
{
    EXPECT_EXIT(AssocCache<int> cache(16, 0),
                ::testing::ExitedWithCode(1), "bad assoc-cache shape");
}

TEST(AssocCacheDeathTest, ZeroEntriesIsFatal)
{
    EXPECT_EXIT(AssocCache<int> cache(0, 4),
                ::testing::ExitedWithCode(1), "bad assoc-cache shape");
}

TEST(AssocCacheDeathTest, EntriesNotMultipleOfWaysIsFatal)
{
    EXPECT_EXIT(AssocCache<int> cache(10, 4),
                ::testing::ExitedWithCode(1), "bad assoc-cache shape");
}

TEST(AssocCacheDeathTest, NonPowerOfTwoSetCountIsFatal)
{
    // 12 entries / 4 ways -> 3 sets.
    EXPECT_EXIT(AssocCache<int> cache(12, 4),
                ::testing::ExitedWithCode(1), "not a power of two");
}

// ---------------------------------------------------------------------
// Reference-model comparison: the single-pass SoA insert/lookup against
// the obvious per-set entry-struct implementation, on a randomized mix
// of lookups, inserts, and invalidations.

class ReferenceAssoc {
  public:
    ReferenceAssoc(unsigned entries, unsigned ways)
        : ways_(ways), num_sets_(entries / ways), sets_(num_sets_)
    {
        for (auto &set : sets_)
            set.resize(ways_);
    }

    std::optional<std::uint64_t>
    lookup(std::uint64_t key)
    {
        auto &set = sets_[key & (num_sets_ - 1)];
        for (Entry &e : set) {
            if (e.valid && e.key == key) {
                e.stamp = ++clock_;
                ++hits_;
                return e.value;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    void
    insert(std::uint64_t key, std::uint64_t value)
    {
        auto &set = sets_[key & (num_sets_ - 1)];
        for (Entry &e : set) {
            if (e.valid && e.key == key) {
                e.value = value;
                e.stamp = ++clock_;
                return;
            }
        }
        for (Entry &e : set) {
            if (!e.valid) {
                e = Entry{key, value, ++clock_, true};
                return;
            }
        }
        Entry *lru = &set[0];
        for (Entry &e : set) {
            if (e.stamp < lru->stamp)
                lru = &e;
        }
        ++evictions_;
        *lru = Entry{key, value, ++clock_, true};
    }

    void
    invalidate(std::uint64_t key)
    {
        auto &set = sets_[key & (num_sets_ - 1)];
        for (Entry &e : set) {
            if (e.valid && e.key == key)
                e.valid = false;
        }
    }

    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (const auto &set : sets_) {
            for (const Entry &e : set)
                n += e.valid ? 1 : 0;
        }
        return n;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct Entry {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    unsigned ways_;
    unsigned num_sets_;
    std::uint64_t clock_ = 0;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

TEST(AssocCache, RandomizedTraceMatchesReferenceModel)
{
    // 64 entries, 4 ways -> 16 sets; a 256-key trace keeps sets full and
    // evicting. Both models see the identical operation sequence.
    AssocCache<std::uint64_t> flat(64, 4);
    ReferenceAssoc ref(64, 4);

    ptm::Rng trace(42);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t key = trace.below(256);
        double roll = trace.uniform();
        if (roll < 0.45) {
            auto flat_v = flat.lookup(key);
            auto ref_v = ref.lookup(key);
            ASSERT_EQ(flat_v.has_value(), ref_v.has_value())
                << "diverged at op " << i << ", key " << key;
            if (flat_v) {
                ASSERT_EQ(*flat_v, *ref_v) << "op " << i;
            }
        } else if (roll < 0.90) {
            std::uint64_t value = key * 3 + 1;
            flat.insert(key, value);
            ref.insert(key, value);
        } else {
            flat.invalidate(key);
            ref.invalidate(key);
        }
    }
    EXPECT_EQ(flat.stats().hits.value(), ref.hits());
    EXPECT_EQ(flat.stats().misses.value(), ref.misses());
    EXPECT_EQ(flat.stats().evictions.value(), ref.evictions());
    EXPECT_EQ(flat.occupancy(), ref.occupancy());
    EXPECT_GT(ref.evictions(), 0u);
}

TlbConfig
tiny_tlb()
{
    TlbConfig config;
    config.l1_entries = 8;
    config.l1_ways = 2;
    config.l2_entries = 32;
    config.l2_ways = 4;
    config.pwc_entries = 8;
    config.pwc_ways = 2;
    config.nested_entries = 16;
    config.nested_ways = 4;
    return config;
}

TEST(TlbHierarchy, MissThenL1Hit)
{
    TlbHierarchy tlb(tiny_tlb());
    EXPECT_EQ(tlb.lookup(7).level, TlbLevel::Miss);
    tlb.insert(7, 70);
    auto r = tlb.lookup(7);
    EXPECT_EQ(r.level, TlbLevel::L1);
    EXPECT_EQ(r.hfn, 70u);
}

TEST(TlbHierarchy, L2BackfillsL1)
{
    TlbHierarchy tlb(tiny_tlb());
    // Fill L1 set of key 1 (2 ways, 4 sets: keys 1, 5, 9 share set 1).
    tlb.insert(1, 10);
    tlb.insert(5, 50);
    tlb.insert(9, 90);  // evicts key 1 from L1; still in L2
    auto r = tlb.lookup(1);
    EXPECT_EQ(r.level, TlbLevel::L2);
    EXPECT_EQ(r.hfn, 10u);
    // Backfilled: now an L1 hit.
    EXPECT_EQ(tlb.lookup(1).level, TlbLevel::L1);
}

TEST(TlbHierarchy, InvalidateDropsBothLevels)
{
    TlbHierarchy tlb(tiny_tlb());
    tlb.insert(3, 30);
    tlb.invalidate(3);
    EXPECT_EQ(tlb.lookup(3).level, TlbLevel::Miss);
}

TEST(TlbHierarchy, FlushDropsEverything)
{
    TlbHierarchy tlb(tiny_tlb());
    for (std::uint64_t k = 0; k < 8; ++k)
        tlb.insert(k, k);
    tlb.flush();
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(tlb.lookup(k).level, TlbLevel::Miss);
}

TEST(PageWalkCache, DeepestLevelWins)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn = (1ull << 27) | (2ull << 18) | (3ull << 9) | 4;
    pwc.insert(gvpn, 0, 100);  // PML4E -> PDPT node 100
    pwc.insert(gvpn, 1, 200);  // PDPTE -> PD node 200
    pwc.insert(gvpn, 2, 300);  // PDE   -> PT node 300
    auto hit = pwc.lookup(gvpn);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->resume_level, 3u);
    EXPECT_EQ(hit->node_frame, 300u);
}

TEST(PageWalkCache, PrefixSharingAcrossNeighbours)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn_a = (1ull << 9) | 5;  // same PD entry as b
    std::uint64_t gvpn_b = (1ull << 9) | 6;
    pwc.insert(gvpn_a, 2, 42);
    auto hit = pwc.lookup(gvpn_b);
    ASSERT_TRUE(hit) << "neighbouring pages share the PDE";
    EXPECT_EQ(hit->node_frame, 42u);
    // A page under a different PDE misses.
    EXPECT_FALSE(pwc.lookup((2ull << 9) | 5).has_value());
}

TEST(PageWalkCache, UpperLevelHitWhenDeepMisses)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn = (7ull << 27) | (1ull << 18);
    pwc.insert(gvpn, 0, 11);
    std::uint64_t sibling = (7ull << 27) | (2ull << 18);  // same PML4E
    auto hit = pwc.lookup(sibling);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->resume_level, 1u);
    EXPECT_EQ(hit->node_frame, 11u);
}

TEST(PageWalkCache, DisabledNeverHits)
{
    TlbConfig config = tiny_tlb();
    config.pwc_enabled = false;
    PageWalkCache pwc(config);
    pwc.insert(1, 0, 5);
    EXPECT_FALSE(pwc.lookup(1).has_value());
    EXPECT_FALSE(pwc.enabled());
}

TEST(NestedTlb, RoundTrip)
{
    NestedTlb ntlb(tiny_tlb());
    EXPECT_FALSE(ntlb.lookup(9).has_value());
    ntlb.insert(9, 99);
    auto v = ntlb.lookup(9);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 99u);
    ntlb.invalidate(9);
    EXPECT_FALSE(ntlb.lookup(9).has_value());
}

TEST(NestedTlb, DisabledNeverHits)
{
    TlbConfig config = tiny_tlb();
    config.nested_tlb_enabled = false;
    NestedTlb ntlb(config);
    ntlb.insert(1, 2);
    EXPECT_FALSE(ntlb.lookup(1).has_value());
}

}  // namespace
}  // namespace ptm::tlb
