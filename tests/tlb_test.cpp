/**
 * @file
 * Unit tests for the associative cache template, the two-level TLB, the
 * page-walk caches, and the nested TLB.
 */
#include <gtest/gtest.h>

#include "tlb/assoc_cache.hpp"
#include "tlb/tlb.hpp"

namespace ptm::tlb {
namespace {

TEST(AssocCache, InsertLookup)
{
    AssocCache<std::uint64_t> cache(16, 4);
    EXPECT_FALSE(cache.lookup(5).has_value());
    cache.insert(5, 50);
    auto v = cache.lookup(5);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 50u);
    EXPECT_EQ(cache.stats().hits.value(), 1u);
    EXPECT_EQ(cache.stats().misses.value(), 1u);
}

TEST(AssocCache, LruEvictionWithinSet)
{
    // 8 entries, 4 ways -> 2 sets. Even keys map to set 0.
    AssocCache<std::uint64_t> cache(8, 4);
    for (std::uint64_t k = 0; k < 8; k += 2)
        cache.insert(k, k);
    cache.lookup(0);  // refresh 0; LRU of set 0 becomes 2
    cache.insert(8, 8);
    EXPECT_TRUE(cache.probe(0).has_value());
    EXPECT_FALSE(cache.probe(2).has_value()) << "LRU way must be evicted";
    EXPECT_EQ(cache.stats().evictions.value(), 1u);
}

TEST(AssocCache, InsertRefreshesExisting)
{
    AssocCache<std::uint64_t> cache(4, 4);
    cache.insert(1, 10);
    cache.insert(1, 11);
    EXPECT_EQ(*cache.probe(1), 11u);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(AssocCache, InvalidateSingleAndAll)
{
    AssocCache<std::uint64_t> cache(8, 2);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.invalidate(1);
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
    cache.invalidate_all();
    EXPECT_EQ(cache.occupancy(), 0u);
}

TlbConfig
tiny_tlb()
{
    TlbConfig config;
    config.l1_entries = 8;
    config.l1_ways = 2;
    config.l2_entries = 32;
    config.l2_ways = 4;
    config.pwc_entries = 8;
    config.pwc_ways = 2;
    config.nested_entries = 16;
    config.nested_ways = 4;
    return config;
}

TEST(TlbHierarchy, MissThenL1Hit)
{
    TlbHierarchy tlb(tiny_tlb());
    EXPECT_EQ(tlb.lookup(7).level, TlbLevel::Miss);
    tlb.insert(7, 70);
    auto r = tlb.lookup(7);
    EXPECT_EQ(r.level, TlbLevel::L1);
    EXPECT_EQ(r.hfn, 70u);
}

TEST(TlbHierarchy, L2BackfillsL1)
{
    TlbHierarchy tlb(tiny_tlb());
    // Fill L1 set of key 1 (2 ways, 4 sets: keys 1, 5, 9 share set 1).
    tlb.insert(1, 10);
    tlb.insert(5, 50);
    tlb.insert(9, 90);  // evicts key 1 from L1; still in L2
    auto r = tlb.lookup(1);
    EXPECT_EQ(r.level, TlbLevel::L2);
    EXPECT_EQ(r.hfn, 10u);
    // Backfilled: now an L1 hit.
    EXPECT_EQ(tlb.lookup(1).level, TlbLevel::L1);
}

TEST(TlbHierarchy, InvalidateDropsBothLevels)
{
    TlbHierarchy tlb(tiny_tlb());
    tlb.insert(3, 30);
    tlb.invalidate(3);
    EXPECT_EQ(tlb.lookup(3).level, TlbLevel::Miss);
}

TEST(TlbHierarchy, FlushDropsEverything)
{
    TlbHierarchy tlb(tiny_tlb());
    for (std::uint64_t k = 0; k < 8; ++k)
        tlb.insert(k, k);
    tlb.flush();
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(tlb.lookup(k).level, TlbLevel::Miss);
}

TEST(PageWalkCache, DeepestLevelWins)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn = (1ull << 27) | (2ull << 18) | (3ull << 9) | 4;
    pwc.insert(gvpn, 0, 100);  // PML4E -> PDPT node 100
    pwc.insert(gvpn, 1, 200);  // PDPTE -> PD node 200
    pwc.insert(gvpn, 2, 300);  // PDE   -> PT node 300
    auto hit = pwc.lookup(gvpn);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->resume_level, 3u);
    EXPECT_EQ(hit->node_frame, 300u);
}

TEST(PageWalkCache, PrefixSharingAcrossNeighbours)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn_a = (1ull << 9) | 5;  // same PD entry as b
    std::uint64_t gvpn_b = (1ull << 9) | 6;
    pwc.insert(gvpn_a, 2, 42);
    auto hit = pwc.lookup(gvpn_b);
    ASSERT_TRUE(hit) << "neighbouring pages share the PDE";
    EXPECT_EQ(hit->node_frame, 42u);
    // A page under a different PDE misses.
    EXPECT_FALSE(pwc.lookup((2ull << 9) | 5).has_value());
}

TEST(PageWalkCache, UpperLevelHitWhenDeepMisses)
{
    PageWalkCache pwc(tiny_tlb());
    std::uint64_t gvpn = (7ull << 27) | (1ull << 18);
    pwc.insert(gvpn, 0, 11);
    std::uint64_t sibling = (7ull << 27) | (2ull << 18);  // same PML4E
    auto hit = pwc.lookup(sibling);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->resume_level, 1u);
    EXPECT_EQ(hit->node_frame, 11u);
}

TEST(PageWalkCache, DisabledNeverHits)
{
    TlbConfig config = tiny_tlb();
    config.pwc_enabled = false;
    PageWalkCache pwc(config);
    pwc.insert(1, 0, 5);
    EXPECT_FALSE(pwc.lookup(1).has_value());
    EXPECT_FALSE(pwc.enabled());
}

TEST(NestedTlb, RoundTrip)
{
    NestedTlb ntlb(tiny_tlb());
    EXPECT_FALSE(ntlb.lookup(9).has_value());
    ntlb.insert(9, 99);
    auto v = ntlb.lookup(9);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 99u);
    ntlb.invalidate(9);
    EXPECT_FALSE(ntlb.lookup(9).has_value());
}

TEST(NestedTlb, DisabledNeverHits)
{
    TlbConfig config = tiny_tlb();
    config.nested_tlb_enabled = false;
    NestedTlb ntlb(config);
    ntlb.insert(1, 2);
    EXPECT_FALSE(ntlb.lookup(1).has_value());
}

}  // namespace
}  // namespace ptm::tlb
