/**
 * @file
 * Batched-dispatch identity tests: the walk-register-file batch depth is
 * a pure simulator-performance knob. Running the same scenario at depths
 * {1, 2, 8, 32} must produce bit-identical simulated results — every
 * metric, every registered counter and histogram — because batches never
 * cross slice boundaries and nothing observes state between the ops of
 * one slice. Only the ".wrf." occupancy stats may differ: they describe
 * the batching machinery itself. The matrix covers both translation
 * tables (radix descends via cursors, hashed streams its probe sequence
 * natively) and armed fault plans at every depth.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace ptm::sim {
namespace {

constexpr unsigned kDepths[] = {1, 2, 8, 32};

ScenarioConfig
small_config(const std::string &victim, std::uint64_t seed)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim(victim)
                                .with_corunner("stress-ng", 2)
                                .with_scale(0.05)
                                .with_measure_ops(8'000)
                                .with_warmup_ops(3'000)
                                .with_seed(seed);
    config.platform.guest_frames = 16 * 1024;
    config.platform.host_frames = 24 * 1024;
    // Large enough that depth 32 actually forms 32-op batches (the
    // effective depth is min(walk_batch, remaining slice); the default
    // slice of 2 would cap every depth at 2).
    config.platform.slice_ops = 32;
    return config;
}

ScenarioResult
run_at_depth(ScenarioConfig config, unsigned depth)
{
    config.platform.walk_batch = depth;
    return run_scenario(config);
}

/// Assert two results are simulated-state identical; stat paths
/// containing ".wrf." are the one allowed difference.
void
expect_identical(const ScenarioResult &a, const ScenarioResult &b,
                 unsigned depth)
{
    EXPECT_EQ(a.victim_cycles, b.victim_cycles) << "depth " << depth;
    EXPECT_EQ(a.victim_ops, b.victim_ops) << "depth " << depth;
    EXPECT_EQ(a.victim_rss_pages, b.victim_rss_pages) << "depth " << depth;
    EXPECT_EQ(a.total_ops, b.total_ops) << "depth " << depth;

    const auto &am = a.metrics.values();
    const auto &bm = b.metrics.values();
    ASSERT_EQ(am.size(), bm.size());
    for (const auto &[name, value] : am) {
        auto it = bm.find(name);
        ASSERT_NE(it, bm.end()) << name;
        EXPECT_EQ(value, it->second)
            << "metric '" << name << "' diverged at depth " << depth;
    }

    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (std::size_t i = 0; i < a.stats.entries().size(); ++i) {
        const auto &ea = a.stats.entries()[i];
        const auto &eb = b.stats.entries()[i];
        ASSERT_EQ(ea.path, eb.path);
        if (ea.path.find(".wrf.") != std::string::npos)
            continue;  // occupancy of the batching machinery itself
        if (ea.is_histogram) {
            EXPECT_EQ(ea.histogram.count, eb.histogram.count) << ea.path;
            EXPECT_EQ(ea.histogram.sum, eb.histogram.sum) << ea.path;
            EXPECT_EQ(ea.histogram.min, eb.histogram.min) << ea.path;
            EXPECT_EQ(ea.histogram.max, eb.histogram.max) << ea.path;
            EXPECT_EQ(ea.histogram.p50, eb.histogram.p50) << ea.path;
            EXPECT_EQ(ea.histogram.p99, eb.histogram.p99) << ea.path;
        } else {
            EXPECT_EQ(ea.value, eb.value)
                << "stat '" << ea.path << "' diverged at depth " << depth;
        }
    }
}

TEST(OverlappedWalker, BatchDepthIsMetricInvisible)
{
    ScenarioConfig config = small_config("pagerank", 7);
    ScenarioResult serial = run_at_depth(config, 1);
    for (unsigned depth : kDepths) {
        if (depth == 1)
            continue;
        expect_identical(serial, run_at_depth(config, depth), depth);
    }
}

TEST(OverlappedWalker, RandomizedWorkloadsAndSeedsMatchSerial)
{
    const struct {
        const char *victim;
        std::uint64_t seed;
    } cases[] = {{"cc", 3}, {"mcf", 11}, {"alloc_sweep", 23}};
    for (const auto &c : cases) {
        ScenarioConfig config = small_config(c.victim, c.seed);
        config.with_measure_ops(5'000);
        ScenarioResult serial = run_at_depth(config, 1);
        expect_identical(serial, run_at_depth(config, 8), 8);
    }
}

TEST(OverlappedWalker, IdentityHoldsUnderPtemagnet)
{
    ScenarioConfig config = small_config("pagerank", 7).with_ptemagnet();
    ScenarioResult serial = run_at_depth(config, 1);
    expect_identical(serial, run_at_depth(config, 8), 8);
}

TEST(OverlappedWalker, IdentityHoldsForHashedTables)
{
    // The hashed table's native step cursor must reproduce its buffered
    // walk() bit for bit at every depth — probe sequences, probe-bound
    // faults, and the probes counter included.
    ScenarioConfig config = small_config("pagerank", 7).with_table("hashed");
    ScenarioResult serial = run_at_depth(config, 1);
    for (unsigned depth : kDepths) {
        if (depth == 1)
            continue;
        expect_identical(serial, run_at_depth(config, depth), depth);
    }
}

TEST(OverlappedWalker, IdentityHoldsForHashedTablesWithFaultPlan)
{
    ScenarioConfig config = small_config("pagerank", 7)
                                .with_table("hashed")
                                .with_fault_plan(
                                    FaultPlan{}.deny_guest(3, 1'000)
                                        .periodic_pressure(2'000));
    ScenarioResult serial = run_at_depth(config, 1);
    ScenarioResult batched = run_at_depth(config, 32);
    expect_identical(serial, batched, 32);
    EXPECT_GT(batched.injected_denials + batched.pressure_episodes, 0u)
        << "plan never fired; the test exercises nothing";
}

TEST(OverlappedWalker, IdentityHoldsWithFaultPlanArmed)
{
    // Injected denials and pressure episodes fire at allocation events
    // (fault-time state), which batching must not displace. Order-3
    // denials exercise the single-frame fallback path without making
    // any fault unserviceable.
    ScenarioConfig config = small_config("pagerank", 7).with_fault_plan(
        FaultPlan{}.deny_guest(3, /*count=*/1'000)
                   .periodic_pressure(2'000));
    ScenarioResult serial = run_at_depth(config, 1);
    for (unsigned depth : kDepths) {
        if (depth == 1)
            continue;
        ScenarioResult batched = run_at_depth(config, depth);
        expect_identical(serial, batched, depth);
        EXPECT_GT(batched.injected_denials + batched.pressure_episodes,
                  0u)
            << "plan never fired; the test exercises nothing";
    }
}

TEST(OverlappedWalker, OverlappedTimingReducesCyclesOnly)
{
    // The opt-in MLP timing model may change cycle totals (that is its
    // point) but must keep every event counter identical.
    ScenarioConfig config = small_config("pagerank", 7);
    config.platform.walk_batch = 8;
    ScenarioResult serial_time = run_scenario(config);
    config.platform.overlapped_walk_timing = true;
    ScenarioResult mlp_time = run_scenario(config);

    EXPECT_LE(mlp_time.victim_cycles, serial_time.victim_cycles);
    EXPECT_EQ(mlp_time.victim_ops, serial_time.victim_ops);
    EXPECT_EQ(mlp_time.total_ops, serial_time.total_ops);
    const auto &am = serial_time.metrics.values();
    const auto &bm = mlp_time.metrics.values();
    for (const char *counter : {"tlb_misses", "cache_misses",
                                "guest_pt_mem_accesses",
                                "host_pt_mem_accesses"}) {
        auto ia = am.find(counter);
        auto ib = bm.find(counter);
        ASSERT_TRUE(ia != am.end() && ib != bm.end()) << counter;
        EXPECT_EQ(ia->second, ib->second) << counter;
    }
}

}  // namespace
}  // namespace ptm::sim
