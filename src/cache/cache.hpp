/**
 * @file
 * Tag-only set-associative cache model.
 *
 * The simulator only needs hit/miss behaviour and eviction order, never
 * line contents. The tag store is a single contiguous slab laid out
 * set-major: each set's tags are immediately followed by its replacement
 * state (LRU stamps or tree-PLRU direction bits), so one lookup touches
 * one short run of host cache lines — index arithmetic only, no per-set
 * objects, no pointers to chase. The MRU-hint way and occupancy count
 * live in dense per-set byte arrays that stay host-L1 resident.
 *
 * Tags are stored as 32 bits: a tag
 * is line >> log2(sets) and modeled physical memory is bounded far
 * below the 2^(38+log2 sets) bytes a 32-bit tag can name (a panic
 * guards the bound), so narrowing is exact — and it both halves the
 * bytes a scan touches (an 8-way set's tags are 32 contiguous bytes)
 * and gives the scan a native single-instruction SIMD compare on
 * baseline x86-64. Tag scans go through the SIMD probes of
 * common/simd.hpp (SSE2/NEON with a scalar fallback selected at
 * compile time); outcomes are identical to the scalar loop by the
 * probe contract. Replacement is dispatched with a single branch on
 * ReplacementKind instead of a virtual call (the virtual policies in
 * replacement.hpp remain as the reference model the tests compare
 * against). Write-allocate, no dirty tracking (latency is symmetric for
 * the metrics the paper reports).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/access.hpp"
#include "cache/replacement.hpp"
#include "common/log.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::cache {

/// Static shape of one cache level.
struct CacheGeometry {
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned ways = 8;
    ReplacementKind replacement = ReplacementKind::Lru;

    std::uint64_t num_sets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(ways) *
                             kCacheLineSize);
    }
};

/// Hit/miss counters, broken down by access kind.
struct CacheStats {
    Counter hits[kAccessKindCount];
    Counter misses[kAccessKindCount];

    std::uint64_t
    total_hits() const
    {
        std::uint64_t n = 0;
        for (const auto &c : hits)
            n += c.value();
        return n;
    }

    std::uint64_t
    total_misses() const
    {
        std::uint64_t n = 0;
        for (const auto &c : misses)
            n += c.value();
        return n;
    }
};

/**
 * One cache level. Lines are identified by line number (physical address
 * >> 6); set index is the low bits of the line number.
 */
class Cache {
  public:
    /// Tag stored in empty ways. Unreachable by real lines: tag_of()
    /// panics on any line whose tag would not fit below it, and every
    /// simulated physical space is orders of magnitude under that bound
    /// (2^38 bytes even for a single-set cache).
    static constexpr std::uint32_t kInvalidTag = ~0U;

    /// @param rng required only for random replacement; may be null.
    Cache(const CacheGeometry &geometry, Rng *rng = nullptr);

    /**
     * Look up @p line; on a miss the line is installed (evicting the
     * policy's victim).
     * @return true on hit.
     */
    bool
    access(std::uint64_t line, AccessKind kind)
    {
        // Same-line repeat: the previous access left this line resident
        // and MRU (hit or install), and nothing was installed or
        // invalidated since — a guaranteed hit whose recency touch would
        // be an order-preserving no-op (it is already the newest entry
        // of its set). Sequential workloads revisit a line for ~8
        // consecutive ops, so this skips most tag-scan work.
        if (line == memo_line_) {
            stats_.hits[static_cast<unsigned>(kind)].inc();
            return true;
        }
        const std::uint64_t set = line & (num_sets_ - 1);
        const std::uint32_t tag = tag_of(line);
        std::uint32_t *tags = set_tags(set);
        // MRU shortcut: a tag lives in at most one way of its set, so
        // probing the last-hit way first cannot change the outcome —
        // and temporal locality makes it the common case.
        const unsigned hint = hint_of(set);
        if (tags[hint] == tag) {
            touch(set, hint);
            stats_.hits[static_cast<unsigned>(kind)].inc();
            memo_line_ = line;
            return true;
        }
        // Empty ways hold kInvalidTag, so the tag compare alone decides:
        // no separate valid-bit load on the hot scan.
        const unsigned w = simd::find_u32_hot(tags, ways_, tag);
        if (w < ways_) {
            set_hint(set, w);
            touch(set, w);
            stats_.hits[static_cast<unsigned>(kind)].inc();
            memo_line_ = line;
            return true;
        }
        stats_.misses[static_cast<unsigned>(kind)].inc();
        install(set, tag);
        // The install leaves the line resident and MRU, so a repeat
        // access may take the memo path (and correctly report a hit).
        memo_line_ = line;
        return false;
    }

    /// Look up without installing or updating recency (test/metric hook).
    bool probe(std::uint64_t line) const;

    /// Install @p line without counting it as an access (fill from below).
    void fill(std::uint64_t line);

    /// Drop a line if present (models invalidation).
    void invalidate(std::uint64_t line);

    /// Drop everything.
    void flush();

    const CacheGeometry &geometry() const { return geometry_; }
    const CacheStats &stats() const { return stats_; }
    void reset_stats() { stats_ = CacheStats{}; }

    /// Register per-kind hit/miss counters under
    /// "<prefix>.hits.<kind>" / "<prefix>.misses.<kind>".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix,
                        obs::ResetScope scope = obs::ResetScope::Lifetime);

    /// Number of valid lines currently resident (metric/test hook).
    std::uint64_t resident_lines() const;

  private:
    /// Start of the set's slab run (u64 words).
    std::uint64_t *set_base(std::uint64_t set)
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    const std::uint64_t *set_base(std::uint64_t set) const
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    /// The set's ways_ 32-bit tags, packed at the head of its run
    /// (tag_words_ u64 words viewed as u32 lanes).
    std::uint32_t *set_tags(std::uint64_t set)
    {
        return reinterpret_cast<std::uint32_t *>(set_base(set));
    }
    const std::uint32_t *set_tags(std::uint64_t set) const
    {
        return reinterpret_cast<const std::uint32_t *>(set_base(set));
    }
    /// Replacement state of @p set (stamps or PLRU bits), right after
    /// its tags.
    std::uint64_t *set_repl(std::uint64_t set)
    {
        return set_base(set) + tag_words_;
    }
    const std::uint64_t *set_repl(std::uint64_t set) const
    {
        return set_base(set) + tag_words_;
    }

    /// Narrow a line's tag to the stored 32 bits, guarding exactness.
    std::uint32_t tag_of(std::uint64_t line) const
    {
        const std::uint64_t tag = line >> set_shift_;
        if (tag >= kInvalidTag)
            ptm_panic("%s: line %llu overflows the 32-bit tag store",
                      geometry_.name.c_str(),
                      static_cast<unsigned long long>(line));
        return static_cast<std::uint32_t>(tag);
    }
    unsigned hint_of(std::uint64_t set) const { return hint_[set]; }
    void set_hint(std::uint64_t set, unsigned way)
    {
        hint_[set] = static_cast<std::uint8_t>(way);
    }
    unsigned live_of(std::uint64_t set) const { return live_[set]; }

    /// Set every way of every set to kInvalidTag and clear replacement
    /// state (construction / flush).
    void reset_tags();

    /// Record a use of @p way — single branch on the replacement kind.
    void
    touch(std::uint64_t set, unsigned way)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru:
            set_repl(set)[way] = ++clock_;
            return;
          case ReplacementKind::TreePlru: {
            // Walk from root to the leaf for `way`, pointing each node
            // away from the path taken (nodes 1..leaves-1 used).
            std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = way >= span;
                bits[node] = right ? 0 : 1;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way -= span;
            }
            return;
          }
          case ReplacementKind::Random:
            return;
        }
    }

    /// Pick the way to evict from a full set.
    unsigned
    victim(std::uint64_t set)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru:
            // True LRU: smallest stamp wins, lowest way on ties — the
            // min_index_u64 contract.
            return simd::min_index_u64(set_repl(set), ways_);
          case ReplacementKind::TreePlru: {
            // Follow the pointers; clamp to a valid way for
            // non-power-of-two configurations.
            const std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned way = 0;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = bits[node] != 0;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way += span;
            }
            return way >= ways_ ? ways_ - 1 : way;
          }
          case ReplacementKind::Random:
            return static_cast<unsigned>(rng_->below(ways_));
        }
        ptm_panic("unreachable replacement kind");
    }

    void
    install(std::uint64_t set, std::uint32_t tag)
    {
        // Prefer the first empty way; otherwise evict the policy's
        // victim. Sets fill once and stay full, so the occupancy count
        // skips the empty-way scan in steady state.
        unsigned w;
        if (live_[set] < ways_) {
            w = simd::find_u32(set_tags(set), ways_, kInvalidTag);
            ++live_[set];
        } else {
            w = victim(set);
        }
        set_tags(set)[w] = tag;
        hint_[set] = static_cast<std::uint8_t>(w);
        touch(set, w);
    }

    CacheGeometry geometry_;
    std::uint64_t num_sets_;
    unsigned set_shift_;
    unsigned ways_;
    /// u64 words holding the set's ways_ packed u32 tags: ceil(ways/2).
    unsigned tag_words_;
    /// u64 words of replacement state per set: ways (LRU stamps),
    /// plru_leaves_ (tree bits), or 0 (random).
    unsigned repl_words_;
    unsigned set_stride_;  ///< tag_words_ + repl_words_
    unsigned plru_leaves_ = 0;  ///< ways rounded up to a power of two
    std::uint64_t clock_ = 0;
    Rng *rng_;
    std::vector<std::uint64_t> slab_;
    /// Last-hit way per set (MRU shortcut) and occupied-way count per
    /// set. Deliberately dense side arrays rather than words inside the
    /// slab: at one byte / two bytes per set they stay resident in the
    /// host's L1 across the whole simulation, while a per-set metadata
    /// word would sit on a cold slab line of its own. Both are pure
    /// lookup accelerators — they never affect replacement decisions or
    /// metrics.
    std::vector<std::uint8_t> hint_;
    std::vector<std::uint16_t> live_;
    /// Line of the most recent access (resident and MRU by construction);
    /// ~0 when no such guarantee holds. Cleared by fill/invalidate/flush
    /// because they can change residency behind the memo's back.
    std::uint64_t memo_line_ = ~0ULL;
    CacheStats stats_;
};

}  // namespace ptm::cache
