/**
 * @file
 * Tag-only set-associative cache model.
 *
 * The simulator only needs hit/miss behaviour and eviction order, never
 * line contents, so a cache is an array of sets of tags plus a replacement
 * policy per set. Write-allocate, no dirty tracking (latency is symmetric
 * for the metrics the paper reports).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/access.hpp"
#include "cache/replacement.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptm::cache {

/// Static shape of one cache level.
struct CacheGeometry {
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned ways = 8;
    ReplacementKind replacement = ReplacementKind::Lru;

    std::uint64_t num_sets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(ways) *
                             kCacheLineSize);
    }
};

/// Hit/miss counters, broken down by access kind.
struct CacheStats {
    Counter hits[kAccessKindCount];
    Counter misses[kAccessKindCount];

    std::uint64_t
    total_hits() const
    {
        std::uint64_t n = 0;
        for (const auto &c : hits)
            n += c.value();
        return n;
    }

    std::uint64_t
    total_misses() const
    {
        std::uint64_t n = 0;
        for (const auto &c : misses)
            n += c.value();
        return n;
    }
};

/**
 * One cache level. Lines are identified by line number (physical address
 * >> 6); set index is the low bits of the line number.
 */
class Cache {
  public:
    /// @param rng required only for random replacement; may be null.
    Cache(const CacheGeometry &geometry, Rng *rng = nullptr);

    /**
     * Look up @p line; on a miss the line is installed (evicting the
     * policy's victim).
     * @return true on hit.
     */
    bool access(std::uint64_t line, AccessKind kind);

    /// Look up without installing or updating recency (test/metric hook).
    bool probe(std::uint64_t line) const;

    /// Install @p line without counting it as an access (fill from below).
    void fill(std::uint64_t line);

    /// Drop a line if present (models invalidation).
    void invalidate(std::uint64_t line);

    /// Drop everything.
    void flush();

    const CacheGeometry &geometry() const { return geometry_; }
    const CacheStats &stats() const { return stats_; }
    void reset_stats() { stats_ = CacheStats{}; }

    /// Number of valid lines currently resident (metric/test hook).
    std::uint64_t resident_lines() const;

  private:
    struct Way {
        std::uint64_t tag = 0;
        bool valid = false;
    };

    struct Set {
        std::vector<Way> ways;
        std::unique_ptr<ReplacementPolicy> policy;
    };

    std::uint64_t set_index(std::uint64_t line) const
    {
        return line & (num_sets_ - 1);
    }
    std::uint64_t tag_of(std::uint64_t line) const { return line >> set_shift_; }

    int find_way(const Set &set, std::uint64_t tag) const;
    void install(Set &set, std::uint64_t tag);

    CacheGeometry geometry_;
    std::uint64_t num_sets_;
    unsigned set_shift_;
    std::vector<Set> sets_;
    CacheStats stats_;
};

}  // namespace ptm::cache
