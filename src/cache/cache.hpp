/**
 * @file
 * Tag-only set-associative cache model.
 *
 * The simulator only needs hit/miss behaviour and eviction order, never
 * line contents. The tag store is a single contiguous slab laid out
 * set-major: each set's tags are immediately followed by its replacement
 * state (LRU stamps or tree-PLRU direction bits), so one lookup touches
 * one short run of host cache lines — index arithmetic only, no per-set
 * objects, no pointers to chase. Replacement is dispatched with a single
 * branch on ReplacementKind instead of a virtual call (the virtual
 * policies in replacement.hpp remain as the reference model the tests
 * compare against). Write-allocate, no dirty tracking (latency is
 * symmetric for the metrics the paper reports).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/access.hpp"
#include "cache/replacement.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::cache {

/// Static shape of one cache level.
struct CacheGeometry {
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned ways = 8;
    ReplacementKind replacement = ReplacementKind::Lru;

    std::uint64_t num_sets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(ways) *
                             kCacheLineSize);
    }
};

/// Hit/miss counters, broken down by access kind.
struct CacheStats {
    Counter hits[kAccessKindCount];
    Counter misses[kAccessKindCount];

    std::uint64_t
    total_hits() const
    {
        std::uint64_t n = 0;
        for (const auto &c : hits)
            n += c.value();
        return n;
    }

    std::uint64_t
    total_misses() const
    {
        std::uint64_t n = 0;
        for (const auto &c : misses)
            n += c.value();
        return n;
    }
};

/**
 * One cache level. Lines are identified by line number (physical address
 * >> 6); set index is the low bits of the line number.
 */
class Cache {
  public:
    /// @param rng required only for random replacement; may be null.
    Cache(const CacheGeometry &geometry, Rng *rng = nullptr);

    /**
     * Look up @p line; on a miss the line is installed (evicting the
     * policy's victim).
     * @return true on hit.
     */
    bool
    access(std::uint64_t line, AccessKind kind)
    {
        const std::uint64_t set = line & (num_sets_ - 1);
        const std::uint64_t tag = line >> set_shift_;
        const std::uint64_t *tags = set_tags(set);
        for (unsigned w = 0; w < ways_; ++w) {
            // Tag first: equal tags are rare, so the valid byte is only
            // consulted on a candidate match (stale tags of invalidated
            // ways are rejected by it).
            if (tags[w] == tag &&
                valid_[set * ways_ + w] != 0) {
                touch(set, w);
                stats_.hits[static_cast<unsigned>(kind)].inc();
                return true;
            }
        }
        stats_.misses[static_cast<unsigned>(kind)].inc();
        install(set, tag);
        return false;
    }

    /// Look up without installing or updating recency (test/metric hook).
    bool probe(std::uint64_t line) const;

    /// Install @p line without counting it as an access (fill from below).
    void fill(std::uint64_t line);

    /// Drop a line if present (models invalidation).
    void invalidate(std::uint64_t line);

    /// Drop everything.
    void flush();

    const CacheGeometry &geometry() const { return geometry_; }
    const CacheStats &stats() const { return stats_; }
    void reset_stats() { stats_ = CacheStats{}; }

    /// Register per-kind hit/miss counters under
    /// "<prefix>.hits.<kind>" / "<prefix>.misses.<kind>".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix,
                        obs::ResetScope scope = obs::ResetScope::Lifetime);

    /// Number of valid lines currently resident (metric/test hook).
    std::uint64_t resident_lines() const;

  private:
    std::uint64_t *set_tags(std::uint64_t set)
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    const std::uint64_t *set_tags(std::uint64_t set) const
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    /// Replacement state of @p set (stamps or PLRU bits), right after
    /// its tags.
    std::uint64_t *set_repl(std::uint64_t set)
    {
        return set_tags(set) + ways_;
    }

    /// Record a use of @p way — single branch on the replacement kind.
    void
    touch(std::uint64_t set, unsigned way)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru:
            set_repl(set)[way] = ++clock_;
            return;
          case ReplacementKind::TreePlru: {
            // Walk from root to the leaf for `way`, pointing each node
            // away from the path taken (nodes 1..leaves-1 used).
            std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = way >= span;
                bits[node] = right ? 0 : 1;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way -= span;
            }
            return;
          }
          case ReplacementKind::Random:
            return;
        }
    }

    /// Pick the way to evict from a full set.
    unsigned
    victim(std::uint64_t set)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru: {
            // True LRU: smallest stamp wins, lowest way on ties.
            const std::uint64_t *stamps = set_repl(set);
            unsigned best = 0;
            for (unsigned w = 1; w < ways_; ++w) {
                if (stamps[w] < stamps[best])
                    best = w;
            }
            return best;
          }
          case ReplacementKind::TreePlru: {
            // Follow the pointers; clamp to a valid way for
            // non-power-of-two configurations.
            const std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned way = 0;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = bits[node] != 0;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way += span;
            }
            return way >= ways_ ? ways_ - 1 : way;
          }
          case ReplacementKind::Random:
            return static_cast<unsigned>(rng_->below(ways_));
        }
        ptm_panic("unreachable replacement kind");
    }

    void
    install(std::uint64_t set, std::uint64_t tag)
    {
        // Prefer an invalid way; otherwise evict the policy's victim.
        // Sets fill once and stay full, so track occupancy to skip the
        // invalid-way scan in steady state.
        unsigned w;
        if (live_[set] < ways_) {
            const std::size_t vbase =
                static_cast<std::size_t>(set) * ways_;
            w = 0;
            while (valid_[vbase + w] != 0)
                ++w;
            valid_[vbase + w] = 1;
            ++live_[set];
        } else {
            w = victim(set);
        }
        set_tags(set)[w] = tag;
        touch(set, w);
    }

    CacheGeometry geometry_;
    std::uint64_t num_sets_;
    unsigned set_shift_;
    unsigned ways_;
    /// u64 words of replacement state per set: ways (LRU stamps),
    /// plru_leaves_ (tree bits), or 0 (random).
    unsigned repl_words_;
    unsigned set_stride_;  ///< ways_ + repl_words_
    unsigned plru_leaves_ = 0;  ///< ways rounded up to a power of two
    std::uint64_t clock_ = 0;
    Rng *rng_;
    std::vector<std::uint64_t> slab_;
    std::vector<std::uint8_t> valid_;
    std::vector<unsigned> live_;  ///< valid ways per set
    CacheStats stats_;
};

}  // namespace ptm::cache
