/**
 * @file
 * Tag-only set-associative cache model.
 *
 * The simulator only needs hit/miss behaviour and eviction order, never
 * line contents. The tag store is a single contiguous slab laid out
 * set-major: each set's tags are immediately followed by its replacement
 * state (LRU stamps or tree-PLRU direction bits), so one lookup touches
 * one short run of host cache lines — index arithmetic only, no per-set
 * objects, no pointers to chase. Replacement is dispatched with a single
 * branch on ReplacementKind instead of a virtual call (the virtual
 * policies in replacement.hpp remain as the reference model the tests
 * compare against). Write-allocate, no dirty tracking (latency is
 * symmetric for the metrics the paper reports).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/access.hpp"
#include "cache/replacement.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::cache {

/// Static shape of one cache level.
struct CacheGeometry {
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned ways = 8;
    ReplacementKind replacement = ReplacementKind::Lru;

    std::uint64_t num_sets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(ways) *
                             kCacheLineSize);
    }
};

/// Hit/miss counters, broken down by access kind.
struct CacheStats {
    Counter hits[kAccessKindCount];
    Counter misses[kAccessKindCount];

    std::uint64_t
    total_hits() const
    {
        std::uint64_t n = 0;
        for (const auto &c : hits)
            n += c.value();
        return n;
    }

    std::uint64_t
    total_misses() const
    {
        std::uint64_t n = 0;
        for (const auto &c : misses)
            n += c.value();
        return n;
    }
};

/**
 * One cache level. Lines are identified by line number (physical address
 * >> 6); set index is the low bits of the line number.
 */
class Cache {
  public:
    /// Tag stored in empty ways. Unreachable by real lines: a tag is
    /// line >> set_shift_ and lines are physical addresses >> 6, so a
    /// real all-ones tag would need a ~2^70-byte address space.
    static constexpr std::uint64_t kInvalidTag = ~0ULL;

    /// @param rng required only for random replacement; may be null.
    Cache(const CacheGeometry &geometry, Rng *rng = nullptr);

    /**
     * Look up @p line; on a miss the line is installed (evicting the
     * policy's victim).
     * @return true on hit.
     */
    bool
    access(std::uint64_t line, AccessKind kind)
    {
        // Same-line repeat: the previous access left this line resident
        // and MRU (hit or install), and nothing was installed or
        // invalidated since — a guaranteed hit whose recency touch would
        // be an order-preserving no-op (it is already the newest entry
        // of its set). Sequential workloads revisit a line for ~8
        // consecutive ops, so this skips most tag-scan work.
        if (line == memo_line_) {
            stats_.hits[static_cast<unsigned>(kind)].inc();
            return true;
        }
        const std::uint64_t set = line & (num_sets_ - 1);
        const std::uint64_t tag = line >> set_shift_;
        const std::uint64_t *tags = set_tags(set);
        // MRU shortcut: a tag lives in at most one way of its set, so
        // probing the last-hit way first cannot change the outcome —
        // and temporal locality makes it the common case.
        const unsigned hint = hint_[set];
        if (tags[hint] == tag) {
            touch(set, hint);
            stats_.hits[static_cast<unsigned>(kind)].inc();
            memo_line_ = line;
            return true;
        }
        for (unsigned w = 0; w < ways_; ++w) {
            // Empty ways hold kInvalidTag, so the tag compare alone
            // decides: no separate valid-bit load on the hot loop.
            if (tags[w] == tag) {
                hint_[set] = static_cast<std::uint8_t>(w);
                touch(set, w);
                stats_.hits[static_cast<unsigned>(kind)].inc();
                memo_line_ = line;
                return true;
            }
        }
        stats_.misses[static_cast<unsigned>(kind)].inc();
        install(set, tag);
        // The install leaves the line resident and MRU, so a repeat
        // access may take the memo path (and correctly report a hit).
        memo_line_ = line;
        return false;
    }

    /// Look up without installing or updating recency (test/metric hook).
    bool probe(std::uint64_t line) const;

    /// Install @p line without counting it as an access (fill from below).
    void fill(std::uint64_t line);

    /// Drop a line if present (models invalidation).
    void invalidate(std::uint64_t line);

    /// Drop everything.
    void flush();

    const CacheGeometry &geometry() const { return geometry_; }
    const CacheStats &stats() const { return stats_; }
    void reset_stats() { stats_ = CacheStats{}; }

    /// Register per-kind hit/miss counters under
    /// "<prefix>.hits.<kind>" / "<prefix>.misses.<kind>".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix,
                        obs::ResetScope scope = obs::ResetScope::Lifetime);

    /// Number of valid lines currently resident (metric/test hook).
    std::uint64_t resident_lines() const;

  private:
    std::uint64_t *set_tags(std::uint64_t set)
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    const std::uint64_t *set_tags(std::uint64_t set) const
    {
        return &slab_[static_cast<std::size_t>(set) * set_stride_];
    }
    /// Replacement state of @p set (stamps or PLRU bits), right after
    /// its tags.
    std::uint64_t *set_repl(std::uint64_t set)
    {
        return set_tags(set) + ways_;
    }

    /// Set every way of every set to kInvalidTag and clear replacement
    /// state (construction / flush).
    void reset_tags();

    /// Record a use of @p way — single branch on the replacement kind.
    void
    touch(std::uint64_t set, unsigned way)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru:
            set_repl(set)[way] = ++clock_;
            return;
          case ReplacementKind::TreePlru: {
            // Walk from root to the leaf for `way`, pointing each node
            // away from the path taken (nodes 1..leaves-1 used).
            std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = way >= span;
                bits[node] = right ? 0 : 1;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way -= span;
            }
            return;
          }
          case ReplacementKind::Random:
            return;
        }
    }

    /// Pick the way to evict from a full set.
    unsigned
    victim(std::uint64_t set)
    {
        switch (geometry_.replacement) {
          case ReplacementKind::Lru: {
            // True LRU: smallest stamp wins, lowest way on ties.
            const std::uint64_t *stamps = set_repl(set);
            unsigned best = 0;
            for (unsigned w = 1; w < ways_; ++w) {
                if (stamps[w] < stamps[best])
                    best = w;
            }
            return best;
          }
          case ReplacementKind::TreePlru: {
            // Follow the pointers; clamp to a valid way for
            // non-power-of-two configurations.
            const std::uint64_t *bits = set_repl(set);
            unsigned node = 1;
            unsigned way = 0;
            unsigned span = plru_leaves_;
            while (span > 1) {
                span >>= 1;
                bool right = bits[node] != 0;
                node = node * 2 + (right ? 1 : 0);
                if (right)
                    way += span;
            }
            return way >= ways_ ? ways_ - 1 : way;
          }
          case ReplacementKind::Random:
            return static_cast<unsigned>(rng_->below(ways_));
        }
        ptm_panic("unreachable replacement kind");
    }

    void
    install(std::uint64_t set, std::uint64_t tag)
    {
        // Prefer an empty way; otherwise evict the policy's victim.
        // Sets fill once and stay full, so track occupancy to skip the
        // empty-way scan in steady state.
        unsigned w;
        if (live_[set] < ways_) {
            const std::uint64_t *tags = set_tags(set);
            w = 0;
            while (tags[w] != kInvalidTag)
                ++w;
            ++live_[set];
        } else {
            w = victim(set);
        }
        set_tags(set)[w] = tag;
        hint_[set] = static_cast<std::uint8_t>(w);
        touch(set, w);
    }

    CacheGeometry geometry_;
    std::uint64_t num_sets_;
    unsigned set_shift_;
    unsigned ways_;
    /// u64 words of replacement state per set: ways (LRU stamps),
    /// plru_leaves_ (tree bits), or 0 (random).
    unsigned repl_words_;
    unsigned set_stride_;  ///< ways_ + repl_words_
    unsigned plru_leaves_ = 0;  ///< ways rounded up to a power of two
    std::uint64_t clock_ = 0;
    Rng *rng_;
    std::vector<std::uint64_t> slab_;
    std::vector<unsigned> live_;  ///< occupied ways per set
    /// Last-hit/installed way per set (pure lookup accelerator; never
    /// affects replacement decisions or metrics).
    std::vector<std::uint8_t> hint_;
    /// Line of the most recent access (resident and MRU by construction);
    /// ~0 when no such guarantee holds. Cleared by fill/invalidate/flush
    /// because they can change residency behind the memo's back.
    std::uint64_t memo_line_ = ~0ULL;
    CacheStats stats_;
};

}  // namespace ptm::cache
