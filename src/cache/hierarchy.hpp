/**
 * @file
 * Multi-core cache hierarchy with latency accounting.
 *
 * Models the platform of the paper's Table 2 at reduced scale: per-core
 * private L1D and L2, one shared LLC, flat main-memory latency. Every
 * access is tagged with an AccessKind so the hierarchy can answer the
 * paper's central question — from where are guest-PT vs host-PT accesses
 * served (§3.3, Tables 1 and 4).
 *
 * Caches are stored by value (no unique_ptr indirection) and the access
 * cascade is inline: the whole per-access path from System::step down to
 * the tag scan resolves without a virtual call or heap hop.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cache/access.hpp"
#include "cache/cache.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptm::cache {

/// Shape and timing of the whole hierarchy.
struct HierarchyConfig {
    CacheGeometry l1 = {"L1D", 16 * 1024, 8, ReplacementKind::Lru};
    CacheGeometry l2 = {"L2", 64 * 1024, 8, ReplacementKind::Lru};
    CacheGeometry llc = {"LLC", 256 * 1024, 16, ReplacementKind::Lru};

    Cycles l1_latency = 4;
    Cycles l2_latency = 14;
    Cycles llc_latency = 44;
    Cycles memory_latency = 220;
};

/// Outcome of one hierarchy access.
struct AccessResult {
    ServedBy served_by = ServedBy::L1;
    Cycles latency = 0;
};

/// Counters of where accesses of each kind were served from.
struct HierarchyStats {
    Counter served[kAccessKindCount][kServedByCount];
    Counter accesses[kAccessKindCount];
    Counter cycles[kAccessKindCount];

    std::uint64_t
    served_by_memory(AccessKind kind) const
    {
        return served[static_cast<unsigned>(kind)]
                     [static_cast<unsigned>(ServedBy::Memory)].value();
    }
};

/**
 * The hierarchy: private L1/L2 per core, shared LLC. Inclusive fills — a
 * line served by memory is installed at every level on the access path.
 */
class MemoryHierarchy {
  public:
    MemoryHierarchy(const HierarchyConfig &config, unsigned num_cores,
                    Rng *rng = nullptr);

    /**
     * Access physical address @p paddr from @p core.
     * @return the serving level and its latency.
     */
    AccessResult
    access(unsigned core, Addr paddr, AccessKind kind)
    {
        if (core >= num_cores_)
            ptm_panic("access from core %u of %u", core, num_cores_);

        std::uint64_t line = line_number(paddr);
        ServedBy served;

        // Each level's miss installs the line during its own lookup
        // (write-allocate in Cache::access), so the cascade itself
        // performs the inclusive fill of every level on the path — no
        // separate fill pass is needed.
        if (l1_[core].access(line, kind)) {
            served = ServedBy::L1;
        } else if (l2_[core].access(line, kind)) {
            served = ServedBy::L2;
        } else if (llc_.access(line, kind)) {
            served = ServedBy::Llc;
        } else {
            served = ServedBy::Memory;
        }

        Cycles latency = latency_by_[static_cast<unsigned>(served)];
        unsigned k = static_cast<unsigned>(kind);
        stats_.served[k][static_cast<unsigned>(served)].inc();
        stats_.accesses[k].inc();
        stats_.cycles[k].inc(latency);
        return {served, latency};
    }

    /// Latency that an access served by @p level costs.
    Cycles
    latency_of(ServedBy level) const
    {
        switch (level) {
          case ServedBy::L1: return config_.l1_latency;
          case ServedBy::L2: return config_.l2_latency;
          case ServedBy::Llc: return config_.llc_latency;
          case ServedBy::Memory: return config_.memory_latency;
        }
        ptm_panic("unreachable serving level");
    }

    /// True if @p paddr currently hits anywhere in @p core's path.
    bool probe(unsigned core, Addr paddr) const;

    unsigned num_cores() const { return num_cores_; }
    const HierarchyConfig &config() const { return config_; }

    const HierarchyStats &stats() const { return stats_; }
    void reset_stats();

    /// Register the served-by matrix plus every cache's per-kind counters:
    /// "<prefix>.<kind>.served.<level>", "<prefix>.<kind>.accesses",
    /// "<prefix>.<kind>.cycles", "<prefix>.l1_<core>.*", ".l2_<core>.*",
    /// ".llc.*". All Measurement-scoped: the hierarchy is reset between
    /// the init and measure phases of a scenario.
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

    const Cache &l1(unsigned core) const { return l1_[core]; }
    const Cache &l2(unsigned core) const { return l2_[core]; }
    const Cache &llc() const { return llc_; }

    /// Drop all cached lines everywhere (e.g. between experiment phases).
    void flush_all();

  private:
    HierarchyConfig config_;
    unsigned num_cores_;
    /// latency_of() as a flat table, indexed by ServedBy — the hot
    /// access path reads this instead of branching on the level.
    Cycles latency_by_[kServedByCount] = {};
    std::vector<Cache> l1_;
    std::vector<Cache> l2_;
    Cache llc_;
    HierarchyStats stats_;
};

}  // namespace ptm::cache
