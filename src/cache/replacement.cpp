#include "cache/replacement.hpp"

#include "common/log.hpp"

namespace ptm::cache {

namespace {

/// True LRU via per-way use stamps; victim is the smallest stamp.
class LruPolicy final : public ReplacementPolicy {
  public:
    explicit LruPolicy(unsigned ways) : stamps_(ways, 0) {}

    void touch(unsigned way) override { stamps_[way] = ++clock_; }

    unsigned
    victim() override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < stamps_.size(); ++w) {
            if (stamps_[w] < stamps_[best])
                best = w;
        }
        return best;
    }

  private:
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/// Tree pseudo-LRU over a power-of-two (rounded-up) number of ways.
class TreePlruPolicy final : public ReplacementPolicy {
  public:
    explicit TreePlruPolicy(unsigned ways) : ways_(ways)
    {
        leaves_ = 1;
        while (leaves_ < ways_)
            leaves_ <<= 1;
        bits_.assign(leaves_, false);  // node 1..leaves_-1 used
    }

    void
    touch(unsigned way) override
    {
        // Walk from root to the leaf for `way`, pointing each node away
        // from the path taken.
        unsigned node = 1;
        unsigned span = leaves_;
        while (span > 1) {
            span >>= 1;
            bool right = way >= span;
            bits_[node] = !right;  // point away from the touched half
            node = node * 2 + (right ? 1 : 0);
            if (right)
                way -= span;
        }
    }

    unsigned
    victim() override
    {
        // Follow the pointers; clamp to a valid way for non-power-of-two
        // configurations.
        unsigned node = 1;
        unsigned way = 0;
        unsigned span = leaves_;
        while (span > 1) {
            span >>= 1;
            bool right = bits_[node];
            node = node * 2 + (right ? 1 : 0);
            if (right)
                way += span;
        }
        return way >= ways_ ? ways_ - 1 : way;
    }

  private:
    unsigned ways_;
    unsigned leaves_;
    std::vector<bool> bits_;
};

/// Uniform random victim selection.
class RandomPolicy final : public ReplacementPolicy {
  public:
    RandomPolicy(unsigned ways, Rng *rng) : ways_(ways), rng_(rng)
    {
        if (rng_ == nullptr)
            ptm_fatal("random replacement needs an Rng");
    }

    void touch(unsigned) override {}
    unsigned victim() override
    {
        return static_cast<unsigned>(rng_->below(ways_));
    }

  private:
    unsigned ways_;
    Rng *rng_;
};

}  // namespace

std::string
replacement_kind_name(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::Lru: return "LRU";
      case ReplacementKind::TreePlru: return "tree-PLRU";
      case ReplacementKind::Random: return "random";
    }
    return "unknown";
}

std::unique_ptr<ReplacementPolicy>
make_replacement_policy(ReplacementKind kind, unsigned ways, Rng *rng)
{
    if (ways == 0)
        ptm_fatal("replacement policy over zero ways");
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(ways);
      case ReplacementKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, rng);
    }
    ptm_panic("unreachable replacement kind");
}

}  // namespace ptm::cache
