#include "cache/hierarchy.hpp"

#include "common/log.hpp"

namespace ptm::cache {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config,
                                 unsigned num_cores, Rng *rng)
    : config_(config), num_cores_(num_cores)
{
    if (num_cores == 0)
        ptm_fatal("hierarchy needs at least one core");
    for (unsigned c = 0; c < num_cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(config_.l1, rng));
        l2_.push_back(std::make_unique<Cache>(config_.l2, rng));
    }
    llc_ = std::make_unique<Cache>(config_.llc, rng);
}

Cycles
MemoryHierarchy::latency_of(ServedBy level) const
{
    switch (level) {
      case ServedBy::L1: return config_.l1_latency;
      case ServedBy::L2: return config_.l2_latency;
      case ServedBy::Llc: return config_.llc_latency;
      case ServedBy::Memory: return config_.memory_latency;
    }
    ptm_panic("unreachable serving level");
}

AccessResult
MemoryHierarchy::access(unsigned core, Addr paddr, AccessKind kind)
{
    if (core >= num_cores_)
        ptm_panic("access from core %u of %u", core, num_cores_);

    std::uint64_t line = line_number(paddr);
    ServedBy served;

    if (l1_[core]->access(line, kind)) {
        served = ServedBy::L1;
    } else if (l2_[core]->access(line, kind)) {
        served = ServedBy::L2;
        l1_[core]->fill(line);
    } else if (llc_->access(line, kind)) {
        served = ServedBy::Llc;
        l2_[core]->fill(line);
        l1_[core]->fill(line);
    } else {
        served = ServedBy::Memory;
        llc_->fill(line);
        l2_[core]->fill(line);
        l1_[core]->fill(line);
    }

    Cycles latency = latency_of(served);
    unsigned k = static_cast<unsigned>(kind);
    stats_.served[k][static_cast<unsigned>(served)].inc();
    stats_.accesses[k].inc();
    stats_.cycles[k].inc(latency);
    return {served, latency};
}

bool
MemoryHierarchy::probe(unsigned core, Addr paddr) const
{
    std::uint64_t line = line_number(paddr);
    return l1_[core]->probe(line) || l2_[core]->probe(line) ||
           llc_->probe(line);
}

void
MemoryHierarchy::reset_stats()
{
    stats_ = HierarchyStats{};
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c]->reset_stats();
        l2_[c]->reset_stats();
    }
    llc_->reset_stats();
}

void
MemoryHierarchy::flush_all()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c]->flush();
        l2_[c]->flush();
    }
    llc_->flush();
}

}  // namespace ptm::cache
