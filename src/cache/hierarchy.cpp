#include "cache/hierarchy.hpp"

#include "common/log.hpp"

namespace ptm::cache {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config,
                                 unsigned num_cores, Rng *rng)
    : config_(config), num_cores_(num_cores), llc_(config.llc, rng)
{
    if (num_cores == 0)
        ptm_fatal("hierarchy needs at least one core");
    l1_.reserve(num_cores);
    l2_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c) {
        l1_.emplace_back(config_.l1, rng);
        l2_.emplace_back(config_.l2, rng);
    }
}

bool
MemoryHierarchy::probe(unsigned core, Addr paddr) const
{
    std::uint64_t line = line_number(paddr);
    return l1_[core].probe(line) || l2_[core].probe(line) ||
           llc_.probe(line);
}

void
MemoryHierarchy::reset_stats()
{
    stats_ = HierarchyStats{};
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c].reset_stats();
        l2_[c].reset_stats();
    }
    llc_.reset_stats();
}

void
MemoryHierarchy::flush_all()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c].flush();
        l2_[c].flush();
    }
    llc_.flush();
}

}  // namespace ptm::cache
