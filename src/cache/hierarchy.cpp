#include "cache/hierarchy.hpp"

#include "common/log.hpp"

namespace ptm::cache {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config,
                                 unsigned num_cores, Rng *rng)
    : config_(config), num_cores_(num_cores), llc_(config.llc, rng)
{
    if (num_cores == 0)
        ptm_fatal("hierarchy needs at least one core");
    latency_by_[static_cast<unsigned>(ServedBy::L1)] = config_.l1_latency;
    latency_by_[static_cast<unsigned>(ServedBy::L2)] = config_.l2_latency;
    latency_by_[static_cast<unsigned>(ServedBy::Llc)] = config_.llc_latency;
    latency_by_[static_cast<unsigned>(ServedBy::Memory)] =
        config_.memory_latency;
    l1_.reserve(num_cores);
    l2_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c) {
        l1_.emplace_back(config_.l1, rng);
        l2_.emplace_back(config_.l2, rng);
    }
}

bool
MemoryHierarchy::probe(unsigned core, Addr paddr) const
{
    std::uint64_t line = line_number(paddr);
    return l1_[core].probe(line) || l2_[core].probe(line) ||
           llc_.probe(line);
}

void
MemoryHierarchy::reset_stats()
{
    stats_ = HierarchyStats{};
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c].reset_stats();
        l2_[c].reset_stats();
    }
    llc_.reset_stats();
}

void
MemoryHierarchy::register_stats(obs::StatRegistry &registry,
                                const std::string &prefix)
{
    const obs::ResetScope scope = obs::ResetScope::Measurement;
    for (unsigned k = 0; k < kAccessKindCount; ++k) {
        const std::string kind =
            prefix + '.' + access_kind_name(static_cast<AccessKind>(k));
        for (unsigned s = 0; s < kServedByCount; ++s)
            registry.counter(
                kind + ".served." + served_by_name(static_cast<ServedBy>(s)),
                &stats_.served[k][s], scope);
        registry.counter(kind + ".accesses", &stats_.accesses[k], scope);
        registry.counter(kind + ".cycles", &stats_.cycles[k], scope);
    }
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c].register_stats(registry,
                              prefix + ".l1_" + std::to_string(c), scope);
        l2_[c].register_stats(registry,
                              prefix + ".l2_" + std::to_string(c), scope);
    }
    llc_.register_stats(registry, prefix + ".llc", scope);
}

void
MemoryHierarchy::flush_all()
{
    for (unsigned c = 0; c < num_cores_; ++c) {
        l1_[c].flush();
        l2_[c].flush();
    }
    llc_.flush();
}

}  // namespace ptm::cache
