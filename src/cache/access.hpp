/**
 * @file
 * Access classification shared by the cache hierarchy and the page walker.
 *
 * The paper's analysis hinges on separating, per memory-hierarchy level,
 * accesses made to ordinary data from accesses made to guest-PT and
 * host-PT nodes during nested walks; the hierarchy keeps stats per kind.
 */
#pragma once

#include <cstdint>
#include <string>

namespace ptm::cache {

/// Who is asking for this cache line.
enum class AccessKind : std::uint8_t {
    Data = 0,     ///< application load/store
    GuestPt = 1,  ///< page walker touching a guest page-table node
    HostPt = 2,   ///< page walker touching a host page-table node
};

inline constexpr unsigned kAccessKindCount = 3;

inline std::string
access_kind_name(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Data: return "data";
      case AccessKind::GuestPt: return "guest-pt";
      case AccessKind::HostPt: return "host-pt";
    }
    return "unknown";
}

/// Which level of the hierarchy served an access.
enum class ServedBy : std::uint8_t {
    L1 = 0,
    L2 = 1,
    Llc = 2,
    Memory = 3,
};

inline constexpr unsigned kServedByCount = 4;

inline std::string
served_by_name(ServedBy level)
{
    switch (level) {
      case ServedBy::L1: return "L1";
      case ServedBy::L2: return "L2";
      case ServedBy::Llc: return "LLC";
      case ServedBy::Memory: return "memory";
    }
    return "unknown";
}

}  // namespace ptm::cache
