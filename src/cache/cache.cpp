#include "cache/cache.hpp"

#include <bit>

#include "common/log.hpp"

namespace ptm::cache {

Cache::Cache(const CacheGeometry &geometry, Rng *rng) : geometry_(geometry)
{
    num_sets_ = geometry_.num_sets();
    if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0) {
        ptm_fatal("%s: set count %llu is not a nonzero power of two "
                  "(size=%llu ways=%u)",
                  geometry_.name.c_str(),
                  static_cast<unsigned long long>(num_sets_),
                  static_cast<unsigned long long>(geometry_.size_bytes),
                  geometry_.ways);
    }
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));

    sets_.resize(num_sets_);
    for (Set &set : sets_) {
        set.ways.resize(geometry_.ways);
        set.policy =
            make_replacement_policy(geometry_.replacement, geometry_.ways,
                                    rng);
    }
}

int
Cache::find_way(const Set &set, std::uint64_t tag) const
{
    for (unsigned w = 0; w < set.ways.size(); ++w) {
        if (set.ways[w].valid && set.ways[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

void
Cache::install(Set &set, std::uint64_t tag)
{
    // Prefer an invalid way; otherwise evict the policy's victim.
    for (unsigned w = 0; w < set.ways.size(); ++w) {
        if (!set.ways[w].valid) {
            set.ways[w] = {tag, true};
            set.policy->touch(w);
            return;
        }
    }
    unsigned victim = set.policy->victim();
    set.ways[victim] = {tag, true};
    set.policy->touch(victim);
}

bool
Cache::access(std::uint64_t line, AccessKind kind)
{
    Set &set = sets_[set_index(line)];
    std::uint64_t tag = tag_of(line);
    int way = find_way(set, tag);
    if (way >= 0) {
        set.policy->touch(static_cast<unsigned>(way));
        stats_.hits[static_cast<unsigned>(kind)].inc();
        return true;
    }
    stats_.misses[static_cast<unsigned>(kind)].inc();
    install(set, tag);
    return false;
}

bool
Cache::probe(std::uint64_t line) const
{
    const Set &set = sets_[set_index(line)];
    return find_way(set, tag_of(line)) >= 0;
}

void
Cache::fill(std::uint64_t line)
{
    Set &set = sets_[set_index(line)];
    std::uint64_t tag = tag_of(line);
    if (find_way(set, tag) < 0)
        install(set, tag);
}

void
Cache::invalidate(std::uint64_t line)
{
    Set &set = sets_[set_index(line)];
    int way = find_way(set, tag_of(line));
    if (way >= 0)
        set.ways[static_cast<unsigned>(way)].valid = false;
}

void
Cache::flush()
{
    for (Set &set : sets_) {
        for (Way &way : set.ways)
            way.valid = false;
    }
}

std::uint64_t
Cache::resident_lines() const
{
    std::uint64_t n = 0;
    for (const Set &set : sets_) {
        for (const Way &way : set.ways) {
            if (way.valid)
                ++n;
        }
    }
    return n;
}

}  // namespace ptm::cache
