#include "cache/cache.hpp"

#include <bit>

namespace ptm::cache {

Cache::Cache(const CacheGeometry &geometry, Rng *rng)
    : geometry_(geometry), rng_(rng)
{
    if (geometry_.ways == 0)
        ptm_fatal("%s: cache with zero ways", geometry_.name.c_str());
    num_sets_ = geometry_.num_sets();
    if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0) {
        ptm_fatal("%s: set count %llu is not a nonzero power of two "
                  "(size=%llu ways=%u)",
                  geometry_.name.c_str(),
                  static_cast<unsigned long long>(num_sets_),
                  static_cast<unsigned long long>(geometry_.size_bytes),
                  geometry_.ways);
    }
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    ways_ = geometry_.ways;

    switch (geometry_.replacement) {
      case ReplacementKind::Lru:
        repl_words_ = ways_;
        break;
      case ReplacementKind::TreePlru:
        plru_leaves_ = 1;
        while (plru_leaves_ < ways_)
            plru_leaves_ <<= 1;
        repl_words_ = plru_leaves_;
        break;
      case ReplacementKind::Random:
        if (rng_ == nullptr)
            ptm_fatal("%s: random replacement needs an Rng",
                      geometry_.name.c_str());
        repl_words_ = 0;
        break;
    }
    tag_words_ = (ways_ + 1) / 2;
    set_stride_ = tag_words_ + repl_words_;

    slab_.assign(static_cast<std::size_t>(num_sets_) * set_stride_, 0);
    hint_.assign(num_sets_, 0);
    live_.assign(num_sets_, 0);
    reset_tags();
}

void
Cache::reset_tags()
{
    // Tags to the empty sentinel, replacement state and the hint/live
    // accelerators to zero. Stale replacement state is never consulted:
    // a set refills through the empty-way scan, and every install
    // touches its way first.
    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        std::uint32_t *tags = set_tags(set);
        for (unsigned w = 0; w < 2 * tag_words_; ++w)
            tags[w] = kInvalidTag;  // including the pad lane of odd ways
        std::uint64_t *repl = set_repl(set);
        for (unsigned r = 0; r < repl_words_; ++r)
            repl[r] = 0;
        hint_[set] = 0;
        live_[set] = 0;
    }
    memo_line_ = ~0ULL;
}

bool
Cache::probe(std::uint64_t line) const
{
    const std::uint64_t set = line & (num_sets_ - 1);
    const std::uint32_t tag = tag_of(line);
    return simd::find_u32(set_tags(set), ways_, tag) < ways_;
}

void
Cache::fill(std::uint64_t line)
{
    // The install may evict the memoized line, so drop the memo.
    memo_line_ = ~0ULL;
    const std::uint64_t set = line & (num_sets_ - 1);
    const std::uint32_t tag = tag_of(line);
    if (simd::find_u32(set_tags(set), ways_, tag) < ways_)
        return;
    install(set, tag);
}

void
Cache::invalidate(std::uint64_t line)
{
    memo_line_ = ~0ULL;
    const std::uint64_t set = line & (num_sets_ - 1);
    const std::uint32_t tag = tag_of(line);
    std::uint32_t *tags = set_tags(set);
    const unsigned w = simd::find_u32(tags, ways_, tag);
    if (w < ways_) {
        tags[w] = kInvalidTag;
        --live_[set];
    }
}

void
Cache::flush()
{
    reset_tags();
}

void
Cache::register_stats(obs::StatRegistry &registry,
                      const std::string &prefix, obs::ResetScope scope)
{
    for (unsigned k = 0; k < kAccessKindCount; ++k) {
        const std::string kind =
            access_kind_name(static_cast<AccessKind>(k));
        registry.counter(prefix + ".hits." + kind, &stats_.hits[k], scope);
        registry.counter(prefix + ".misses." + kind, &stats_.misses[k],
                         scope);
    }
}

std::uint64_t
Cache::resident_lines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t set = 0; set < num_sets_; ++set)
        n += live_of(set);
    return n;
}

}  // namespace ptm::cache
