/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * A policy instance manages one set of @c ways ways. Policies are tiny and
 * allocated per-set; the factory returns them by unique_ptr so caches can
 * be configured at runtime (the ablation benches sweep policies).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ptm::cache {

/// Supported replacement policies.
enum class ReplacementKind : std::uint8_t {
    Lru,      ///< true least-recently-used
    TreePlru, ///< tree pseudo-LRU (as in most real L1s)
    Random,   ///< uniform random victim
};

std::string replacement_kind_name(ReplacementKind kind);

/**
 * Per-set replacement state. `touch` records a use of a way, `victim`
 * selects the way to evict (invalid ways are chosen by the cache before
 * consulting the policy).
 */
class ReplacementPolicy {
  public:
    virtual ~ReplacementPolicy() = default;

    /// Record that @p way was accessed (hit or fill).
    virtual void touch(unsigned way) = 0;

    /// Pick the way to evict.
    virtual unsigned victim() = 0;
};

/// Construct a policy instance for one set of @p ways ways.
std::unique_ptr<ReplacementPolicy>
make_replacement_policy(ReplacementKind kind, unsigned ways, Rng *rng);

}  // namespace ptm::cache
