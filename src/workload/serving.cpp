#include "workload/serving.hpp"

#include <cmath>
#include <numeric>

namespace ptm::workload {

namespace {

constexpr Addr
mib(double n)
{
    return static_cast<Addr>(n * 1024.0 * 1024.0);
}

Addr
scaled_bytes(double megabytes, double scale)
{
    Addr bytes = mib(megabytes * scale);
    return bytes < kPageSize ? kPageSize : page_ceil(bytes);
}

constexpr std::uint64_t kLinesPerPage = kPageSize / kCacheLineSize;

}  // namespace

// ---------------------------------------------------------------------
// ZipfianSampler

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta)
{
    double zetan = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ = zetan;
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianSampler::next(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return n_ > 1 ? 1 : 0;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

double
ZipfianSampler::mass(std::uint64_t rank) const
{
    return 1.0 /
           std::pow(static_cast<double>(rank + 1), theta_) / zetan_;
}

// ---------------------------------------------------------------------
// kv_tier

KvTierWorkload::KvTierWorkload(std::string name,
                               const WorkloadOptions &options)
    : name_(std::move(name)),
      rng_(detail::mix_seed(name_, options.seed))
{
    const WorkloadParams &p = options.params;
    slab_bytes_ = scaled_bytes(p.get("slab_mb", 24.0), options.scale);
    value_bytes_ = p.get_u64("value_bytes", 1024);
    if (value_bytes_ < kCacheLineSize)
        value_bytes_ = kCacheLineSize;
    value_bytes_ = (value_bytes_ + kCacheLineSize - 1) &
                   ~(kCacheLineSize - 1);
    value_lines_ = static_cast<unsigned>(p.get_u64("value_lines", 4));
    if (value_lines_ == 0)
        value_lines_ = 1;
    connections_ = static_cast<unsigned>(p.get_u64("connections", 16));
    if (connections_ == 0)
        connections_ = 1;
    arena_bytes_ = page_ceil(p.get_u64("arena_kb", 64) * 1024);
    if (arena_bytes_ == 0)
        arena_bytes_ = kPageSize;
    requests_per_conn_churn_ = p.get_u64("requests_per_conn_churn", 256);
    write_fraction_ = p.get("write_fraction", 0.1);
    theta_ = p.get("theta", 0.99);
    total_ops_ = options.total_ops;

    value_count_ = slab_bytes_ / value_bytes_;
    if (value_count_ == 0)
        value_count_ = 1;
    zipf_ = std::make_unique<ZipfianSampler>(value_count_, theta_);
    // Scatter popularity ranks across the slab with a golden-ratio
    // stride (forced coprime so every rank keeps a distinct slot):
    // hot keys land on different pages, as a real slab allocator's
    // insertion order would place them.
    rank_stride_ = static_cast<std::uint64_t>(
        static_cast<double>(value_count_) * 0.6180339887498949);
    if (rank_stride_ == 0)
        rank_stride_ = 1;
    while (std::gcd(rank_stride_, value_count_) != 1)
        ++rank_stride_;
}

Addr
KvTierWorkload::static_footprint() const
{
    return slab_bytes_ + Addr{connections_} * arena_bytes_;
}

void
KvTierWorkload::setup(WorkloadContext &ctx)
{
    slab_base_ = ctx.mmap(slab_bytes_);
    arenas_.clear();
    for (unsigned c = 0; c < connections_; ++c)
        arenas_.push_back(ctx.mmap(arena_bytes_));
    conn_requests_.assign(connections_, 0);
}

bool
KvTierWorkload::churn_due() const
{
    if (requests_per_conn_churn_ == 0)
        return false;
    const auto conn =
        static_cast<unsigned>(request_seq_ % connections_);
    return conn_requests_[conn] >= requests_per_conn_churn_;
}

void
KvTierWorkload::start_request(WorkloadContext &ctx)
{
    const auto conn = static_cast<unsigned>(request_seq_ % connections_);
    if (requests_per_conn_churn_ != 0 &&
        conn_requests_[conn] >= requests_per_conn_churn_) {
        // The connection disconnects; the next client's arena lands
        // wherever the allocator puts it now.
        ctx.munmap(arenas_[conn]);
        arenas_[conn] = ctx.mmap(arena_bytes_);
        conn_requests_[conn] = 0;
    }
    ++conn_requests_[conn];
    ++request_seq_;

    burst_.clear();
    burst_pos_ = 0;
    // Request parsing scratch: two writes into the connection arena.
    const std::uint64_t arena_lines = arena_bytes_ / kCacheLineSize;
    for (int i = 0; i < 2; ++i) {
        const Addr off = rng_.below(arena_lines) * kCacheLineSize;
        burst_.push_back({arenas_[conn] + off, true});
    }
    // The key lookup: Zipfian rank, scattered to its slab slot; GET
    // reads the value lines, SET rewrites them.
    const std::uint64_t rank = zipf_->next(rng_);
    const std::uint64_t slot = (rank * rank_stride_) % value_count_;
    const bool is_write = rng_.chance(write_fraction_);
    const Addr value_base = slab_base_ + slot * value_bytes_;
    for (unsigned l = 0; l < value_lines_; ++l)
        burst_.push_back(
            {value_base + (l * kCacheLineSize) % value_bytes_, is_write});
}

std::optional<MemOp>
KvTierWorkload::next(WorkloadContext &ctx)
{
    if (initializing_) {
        // Fault the slab then the arenas in address order — the
        // allocation phase whose placement the policies differ on.
        const std::uint64_t slab_pages = slab_bytes_ / kPageSize;
        const std::uint64_t arena_pages = arena_bytes_ / kPageSize;
        const std::uint64_t init_pages =
            slab_pages + arena_pages * connections_;
        MemOp op;
        op.write = true;
        if (init_page_ < slab_pages) {
            op.gva = slab_base_ + init_page_ * kPageSize;
        } else {
            const std::uint64_t a = init_page_ - slab_pages;
            op.gva = arenas_[static_cast<std::size_t>(a / arena_pages)] +
                     (a % arena_pages) * kPageSize;
        }
        if (++init_page_ >= init_pages)
            initializing_ = false;
        return op;
    }
    if (total_ops_ != 0 && ops_done_ >= total_ops_)
        return std::nullopt;
    if (burst_pos_ >= burst_.size())
        start_request(ctx);
    ++ops_done_;
    return burst_[burst_pos_++];
}

unsigned
KvTierWorkload::next_batch(WorkloadContext &ctx, MemOp *out, unsigned max)
{
    unsigned n = 0;
    while (n < max) {
        // A request boundary with a churn pending would interact with
        // the context mid-batch: end the batch first.
        if (!initializing_ && n > 0 && burst_pos_ >= burst_.size() &&
            churn_due())
            break;
        std::optional<MemOp> op = next(ctx);
        if (!op)
            break;
        out[n++] = *op;
    }
    return n;
}

// ---------------------------------------------------------------------
// fork_storm

ForkStormWorkload::ForkStormWorkload(std::string name,
                                     const WorkloadOptions &options)
    : name_(std::move(name)),
      rng_(detail::mix_seed(name_, options.seed))
{
    const WorkloadParams &p = options.params;
    image_bytes_ = scaled_bytes(p.get("image_mb", 16.0), options.scale);
    scratch_bytes_ =
        scaled_bytes(p.get("scratch_kb", 256.0) / 1024.0, options.scale);
    arena_bytes_ = page_ceil(p.get_u64("arena_kb", 32) * 1024);
    if (arena_bytes_ == 0)
        arena_bytes_ = kPageSize;
    request_ops_ = static_cast<unsigned>(p.get_u64("request_ops", 96));
    if (request_ops_ == 0)
        request_ops_ = 1;
    write_fraction_ = p.get("write_fraction", 0.25);
    total_ops_ = options.total_ops;
}

Addr
ForkStormWorkload::static_footprint() const
{
    return image_bytes_ + scratch_bytes_;
}

void
ForkStormWorkload::setup(WorkloadContext &ctx)
{
    image_base_ = ctx.mmap(image_bytes_);
    scratch_base_ = ctx.mmap(scratch_bytes_);
}

void
ForkStormWorkload::start_request(WorkloadContext &ctx)
{
    // The previous request's arena dies when the next request arrives,
    // not at the end of the old one: both interactions then sit at the
    // first op of the new request, where the batch contract allows them.
    if (arena_base_ != 0)
        ctx.munmap(arena_base_);
    arena_base_ = ctx.mmap(arena_bytes_);
    arena_cursor_ = 0;
    ops_left_in_request_ = request_ops_;
}

MemOp
ForkStormWorkload::request_op()
{
    const double r = rng_.uniform();
    if (r < 0.45) {
        // Request-local allocation: sequential writes into the arena.
        MemOp op{arena_base_ + arena_cursor_, true};
        arena_cursor_ = (arena_cursor_ + kCacheLineSize) % arena_bytes_;
        return op;
    }
    if (r < 0.85) {
        // Function image: mostly reads, but a write_fraction of stores
        // (globals, lazy relocations) — the COW faults of a fork storm.
        const Addr page = rng_.below(image_bytes_ / kPageSize);
        const Addr line = rng_.below(kLinesPerPage);
        return {image_base_ + page * kPageSize + line * kCacheLineSize,
                rng_.chance(write_fraction_)};
    }
    const Addr line = rng_.below(scratch_bytes_ / kCacheLineSize);
    return {scratch_base_ + line * kCacheLineSize, true};
}

std::optional<MemOp>
ForkStormWorkload::next(WorkloadContext &ctx)
{
    if (initializing_) {
        const std::uint64_t image_pages = image_bytes_ / kPageSize;
        const std::uint64_t init_pages =
            image_pages + scratch_bytes_ / kPageSize;
        MemOp op;
        op.write = true;
        op.gva = init_page_ < image_pages
                     ? image_base_ + init_page_ * kPageSize
                     : scratch_base_ +
                           (init_page_ - image_pages) * kPageSize;
        if (++init_page_ >= init_pages)
            initializing_ = false;
        return op;
    }
    if (total_ops_ != 0 && ops_done_ >= total_ops_)
        return std::nullopt;
    if (ops_left_in_request_ == 0)
        start_request(ctx);
    --ops_left_in_request_;
    ++ops_done_;
    return request_op();
}

unsigned
ForkStormWorkload::next_batch(WorkloadContext &ctx, MemOp *out,
                              unsigned max)
{
    unsigned n = 0;
    while (n < max) {
        // Every request boundary remaps the arena: end the batch before
        // one that is not the batch's first op.
        if (!initializing_ && n > 0 && ops_left_in_request_ == 0)
            break;
        std::optional<MemOp> op = next(ctx);
        if (!op)
            break;
        out[n++] = *op;
    }
    return n;
}

// ---------------------------------------------------------------------
// ws_estimate

WsEstimateWorkload::WsEstimateWorkload(std::string name,
                                       const WorkloadOptions &options)
    : name_(std::move(name)),
      rng_(detail::mix_seed(name_, options.seed))
{
    const WorkloadParams &p = options.params;
    heap_bytes_ = scaled_bytes(p.get("heap_mb", 32.0), options.scale);
    hot_pages_ = p.get_u64("hot_pages", 512);
    if (hot_pages_ == 0)
        hot_pages_ = 1;
    shift_every_ = p.get_u64("shift_every", 20000);
    if (shift_every_ == 0)
        shift_every_ = 1;
    write_fraction_ = p.get("write_fraction", 0.7);
    hot_fraction_ = p.get("hot_fraction", 0.9);
    total_ops_ = options.total_ops;
}

void
WsEstimateWorkload::setup(WorkloadContext &ctx)
{
    heap_base_ = ctx.mmap(heap_bytes_);
    heap_pages_ = heap_bytes_ / kPageSize;
}

MemOp
WsEstimateWorkload::compute_op()
{
    window_ = ops_done_ / shift_every_;
    const std::uint64_t span =
        hot_pages_ < heap_pages_ ? hot_pages_ : heap_pages_;
    const std::uint64_t base = (window_ * hot_pages_) % heap_pages_;
    const std::uint64_t page =
        rng_.chance(hot_fraction_) ? (base + rng_.below(span)) % heap_pages_
                                   : rng_.below(heap_pages_);
    const Addr line = rng_.below(kLinesPerPage);
    return {heap_base_ + page * kPageSize + line * kCacheLineSize,
            rng_.chance(write_fraction_)};
}

std::optional<MemOp>
WsEstimateWorkload::next(WorkloadContext &)
{
    if (initializing_) {
        MemOp op{heap_base_ + init_page_ * kPageSize, true};
        if (++init_page_ >= heap_pages_)
            initializing_ = false;
        return op;
    }
    if (total_ops_ != 0 && ops_done_ >= total_ops_)
        return std::nullopt;
    MemOp op = compute_op();
    ++ops_done_;
    return op;
}

unsigned
WsEstimateWorkload::next_batch(WorkloadContext &ctx, MemOp *out,
                               unsigned max)
{
    // No context interactions after setup: batch freely.
    unsigned n = 0;
    while (n < max) {
        std::optional<MemOp> op = next(ctx);
        if (!op)
            break;
        out[n++] = *op;
    }
    return n;
}

// ---------------------------------------------------------------------

namespace detail {

void
register_serving_workloads()
{
    register_workload("kv_tier", [](const WorkloadOptions &options) {
        return std::make_unique<KvTierWorkload>("kv_tier", options);
    });
    register_workload("fork_storm", [](const WorkloadOptions &options) {
        return std::make_unique<ForkStormWorkload>("fork_storm", options);
    });
    register_workload("ws_estimate", [](const WorkloadOptions &options) {
        return std::make_unique<WsEstimateWorkload>("ws_estimate",
                                                    options);
    });
}

}  // namespace detail

}  // namespace ptm::workload
