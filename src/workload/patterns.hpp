/**
 * @file
 * Composable access-pattern building blocks.
 *
 * A pattern generates a stream of (offset, read/write) pairs relative to a
 * region it is bound to. Workloads are mixtures of patterns over their
 * regions; the catalog (catalog.cpp) assembles per-benchmark mixtures that
 * mimic the memory behaviour of the paper's Table 3 applications.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/workload.hpp"

namespace ptm::workload {

/// A bound virtual region (assigned at setup time).
struct Region {
    Addr base = 0;
    Addr size = 0;

    std::uint64_t pages() const { return size / kPageSize; }
};

/**
 * Stream of accesses within one region.
 */
class AccessPattern {
  public:
    virtual ~AccessPattern() = default;

    /// Bind to the region the pattern walks (called once after mmap).
    void bind(const Region &region) { region_ = region; }
    const Region &region() const { return region_; }

    /// Produce the next access.
    virtual MemOp next(Rng &rng) = 0;

  protected:
    Region region_;
};

/**
 * Sequential sweep with a fixed stride, wrapping around; a fraction of the
 * operations are writes. Models array initialization, streaming kernels
 * (xz windows, objdet weight reads), and edge-array scans.
 */
class SequentialPattern final : public AccessPattern {
  public:
    SequentialPattern(Addr stride, double write_fraction)
        : stride_(stride), write_fraction_(write_fraction)
    {
    }

    MemOp next(Rng &rng) override;

  private:
    Addr stride_;
    double write_fraction_;
    Addr cursor_ = 0;
};

/**
 * Uniform random accesses over the whole region. Models pointer-heavy
 * irregular structures (mcf arcs, hash tables): maximal TLB pressure,
 * no spatial locality.
 */
class RandomPattern final : public AccessPattern {
  public:
    explicit RandomPattern(double write_fraction)
        : write_fraction_(write_fraction)
    {
    }

    MemOp next(Rng &rng) override;

  private:
    double write_fraction_;
};

/**
 * Clustered accesses: pick a random cluster of @p cluster_bytes, issue
 * @p dwell_ops accesses inside it (sequentially with a small random
 * jitter), then jump to another cluster. Models partition-centric graph
 * processing (GPOP) and heap-object locality (omnetpp): spatial locality
 * at a tunable granularity with irregular inter-cluster jumps.
 */
class ClusteredPattern final : public AccessPattern {
  public:
    ClusteredPattern(Addr cluster_bytes, unsigned dwell_ops,
                     double write_fraction)
        : cluster_bytes_(cluster_bytes), dwell_ops_(dwell_ops),
          write_fraction_(write_fraction)
    {
    }

    MemOp next(Rng &rng) override;

  private:
    Addr cluster_bytes_;
    unsigned dwell_ops_;
    double write_fraction_;
    Addr cluster_base_ = 0;
    unsigned remaining_ = 0;
    Addr cursor_ = 0;
};

/**
 * Page-granular sweep: pick a random aligned window of
 * @p window_pages pages, visit its pages in ascending order with
 * @p accesses_per_page sparse accesses inside each page, then jump to
 * another window. Models sorted-neighbour graph partitions (GPOP),
 * dictionary windows (xz), and column scans: little intra-page reuse but
 * strong *page-level* spatial locality — the access shape whose nested
 * walks PTEMagnet accelerates (Figure 2).
 */
class PageSweepPattern final : public AccessPattern {
  public:
    /**
     * @param revisits number of consecutive sweeps over each chosen
     *        window (xz-style dictionary re-scans: later sweeps hit the
     *        data caches but still pressure the TLB).
     */
    PageSweepPattern(unsigned window_pages, unsigned accesses_per_page,
                     double write_fraction, unsigned revisits = 1)
        : window_pages_(window_pages),
          accesses_per_page_(accesses_per_page),
          write_fraction_(write_fraction), revisits_(revisits)
    {
    }

    MemOp next(Rng &rng) override;

  private:
    unsigned window_pages_;
    unsigned accesses_per_page_;
    double write_fraction_;
    unsigned revisits_;
    Addr window_base_ = 0;
    unsigned page_in_window_ = 0;
    unsigned access_in_page_ = 0;
    unsigned sweeps_left_ = 0;
    bool active_ = false;
};

/// Construction helpers keep catalog code terse.
std::unique_ptr<SequentialPattern> sequential(Addr stride,
                                              double write_fraction = 0.0);
std::unique_ptr<RandomPattern> random_uniform(double write_fraction = 0.0);
std::unique_ptr<ClusteredPattern> clustered(Addr cluster_bytes,
                                            unsigned dwell_ops,
                                            double write_fraction = 0.0);
std::unique_ptr<PageSweepPattern> page_sweep(unsigned window_pages,
                                             unsigned accesses_per_page,
                                             double write_fraction = 0.0,
                                             unsigned revisits = 1);

}  // namespace ptm::workload
