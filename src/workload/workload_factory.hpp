/**
 * @file
 * String-keyed registry of workload generators — the third factory of
 * the trio (vm::provider_factory for allocation policies,
 * pt::table_factory for translation structures, this one for the op
 * streams driving them).
 *
 * Workloads are chosen by name in ScenarioConfig ("pagerank",
 * "kv_tier", ...) with a WorkloadParams bag carrying generator-specific
 * knobs, so new generators need no catalog edits and become sweepable by
 * the suite "workload" axis immediately. The catalog presets
 * (catalog.cpp) and the serving tier (serving.cpp) register themselves
 * here; out-of-tree generators use WorkloadRegistrar.
 *
 * Unknown names fail fast with a SimError listing every registered name.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "workload/workload.hpp"

namespace ptm::workload {

/// Generator knobs ride in the same insertion-ordered key/value bag as
/// policy knobs, and round-trip through BENCH_*.json the same way.
using WorkloadParams = PolicyParams;

/// Knobs shared by all generators.
struct WorkloadOptions {
    double scale = 1.0;        ///< footprint multiplier
    std::uint64_t seed = 1;    ///< RNG seed (combined with the name hash)
    std::uint64_t total_ops = 0;  ///< override compute-op budget (0: keep
                                  ///< the preset default / infinite)
    WorkloadParams params;     ///< generator-specific knobs; unknown keys
                               ///< are ignored by convention
};

/// Constructor signature for registered workloads. The registered name is
/// captured by the ctor itself (it seeds the generator's RNG).
using WorkloadCtor =
    std::function<std::unique_ptr<Workload>(const WorkloadOptions &)>;

/// Register @p ctor under @p name; replaces an existing registration.
void register_workload(const std::string &name, WorkloadCtor ctor);

/// True iff @p name has a registered constructor.
bool workload_registered(const std::string &name);

/// Registered names, sorted (error messages and sweep enumeration).
std::vector<std::string> registered_workloads();

/**
 * Construct the workload registered under @p name.
 * @throws SimError listing registered names if @p name is unknown.
 */
std::unique_ptr<Workload>
make_workload(const std::string &name, const WorkloadOptions &options = {});

/// Static-registrar helper: `static WorkloadRegistrar r{"x", ctor};`
struct WorkloadRegistrar {
    WorkloadRegistrar(const std::string &name, WorkloadCtor ctor)
    {
        register_workload(name, std::move(ctor));
    }
};

namespace detail {

/// Built-in registration hooks, referenced by name from the factory so a
/// static-library link can never dead-strip the catalog or serving TU.
void register_catalog_workloads();
void register_serving_workloads();

/// Per-workload seed derivation shared by every registered generator.
/// Part of the stream identity: StreamCache keys and golden snapshots
/// depend on it, so the formula must never change.
std::uint64_t mix_seed(const std::string &name, std::uint64_t seed);

}  // namespace detail

}  // namespace ptm::workload
