/**
 * @file
 * Record/replay trace frontend for workload op streams (.ptt format).
 *
 * A trace captures the exact serial stream one job feeds the simulator —
 * memory operations plus the context interactions interleaved with them
 * (mmap/munmap/free_page) and the init-phase boundary — so a recorded
 * scenario can be replayed bit-identically without re-running the
 * generators, and one recorded stream can drive every {policy × table}
 * leg of a sweep (op streams are policy-independent: scheduling is done
 * in op space and generators never read kernel state).
 *
 * Encoding: one opcode byte per event; op events carry the gva as a
 * zigzag-varint delta from the previous op's gva (sequential patterns
 * make most deltas one byte). Interaction operands are plain varints.
 * Events are self-delimiting and the per-job stream is a flat byte run,
 * so a .ptt file can be consumed from an mmap'd buffer as-is.
 *
 * The same encoding backs workload::StreamCache, the in-process memo of
 * generated streams keyed by (name, seed, scale, total_ops): the first
 * run of a key generates and encodes lazily; later runs (the second leg
 * of a paired run, sweep legs, repeated tests) decode instead of
 * regenerating. Disable with PTM_NO_STREAM_MEMO=1.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "vm/virtual_address_space.hpp"
#include "workload/workload.hpp"

namespace ptm::workload {

struct WorkloadOptions;

namespace ptt {

/// File magic of a .ptt trace.
inline constexpr char kMagic[8] = {'P', 'T', 'M', 'T', 'R', 'C', '1', '\n'};

/// Stream event opcodes. kOpRead/kOpWrite differ only in bit 0 so the
/// decoder reads the write flag straight from the opcode.
enum Event : std::uint8_t {
    kOpRead = 0x00,    ///< + zigzag-varint gva delta
    kOpWrite = 0x01,   ///< + zigzag-varint gva delta
    kMmap = 0x02,      ///< + varint bytes, varint returned base (checked)
    kMunmap = 0x03,    ///< + varint base address
    kFreePage = 0x04,  ///< + varint gva
    kSetupEnd = 0x05,  ///< end of the setup() interaction section
    kInitEnd = 0x06,   ///< in_init_phase() turns false after this point
    kEos = 0x07,       ///< the workload finished (next() returned nullopt)
};

void put_varint(std::vector<std::uint8_t> &out, std::uint64_t v);

inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

}  // namespace ptt

/// Append-side state of one job stream.
class StreamEncoder {
  public:
    void op(const MemOp &op);
    void mmap(Addr bytes, Addr base);
    void munmap(Addr base);
    void free_page(Addr gva);
    void setup_end();
    void init_end();
    void eos();

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t prev_gva_ = 0;
};

/// Read-side position within one encoded stream. The buffer itself is
/// passed to every decode call so the stream may grow (StreamCache) or
/// live in a file mapping (TraceFile) without the state caring.
struct DecodeState {
    std::size_t offset = 0;
    std::uint64_t prev_gva = 0;
    bool in_init = true;
    bool setup_done = false;
    bool finished = false;
};

/**
 * Apply the setup section (events before kSetupEnd) to @p ctx, plus an
 * immediately following kInitEnd if the workload recorded none of its
 * init phase.
 */
void decode_setup(const std::uint8_t *data, std::size_t len,
                  DecodeState &state, WorkloadContext &ctx);

/**
 * Decode up to @p max ops, applying interaction events to @p ctx.
 * Honours the batch-transparency contract: interactions are applied only
 * before the first op of the call; a later interaction ends the batch.
 * kInitEnd is consumed eagerly wherever it appears (it only moves a
 * flag, and observers look between scheduler slices). Returns the op
 * count; 0 with state.finished set means end-of-stream, 0 without it
 * means the buffer ran dry (caller may extend and retry).
 */
unsigned decode_ops(const std::uint8_t *data, std::size_t len,
                    DecodeState &state, WorkloadContext &ctx, MemOp *out,
                    unsigned max);

/**
 * Transparent recorder: delegates to the wrapped workload while encoding
 * everything it does. Works on both the serial and batched dispatch
 * paths (interactions can only occur while the first op of a batch is
 * generated, so appending the ops after the inner call preserves serial
 * order).
 */
class RecordingWorkload final : public Workload {
  public:
    explicit RecordingWorkload(std::unique_ptr<Workload> inner);
    ~RecordingWorkload() override;

    void setup(WorkloadContext &ctx) override;
    std::optional<MemOp> next(WorkloadContext &ctx) override;
    unsigned next_batch(WorkloadContext &ctx, MemOp *out,
                        unsigned max) override;
    bool in_init_phase() const override { return inner_->in_init_phase(); }
    std::string name() const override { return inner_->name(); }

    const StreamEncoder &encoder() const { return enc_; }

  private:
    class RecordingContext;

    /// Emit kInitEnd the moment the inner workload leaves its init phase.
    void note_init_phase();

    std::unique_ptr<Workload> inner_;
    StreamEncoder enc_;
    bool init_end_recorded_ = false;
    bool eos_recorded_ = false;
};

/**
 * A parsed .ptt trace: one named stream per job, victim first, in job
 * creation order.
 */
class TraceFile {
  public:
    struct JobStream {
        std::string name;
        std::vector<std::uint8_t> bytes;
    };

    /// Parse @p path. @throws SimError on I/O or format problems.
    static TraceFile load(const std::string &path);

    /// Serialize the recorders' streams to @p path (temp file + rename,
    /// so sweep legs never observe a half-written trace).
    /// @throws SimError on I/O problems.
    static void write(const std::string &path,
                      const std::vector<const RecordingWorkload *> &jobs);

    unsigned job_count() const
    {
        return static_cast<unsigned>(jobs_.size());
    }
    const JobStream &job(unsigned index) const { return jobs_.at(index); }

    /// Replay workload for job @p index. The TraceFile must outlive it.
    std::unique_ptr<Workload> make_replayer(unsigned index) const;

  private:
    std::vector<JobStream> jobs_;
};

/**
 * Process-wide memo of generated workload streams. The first consumer of
 * a (name, seed, scale, total_ops) key drives a private generator (with
 * a detached VirtualAddressSpace — address assignment is deterministic,
 * and replay asserts it) and encodes its stream lazily in chunks; every
 * consumer decodes from the shared buffer. All consumers see the exact
 * serial stream, however many ops they need.
 */
class StreamCache {
  public:
    /// The singleton (process lifetime).
    static StreamCache &instance();

    /// False when PTM_NO_STREAM_MEMO is set in the environment.
    static bool enabled();

    /**
     * A workload replaying (and lazily extending) the cached stream for
     * @p name/@p options. Equivalent to make_workload(name, options) in
     * every observable way.
     */
    std::unique_ptr<Workload> replay(const std::string &name,
                                     const WorkloadOptions &options);

    /// Drop all cached streams (test hook).
    void clear();

    struct Entry;

  private:
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace ptm::workload
