/**
 * @file
 * Workload abstraction: a deterministic generator of memory operations
 * driving one simulated process.
 *
 * Real benchmark binaries are replaced by synthetic generators that
 * reproduce the three properties the paper's effect depends on: footprint
 * (TLB pressure), spatial locality of the access stream, and the
 * page-fault arrival pattern (allocation behaviour). See DESIGN.md §1.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ptm::workload {

/// One memory operation against the owning process's address space.
struct MemOp {
    Addr gva = 0;
    bool write = false;
};

/**
 * Services a workload may request from the simulated guest kernel.
 * Implemented by the sim layer; calls are attributed to the workload's
 * process.
 */
class WorkloadContext {
  public:
    virtual ~WorkloadContext() = default;

    /// Eagerly allocate a virtual region (guest mmap()).
    virtual Addr mmap(Addr bytes) = 0;
    /// Release a whole region previously obtained from mmap().
    virtual void munmap(Addr base) = 0;
    /// Free one page's physical backing (models free() returning memory).
    virtual void free_page(Addr gva) = 0;
};

/**
 * A workload drives one process. Lifecycle:
 *  1. setup(ctx) — allocate regions;
 *  2. repeated next(ctx) — one MemOp per call; the *init phase* (touching
 *     allocated memory for the first time, when page faults and thus
 *     allocation-order decisions happen) is flagged via in_init_phase();
 *  3. next() returns nullopt when a finite workload completes; co-runners
 *     run forever.
 *
 * Implementations must be deterministic given their seed.
 */
class Workload {
  public:
    virtual ~Workload() = default;

    virtual void setup(WorkloadContext &ctx) = 0;
    virtual std::optional<MemOp> next(WorkloadContext &ctx) = 0;

    /**
     * Batched generation for the overlapped dispatcher: fill @p out with
     * up to @p max ops and return the number produced; 0 means the
     * workload completed (exactly when next() would return nullopt).
     *
     * Batch-transparency contract: the concatenation of ops and context
     * interactions across repeated next_batch() calls must equal the
     * serial next() sequence, and context interactions may only happen
     * while generating the FIRST op of a batch — the caller executes the
     * whole batch after the fill, so an interaction generated mid-batch
     * would be reordered before ops that serially precede it.
     * Implementations therefore stop early (return k < max) when the
     * next op would need the context.
     *
     * The default is the conservative one-op batch, correct for any
     * generator; workloads opt into real batching by overriding.
     */
    virtual unsigned
    next_batch(WorkloadContext &ctx, MemOp *out, unsigned max)
    {
        if (max == 0)
            return 0;
        std::optional<MemOp> op = next(ctx);
        if (!op)
            return 0;
        out[0] = *op;
        return 1;
    }

    /// True while the workload is still faulting in its data structures
    /// (the paper's "allocation of physical memory" phase, §3.3).
    virtual bool in_init_phase() const = 0;

    virtual std::string name() const = 0;

    /// Total bytes of statically declared regions (footprint knob
    /// introspection); 0 for generators whose footprint is dynamic.
    virtual Addr static_footprint() const { return 0; }
};

}  // namespace ptm::workload
