/**
 * @file
 * SyntheticWorkload: a configurable process model assembled from regions,
 * weighted access patterns, and an optional allocate/touch/free churn
 * loop. Every Table 3 application is an instance with different knobs
 * (see catalog.cpp).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "workload/patterns.hpp"
#include "workload/workload.hpp"

namespace ptm::workload {

/// Allocate/touch/free loop configuration (co-runner behaviour).
struct ChurnSpec {
    Addr chunk_bytes = 0;            ///< 0 disables churn
    unsigned ops_between_churn = 0;  ///< pattern ops between episodes
    unsigned live_chunks = 4;        ///< chunks kept before freeing oldest
};

/**
 * A deterministic synthetic process. Phases:
 *  - init: one write to every page of every static region, in address
 *    order (modelling data-structure initialization — this is when the
 *    allocation decisions the paper studies are made);
 *  - compute: weighted mixture of the configured patterns, optionally
 *    interleaved with churn episodes; finite if total_ops was set.
 */
class SyntheticWorkload final : public Workload {
  public:
    SyntheticWorkload(std::string name, std::uint64_t seed);

    /// Declare a static region of @p bytes; returns its index.
    unsigned add_region(Addr bytes);

    /// Attach a pattern to region @p region_index with selection weight
    /// @p weight (relative to the other patterns).
    void add_pattern(unsigned region_index,
                     std::unique_ptr<AccessPattern> pattern, double weight);

    void set_churn(const ChurnSpec &spec) { churn_ = spec; }

    /// Limit the compute phase to @p ops operations (0 = run forever).
    void set_total_ops(std::uint64_t ops) { total_ops_ = ops; }

    /// Skip the init touch sweep (for pure-churn workloads).
    void set_init_touch(bool enabled) { init_touch_ = enabled; }

    /**
     * Temporal locality knob: every pattern-generated address is accessed
     * @p repeats times in a row at successive words of its cache line
     * (reading the fields of a struct). Raises cache hit rates without
     * changing page-level behaviour. Default 4.
     */
    void set_line_repeats(unsigned repeats) { line_repeats_ = repeats; }

    // Workload interface.
    void setup(WorkloadContext &ctx) override;
    std::optional<MemOp> next(WorkloadContext &ctx) override;
    /// Real batching: mirrors next() state-for-state (RNG call order
    /// included) and stops before any op past the first that would start
    /// a churn episode (the only ctx-interacting op kind).
    unsigned next_batch(WorkloadContext &ctx, MemOp *out,
                        unsigned max) override;
    bool in_init_phase() const override { return initializing_; }
    std::string name() const override { return name_; }

    /// Total bytes of the static regions (footprint knob introspection).
    Addr static_footprint() const override;

  private:
    struct Binding {
        std::unique_ptr<AccessPattern> pattern;
        unsigned region_index;
        double weight;
    };

    MemOp next_init_op();
    MemOp next_pattern_op();
    std::optional<MemOp> next_churn_op(WorkloadContext &ctx);

    std::string name_;
    Rng rng_;
    std::vector<Addr> region_bytes_;
    std::vector<Region> regions_;
    std::vector<Binding> bindings_;
    double total_weight_ = 0.0;
    ChurnSpec churn_;
    std::uint64_t total_ops_ = 0;
    std::uint64_t ops_done_ = 0;
    unsigned line_repeats_ = 4;
    bool init_touch_ = true;
    bool initializing_ = true;

    // line-repeat state
    MemOp repeat_op_{};
    unsigned repeats_left_ = 0;

    // init sweep cursor
    std::size_t init_region_ = 0;
    std::uint64_t init_page_ = 0;

    // churn state
    std::deque<Region> live_chunks_;
    Region current_chunk_{};
    std::uint64_t chunk_page_cursor_ = 0;
    bool touching_chunk_ = false;
    unsigned pattern_ops_until_churn_ = 0;
};

}  // namespace ptm::workload
