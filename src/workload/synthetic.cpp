#include "workload/synthetic.hpp"

#include "common/log.hpp"

namespace ptm::workload {

SyntheticWorkload::SyntheticWorkload(std::string name, std::uint64_t seed)
    : name_(std::move(name)), rng_(seed)
{
}

unsigned
SyntheticWorkload::add_region(Addr bytes)
{
    if (bytes == 0 || bytes % kPageSize != 0)
        ptm_fatal("region size must be a nonzero page multiple");
    region_bytes_.push_back(bytes);
    return static_cast<unsigned>(region_bytes_.size() - 1);
}

void
SyntheticWorkload::add_pattern(unsigned region_index,
                               std::unique_ptr<AccessPattern> pattern,
                               double weight)
{
    if (region_index >= region_bytes_.size())
        ptm_fatal("pattern bound to unknown region %u", region_index);
    if (weight <= 0.0)
        ptm_fatal("pattern weight must be positive");
    total_weight_ += weight;
    bindings_.push_back({std::move(pattern), region_index, weight});
}

Addr
SyntheticWorkload::static_footprint() const
{
    Addr total = 0;
    for (Addr bytes : region_bytes_)
        total += bytes;
    return total;
}

void
SyntheticWorkload::setup(WorkloadContext &ctx)
{
    regions_.clear();
    for (Addr bytes : region_bytes_)
        regions_.push_back({ctx.mmap(bytes), bytes});
    for (Binding &binding : bindings_)
        binding.pattern->bind(regions_[binding.region_index]);

    initializing_ = init_touch_ && !regions_.empty();
    init_region_ = 0;
    init_page_ = 0;
    pattern_ops_until_churn_ = churn_.ops_between_churn;
}

MemOp
SyntheticWorkload::next_init_op()
{
    // One write per page, regions in declaration order, pages ascending:
    // the canonical "initialize all allocated data structures" sweep.
    const Region &region = regions_[init_region_];
    MemOp op{region.base + init_page_ * kPageSize, true};
    if (++init_page_ >= region.pages()) {
        init_page_ = 0;
        if (++init_region_ >= regions_.size())
            initializing_ = false;
    }
    return op;
}

MemOp
SyntheticWorkload::next_pattern_op()
{
    ptm_assert(!bindings_.empty(),
               "workload '%s' entered its access phase with no pattern "
               "bindings", name_.c_str());
    double pick = rng_.uniform() * total_weight_;
    for (Binding &binding : bindings_) {
        pick -= binding.weight;
        if (pick <= 0.0)
            return binding.pattern->next(rng_);
    }
    return bindings_.back().pattern->next(rng_);
}

std::optional<MemOp>
SyntheticWorkload::next_churn_op(WorkloadContext &ctx)
{
    if (!touching_chunk_) {
        // Start a new episode: allocate a chunk; retire the oldest if the
        // live window is full.
        if (live_chunks_.size() >= churn_.live_chunks) {
            ctx.munmap(live_chunks_.front().base);
            live_chunks_.pop_front();
        }
        current_chunk_ = {ctx.mmap(churn_.chunk_bytes), churn_.chunk_bytes};
        live_chunks_.push_back(current_chunk_);
        chunk_page_cursor_ = 0;
        touching_chunk_ = true;
    }

    MemOp op{current_chunk_.base + chunk_page_cursor_ * kPageSize, true};
    if (++chunk_page_cursor_ >= current_chunk_.pages()) {
        touching_chunk_ = false;
        pattern_ops_until_churn_ = churn_.ops_between_churn;
    }
    return op;
}

std::optional<MemOp>
SyntheticWorkload::next(WorkloadContext &ctx)
{
    if (initializing_)
        return next_init_op();

    if (total_ops_ != 0 && ops_done_ >= total_ops_)
        return std::nullopt;
    ++ops_done_;

    if (repeats_left_ > 0) {
        // Continue reading the current line: next 8-byte word, staying
        // within the 64-byte block.
        --repeats_left_;
        repeat_op_.gva = (repeat_op_.gva & ~(kCacheLineSize - 1)) |
                         ((repeat_op_.gva + 8) & (kCacheLineSize - 1));
        return repeat_op_;
    }

    if (churn_.chunk_bytes != 0) {
        if (touching_chunk_ || bindings_.empty())
            return next_churn_op(ctx);
        if (pattern_ops_until_churn_ == 0)
            return next_churn_op(ctx);
        --pattern_ops_until_churn_;
    }
    MemOp op = next_pattern_op();
    if (line_repeats_ > 1) {
        repeat_op_ = op;
        repeats_left_ = line_repeats_ - 1;
    }
    return op;
}

unsigned
SyntheticWorkload::next_batch(WorkloadContext &ctx, MemOp *out,
                              unsigned max)
{
    // Each op is produced by the real next(), so the stream is serial-
    // identical by construction; the only batching logic is the guard
    // that predicts whether the NEXT op would start a churn episode —
    // the single op kind that calls into the context (munmap + mmap) —
    // and ends the batch first, honouring the interactions-only-at-
    // batch-head contract.
    unsigned n = 0;
    while (n < max) {
        if (!initializing_) {
            if (total_ops_ != 0 && ops_done_ >= total_ops_)
                break;  // n == 0 here means "finished", like next()
            if (n > 0 && repeats_left_ == 0 && churn_.chunk_bytes != 0 &&
                !touching_chunk_ &&
                (bindings_.empty() || pattern_ops_until_churn_ == 0))
                break;  // episode start needs ctx: defer to next batch
        }
        std::optional<MemOp> op = next(ctx);
        if (!op)
            break;
        out[n++] = *op;
    }
    return n;
}

}  // namespace ptm::workload
