/**
 * @file
 * Cloud-serving workload tier (ROADMAP item 4): the paper's claim is
 * about *public-cloud* page-walk latency, so alongside the SPEC-shaped
 * catalog the simulator ships request-driven generators whose allocation
 * behaviour matches what serving fleets actually do to a host:
 *
 *  - kv_tier:    memcached/redis-like key-value tier — Zipfian key
 *                popularity over a large slab heap, per-connection
 *                request arenas, and seeded connection churn whose
 *                mmap/munmap storms fragment the host buddy the way §2
 *                of the paper describes;
 *  - fork_storm: one serverless worker — short-lived per-request arenas
 *                over a shared read-mostly image, with parent-side image
 *                writes that turn into COW faults when the bench drives
 *                forks through ChurnPlan;
 *  - ws_estimate: a dirty-footprint probe with a rotating hot window,
 *                the driver workload for PML-style working-set
 *                estimation (obs/dirty_ring.hpp).
 *
 * All three register with workload_factory.cpp under those names.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/workload.hpp"
#include "workload/workload_factory.hpp"

namespace ptm::workload {

/**
 * Zipfian rank sampler over n items with skew theta (0 < theta < 1),
 * using the Gray et al. rejection-free inversion popularized by YCSB.
 * Rank 0 is the most popular item. Deterministic given the Rng stream:
 * exactly one uniform() draw per next() call.
 */
class ZipfianSampler {
  public:
    ZipfianSampler(std::uint64_t n, double theta);

    /// Sample a rank in [0, n).
    std::uint64_t next(Rng &rng) const;

    /// Analytic probability mass of @p rank (chi-squared test anchor).
    double mass(std::uint64_t rank) const;

    std::uint64_t n() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

/**
 * kv_tier: one serving process of a key-value cache tier.
 *
 * The slab heap holds value_count values of value_bytes each; requests
 * pick a key rank from the Zipfian sampler and touch value_lines cache
 * lines of the value (a GET reads them, a SET writes them — the
 * write_fraction chance is drawn per request). Each request first writes
 * request-parsing scratch into its connection's arena; every
 * requests_per_conn_churn requests a connection disconnects and a new
 * one arrives (munmap + mmap of its arena — the steady allocator churn
 * that fragments the host).
 *
 * WorkloadParams knobs (all optional): slab_mb, value_bytes,
 * value_lines, connections, arena_kb, requests_per_conn_churn,
 * write_fraction, theta.
 */
class KvTierWorkload final : public Workload {
  public:
    KvTierWorkload(std::string name, const WorkloadOptions &options);

    void setup(WorkloadContext &ctx) override;
    std::optional<MemOp> next(WorkloadContext &ctx) override;
    unsigned next_batch(WorkloadContext &ctx, MemOp *out,
                        unsigned max) override;
    bool in_init_phase() const override { return initializing_; }
    std::string name() const override { return name_; }
    Addr static_footprint() const override;

  private:
    bool churn_due() const;
    void start_request(WorkloadContext &ctx);

    std::string name_;
    Rng rng_;

    // knobs (resolved in the ctor)
    Addr slab_bytes_;
    Addr value_bytes_;
    unsigned value_lines_;
    unsigned connections_;
    Addr arena_bytes_;
    std::uint64_t requests_per_conn_churn_;
    double write_fraction_;
    double theta_;
    std::uint64_t total_ops_;

    std::unique_ptr<ZipfianSampler> zipf_;
    std::uint64_t value_count_ = 0;
    std::uint64_t rank_stride_ = 1;  ///< rank->slot scatter, coprime to n

    Addr slab_base_ = 0;
    std::vector<Addr> arenas_;
    std::vector<std::uint64_t> conn_requests_;
    std::uint64_t request_seq_ = 0;

    bool initializing_ = true;
    std::uint64_t init_page_ = 0;
    std::uint64_t ops_done_ = 0;

    std::vector<MemOp> burst_;
    std::size_t burst_pos_ = 0;
};

/**
 * fork_storm: one serverless worker process. A read-mostly function
 * image plus a persistent scratch region are faulted in up front (so a
 * fork duplicates a populated address space); each request then mmaps a
 * short-lived arena, runs request_ops operations mixing arena writes,
 * image reads (a write_fraction of image touches are writes — the
 * parent-side stores that become COW faults in forked children), and
 * scratch writes, and the arena is unmapped when the next request
 * starts. Drive it through ChurnPlan forks for the storm itself.
 *
 * WorkloadParams knobs: image_mb, scratch_kb, arena_kb, request_ops,
 * write_fraction.
 */
class ForkStormWorkload final : public Workload {
  public:
    ForkStormWorkload(std::string name, const WorkloadOptions &options);

    void setup(WorkloadContext &ctx) override;
    std::optional<MemOp> next(WorkloadContext &ctx) override;
    unsigned next_batch(WorkloadContext &ctx, MemOp *out,
                        unsigned max) override;
    bool in_init_phase() const override { return initializing_; }
    std::string name() const override { return name_; }
    Addr static_footprint() const override;

  private:
    void start_request(WorkloadContext &ctx);
    MemOp request_op();

    std::string name_;
    Rng rng_;

    Addr image_bytes_;
    Addr scratch_bytes_;
    Addr arena_bytes_;
    unsigned request_ops_;
    double write_fraction_;
    std::uint64_t total_ops_;

    Addr image_base_ = 0;
    Addr scratch_base_ = 0;
    Addr arena_base_ = 0;  ///< 0 when no arena is live

    bool initializing_ = true;
    std::uint64_t init_page_ = 0;
    std::uint64_t ops_done_ = 0;
    unsigned ops_left_in_request_ = 0;
    Addr arena_cursor_ = 0;
};

/**
 * ws_estimate: dirty working-set probe. A heap is faulted in once; the
 * compute phase concentrates 90% of accesses on a hot window of
 * hot_pages pages that rotates through the heap every shift_every ops,
 * with the rest uniform. The dirty ring's per-epoch distinct-dirty-page
 * count should track hot_pages (plus the uniform tail) and move when the
 * window shifts. No context interactions after setup, so it batches
 * fully — the disarmed hot path stays on the fast dispatch.
 *
 * WorkloadParams knobs: heap_mb, hot_pages, shift_every, write_fraction,
 * hot_fraction.
 */
class WsEstimateWorkload final : public Workload {
  public:
    WsEstimateWorkload(std::string name, const WorkloadOptions &options);

    void setup(WorkloadContext &ctx) override;
    std::optional<MemOp> next(WorkloadContext &ctx) override;
    unsigned next_batch(WorkloadContext &ctx, MemOp *out,
                        unsigned max) override;
    bool in_init_phase() const override { return initializing_; }
    std::string name() const override { return name_; }
    Addr static_footprint() const override { return heap_bytes_; }

  private:
    MemOp compute_op();

    std::string name_;
    Rng rng_;

    Addr heap_bytes_;
    std::uint64_t hot_pages_;
    std::uint64_t shift_every_;
    double write_fraction_;
    double hot_fraction_;
    std::uint64_t total_ops_;

    Addr heap_base_ = 0;
    std::uint64_t heap_pages_ = 0;

    bool initializing_ = true;
    std::uint64_t init_page_ = 0;
    std::uint64_t ops_done_ = 0;
    std::uint64_t window_ = 0;
};

}  // namespace ptm::workload
