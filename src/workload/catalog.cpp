#include "workload/catalog.hpp"

#include <functional>
#include <map>

#include "common/log.hpp"

namespace ptm::workload {

namespace {

constexpr Addr
mib(double n)
{
    return static_cast<Addr>(n * 1024.0 * 1024.0);
}

Addr
scaled(double megabytes, double scale)
{
    Addr bytes = mib(megabytes * scale);
    return bytes < kPageSize ? kPageSize : page_ceil(bytes);
}

using Builder = std::function<void(SyntheticWorkload &, double scale)>;

/**
 * GPOP-style graph kernels (Table 3, 16 GB Twitter-scaled dataset):
 * partition-centric processing — sequential scans of the edge array plus
 * clustered accesses to per-vertex state, with per-kernel mixes.
 */
void
build_graph(SyntheticWorkload &w, double scale, double vertex_mb,
            double edge_mb, unsigned partition_pages,
            double sweep_weight, double random_weight,
            double write_fraction)
{
    // GPOP processes vertices partition by partition: per-vertex state is
    // visited in ascending page order within a partition (page_sweep),
    // the edge array is streamed (sequential), and a residue of accesses
    // crosses partitions irregularly (random).
    unsigned vertices = w.add_region(scaled(vertex_mb, scale));
    unsigned edges = w.add_region(scaled(edge_mb, scale));
    w.add_pattern(vertices, page_sweep(partition_pages, 1, write_fraction),
                  sweep_weight);
    w.add_pattern(edges, sequential(kCacheLineSize, 0.0), 0.20);
    if (random_weight > 0.0)
        w.add_pattern(vertices, random_uniform(write_fraction),
                      random_weight);
}

const std::map<std::string, Builder> &
builders()
{
    static const std::map<std::string, Builder> table = {
        // ---- benchmarks (victims) -------------------------------------
        {"pagerank",
         [](SyntheticWorkload &w, double s) {
             build_graph(w, s, /*vertex_mb=*/28, /*edge_mb=*/56,
                         /*partition_pages=*/64, /*sweep_weight=*/0.55,
                         /*random_weight=*/0.20, /*write_fraction=*/0.30);
         }},
        {"cc",
         [](SyntheticWorkload &w, double s) {
             build_graph(w, s, 24, 48, 64, 0.34, 0.38, 0.45);
         }},
        {"bfs",
         [](SyntheticWorkload &w, double s) {
             build_graph(w, s, 24, 48, 32, 0.26, 0.46, 0.25);
         }},
        {"nibble",
         [](SyntheticWorkload &w, double s) {
             build_graph(w, s, 32, 48, 128, 0.34, 0.36, 0.35);
         }},
        {"mcf",
         [](SyntheticWorkload &w, double s) {
             // Network simplex: pointer chasing over arcs/nodes; sorted
             // arc scans give page-level locality, the rest is irregular.
             unsigned arena = w.add_region(scaled(96, s));
             w.add_pattern(arena, page_sweep(24, 1, 0.20), 0.62);
             w.add_pattern(arena, random_uniform(0.15), 0.38);
         }},
        {"gcc",
         [](SyntheticWorkload &w, double s) {
             // Compiler: modest footprint, strong cache locality ->
             // little TLB pressure; Figure 6 shows only a small gain.
             unsigned heap = w.add_region(scaled(5, s));
             w.add_pattern(heap, clustered(128 * 1024, 160, 0.35), 0.95);
             w.add_pattern(heap, page_sweep(8, 4, 0.20), 0.03);
             w.add_pattern(heap, random_uniform(0.10), 0.02);
         }},
        {"omnetpp",
         [](SyntheticWorkload &w, double s) {
             // Discrete-event simulation: heap-object churn locality.
             unsigned heap = w.add_region(scaled(44, s));
             w.add_pattern(heap, clustered(64 * 1024, 16, 0.40), 0.35);
             w.add_pattern(heap, page_sweep(16, 3, 0.30), 0.45);
             w.add_pattern(heap, random_uniform(0.25), 0.20);
         }},
        {"xz",
         [](SyntheticWorkload &w, double s) {
             // LZMA: streaming input plus dictionary-window matches —
             // the strongest page-level spatial locality of the set (and
             // the paper's best case, +9%).
             unsigned window = w.add_region(scaled(64, s));
             unsigned stream = w.add_region(scaled(24, s));
             w.add_pattern(window, page_sweep(256, 1, 0.15), 0.85);
             w.add_pattern(stream, sequential(kCacheLineSize, 0.10), 0.08);
             w.add_pattern(window, random_uniform(0.05), 0.07);
         }},
        // ---- low-TLB-pressure SPEC'17 Int class (§6.1: PTEMagnet must
        // ---- gain 0-1% and never hurt these) ----------------------------
        {"perlbench",
         [](SyntheticWorkload &w, double s) {
             // Interpreter: hot opcode dispatch + small heap.
             unsigned heap = w.add_region(scaled(4, s));
             w.add_pattern(heap, clustered(64 * 1024, 128, 0.30), 0.90);
             w.add_pattern(heap, random_uniform(0.10), 0.10);
         }},
        {"x264",
         [](SyntheticWorkload &w, double s) {
             // Video encode: streaming frames, strong line locality.
             unsigned frames = w.add_region(scaled(6, s));
             w.add_pattern(frames, sequential(kCacheLineSize, 0.30), 0.85);
             w.add_pattern(frames, clustered(128 * 1024, 96, 0.20), 0.15);
         }},
        {"deepsjeng",
         [](SyntheticWorkload &w, double s) {
             // Chess search: transposition table in a few MB.
             unsigned tt = w.add_region(scaled(5, s));
             w.add_pattern(tt, clustered(256 * 1024, 160, 0.25), 0.95);
             w.add_pattern(tt, random_uniform(0.15), 0.05);
         }},
        {"leela",
         [](SyntheticWorkload &w, double s) {
             // Go engine: tree nodes with strong reuse.
             unsigned tree = w.add_region(scaled(3, s));
             w.add_pattern(tree, clustered(64 * 1024, 192, 0.35), 1.0);
         }},
        {"exchange2",
         [](SyntheticWorkload &w, double s) {
             // Puzzle generator: tiny arrays, essentially cache-resident.
             unsigned arrays = w.add_region(scaled(1, s));
             w.add_pattern(arrays, sequential(kCacheLineSize, 0.40), 0.70);
             w.add_pattern(arrays, clustered(32 * 1024, 96, 0.30), 0.30);
         }},
        {"xalancbmk",
         [](SyntheticWorkload &w, double s) {
             // XML transform: DOM walk with pointer locality.
             unsigned dom = w.add_region(scaled(6, s));
             w.add_pattern(dom, clustered(128 * 1024, 112, 0.20), 0.85);
             w.add_pattern(dom, random_uniform(0.10), 0.15);
         }},
        // ---- co-runners ------------------------------------------------
        {"objdet",
         [](SyntheticWorkload &w, double s) {
             // One worker thread of MLPerf SSD-MobileNet inference (the
             // paper runs it 8-threaded): weight streaming between
             // per-image buffer allocations — the highest page-fault
             // rate of the co-runner set (§6.1).
             unsigned weights = w.add_region(scaled(8, s));
             w.add_pattern(weights, sequential(kCacheLineSize, 0.0), 1.0);
             w.set_line_repeats(1);  // streaming: no word-level reuse
             w.set_churn({.chunk_bytes = scaled(2, s),
                          .ops_between_churn = 500,
                          .live_chunks = 3});
         }},
        {"stress-ng",
         [](SyntheticWorkload &w, double s) {
             // One stress-ng worker: continuously allocate, touch, free.
             // The paper runs 12 of these; the sim spawns one process
             // per worker.
             w.set_init_touch(false);
             w.set_churn({.chunk_bytes = scaled(1, s),
                          .ops_between_churn = 0,
                          .live_chunks = 12});
         }},
        {"chameleon",
         [](SyntheticWorkload &w, double s) {
             // HTML table rendering: string building over small buffers.
             unsigned heap = w.add_region(scaled(6, s));
             w.add_pattern(heap, sequential(kCacheLineSize, 0.50), 0.60);
             w.add_pattern(heap, clustered(64 * 1024, 24, 0.30), 0.40);
             w.set_churn({.chunk_bytes = scaled(0.25, s),
                          .ops_between_churn = 3000,
                          .live_chunks = 8});
         }},
        {"pyaes",
         [](SyntheticWorkload &w, double s) {
             // AES block cipher over text: tiny working set, CPU bound.
             unsigned buf = w.add_region(scaled(1, s));
             w.add_pattern(buf, sequential(kCacheLineSize, 0.40), 1.0);
         }},
        {"json_serdes",
         [](SyntheticWorkload &w, double s) {
             // JSON (de)serialization: build/scan buffers, free per doc.
             unsigned heap = w.add_region(scaled(10, s));
             w.add_pattern(heap, sequential(kCacheLineSize, 0.35), 0.70);
             w.add_pattern(heap, random_uniform(0.10), 0.30);
             w.set_churn({.chunk_bytes = scaled(0.5, s),
                          .ops_between_churn = 4000,
                          .live_chunks = 6});
         }},
        {"rnn_serving",
         [](SyntheticWorkload &w, double s) {
             // RNN name generation (PyTorch): weight reads + small
             // activation buffers per request.
             unsigned weights = w.add_region(scaled(24, s));
             w.add_pattern(weights, sequential(kCacheLineSize, 0.0), 0.80);
             w.add_pattern(weights, clustered(256 * 1024, 32, 0.0), 0.20);
             w.set_churn({.chunk_bytes = scaled(0.25, s),
                          .ops_between_churn = 5000,
                          .live_chunks = 4});
         }},
        // ---- microbenchmarks -------------------------------------------
        {"alloc_sweep",
         [](SyntheticWorkload &w, double s) {
             // §6.4: allocate a large array and touch each page once to
             // invoke the physical allocator; execution is dominated by
             // the fault path. (Paper: 60 GB; scaled.)
             unsigned array = w.add_region(scaled(192, s));
             w.add_pattern(array, sequential(kPageSize, 1.0), 1.0);
             w.set_total_ops(1);  // the init sweep is the benchmark
         }},
    };
    return table;
}

}  // namespace

namespace detail {

void
register_catalog_workloads()
{
    for (const auto &[name, builder] : builders()) {
        // Capture by value: the builders() map outlives everything, but
        // the loop variables do not.
        const std::string workload_name = name;
        const Builder build = builder;
        register_workload(
            workload_name,
            [workload_name, build](const WorkloadOptions &options) {
                auto w = std::make_unique<SyntheticWorkload>(
                    workload_name,
                    mix_seed(workload_name, options.seed));
                build(*w, options.scale);
                if (options.total_ops != 0)
                    w->set_total_ops(options.total_ops);
                return w;
            });
    }
}

}  // namespace detail

const std::vector<std::string> &
benchmark_names()
{
    static const std::vector<std::string> names = {
        "cc", "bfs", "nibble", "pagerank", "gcc", "mcf", "omnetpp", "xz"};
    return names;
}

const std::vector<std::string> &
low_pressure_names()
{
    static const std::vector<std::string> names = {
        "perlbench", "x264", "deepsjeng", "leela", "exchange2",
        "xalancbmk"};
    return names;
}

const std::vector<std::string> &
corunner_names()
{
    static const std::vector<std::string> names = {
        "objdet",      "chameleon", "pyaes", "json_serdes",
        "rnn_serving", "gcc",       "xz"};
    return names;
}

const std::map<std::string, std::vector<CorunnerSpec>> &
corunner_presets()
{
    static const std::map<std::string, std::vector<CorunnerSpec>> presets =
        {
            {"none", {}},
            {"objdet8", {{"objdet", 8}}},
            {"combo",
             {{"objdet", 2},
              {"chameleon", 1},
              {"pyaes", 1},
              {"json_serdes", 1},
              {"rnn_serving", 1},
              {"gcc", 1},
              {"xz", 1}}},
            {"stressng12", {{"stress-ng", 12}}},
        };
    return presets;
}

const std::vector<CorunnerSpec> &
corunner_preset(const std::string &name)
{
    const auto &presets = corunner_presets();
    auto it = presets.find(name);
    if (it == presets.end())
        ptm_fatal("unknown co-runner preset '%s'", name.c_str());
    return it->second;
}

}  // namespace ptm::workload
