#include "workload/patterns.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ptm::workload {

MemOp
SequentialPattern::next(Rng &rng)
{
    ptm_assert(region_.size > 0, "SequentialPattern over an empty region");
    MemOp op;
    op.gva = region_.base + cursor_;
    op.write = write_fraction_ > 0.0 && rng.chance(write_fraction_);
    cursor_ += stride_;
    if (cursor_ >= region_.size)
        cursor_ = 0;
    return op;
}

MemOp
RandomPattern::next(Rng &rng)
{
    ptm_assert(region_.size > 0, "RandomPattern over an empty region");
    MemOp op;
    // 8-byte aligned word somewhere in the region.
    op.gva = region_.base + (rng.below(region_.size / 8) * 8);
    op.write = write_fraction_ > 0.0 && rng.chance(write_fraction_);
    return op;
}

MemOp
ClusteredPattern::next(Rng &rng)
{
    ptm_assert(region_.size > 0, "ClusteredPattern over an empty region");
    if (remaining_ == 0) {
        std::uint64_t clusters =
            std::max<std::uint64_t>(1, region_.size / cluster_bytes_);
        cluster_base_ = rng.below(clusters) * cluster_bytes_;
        remaining_ = dwell_ops_;
        cursor_ = 0;
    }
    MemOp op;
    // Mostly-sequential walk of the cluster with occasional short jumps,
    // so consecutive pages of the cluster are touched close in time.
    if (rng.chance(0.85)) {
        cursor_ += kCacheLineSize;
    } else {
        cursor_ = rng.below(cluster_bytes_ / 8) * 8;
    }
    if (cursor_ >= cluster_bytes_)
        cursor_ = 0;
    Addr offset = cluster_base_ + cursor_;
    if (offset >= region_.size)
        offset = cursor_;
    op.gva = region_.base + offset;
    op.write = write_fraction_ > 0.0 && rng.chance(write_fraction_);
    --remaining_;
    return op;
}

MemOp
PageSweepPattern::next(Rng &rng)
{
    ptm_assert(region_.size > 0, "PageSweepPattern over an empty region");
    std::uint64_t region_pages = region_.pages();
    unsigned window =
        static_cast<unsigned>(std::min<std::uint64_t>(window_pages_,
                                                      region_pages));
    if (!active_) {
        std::uint64_t windows =
            std::max<std::uint64_t>(1, region_pages / window);
        window_base_ = rng.below(windows) * window * kPageSize;
        page_in_window_ = 0;
        access_in_page_ = 0;
        sweeps_left_ = revisits_;
        active_ = true;
    }

    // The word visited within a page is a deterministic function of the
    // page, so revisiting sweeps re-touch the same cache lines (data
    // locality) while still needing the page's translation.
    Addr page_base = window_base_ + page_in_window_ * kPageSize;
    std::uint64_t word_seed =
        page_number(region_.base + page_base) + access_in_page_;
    Addr word = (splitmix64(word_seed) % (kPageSize / 8)) * 8;
    MemOp op{region_.base + page_base + word,
             write_fraction_ > 0.0 && rng.chance(write_fraction_)};

    if (++access_in_page_ >= accesses_per_page_) {
        access_in_page_ = 0;
        if (++page_in_window_ >= window) {
            page_in_window_ = 0;
            if (--sweeps_left_ == 0)
                active_ = false;
        }
    }
    return op;
}

std::unique_ptr<SequentialPattern>
sequential(Addr stride, double write_fraction)
{
    return std::make_unique<SequentialPattern>(stride, write_fraction);
}

std::unique_ptr<RandomPattern>
random_uniform(double write_fraction)
{
    return std::make_unique<RandomPattern>(write_fraction);
}

std::unique_ptr<ClusteredPattern>
clustered(Addr cluster_bytes, unsigned dwell_ops, double write_fraction)
{
    return std::make_unique<ClusteredPattern>(cluster_bytes, dwell_ops,
                                              write_fraction);
}

std::unique_ptr<PageSweepPattern>
page_sweep(unsigned window_pages, unsigned accesses_per_page,
           double write_fraction, unsigned revisits)
{
    return std::make_unique<PageSweepPattern>(
        window_pages, accesses_per_page, write_fraction, revisits);
}

}  // namespace ptm::workload
