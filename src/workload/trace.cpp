#include "workload/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"
#include "workload/catalog.hpp"

namespace ptm::workload {

namespace ptt {

void
put_varint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

namespace {

std::uint64_t
get_varint(const std::uint8_t *data, std::size_t len, std::size_t &offset)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        if (offset >= len)
            ptm_fatal("trace stream truncated mid-varint");
        std::uint8_t byte = data[offset++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
        if (shift >= 64)
            ptm_fatal("trace varint overflows 64 bits");
    }
}

}  // namespace
}  // namespace ptt

// ---- StreamEncoder -----------------------------------------------------

void
StreamEncoder::op(const MemOp &op)
{
    bytes_.push_back(op.write ? ptt::kOpWrite : ptt::kOpRead);
    ptt::put_varint(bytes_,
                    ptt::zigzag(static_cast<std::int64_t>(op.gva) -
                                static_cast<std::int64_t>(prev_gva_)));
    prev_gva_ = op.gva;
}

void
StreamEncoder::mmap(Addr bytes, Addr base)
{
    bytes_.push_back(ptt::kMmap);
    ptt::put_varint(bytes_, bytes);
    ptt::put_varint(bytes_, base);
}

void
StreamEncoder::munmap(Addr base)
{
    bytes_.push_back(ptt::kMunmap);
    ptt::put_varint(bytes_, base);
}

void
StreamEncoder::free_page(Addr gva)
{
    bytes_.push_back(ptt::kFreePage);
    ptt::put_varint(bytes_, gva);
}

void
StreamEncoder::setup_end()
{
    bytes_.push_back(ptt::kSetupEnd);
}

void
StreamEncoder::init_end()
{
    bytes_.push_back(ptt::kInitEnd);
}

void
StreamEncoder::eos()
{
    bytes_.push_back(ptt::kEos);
}

// ---- decoding ----------------------------------------------------------

namespace {

/// Apply one interaction event (opcode already inspected, not consumed).
void
apply_interaction(const std::uint8_t *data, std::size_t len,
                  std::size_t &offset, WorkloadContext &ctx)
{
    std::uint8_t opcode = data[offset++];
    switch (opcode) {
      case ptt::kMmap: {
        Addr bytes = ptt::get_varint(data, len, offset);
        Addr recorded_base = ptt::get_varint(data, len, offset);
        Addr base = ctx.mmap(bytes);
        // Virtual address assignment is deterministic (eager cursor
        // allocation); a mismatch means the replay context diverged from
        // the recorded one and every later gva would be wrong.
        if (base != recorded_base) {
            ptm_fatal("trace replay mmap divergence: recorded base %llx, "
                      "got %llx",
                      static_cast<unsigned long long>(recorded_base),
                      static_cast<unsigned long long>(base));
        }
        return;
      }
      case ptt::kMunmap:
        ctx.munmap(ptt::get_varint(data, len, offset));
        return;
      case ptt::kFreePage:
        ctx.free_page(ptt::get_varint(data, len, offset));
        return;
      default:
        ptm_fatal("trace stream: unexpected opcode %u as interaction",
                  opcode);
    }
}

}  // namespace

void
decode_setup(const std::uint8_t *data, std::size_t len, DecodeState &state,
             WorkloadContext &ctx)
{
    while (state.offset < len) {
        std::uint8_t opcode = data[state.offset];
        if (opcode == ptt::kSetupEnd) {
            ++state.offset;
            state.setup_done = true;
            // A workload that starts outside its init phase records the
            // boundary immediately after setup.
            if (state.offset < len && data[state.offset] == ptt::kInitEnd) {
                ++state.offset;
                state.in_init = false;
            }
            return;
        }
        apply_interaction(data, len, state.offset, ctx);
    }
    ptm_fatal("trace stream ends before its setup section does");
}

unsigned
decode_ops(const std::uint8_t *data, std::size_t len, DecodeState &state,
           WorkloadContext &ctx, MemOp *out, unsigned max)
{
    unsigned produced = 0;
    while (produced < max && !state.finished && state.offset < len) {
        std::uint8_t opcode = data[state.offset];
        switch (opcode) {
          case ptt::kOpRead:
          case ptt::kOpWrite: {
            ++state.offset;
            std::uint64_t gva =
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(state.prev_gva) +
                    ptt::unzigzag(
                        ptt::get_varint(data, len, state.offset)));
            state.prev_gva = gva;
            out[produced].gva = gva;
            out[produced].write = (opcode & 0x01) != 0;
            ++produced;
            break;
          }
          case ptt::kMmap:
          case ptt::kMunmap:
          case ptt::kFreePage:
            // Batch-transparency contract: interactions may only happen
            // while the first op of a batch is generated. A later one
            // ends this batch; the next call applies it first.
            if (produced > 0)
                return produced;
            apply_interaction(data, len, state.offset, ctx);
            break;
          case ptt::kInitEnd:
            // Pure flag flip — consumed the moment it is reachable, so
            // in_init_phase() observes the boundary at the same op
            // position as the recorded run.
            ++state.offset;
            state.in_init = false;
            break;
          case ptt::kEos:
            ++state.offset;
            state.finished = true;
            break;
          default:
            ptm_fatal("trace stream: unknown opcode %u", opcode);
        }
    }
    // A kInitEnd sitting right past the last op of a full batch must be
    // taken now: the recorded run flipped the phase during the call that
    // produced that op, and the scheduler may look before the next call.
    if (!state.finished && state.offset < len &&
        data[state.offset] == ptt::kInitEnd) {
        ++state.offset;
        state.in_init = false;
    }
    return produced;
}

// ---- RecordingWorkload -------------------------------------------------

/// WorkloadContext proxy that encodes every interaction as it happens,
/// preserving stream order relative to ops.
class RecordingWorkload::RecordingContext final : public WorkloadContext {
  public:
    RecordingContext(WorkloadContext &real, StreamEncoder &enc)
        : real_(real), enc_(enc)
    {
    }

    Addr
    mmap(Addr bytes) override
    {
        Addr base = real_.mmap(bytes);
        enc_.mmap(bytes, base);
        return base;
    }

    void
    munmap(Addr base) override
    {
        enc_.munmap(base);
        real_.munmap(base);
    }

    void
    free_page(Addr gva) override
    {
        enc_.free_page(gva);
        real_.free_page(gva);
    }

  private:
    WorkloadContext &real_;
    StreamEncoder &enc_;
};

RecordingWorkload::RecordingWorkload(std::unique_ptr<Workload> inner)
    : inner_(std::move(inner))
{
    if (!inner_)
        ptm_fatal("RecordingWorkload needs a workload to wrap");
}

RecordingWorkload::~RecordingWorkload() = default;

void
RecordingWorkload::setup(WorkloadContext &ctx)
{
    RecordingContext rc(ctx, enc_);
    inner_->setup(rc);
    enc_.setup_end();
    note_init_phase();
}

void
RecordingWorkload::note_init_phase()
{
    if (!init_end_recorded_ && !inner_->in_init_phase()) {
        enc_.init_end();
        init_end_recorded_ = true;
    }
}

std::optional<MemOp>
RecordingWorkload::next(WorkloadContext &ctx)
{
    RecordingContext rc(ctx, enc_);
    std::optional<MemOp> op = inner_->next(rc);
    if (!op) {
        if (!eos_recorded_) {
            enc_.eos();
            eos_recorded_ = true;
        }
        return std::nullopt;
    }
    enc_.op(*op);
    note_init_phase();
    return op;
}

unsigned
RecordingWorkload::next_batch(WorkloadContext &ctx, MemOp *out,
                              unsigned max)
{
    RecordingContext rc(ctx, enc_);
    unsigned n = inner_->next_batch(rc, out, max);
    if (n == 0) {
        if (!eos_recorded_) {
            enc_.eos();
            eos_recorded_ = true;
        }
        return 0;
    }
    for (unsigned i = 0; i < n; ++i)
        enc_.op(out[i]);
    note_init_phase();
    return n;
}

// ---- TraceFile ---------------------------------------------------------

TraceFile
TraceFile::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        ptm_throw("cannot open trace file %s", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> blob(size > 0 ? static_cast<std::size_t>(size)
                                            : 0);
    if (!blob.empty() &&
        std::fread(blob.data(), 1, blob.size(), f) != blob.size()) {
        std::fclose(f);
        ptm_throw("cannot read trace file %s", path.c_str());
    }
    std::fclose(f);

    if (blob.size() < sizeof(ptt::kMagic) ||
        std::memcmp(blob.data(), ptt::kMagic, sizeof(ptt::kMagic)) != 0)
        ptm_throw("%s is not a .ptt trace (bad magic)", path.c_str());

    std::size_t offset = sizeof(ptt::kMagic);
    TraceFile trace;
    std::uint64_t jobs = ptt::get_varint(blob.data(), blob.size(), offset);
    std::vector<std::uint64_t> lengths;
    for (std::uint64_t j = 0; j < jobs; ++j) {
        std::uint64_t name_len =
            ptt::get_varint(blob.data(), blob.size(), offset);
        if (offset + name_len > blob.size())
            ptm_throw("trace %s: truncated job name", path.c_str());
        JobStream stream;
        stream.name.assign(reinterpret_cast<const char *>(&blob[offset]),
                           name_len);
        offset += name_len;
        lengths.push_back(
            ptt::get_varint(blob.data(), blob.size(), offset));
        trace.jobs_.push_back(std::move(stream));
    }
    for (std::uint64_t j = 0; j < jobs; ++j) {
        if (offset + lengths[j] > blob.size())
            ptm_throw("trace %s: truncated stream for job %llu",
                      path.c_str(), static_cast<unsigned long long>(j));
        trace.jobs_[j].bytes.assign(blob.begin() + offset,
                                    blob.begin() + offset + lengths[j]);
        offset += lengths[j];
    }
    return trace;
}

void
TraceFile::write(const std::string &path,
                 const std::vector<const RecordingWorkload *> &jobs)
{
    std::vector<std::uint8_t> blob;
    blob.insert(blob.end(), ptt::kMagic, ptt::kMagic + sizeof(ptt::kMagic));
    ptt::put_varint(blob, jobs.size());
    for (const RecordingWorkload *job : jobs) {
        const std::string name = job->name();
        ptt::put_varint(blob, name.size());
        blob.insert(blob.end(), name.begin(), name.end());
        ptt::put_varint(blob, job->encoder().bytes().size());
    }
    for (const RecordingWorkload *job : jobs) {
        const std::vector<std::uint8_t> &bytes = job->encoder().bytes();
        blob.insert(blob.end(), bytes.begin(), bytes.end());
    }

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        ptm_throw("cannot create trace file %s", tmp.c_str());
    if (std::fwrite(blob.data(), 1, blob.size(), f) != blob.size()) {
        std::fclose(f);
        std::remove(tmp.c_str());
        ptm_throw("cannot write trace file %s", tmp.c_str());
    }
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        ptm_throw("cannot move trace file into place at %s", path.c_str());
    }
}

namespace {

/// Replays one immutable TraceFile job stream.
class TraceReplayWorkload final : public Workload {
  public:
    explicit TraceReplayWorkload(const TraceFile::JobStream *stream)
        : stream_(stream)
    {
    }

    void
    setup(WorkloadContext &ctx) override
    {
        decode_setup(stream_->bytes.data(), stream_->bytes.size(), state_,
                     ctx);
    }

    std::optional<MemOp>
    next(WorkloadContext &ctx) override
    {
        MemOp op;
        if (next_batch(ctx, &op, 1) == 0)
            return std::nullopt;
        return op;
    }

    unsigned
    next_batch(WorkloadContext &ctx, MemOp *out, unsigned max) override
    {
        unsigned n = decode_ops(stream_->bytes.data(),
                                stream_->bytes.size(), state_, ctx, out,
                                max);
        // A stream that ran dry without an explicit EOS was recorded
        // from an infinite co-runner; the replayed job simply ends where
        // the recording did.
        if (n == 0)
            state_.finished = true;
        return n;
    }

    bool in_init_phase() const override { return state_.in_init; }
    std::string name() const override { return stream_->name; }

  private:
    const TraceFile::JobStream *stream_;
    DecodeState state_;
};

}  // namespace

std::unique_ptr<Workload>
TraceFile::make_replayer(unsigned index) const
{
    return std::make_unique<TraceReplayWorkload>(&jobs_.at(index));
}

// ---- StreamCache -------------------------------------------------------

namespace {

/// Context for detached generation: virtual address assignment is the
/// only context result generators consume, and it is deterministic (the
/// kernel's mmap is a pure VirtualAddressSpace cursor), so a private
/// address space reproduces the exact addresses of a live run — which
/// replay re-checks on every mmap.
class DetachedContext final : public WorkloadContext {
  public:
    Addr mmap(Addr bytes) override { return vas_.mmap(bytes); }
    void munmap(Addr base) override { vas_.munmap(base); }
    void
    free_page(Addr gva) override
    {
        (void)gva;  // physical backing does not exist here
    }

  private:
    vm::VirtualAddressSpace vas_;
};

/// Ops decoded per lock acquisition when a consumer outruns the stream.
constexpr unsigned kExtendOps = 32 * 1024;

}  // namespace

struct StreamCache::Entry {
    std::mutex mutex;
    RecordingWorkload rec;
    DetachedContext dctx;

    explicit Entry(std::unique_ptr<Workload> gen) : rec(std::move(gen))
    {
        rec.setup(dctx);
    }

    const std::vector<std::uint8_t> &
    bytes() const
    {
        return rec.encoder().bytes();
    }

    /// Generate (and encode) up to @p ops more operations. Must be
    /// called with the entry mutex held.
    void
    extend(unsigned ops)
    {
        MemOp buf[256];
        unsigned done = 0;
        while (done < ops) {
            // Generate op-at-a-time while the inner workload is in its
            // init phase: the recorder notes the phase flip after each
            // call, so this pins kInitEnd to its exact serial position.
            // (A 256-op recording batch would displace it by up to 255
            // ops — across many scheduler slices — and consumers would
            // observably leave the init phase late.)
            unsigned want = rec.in_init_phase() ? 1 : ops - done;
            if (want > 256)
                want = 256;
            unsigned n = rec.next_batch(dctx, buf, want);
            if (n == 0)
                return;  // finite workload ended; EOS is now encoded
            done += n;
        }
    }
};

namespace {

/// Replays (and lazily extends) a shared StreamCache entry.
class CachedStreamWorkload final : public Workload {
  public:
    explicit CachedStreamWorkload(std::shared_ptr<StreamCache::Entry> entry)
        : entry_(std::move(entry)), name_(entry_->rec.name())
    {
    }

    void
    setup(WorkloadContext &ctx) override
    {
        std::lock_guard<std::mutex> lock(entry_->mutex);
        const std::vector<std::uint8_t> &bytes = entry_->bytes();
        decode_setup(bytes.data(), bytes.size(), state_, ctx);
    }

    std::optional<MemOp>
    next(WorkloadContext &ctx) override
    {
        MemOp op;
        if (next_batch(ctx, &op, 1) == 0)
            return std::nullopt;
        return op;
    }

    unsigned
    next_batch(WorkloadContext &ctx, MemOp *out, unsigned max) override
    {
        std::lock_guard<std::mutex> lock(entry_->mutex);
        for (;;) {
            const std::vector<std::uint8_t> &bytes = entry_->bytes();
            unsigned n = decode_ops(bytes.data(), bytes.size(), state_,
                                    ctx, out, max);
            if (n > 0 || state_.finished)
                return n;
            // Ran dry ahead of every other consumer: grow the stream.
            // Progress is guaranteed — the generator either produces ops
            // or encodes its EOS, which the next decode consumes.
            entry_->extend(kExtendOps);
        }
    }

    bool in_init_phase() const override { return state_.in_init; }
    std::string name() const override { return name_; }

  private:
    std::shared_ptr<StreamCache::Entry> entry_;
    std::string name_;
    DecodeState state_;
};

}  // namespace

StreamCache &
StreamCache::instance()
{
    static StreamCache cache;
    return cache;
}

bool
StreamCache::enabled()
{
    return std::getenv("PTM_NO_STREAM_MEMO") == nullptr;
}

std::unique_ptr<Workload>
StreamCache::replay(const std::string &name,
                    const WorkloadOptions &options)
{
    // Exact key: hex-float scale avoids decimal rounding collisions.
    // Generator params are appended only when present, so every
    // pre-params key stays byte-identical.
    char base[256];
    std::snprintf(base, sizeof base, "%s|%llu|%a|%llu", name.c_str(),
                  static_cast<unsigned long long>(options.seed),
                  options.scale,
                  static_cast<unsigned long long>(options.total_ops));
    std::string key = base;
    for (const auto &[pkey, pvalue] : options.params.entries()) {
        char param[128];
        std::snprintf(param, sizeof param, "|%s=%a", pkey.c_str(),
                      pvalue);
        key += param;
    }

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::shared_ptr<Entry> &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>(make_workload(name, options));
        entry = slot;
    }
    return std::make_unique<CachedStreamWorkload>(std::move(entry));
}

void
StreamCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

}  // namespace ptm::workload
