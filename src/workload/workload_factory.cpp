#include "workload/workload_factory.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ptm::workload {

namespace {

/// Meyers singleton so registrations from static initializers in any
/// translation unit land in one map regardless of init order.
std::map<std::string, WorkloadCtor> &
registry()
{
    static std::map<std::string, WorkloadCtor> workloads;
    return workloads;
}

/**
 * Built-in generators register from their own TUs (catalog.cpp,
 * serving.cpp), but a static-library link may never pull those TUs in
 * unless a symbol of theirs is referenced — so the factory references
 * their registration hooks by name on first use instead of trusting
 * static initializers to run.
 */
void
ensure_builtins()
{
    static const bool registered = [] {
        detail::register_catalog_workloads();
        detail::register_serving_workloads();
        return true;
    }();
    (void)registered;
}

std::string
known_names()
{
    std::ostringstream out;
    bool first = true;
    for (const auto &[name, ctor] : registry()) {
        out << (first ? "" : ", ") << name;
        first = false;
    }
    return out.str();
}

}  // namespace

void
register_workload(const std::string &name, WorkloadCtor ctor)
{
    registry()[name] = std::move(ctor);
}

bool
workload_registered(const std::string &name)
{
    ensure_builtins();
    return registry().count(name) != 0;
}

std::vector<std::string>
registered_workloads()
{
    ensure_builtins();
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, ctor] : registry())
        names.push_back(name);
    return names;
}

std::unique_ptr<Workload>
make_workload(const std::string &name, const WorkloadOptions &options)
{
    ensure_builtins();
    auto it = registry().find(name);
    if (it == registry().end())
        ptm_throw("unknown workload '%s' (registered: %s)", name.c_str(),
                  known_names().c_str());
    return it->second(options);
}

namespace detail {

std::uint64_t
mix_seed(const std::string &name, std::uint64_t seed)
{
    std::uint64_t h = std::hash<std::string>{}(name);
    std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL;
    return h ^ splitmix64(s);
}

}  // namespace detail

}  // namespace ptm::workload
