/**
 * @file
 * The workload catalog: named presets for every benchmark and co-runner
 * of the paper's Table 3, plus the §6.4 allocation microbenchmark.
 *
 * Footprints are scaled from the paper's setup (16 GB datasets, 25 MB
 * LLC) down to the simulator's default platform (≈50-130 MB footprints,
 * 2 MB LLC) preserving the footprint:LLC and footprint:TLB-reach ratios
 * that drive the observed effects.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "workload/synthetic.hpp"
#include "workload/workload_factory.hpp"

namespace ptm::workload {

/// One co-runner: a catalog workload running @p workers worker processes
/// (the paper's co-runners are multi-threaded; each worker is one job).
struct CorunnerSpec {
    std::string name;
    unsigned workers = 1;
};

// Catalog presets are built through workload_factory.hpp's
// make_workload(). Registered catalog names:
//  - benchmarks: cc, bfs, nibble, pagerank, gcc, mcf, omnetpp, xz
//  - low-TLB-pressure SPEC'17 Int class: perlbench, x264, deepsjeng,
//    leela, exchange2, xalancbmk
//  - co-runners: objdet, stress-ng, chameleon, pyaes, json_serdes,
//    rnn_serving (gcc and xz double as co-runners, per Table 3)
//  - microbenchmarks: alloc_sweep (§6.4)
// The serving tier (kv_tier, fork_storm, ws_estimate) registers from
// serving.cpp.

/// The eight evaluated benchmarks, in the paper's figure order.
const std::vector<std::string> &benchmark_names();

/// The low-TLB-pressure SPEC'17 Int class used for the §6.1
/// "0-1%, never negative" sanity sweep.
const std::vector<std::string> &low_pressure_names();

/// The co-runner set used in the Figure 7 "combination" scenario.
const std::vector<std::string> &corunner_names();

/**
 * The named co-runner combinations of the evaluation, shared by the
 * benches instead of copy-pasted initializer lists:
 *  - "none":       standalone run (Table 1 reference arm)
 *  - "objdet8":    8-worker objdet, the highest-fault-rate co-runner
 *                  (Figures 5/6, Tables 4, §6.1/§6.2 protocols)
 *  - "combo":      the full Table 3 combination (Figure 7)
 *  - "stressng12": 12-worker stress-ng fault churn (Table 1)
 */
const std::map<std::string, std::vector<CorunnerSpec>> &corunner_presets();

/// Lookup one preset by name; unknown names are fatal.
const std::vector<CorunnerSpec> &corunner_preset(const std::string &name);

}  // namespace ptm::workload
