#include "host/host_kernel.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace_sink.hpp"
#include "pt/table_factory.hpp"

namespace ptm::host {

VmInstance::VmInstance(std::int32_t id, pt::FrameSource pt_frames)
    : VmInstance(id,
                 std::make_unique<pt::PageTable>(std::move(pt_frames)))
{
}

VmInstance::VmInstance(std::int32_t id,
                       std::unique_ptr<pt::TranslationTable> table)
    : id_(id), page_table_(std::move(table))
{
    if (!page_table_)
        ptm_panic("vm %d created without a translation table", id_);
}

HostKernel::HostKernel(std::uint64_t host_frames, HostCostModel costs)
    : costs_(costs), buddy_(0, host_frames), memory_(0, host_frames)
{
}

HostKernel::~HostKernel()
{
    vms_.clear();
}

pt::FrameSource
HostKernel::pt_frame_source(std::int32_t vm_id)
{
    return pt::FrameSource{
        .allocate =
            [this, vm_id]() -> std::optional<std::uint64_t> {
                std::optional<std::uint64_t> frame = buddy_.allocate_frame();
                if (frame) {
                    memory_.set_use(*frame, 1, mem::FrameUse::PageTable,
                                    vm_id);
                }
                return frame;
            },
        .release =
            [this](std::uint64_t frame) {
                memory_.set_use(frame, 1, mem::FrameUse::Free);
                buddy_.free(frame);
            },
    };
}

void
HostKernel::set_translation_table(const std::string &name,
                                  PolicyParams params)
{
    if (!vms_.empty())
        ptm_fatal("cannot change the host translation table with live VMs");
    if (!pt::table_registered(name)) {
        // Fail the same way make_table would, before a VM exists.
        pt::make_table(name, pt_frame_source(0), params);
    }
    table_name_ = name;
    table_params_ = std::move(params);
}

std::uint64_t
HostKernel::table_boot_frames() const
{
    if (table_name_ == "hashed") {
        return static_cast<std::uint64_t>(
            table_params_.get("initial_frames", 4.0));
    }
    return 1;  // radix-style tables allocate only the root node at boot
}

VmInstance &
HostKernel::create_vm()
{
    // Admission control: fail before anything is allocated, so a caller
    // that survives the error sees an unchanged host. (Even past this
    // check the table constructor can lose a frame to an armed alloc
    // gate; that path also raises a recoverable SimError now.)
    const std::uint64_t needed = table_boot_frames();
    const std::uint64_t free = buddy_.free_frames_count();
    if (free < needed) {
        ptm_throw("cannot boot vm %d: host has %llu free frames, booting "
                  "a '%s' translation table needs %llu",
                  next_vm_id_, static_cast<unsigned long long>(free),
                  table_name_.c_str(),
                  static_cast<unsigned long long>(needed));
    }

    std::int32_t id = next_vm_id_++;
    auto vm = std::make_unique<VmInstance>(
        id, pt::make_table(table_name_, pt_frame_source(id), table_params_));
    VmInstance &ref = *vm;
    vms_.emplace(id, std::move(vm));
    return ref;
}

bool
HostKernel::unback(VmInstance &vm, std::uint64_t gfn)
{
    std::optional<pt::Pte> pte = vm.page_table().lookup(gfn);
    if (!pte)
        return false;  // never backed: the balloon release is unproductive

    // Shoot down stale nested-TLB entries before the frame can be
    // reallocated to another VM.
    if (on_backing_invalidated)
        on_backing_invalidated(vm.id(), gfn);

    const std::uint64_t hfn = pte->frame();
    vm.page_table().unmap(gfn);
    memory_.set_use(hfn, 1, mem::FrameUse::Free);
    buddy_.free(hfn);
    vm.note_unbacked();
    stats_.pages_unbacked.inc();
    return true;
}

std::uint64_t
HostKernel::destroy_vm(VmInstance &vm)
{
    const std::int32_t id = vm.id();
    const std::uint64_t free_before = buddy_.free_frames_count();

    // Repossess the VM's data frames by ownership scan; no nested-TLB
    // shootdown is needed because the dead VM's jobs never run again and
    // other VMs' nested TLBs are keyed by their own guest frames.
    std::uint64_t data_frames = 0;
    const std::uint64_t base = memory_.base_frame();
    const std::uint64_t limit = base + memory_.frame_count();
    for (std::uint64_t frame = base; frame < limit; ++frame) {
        const mem::FrameInfo &info = memory_.info(frame);
        if (info.owner == id && info.use == mem::FrameUse::Data) {
            memory_.set_use(frame, 1, mem::FrameUse::Free);
            buddy_.free(frame);
            ++data_frames;
        }
    }
    stats_.frames_repossessed.inc(data_frames);

    // The translation-table destructor releases the PT node frames
    // through its frame source.
    vms_.erase(id);
    stats_.vms_destroyed.inc();
    return buddy_.free_frames_count() - free_before;
}

mmu::FaultOutcome
HostKernel::handle_fault(VmInstance &vm, std::uint64_t gfn)
{
    stats_.faults_handled.inc();

    std::optional<std::uint64_t> hfn = buddy_.allocate_frame();
    if (!hfn)
        return {.ok = false};

    if (!vm.page_table().map(gfn, {.writable = true, .frame = *hfn})) {
        // The data frame is allocated but cannot be mapped: give it back
        // so a caller that survives the error sees consistent accounting.
        buddy_.free(*hfn);
        ptm_throw("host OOM while allocating host page-table nodes "
                  "(vm %d, gfn %llu)", vm.id(),
                  static_cast<unsigned long long>(gfn));
    }

    memory_.set_use(*hfn, 1, mem::FrameUse::Data, vm.id());
    vm.note_backed();
    stats_.pages_backed.inc();

    if (trace_ != nullptr)
        trace_->event_now("host_fault", "hypervisor", costs_.vmexit_fault,
                          {{"vm", static_cast<std::uint64_t>(vm.id())},
                           {"gfn", gfn},
                           {"hfn", *hfn}});

    return {.ok = true, .frame = *hfn, .cycles = costs_.vmexit_fault};
}

void
HostKernel::register_stats(obs::StatRegistry &registry,
                           const std::string &prefix)
{
    registry.counter(prefix + ".kernel.faults_handled",
                     &stats_.faults_handled);
    registry.counter(prefix + ".kernel.pages_backed",
                     &stats_.pages_backed);
    registry.counter(prefix + ".kernel.pages_unbacked",
                     &stats_.pages_unbacked);
    registry.counter(prefix + ".kernel.frames_repossessed",
                     &stats_.frames_repossessed);
    registry.counter(prefix + ".kernel.vms_destroyed",
                     &stats_.vms_destroyed);
    buddy_.register_stats(registry, prefix + ".buddy");
}

}  // namespace ptm::host
