#include "host/host_kernel.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace_sink.hpp"
#include "pt/table_factory.hpp"

namespace ptm::host {

VmInstance::VmInstance(std::int32_t id, pt::FrameSource pt_frames)
    : VmInstance(id,
                 std::make_unique<pt::PageTable>(std::move(pt_frames)))
{
}

VmInstance::VmInstance(std::int32_t id,
                       std::unique_ptr<pt::TranslationTable> table)
    : id_(id), page_table_(std::move(table))
{
    if (!page_table_)
        ptm_panic("vm %d created without a translation table", id_);
}

HostKernel::HostKernel(std::uint64_t host_frames, HostCostModel costs)
    : costs_(costs), buddy_(0, host_frames), memory_(0, host_frames)
{
}

HostKernel::~HostKernel()
{
    vms_.clear();
}

pt::FrameSource
HostKernel::pt_frame_source(std::int32_t vm_id)
{
    return pt::FrameSource{
        .allocate =
            [this, vm_id]() -> std::optional<std::uint64_t> {
                std::optional<std::uint64_t> frame = buddy_.allocate_frame();
                if (frame) {
                    memory_.set_use(*frame, 1, mem::FrameUse::PageTable,
                                    vm_id);
                }
                return frame;
            },
        .release =
            [this](std::uint64_t frame) {
                memory_.set_use(frame, 1, mem::FrameUse::Free);
                buddy_.free(frame);
            },
    };
}

void
HostKernel::set_translation_table(const std::string &name,
                                  PolicyParams params)
{
    if (!vms_.empty())
        ptm_fatal("cannot change the host translation table with live VMs");
    if (!pt::table_registered(name)) {
        // Fail the same way make_table would, before a VM exists.
        pt::make_table(name, pt_frame_source(0), params);
    }
    table_name_ = name;
    table_params_ = std::move(params);
}

VmInstance &
HostKernel::create_vm()
{
    std::int32_t id = next_vm_id_++;
    auto vm = std::make_unique<VmInstance>(
        id, pt::make_table(table_name_, pt_frame_source(id), table_params_));
    VmInstance &ref = *vm;
    vms_.emplace(id, std::move(vm));
    return ref;
}

mmu::FaultOutcome
HostKernel::handle_fault(VmInstance &vm, std::uint64_t gfn)
{
    stats_.faults_handled.inc();

    std::optional<std::uint64_t> hfn = buddy_.allocate_frame();
    if (!hfn)
        return {.ok = false};

    if (!vm.page_table().map(gfn, {.writable = true, .frame = *hfn})) {
        // The data frame is allocated but cannot be mapped: give it back
        // so a caller that survives the error sees consistent accounting.
        buddy_.free(*hfn);
        ptm_throw("host OOM while allocating host page-table nodes "
                  "(vm %d, gfn %llu)", vm.id(),
                  static_cast<unsigned long long>(gfn));
    }

    memory_.set_use(*hfn, 1, mem::FrameUse::Data, vm.id());
    vm.note_backed();
    stats_.pages_backed.inc();

    if (trace_ != nullptr)
        trace_->event_now("host_fault", "hypervisor", costs_.vmexit_fault,
                          {{"vm", static_cast<std::uint64_t>(vm.id())},
                           {"gfn", gfn},
                           {"hfn", *hfn}});

    return {.ok = true, .frame = *hfn, .cycles = costs_.vmexit_fault};
}

void
HostKernel::register_stats(obs::StatRegistry &registry,
                           const std::string &prefix)
{
    registry.counter(prefix + ".kernel.faults_handled",
                     &stats_.faults_handled);
    registry.counter(prefix + ".kernel.pages_backed",
                     &stats_.pages_backed);
    buddy_.register_stats(registry, prefix + ".buddy");
}

}  // namespace ptm::host
