/**
 * @file
 * Host kernel / hypervisor model (KVM-style, §3.1).
 *
 * The host treats each virtual machine as an ordinary process whose
 * virtual address space *is* the guest-physical space: guest frame number
 * == host-virtual page number. Host-physical backing is allocated lazily,
 * one page at a time, on the first touch of each guest frame — which is
 * why guest-physical fragmentation transfers verbatim into host-PT-leaf
 * scatter.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/buddy_allocator.hpp"
#include "mem/physical_memory.hpp"
#include "mmu/nested_walker.hpp"
#include "obs/stat_registry.hpp"
#include "pt/page_table.hpp"
#include "pt/translation_table.hpp"

namespace ptm::obs {
class TraceSink;
}  // namespace ptm::obs

namespace ptm::host {

/// Cycle costs of host-side paths.
struct HostCostModel {
    Cycles vmexit_fault = 2600;  ///< VM exit + host fault + re-entry
};

/// Host kernel activity counters.
struct HostKernelStats {
    Counter faults_handled;
    Counter pages_backed;
    Counter pages_unbacked;      ///< balloon-released backings dropped
    Counter frames_repossessed;  ///< data frames reclaimed from dead VMs
    Counter vms_destroyed;
};

/// One virtual machine as seen by the host: a host page table mapping
/// guest frames to machine frames.
class VmInstance {
  public:
    /// Convenience: a VM with the default radix host page table.
    VmInstance(std::int32_t id, pt::FrameSource pt_frames);

    /// A VM owning an explicit host translation table (factory-built).
    VmInstance(std::int32_t id,
               std::unique_ptr<pt::TranslationTable> table);

    std::int32_t id() const { return id_; }
    pt::TranslationTable &page_table() { return *page_table_; }
    const pt::TranslationTable &page_table() const { return *page_table_; }

    std::uint64_t backed_pages() const { return backed_pages_; }
    void note_backed() { ++backed_pages_; }
    void
    note_unbacked()
    {
        if (backed_pages_ > 0)
            --backed_pages_;
    }

  private:
    std::int32_t id_;
    std::unique_ptr<pt::TranslationTable> page_table_;
    std::uint64_t backed_pages_ = 0;
};

class HostKernel {
  public:
    explicit HostKernel(std::uint64_t host_frames, HostCostModel costs = {});
    ~HostKernel();

    HostKernel(const HostKernel &) = delete;
    HostKernel &operator=(const HostKernel &) = delete;

    /**
     * Boot a VM (its guest-physical space is backed on demand). Admission
     * is checked up front: booting needs the VM's page-table boot frames
     * (1 for radix, "initial_frames" for hashed tables).
     * @throws SimError with free/needed frame counts when the host cannot
     * back even the boot frames — recoverable, nothing is allocated.
     */
    VmInstance &create_vm();

    /**
     * Drop the host backing of @p vm's guest frame @p gfn (balloon path):
     * unmap the host PTE and free the machine frame. Fires
     * on_backing_invalidated first so stale nested-TLB entries are
     * shot down before the frame can be reused.
     * @return false when @p gfn was never backed (unproductive release).
     */
    bool unback(VmInstance &vm, std::uint64_t gfn);

    /**
     * Kill @p vm: repossess every data frame it owns, then destroy the
     * instance (its page-table destructor releases the PT node frames).
     * The reference is dead afterwards.
     * @return host frames freed (data + page-table nodes).
     */
    std::uint64_t destroy_vm(VmInstance &vm);

    std::uint64_t live_vm_count() const { return vms_.size(); }

    /**
     * Select the host translation-table structure (pt::make_table name)
     * used by VMs created from now on; defaults to "radix".
     * @throws SimError if @p name is not registered.
     */
    void set_translation_table(const std::string &name,
                               PolicyParams params = {});
    const std::string &translation_table() const { return table_name_; }

    /**
     * Host page-fault path: back guest frame @p gfn of @p vm with a fresh
     * machine frame. Matches the mmu::HostContext callback shape.
     */
    mmu::FaultOutcome handle_fault(VmInstance &vm, std::uint64_t gfn);

    mem::BuddyAllocator &buddy() { return buddy_; }
    mem::PhysicalMemory &memory() { return memory_; }
    const HostCostModel &costs() const { return costs_; }
    const HostKernelStats &stats() const { return stats_; }

    /// Register kernel counters under "<prefix>.kernel.*" and the buddy
    /// allocator under "<prefix>.buddy.*".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

    /// Arm (or with nullptr disarm) trace-event emission for host faults.
    /// The sink must outlive the kernel or be disarmed first.
    void set_trace_sink(obs::TraceSink *sink) { trace_ = sink; }

    /// Sim-layer hook: invoked before a backing (vm_id, gfn) is dropped
    /// by unback(), so the owning VM's nested TLBs can be invalidated.
    std::function<void(std::int32_t vm_id, std::uint64_t gfn)>
        on_backing_invalidated;

  private:
    pt::FrameSource pt_frame_source(std::int32_t vm_id);

    /// Frames a new VM's translation table allocates at boot.
    std::uint64_t table_boot_frames() const;

    HostCostModel costs_;
    mem::BuddyAllocator buddy_;
    mem::PhysicalMemory memory_;
    std::string table_name_ = "radix";
    PolicyParams table_params_;
    std::map<std::int32_t, std::unique_ptr<VmInstance>> vms_;
    obs::TraceSink *trace_ = nullptr;  ///< normally unarmed
    HostKernelStats stats_;
    std::int32_t next_vm_id_ = 1;
};

}  // namespace ptm::host
