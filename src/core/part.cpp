#include "core/part.hpp"

#include <bit>

#include "common/log.hpp"

namespace ptm::core {

/**
 * Radix node. Levels 0..2 hold child nodes; level 3 holds reservation
 * entries. Nodes are created on demand and never freed before the tree
 * itself (so raw parent pointers captured during a descent stay valid);
 * entries are unlinked with a tombstone protocol so that no thread can
 * observe a freed entry:
 *   - a slot pointer may only be read while holding the level-3 node lock;
 *   - an entry may only be freed while holding the level-3 node lock,
 *     after a lock/unlock barrier on the entry itself, which guarantees
 *     every thread that obtained the pointer has finished with it.
 */
struct Part::Leaf {
    std::mutex lock;
    std::uint64_t base_gfn = 0;
    std::uint32_t mask = 0;
    bool valid = true;
};

struct Part::Node {
    std::mutex lock;
    // Children: nodes at levels 0..2, leaves at level 3. Only one of the
    // two arrays is populated depending on the node's level.
    std::array<std::unique_ptr<Node>, kFanout> children;
    std::array<std::unique_ptr<Leaf>, kFanout> entries;
};

namespace {

unsigned
index_at(std::uint64_t group, unsigned level)
{
    unsigned shift = Part::kBitsPerLevel * (Part::kLevels - 1 - level);
    return static_cast<unsigned>((group >> shift) &
                                 (Part::kFanout - 1));
}

}  // namespace

Part::Part(unsigned pages_per_group)
    : root_(std::make_unique<Node>()), pages_per_group_(pages_per_group),
      full_mask_(pages_per_group == 32
                     ? ~std::uint32_t{0}
                     : (std::uint32_t{1} << pages_per_group) - 1)
{
    if (pages_per_group < 2 || pages_per_group > 32)
        ptm_fatal("pages_per_group %u out of range [2, 32]",
                  pages_per_group);
}

Part::~Part() = default;

/**
 * Descend to the level-3 node for @p group with hand-over-hand locking.
 * On return the level-3 node's lock is HELD (via the returned lock) and
 * the node pointer is valid. If @p create_missing is false and the path
 * does not exist, returns nullptr with no lock held.
 */
static Part::Node *
descend(Part::Node *root, std::uint64_t group, bool create_missing,
        std::unique_lock<std::mutex> &out_lock)
{
    std::unique_lock<std::mutex> lock(root->lock);
    Part::Node *node = root;
    for (unsigned level = 0; level < Part::kLevels - 1; ++level) {
        unsigned idx = index_at(group, level);
        if (!node->children[idx]) {
            if (!create_missing)
                return nullptr;
            node->children[idx] = std::make_unique<Part::Node>();
        }
        Part::Node *child = node->children[idx].get();
        std::unique_lock<std::mutex> child_lock(child->lock);
        lock.swap(child_lock);  // hand-over-hand: parent unlocks last
        node = child;
    }
    out_lock = std::move(lock);
    return node;
}

ClaimResult
Part::claim(std::uint64_t group, unsigned offset)
{
    ptm_assert(offset < pages_per_group_);
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);

    std::unique_lock<std::mutex> node_lock;
    Node *node = descend(root_.get(), group, false, node_lock);
    if (node == nullptr)
        return {};

    unsigned slot = index_at(group, kLevels - 1);
    Leaf *leaf = node->entries[slot].get();
    if (leaf == nullptr)
        return {};

    std::unique_lock<std::mutex> leaf_lock(leaf->lock);
    node_lock.unlock();
    if (!leaf->valid)
        return {};  // concurrently deleted: treat as a miss

    std::uint32_t bit = std::uint32_t{1} << offset;
    if (leaf->mask & bit) {
        // A concurrent fault on the same page won the race: report the
        // winner's frame idempotently (the kernel sees an already
        // present PTE on retry).
        ClaimResult raced;
        raced.found = true;
        raced.gfn = leaf->base_gfn + offset;
        raced.already_mapped = true;
        return raced;
    }

    ClaimResult result;
    result.found = true;
    result.gfn = leaf->base_gfn + offset;
    leaf->mask |= bit;
    unmapped_reserved_.fetch_sub(1, std::memory_order_relaxed);
    stats_.hits.fetch_add(1, std::memory_order_relaxed);

    bool tombstoned = false;
    if (leaf->mask == full_mask_) {
        // All eight pages are mapped: the entry is no longer needed and
        // can be safely deleted (§4.2).
        leaf->valid = false;
        tombstoned = true;
        result.deleted_full = true;
    }
    leaf_lock.unlock();

    if (tombstoned) {
        std::unique_lock<std::mutex> relock(node->lock);
        if (node->entries[slot].get() == leaf) {
            // Barrier: wait out any thread that still holds the pointer.
            leaf->lock.lock();
            leaf->lock.unlock();
            node->entries[slot].reset();
        }
        live_reservations_.fetch_sub(1, std::memory_order_relaxed);
        stats_.deletes_full.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

std::uint64_t
Part::create(std::uint64_t group, std::uint64_t base_gfn, unsigned offset)
{
    ptm_assert(offset < pages_per_group_);

    std::unique_lock<std::mutex> node_lock;
    Node *node = descend(root_.get(), group, true, node_lock);
    ptm_assert(node != nullptr);

    unsigned slot = index_at(group, kLevels - 1);
    if (node->entries[slot] && node->entries[slot]->valid) {
        ptm_panic("create over a live reservation for group %llu",
                  static_cast<unsigned long long>(group));
    }

    auto leaf = std::make_unique<Leaf>();
    leaf->base_gfn = base_gfn;
    leaf->mask = std::uint32_t{1} << offset;
    node->entries[slot] = std::move(leaf);

    live_reservations_.fetch_add(1, std::memory_order_relaxed);
    unmapped_reserved_.fetch_add(pages_per_group_ - 1,
                                 std::memory_order_relaxed);
    stats_.creates.fetch_add(1, std::memory_order_relaxed);
    return base_gfn + offset;
}

ReleaseResult
Part::release(std::uint64_t group, unsigned offset)
{
    ptm_assert(offset < pages_per_group_);

    std::unique_lock<std::mutex> node_lock;
    Node *node = descend(root_.get(), group, false, node_lock);
    if (node == nullptr)
        return {};

    unsigned slot = index_at(group, kLevels - 1);
    Leaf *leaf = node->entries[slot].get();
    if (leaf == nullptr)
        return {};

    std::unique_lock<std::mutex> leaf_lock(leaf->lock);
    node_lock.unlock();
    if (!leaf->valid)
        return {};

    std::uint32_t bit = std::uint32_t{1} << offset;
    if (!(leaf->mask & bit)) {
        // Releasing a page the reservation never handed out: kernel-model
        // bookkeeping error.
        ptm_panic("release of unmapped page %u in group %llu", offset,
                  static_cast<unsigned long long>(group));
    }

    ReleaseResult result;
    result.found = true;
    leaf->mask &= ~bit;
    result.final_mask = leaf->mask;
    unmapped_reserved_.fetch_add(1, std::memory_order_relaxed);

    bool tombstoned = false;
    if (leaf->mask == 0) {
        // Application freed every page it had: drop the reservation and
        // hand the whole chunk back (§4.3, case 1).
        leaf->valid = false;
        tombstoned = true;
        result.deleted_empty = true;
        result.base_gfn = leaf->base_gfn;
    }
    leaf_lock.unlock();

    if (tombstoned) {
        std::unique_lock<std::mutex> relock(node->lock);
        if (node->entries[slot].get() == leaf) {
            leaf->lock.lock();
            leaf->lock.unlock();
            node->entries[slot].reset();
        }
        live_reservations_.fetch_sub(1, std::memory_order_relaxed);
        unmapped_reserved_.fetch_sub(pages_per_group_,
                                     std::memory_order_relaxed);
        stats_.deletes_free.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

std::optional<ReservationView>
Part::find(std::uint64_t group) const
{
    std::unique_lock<std::mutex> node_lock;
    Node *node = descend(const_cast<Node *>(root_.get()), group, false,
                         node_lock);
    if (node == nullptr)
        return std::nullopt;

    unsigned slot = index_at(group, kLevels - 1);
    Leaf *leaf = node->entries[slot].get();
    if (leaf == nullptr)
        return std::nullopt;

    std::unique_lock<std::mutex> leaf_lock(leaf->lock);
    node_lock.unlock();
    if (!leaf->valid)
        return std::nullopt;
    return ReservationView{group, leaf->base_gfn, leaf->mask};
}

namespace {

void
drain_node(Part::Node *node, unsigned level, std::uint64_t prefix,
           unsigned pages_per_group,
           const std::function<void(const ReservationView &)> &fn,
           std::uint64_t &removed_entries, std::uint64_t &removed_unmapped)
{
    std::unique_lock<std::mutex> lock(node->lock);
    if (level == Part::kLevels - 1) {
        for (unsigned i = 0; i < Part::kFanout; ++i) {
            Part::Leaf *leaf = node->entries[i].get();
            if (leaf == nullptr)
                continue;
            leaf->lock.lock();
            bool valid = leaf->valid;
            ReservationView view{(prefix << Part::kBitsPerLevel) | i,
                                 leaf->base_gfn, leaf->mask};
            leaf->valid = false;
            leaf->lock.unlock();
            if (valid) {
                fn(view);
                ++removed_entries;
                removed_unmapped += pages_per_group -
                                    static_cast<unsigned>(
                                        std::popcount(view.mask));
            }
            node->entries[i].reset();
        }
        return;
    }
    for (unsigned i = 0; i < Part::kFanout; ++i) {
        if (node->children[i]) {
            drain_node(node->children[i].get(), level + 1,
                       (prefix << Part::kBitsPerLevel) | i,
                       pages_per_group, fn, removed_entries,
                       removed_unmapped);
        }
    }
}

}  // namespace

void
Part::drain(const std::function<void(const ReservationView &)> &fn)
{
    std::uint64_t removed_entries = 0;
    std::uint64_t removed_unmapped = 0;
    drain_node(root_.get(), 0, 0, pages_per_group_, fn, removed_entries,
               removed_unmapped);
    live_reservations_.fetch_sub(removed_entries,
                                 std::memory_order_relaxed);
    unmapped_reserved_.fetch_sub(removed_unmapped,
                                 std::memory_order_relaxed);
}

}  // namespace ptm::core
