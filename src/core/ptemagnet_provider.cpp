#include "core/ptemagnet_provider.hpp"

#include <bit>

#include "common/log.hpp"
#include "vm/guest_kernel.hpp"
#include "vm/provider_factory.hpp"

namespace ptm::core {

namespace {

/// Registers PTEMagnet with the vm-layer policy factory. This translation
/// unit is always linked when the policy can be used (sim::System names
/// PtemagnetProvider directly), so the registrar is never dead-stripped.
const vm::ProviderRegistrar kPtemagnetRegistrar{
    "ptemagnet",
    [](vm::GuestKernel *kernel, const PolicyParams &params) {
        auto provider = std::make_unique<PtemagnetProvider>(
            kernel, static_cast<unsigned>(params.get_u64(
                        "group_pages", kPagesPerReservation)));
        if (params.has("memory_limit_threshold_bytes")) {
            provider->use_memory_limit_policy(static_cast<Addr>(
                params.get_u64("memory_limit_threshold_bytes")));
        }
        return provider;
    }};

}  // namespace

PtemagnetProvider::PtemagnetProvider(vm::GuestKernel *kernel,
                                     unsigned group_pages)
    : kernel_(kernel), group_pages_(group_pages)
{
    if (kernel == nullptr)
        ptm_fatal("PTEMagnet needs a kernel");
    if (group_pages < 2 || group_pages > 32 ||
        (group_pages & (group_pages - 1)) != 0) {
        ptm_fatal("reservation granularity %u is not a power of two in "
                  "[2, 32]", group_pages);
    }
    reservation_order_ =
        static_cast<unsigned>(std::countr_zero(group_pages));
}

PtemagnetProvider::~PtemagnetProvider() = default;

Part &
PtemagnetProvider::part_for(std::int32_t pid)
{
    auto it = parts_.find(pid);
    if (it == parts_.end()) {
        it = parts_.emplace(pid, std::make_unique<Part>(group_pages_))
                 .first;
    }
    return *it->second;
}

const Part *
PtemagnetProvider::part_of(std::int32_t pid) const
{
    auto it = parts_.find(pid);
    return it == parts_.end() ? nullptr : it->second.get();
}

void
PtemagnetProvider::use_memory_limit_policy(Addr threshold_bytes)
{
    enabled_ = [threshold_bytes](const vm::Process &proc) {
        return proc.memory_limit_bytes() >= threshold_bytes;
    };
}

vm::AllocOutcome
PtemagnetProvider::plain_buddy_alloc()
{
    std::optional<std::uint64_t> gfn = kernel_->buddy().allocate_frame();
    stats_.buddy_calls.inc();
    if (!gfn)
        return {.ok = false};
    return {.ok = true, .gfn = *gfn, .cycles = kernel_->costs().buddy_call};
}

vm::AllocOutcome
PtemagnetProvider::allocate_page(vm::Process &proc, std::uint64_t gvpn)
{
    if (enabled_ && !enabled_(proc)) {
        stats_.disabled_allocs.inc();
        return plain_buddy_alloc();
    }

    const std::uint64_t group = group_of(gvpn);
    const unsigned offset = offset_of(gvpn);
    Part &part = part_for(proc.pid());

    // Fast path: the group already has a reservation. A claim that finds
    // the offset already mapped (a spurious refault after a reclaim
    // rebuilt the group's reservation) is served with the installed
    // frame, mirroring the kernel's "mapping already present" path —
    // degrading gracefully instead of asserting.
    ClaimResult claim = part.claim(group, offset);
    if (claim.found) {
        stats_.part_hits.inc();
        return {.ok = true,
                .gfn = claim.gfn,
                .cycles = kernel_->costs().reservation_hit};
    }

    // Fork rule (§4.4): a child's fault may be served from the parent's
    // reservation map if the page was not allocated there; children never
    // create entries in the parent's map.
    if (proc.parent_pid() >= 0) {
        auto parent_it = parts_.find(proc.parent_pid());
        if (parent_it != parts_.end()) {
            ClaimResult parent_claim =
                parent_it->second->claim(group, offset);
            if (parent_claim.found) {
                stats_.part_hits.inc();
                stats_.child_served_by_parent.inc();
                return {.ok = true,
                        .gfn = parent_claim.gfn,
                        .cycles = kernel_->costs().reservation_hit};
            }
        }
    }

    // Slow path: take an aligned 8-frame chunk and reserve the rest.
    std::optional<std::uint64_t> base =
        kernel_->buddy().allocate_split(reservation_order_);
    stats_.buddy_calls.inc();
    if (!base) {
        // The buddy has no contiguous chunk (fragmentation the paper
        // attributes to reclaimed reservations, §4.4): degrade to the
        // stock single-page behaviour rather than failing the fault.
        std::optional<std::uint64_t> single =
            kernel_->buddy().allocate_frame();
        stats_.buddy_calls.inc();
        stats_.fallback_singles.inc();
        if (!single)
            return {.ok = false};
        return {.ok = true,
                .gfn = *single,
                .cycles = kernel_->costs().buddy_call};
    }

    std::uint64_t gfn = part.create(group, *base, offset);
    stats_.reservations_created.inc();

    // Mark the chunk reserved; the kernel will re-tag the returned frame
    // as data when it installs the PTE.
    kernel_->memory().set_use(*base, group_pages_,
                              mem::FrameUse::Reserved, proc.pid());

    return {.ok = true,
            .gfn = gfn,
            .cycles = kernel_->costs().buddy_call +
                      kernel_->costs().reservation_insert};
}

vm::FreeDisposition
PtemagnetProvider::on_page_freed(vm::Process &proc, std::uint64_t gvpn,
                                 std::uint64_t gfn)
{
    const std::uint64_t group = group_of(gvpn);
    const unsigned offset = offset_of(gvpn);

    // The freeing process may be a child whose page lives in the parent's
    // reservation map; check its own map first, then the parent's.
    std::int32_t owners[2] = {proc.pid(), proc.parent_pid()};
    for (std::int32_t owner : owners) {
        if (owner < 0)
            continue;
        auto it = parts_.find(owner);
        if (it == parts_.end())
            continue;
        Part &part = *it->second;

        // Guard against stale groups: after a reclamation a *new*
        // reservation may cover this group while the freed page's frame
        // belongs to the old, already-released chunk.
        std::optional<ReservationView> view = part.find(group);
        if (!view || view->base_gfn + offset != gfn ||
            !(view->mask & (1u << offset))) {
            continue;
        }

        ReleaseResult released = part.release(group, offset);
        ptm_assert(released.found,
                   "reservation for group %llu vanished between find() "
                   "and release() (pid %d)",
                   static_cast<unsigned long long>(group), owner);
        if (released.deleted_empty) {
            // Last mapped page gone: the whole chunk returns to the buddy.
            kernel_->memory().set_use(released.base_gfn, group_pages_,
                                      mem::FrameUse::Free);
            kernel_->buddy().free_frames(released.base_gfn,
                                         group_pages_);
        } else {
            // The frame rejoins the reservation for future reuse.
            kernel_->memory().set_use(gfn, 1, mem::FrameUse::Reserved,
                                      owner);
        }
        return vm::FreeDisposition::KeptByProvider;
    }

    // No live reservation covers the page (entry deleted when the group
    // filled up, or PTEMagnet was bypassed): default kernel behaviour.
    return vm::FreeDisposition::ReturnToBuddy;
}

std::uint64_t
PtemagnetProvider::free_unmapped(const ReservationView &view)
{
    std::uint64_t freed = 0;
    for (unsigned i = 0; i < group_pages_; ++i) {
        if (view.mask & (1u << i))
            continue;
        kernel_->memory().set_use(view.base_gfn + i, 1,
                                  mem::FrameUse::Free);
        kernel_->buddy().free(view.base_gfn + i);
        ++freed;
    }
    return freed;
}

void
PtemagnetProvider::on_process_exit(vm::Process &proc)
{
    auto it = parts_.find(proc.pid());
    if (it == parts_.end())
        return;
    it->second->drain([this](const ReservationView &view) {
        free_unmapped(view);
    });
    parts_.erase(it);
}

void
PtemagnetProvider::on_fork(vm::Process &, vm::Process &)
{
    // The child is linked through Process::parent_pid(); nothing to copy —
    // reservations are never duplicated (§4.4).
}

std::uint64_t
PtemagnetProvider::reclaim(std::uint64_t target_frames)
{
    // The reclamation daemon (§4.3): release whole reservation maps,
    // application by application, until enough frames came back. Mapped
    // pages stay mapped; only the unused reserved frames are returned.
    std::uint64_t freed = 0;
    for (auto &[pid, part] : parts_) {
        if (freed >= target_frames)
            break;
        part->drain([this, &freed](const ReservationView &view) {
            freed += free_unmapped(view);
        });
    }
    stats_.frames_reclaimed.inc(freed);
    return freed;
}

std::uint64_t
PtemagnetProvider::total_unmapped_reserved() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, part] : parts_)
        n += part->unmapped_reserved_pages();
    return n;
}

std::uint64_t
PtemagnetProvider::total_live_reservations() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, part] : parts_)
        n += part->live_reservations();
    return n;
}

}  // namespace ptm::core
