/**
 * @file
 * PTEMagnet — the reservation-based guest physical allocator (§4).
 *
 * Drop-in replacement for the stock buddy provider: on the first fault in
 * a 32 KiB-aligned virtual group it takes an aligned 8-frame chunk from
 * the buddy allocator, maps only the faulting page, and parks the other
 * seven frames in a PaRT reservation; later faults in the group are PaRT
 * hits with no buddy call. This forces adjacent guest-virtual pages onto
 * adjacent guest-physical frames, packing their host PTEs into a single
 * cache line.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/part.hpp"
#include "obs/stat_registry.hpp"
#include "vm/page_provider.hpp"

namespace ptm::vm {
class GuestKernel;
}

namespace ptm::core {

/// PTEMagnet activity counters.
struct PtemagnetStats {
    Counter part_hits;             ///< faults served from a reservation
    Counter reservations_created;  ///< order-3 chunks taken from the buddy
    Counter fallback_singles;      ///< order-3 unavailable: plain 4K alloc
    Counter buddy_calls;           ///< total buddy-allocator invocations
    Counter frames_reclaimed;      ///< frames released under pressure
    Counter disabled_allocs;       ///< faults bypassing PTEMagnet (policy)
    Counter child_served_by_parent;///< child faults served from parent map
};

/**
 * The PTEMagnet page provider. One PaRT per process; deterministic given
 * the fault order.
 */
class PtemagnetProvider final : public vm::PhysicalPageProvider {
  public:
    /**
     * @param group_pages reservation granularity in pages (power of two,
     *        2..32). The paper's design point is 8 — exactly one PTE
     *        cache line; other values exist for the granularity ablation.
     */
    explicit PtemagnetProvider(vm::GuestKernel *kernel,
                               unsigned group_pages = kPagesPerReservation);
    ~PtemagnetProvider() override;

    vm::AllocOutcome allocate_page(vm::Process &proc,
                                   std::uint64_t gvpn) override;
    vm::FreeDisposition on_page_freed(vm::Process &proc, std::uint64_t gvpn,
                                      std::uint64_t gfn) override;
    void on_process_exit(vm::Process &proc) override;
    void on_fork(vm::Process &parent, vm::Process &child) override;
    std::uint64_t reclaim(std::uint64_t target_frames) override;
    std::string name() const override { return "ptemagnet"; }

    /**
     * cgroup-style enablement policy (§4.4): PTEMagnet applies only to
     * processes for which the predicate returns true. Default: everyone.
     */
    void set_enabled_predicate(std::function<bool(const vm::Process &)> p)
    {
        enabled_ = std::move(p);
    }

    /**
     * The paper's concrete policy proposal (§4.4): enable PTEMagnet for
     * processes whose declared memory limit (cgroup
     * memory.limit_in_bytes, set by the orchestrator) is at or above
     * @p threshold_bytes — big-memory containers opt in automatically,
     * everything else takes the stock path.
     */
    void use_memory_limit_policy(Addr threshold_bytes);

    /// PaRT of @p pid, if the process ever faulted under PTEMagnet.
    const Part *part_of(std::int32_t pid) const;

    /// §6.2 gauge: reserved-but-unmapped pages across all processes.
    std::uint64_t total_unmapped_reserved() const;

    /// Factory-facing alias of the same gauge (memory-bloat axis).
    std::uint64_t held_frames() const override
    {
        return total_unmapped_reserved();
    }

    /// Total live reservations across all processes.
    std::uint64_t total_live_reservations() const;

    const PtemagnetStats &stats() const { return stats_; }

    /// Register activity counters under "<prefix>.*".
    void
    register_stats(obs::StatRegistry &registry,
                   const std::string &prefix) override
    {
        registry.counter(prefix + ".part_hits", &stats_.part_hits);
        registry.counter(prefix + ".reservations_created",
                         &stats_.reservations_created);
        registry.counter(prefix + ".fallback_singles",
                         &stats_.fallback_singles);
        registry.counter(prefix + ".buddy_calls", &stats_.buddy_calls);
        registry.counter(prefix + ".frames_reclaimed",
                         &stats_.frames_reclaimed);
        registry.counter(prefix + ".disabled_allocs",
                         &stats_.disabled_allocs);
        registry.counter(prefix + ".child_served_by_parent",
                         &stats_.child_served_by_parent);
    }

    unsigned group_pages() const { return group_pages_; }

  private:
    std::uint64_t group_of(std::uint64_t gvpn) const
    {
        return gvpn / group_pages_;
    }
    unsigned offset_of(std::uint64_t gvpn) const
    {
        return static_cast<unsigned>(gvpn % group_pages_);
    }

    Part &part_for(std::int32_t pid);
    vm::AllocOutcome plain_buddy_alloc();
    /// Free the unmapped frames of a drained reservation.
    std::uint64_t free_unmapped(const ReservationView &view);

    vm::GuestKernel *kernel_;
    unsigned group_pages_;
    unsigned reservation_order_;
    std::map<std::int32_t, std::unique_ptr<Part>> parts_;
    std::function<bool(const vm::Process &)> enabled_;
    PtemagnetStats stats_;
};

}  // namespace ptm::core
