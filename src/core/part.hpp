/**
 * @file
 * PaRT — the Page Reservation Table (§4.2).
 *
 * A per-process 4-level radix tree indexed by the 32 KiB-aligned group
 * number of a guest-virtual page (gvpn >> 3). Each leaf entry describes
 * one reservation: the base guest frame of an aligned 8-frame chunk and
 * an 8-bit mask of which pages in the group the application has mapped.
 *
 * Concurrency follows the paper's design: one lock per radix-tree node,
 * taken hand-over-hand on descent, so that threads faulting in disjoint
 * regions never contend. All mutating operations are atomic with respect
 * to each other.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptm::core {

/// Snapshot of one reservation (for iteration and tests).
struct ReservationView {
    std::uint64_t group = 0;     ///< gvpn / pages_per_group
    std::uint64_t base_gfn = 0;  ///< first frame of the reserved chunk
    std::uint32_t mask = 0;      ///< bit i set => page (group*N+i) mapped
};

/// PaRT activity counters. Atomics: updated from concurrent fault paths.
struct PartStats {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> creates{0};
    std::atomic<std::uint64_t> deletes_full{0};   ///< all 8 pages mapped
    std::atomic<std::uint64_t> deletes_free{0};   ///< all pages freed
};

/// Result of a claim attempt against an existing reservation.
struct ClaimResult {
    bool found = false;          ///< a reservation covered the group
    std::uint64_t gfn = 0;       ///< frame handed to the faulting page
    bool deleted_full = false;   ///< claim completed the group; entry gone
    /// The page was already claimed (a concurrent fault won the race);
    /// the returned gfn is the one the winner installed. The kernel's
    /// fault path treats this as "mapping already present".
    bool already_mapped = false;
};

/// Result of releasing one page of a reservation.
struct ReleaseResult {
    bool found = false;          ///< a reservation covered the group
    bool deleted_empty = false;  ///< last mapped page gone; entry removed
    std::uint64_t base_gfn = 0;  ///< valid when deleted_empty: chunk base
    std::uint32_t final_mask = 0;  ///< mask after the clear
};

/**
 * The reservation table of one process.
 */
class Part {
  public:
    static constexpr unsigned kLevels = 4;
    static constexpr unsigned kBitsPerLevel = 9;
    static constexpr unsigned kFanout = 1u << kBitsPerLevel;

    // Node types are opaque outside part.cpp but must be nameable by the
    // internal traversal helpers.
    struct Node;
    struct Leaf;

    /**
     * @param pages_per_group pages covered by one reservation (2..32);
     *        the paper's choice is 8 — one PTE cache line (the default).
     */
    explicit Part(unsigned pages_per_group = kPagesPerReservation);
    ~Part();

    Part(const Part &) = delete;
    Part &operator=(const Part &) = delete;

    /**
     * Fault fast path: if a reservation covers @p group, mark @p offset
     * mapped and return its frame. Deletes the entry when the mask
     * becomes full (the paper's safe-deletion rule).
     */
    ClaimResult claim(std::uint64_t group, unsigned offset);

    /**
     * Fault slow path, after a failed claim: record a new reservation for
     * @p group with chunk base @p base_gfn, immediately claiming
     * @p offset.
     * @return frame for the faulting page.
     */
    std::uint64_t create(std::uint64_t group, std::uint64_t base_gfn,
                         unsigned offset);

    /**
     * free() path: mark @p offset unmapped. If the mask becomes empty the
     * entry is deleted and the caller must return the whole chunk to the
     * buddy allocator (ReleaseResult::deleted_empty).
     */
    ReleaseResult release(std::uint64_t group, unsigned offset);

    /// Non-mutating lookup.
    std::optional<ReservationView> find(std::uint64_t group) const;

    /**
     * Remove every reservation, invoking @p drain with each removed
     * entry's view so the caller can free the unmapped frames. Used by
     * the reclamation daemon (all entries) and by process exit.
     */
    void drain(const std::function<void(const ReservationView &)> &drain);

    /// Number of live reservations.
    std::uint64_t live_reservations() const
    {
        return live_reservations_.load(std::memory_order_relaxed);
    }

    /**
     * Reserved-but-unmapped pages across all live reservations — the
     * §6.2 memory-overhead gauge.
     */
    std::uint64_t unmapped_reserved_pages() const
    {
        return unmapped_reserved_.load(std::memory_order_relaxed);
    }

    const PartStats &stats() const { return stats_; }

    unsigned pages_per_group() const { return pages_per_group_; }
    std::uint32_t full_mask() const { return full_mask_; }

  private:
    std::unique_ptr<Node> root_;
    unsigned pages_per_group_;
    std::uint32_t full_mask_;
    std::atomic<std::uint64_t> live_reservations_{0};
    std::atomic<std::uint64_t> unmapped_reserved_{0};
    PartStats stats_;
};

}  // namespace ptm::core
