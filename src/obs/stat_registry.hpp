/**
 * @file
 * Hierarchical statistics registry — the read side of the observability
 * layer (see DESIGN.md "Observability").
 *
 * Components keep owning their stat structs (plain Counter/Histogram
 * members, incremented directly on the hot path — registration adds zero
 * per-event cost). At wiring time each component registers its members
 * under a hierarchical dotted path ("vm0.core1.l2tlb.misses"); the sim
 * layer then snapshots the whole registry uniformly instead of
 * hand-picking fields, and resets exactly the measurement-scoped subset
 * at measurement start.
 *
 * The registry stores non-owning pointers: every registered stat must
 * outlive the registry or the registry must be dropped first. In
 * practice both live inside sim::System, which owns all components.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"

namespace ptm::obs {

/// When a registered stat is cleared.
enum class ResetScope : std::uint8_t {
    /// Never auto-reset: accumulates over the whole run (allocators,
    /// kernels, TLB structures — warmup state is part of their story).
    Lifetime,
    /// Cleared by System::reset_measurement() at measurement-window
    /// start (per-job counters, walker stats, cache hierarchy).
    Measurement,
};

/// Read-time digest of one histogram (the snapshot carries summaries,
/// not bucket arrays — BENCH files stay diffable).
struct HistogramSummary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
};

/**
 * Point-in-time copy of every registered stat, in registration order
 * (which is hierarchical by construction). Plain data: safe to keep
 * after the registry or the underlying components are gone, and
 * reconstructible from its JSON form.
 */
class StatSnapshot {
  public:
    struct Entry {
        std::string path;
        bool is_histogram = false;
        double value = 0.0;          ///< counter value (counters only)
        HistogramSummary histogram;  ///< filled for histograms only
    };

    const std::vector<Entry> &entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    bool has(const std::string &path) const;
    /// Counter value at @p path; fatal if missing or a histogram.
    double value(const std::string &path) const;
    /// Histogram summary at @p path; fatal if missing or a counter.
    const HistogramSummary &histogram(const std::string &path) const;

    /// Append one counter entry (snapshot construction / JSON reload).
    void add_counter(std::string path, double value);
    /// Append one histogram entry (snapshot construction / JSON reload).
    void add_histogram(std::string path, const HistogramSummary &summary);

  private:
    const Entry &find(const std::string &path) const;

    std::vector<Entry> entries_;
};

/**
 * The registry itself. Registration is wiring-time only (System
 * construction, job creation); lookup/snapshot/reset are read-side
 * operations — nothing here is touched per simulated event.
 */
class StatRegistry {
  public:
    /// Register @p counter under @p path; fatal on a duplicate path or a
    /// null pointer. The counter is not owned.
    void counter(std::string path, Counter *counter,
                 ResetScope scope = ResetScope::Lifetime);

    /// Register @p histogram under @p path; same rules as counter().
    void histogram(std::string path, Histogram *histogram,
                   ResetScope scope = ResetScope::Lifetime);

    bool has(const std::string &path) const
    {
        return paths_.count(path) != 0;
    }
    std::size_t size() const { return entries_.size(); }

    /// Reset every stat registered with @p scope.
    void reset(ResetScope scope);

    /// Copy all current values out, in registration order.
    StatSnapshot snapshot() const;

  private:
    struct Entry {
        std::string path;
        Counter *counter = nullptr;      // exactly one of these two
        Histogram *histogram = nullptr;  // is non-null
        ResetScope scope = ResetScope::Lifetime;
    };

    void add(Entry entry);

    std::vector<Entry> entries_;
    std::unordered_set<std::string> paths_;
};

}  // namespace ptm::obs
