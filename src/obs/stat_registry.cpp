#include "obs/stat_registry.hpp"

#include "common/log.hpp"

namespace ptm::obs {

// ---- StatSnapshot ----------------------------------------------------

bool
StatSnapshot::has(const std::string &path) const
{
    for (const Entry &entry : entries_) {
        if (entry.path == path)
            return true;
    }
    return false;
}

const StatSnapshot::Entry &
StatSnapshot::find(const std::string &path) const
{
    for (const Entry &entry : entries_) {
        if (entry.path == path)
            return entry;
    }
    ptm_fatal("snapshot has no stat '%s'", path.c_str());
}

double
StatSnapshot::value(const std::string &path) const
{
    const Entry &entry = find(path);
    if (entry.is_histogram)
        ptm_fatal("stat '%s' is a histogram, not a counter", path.c_str());
    return entry.value;
}

const HistogramSummary &
StatSnapshot::histogram(const std::string &path) const
{
    const Entry &entry = find(path);
    if (!entry.is_histogram)
        ptm_fatal("stat '%s' is a counter, not a histogram", path.c_str());
    return entry.histogram;
}

void
StatSnapshot::add_counter(std::string path, double value)
{
    Entry entry;
    entry.path = std::move(path);
    entry.is_histogram = false;
    entry.value = value;
    entries_.push_back(std::move(entry));
}

void
StatSnapshot::add_histogram(std::string path,
                            const HistogramSummary &summary)
{
    Entry entry;
    entry.path = std::move(path);
    entry.is_histogram = true;
    entry.histogram = summary;
    entries_.push_back(std::move(entry));
}

// ---- StatRegistry ----------------------------------------------------

void
StatRegistry::add(Entry entry)
{
    if (entry.path.empty())
        ptm_fatal("stat registered under an empty path");
    if (!paths_.insert(entry.path).second)
        ptm_fatal("duplicate stat path '%s'", entry.path.c_str());
    entries_.push_back(std::move(entry));
}

void
StatRegistry::counter(std::string path, Counter *counter, ResetScope scope)
{
    if (counter == nullptr)
        ptm_fatal("null counter registered at '%s'", path.c_str());
    Entry entry;
    entry.path = std::move(path);
    entry.counter = counter;
    entry.scope = scope;
    add(std::move(entry));
}

void
StatRegistry::histogram(std::string path, Histogram *histogram,
                        ResetScope scope)
{
    if (histogram == nullptr)
        ptm_fatal("null histogram registered at '%s'", path.c_str());
    Entry entry;
    entry.path = std::move(path);
    entry.histogram = histogram;
    entry.scope = scope;
    add(std::move(entry));
}

void
StatRegistry::reset(ResetScope scope)
{
    for (Entry &entry : entries_) {
        if (entry.scope != scope)
            continue;
        if (entry.counter != nullptr)
            entry.counter->reset();
        else
            entry.histogram->reset();
    }
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    for (const Entry &entry : entries_) {
        if (entry.counter != nullptr) {
            snap.add_counter(
                entry.path,
                static_cast<double>(entry.counter->value()));
        } else {
            const Histogram &h = *entry.histogram;
            HistogramSummary summary;
            summary.count = h.count();
            summary.sum = h.sum();
            summary.min = h.min();
            summary.max = h.max();
            summary.mean = h.mean();
            summary.p50 = h.p50();
            summary.p90 = h.p90();
            summary.p99 = h.p99();
            snap.add_histogram(entry.path, summary);
        }
    }
    return snap;
}

}  // namespace ptm::obs
