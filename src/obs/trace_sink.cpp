#include "obs/trace_sink.hpp"

#include <fstream>

#include "common/log.hpp"

namespace ptm::obs {

TraceSink::TraceSink(std::size_t max_events) : max_events_(max_events)
{
    if (max_events_ == 0)
        ptm_fatal("trace sink with a zero event cap");
}

void
TraceSink::event(const char *name, const char *category, std::uint64_t ts,
                 std::uint64_t dur, unsigned tid,
                 std::initializer_list<TraceArg> args)
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    Event e;
    e.name = name;
    e.category = category;
    e.ts = ts;
    e.dur = dur;
    e.tid = tid;
    e.nargs = 0;
    for (const TraceArg &arg : args) {
        if (e.nargs == kMaxArgs)
            break;
        e.args[e.nargs++] = arg;
    }
    events_.push_back(e);
}

void
TraceSink::clear()
{
    events_.clear();
    dropped_ = 0;
}

std::string
TraceSink::to_json() const
{
    // Event names, categories, and arg keys are compile-time literals
    // chosen by emit sites (never user input), so they are embedded
    // without escaping.
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events_) {
        if (!first)
            out += ',';
        first = false;
        out += strprintf(
            "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%u,\"args\":{",
            e.name, e.category, static_cast<unsigned long long>(e.ts),
            static_cast<unsigned long long>(e.dur), e.tid);
        for (unsigned i = 0; i < e.nargs; ++i) {
            if (i != 0)
                out += ',';
            out += strprintf(
                "\"%s\":%llu", e.args[i].key,
                static_cast<unsigned long long>(e.args[i].value));
        }
        out += "}}";
    }
    out += strprintf("\n],\"displayTimeUnit\":\"ns\","
                     "\"otherData\":{\"dropped_events\":%llu}}\n",
                     static_cast<unsigned long long>(dropped_));
    return out;
}

void
TraceSink::write_json(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        ptm_fatal("cannot write trace file '%s'", path.c_str());
    out << to_json();
    out.flush();
    if (!out.good())
        ptm_fatal("short write to trace file '%s'", path.c_str());
}

}  // namespace ptm::obs
