/**
 * @file
 * Per-VM dirty ring: PML-style working-set estimation (PAPERS.md, the
 * Intel Page-Modification-Logging study).
 *
 * Hardware PML writes the GPA of every dirtied page into a small ring
 * the hypervisor harvests when it fills; the harvested stream, sliced
 * into epochs, gives a distinct-dirty-page count — an estimate of the
 * VM's write working set that needs no guest cooperation. The simulator
 * mirrors that shape: System logs the gfn of every retired write walk
 * into the owning VM's ring (a single armed-flag check when disarmed,
 * the TraceSink discipline), rings harvest into a per-epoch distinct
 * set, and the epoch closes by op count, publishing the estimate that
 * OvercommitPolicy's reclaim daemon uses to pick ballooning victims by
 * idle memory instead of slot order.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace ptm::obs {

class StatRegistry;

/// Ring-activity counters, registered under "vm<K>.dirty_ring".
struct DirtyRingStats {
    Counter logged;    ///< write walks recorded
    Counter harvests;  ///< ring-full drains into the epoch set
    Counter epochs;    ///< closed epochs (estimate publications)

    void register_stats(StatRegistry &registry,
                        const std::string &prefix);
};

/**
 * One VM's dirty ring. log() is the hot-path entry (the caller already
 * checked the armed flag); epochs close from the slow path
 * (maybe_close_epoch, called between scheduler slices), so an estimate
 * is always a full epoch's distinct count — including 0 for a VM that
 * wrote nothing, which is exactly the signal the reclaim daemon wants.
 */
class DirtyRing {
  public:
    DirtyRing(std::size_t ring_entries, std::uint64_t epoch_ops,
              std::uint64_t now_steps);

    /// Record one dirtied guest frame (write walk retired).
    void
    log(std::uint64_t gfn)
    {
        stats_.logged.inc();
        ring_.push_back(gfn);
        if (ring_.size() >= ring_entries_)
            harvest();
    }

    /// Close the current epoch if @p now_steps says it is over.
    void maybe_close_epoch(std::uint64_t now_steps);

    /// True once one full epoch has been observed.
    bool has_estimate() const { return has_estimate_; }
    /// Distinct pages dirtied in the last closed epoch.
    std::uint64_t estimate_pages() const { return estimate_; }

    DirtyRingStats &stats() { return stats_; }
    const DirtyRingStats &stats() const { return stats_; }

  private:
    void harvest();

    std::size_t ring_entries_;
    std::uint64_t epoch_ops_;
    std::uint64_t epoch_start_;
    std::vector<std::uint64_t> ring_;
    std::unordered_set<std::uint64_t> epoch_pages_;
    std::uint64_t estimate_ = 0;
    bool has_estimate_ = false;
    DirtyRingStats stats_;
};

}  // namespace ptm::obs
