/**
 * @file
 * Opt-in event tracing in chrome://tracing JSON format.
 *
 * A TraceSink collects complete-duration ("ph":"X") events — one per
 * page walk, guest/host fault, and reclaim sweep — with u64 args
 * (gva/gpa/hpa, serving cache level, ...). Load the emitted file into
 * chrome://tracing or Perfetto; tracks are keyed by core (tid).
 *
 * Arming follows the null-check-hook discipline proved by the fault
 * injector: every emit site is guarded by a plain pointer check, the
 * sink only *observes* (it never feeds anything back into the
 * simulation), and timestamps come from already-computed simulated
 * cycles — so a disarmed run is bit-identical to a build without the
 * sink, and an armed run's simulated state is bit-identical to a
 * disarmed one.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ptm::obs {

/// One key/value argument of a trace event. The key must be a string
/// literal (or otherwise outlive the sink): only the pointer is stored.
struct TraceArg {
    const char *key;
    std::uint64_t value;
};

class TraceSink {
  public:
    /// Args stored per event; extra args are dropped silently.
    static constexpr unsigned kMaxArgs = 6;

    /// @param max_events retention cap; events past it are counted in
    ///        dropped() instead of growing the buffer without bound.
    explicit TraceSink(std::size_t max_events = std::size_t{1} << 20);

    /**
     * Move the simulated-time cursor: @p ts is the current cycle count
     * of the core @p tid that is about to execute. Emit sites that fire
     * deep inside a component (kernel fault paths, reclaim sweeps) have
     * no cycle counter of their own and stamp events at the cursor via
     * event_now().
     */
    void
    set_now(std::uint64_t ts, unsigned tid)
    {
        now_ = ts;
        now_tid_ = tid;
    }
    std::uint64_t now() const { return now_; }
    unsigned now_tid() const { return now_tid_; }

    /// Record one complete event ("ph":"X").
    void event(const char *name, const char *category, std::uint64_t ts,
               std::uint64_t dur, unsigned tid,
               std::initializer_list<TraceArg> args);

    /// Record one complete event at the current time cursor.
    void
    event_now(const char *name, const char *category, std::uint64_t dur,
              std::initializer_list<TraceArg> args)
    {
        event(name, category, now_, dur, now_tid_, args);
    }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    std::size_t dropped() const { return dropped_; }
    void clear();

    /// Serialize as a chrome://tracing JSON document.
    std::string to_json() const;

    /// Write to_json() to @p path; fatal on I/O failure.
    void write_json(const std::string &path) const;

  private:
    struct Event {
        const char *name;
        const char *category;
        std::uint64_t ts;
        std::uint64_t dur;
        unsigned tid;
        unsigned nargs;
        TraceArg args[kMaxArgs];
    };

    std::vector<Event> events_;
    std::size_t max_events_;
    std::size_t dropped_ = 0;
    std::uint64_t now_ = 0;
    unsigned now_tid_ = 0;
};

}  // namespace ptm::obs
