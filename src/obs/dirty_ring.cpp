#include "obs/dirty_ring.hpp"

#include "obs/stat_registry.hpp"

namespace ptm::obs {

void
DirtyRingStats::register_stats(StatRegistry &registry,
                               const std::string &prefix)
{
    registry.counter(prefix + ".logged", &logged);
    registry.counter(prefix + ".harvests", &harvests);
    registry.counter(prefix + ".epochs", &epochs);
}

DirtyRing::DirtyRing(std::size_t ring_entries, std::uint64_t epoch_ops,
                     std::uint64_t now_steps)
    : ring_entries_(ring_entries == 0 ? 1 : ring_entries),
      epoch_ops_(epoch_ops == 0 ? 1 : epoch_ops),
      epoch_start_(now_steps)
{
    ring_.reserve(ring_entries_);
}

void
DirtyRing::harvest()
{
    stats_.harvests.inc();
    for (std::uint64_t gfn : ring_)
        epoch_pages_.insert(gfn);
    ring_.clear();
}

void
DirtyRing::maybe_close_epoch(std::uint64_t now_steps)
{
    if (now_steps - epoch_start_ < epoch_ops_)
        return;
    harvest();
    estimate_ = epoch_pages_.size();
    has_estimate_ = true;
    epoch_pages_.clear();
    stats_.epochs.inc();
    epoch_start_ = now_steps;
}

}  // namespace ptm::obs
