/**
 * @file
 * Generic set-associative key->value cache with true-LRU replacement.
 *
 * The TLBs, page-walk caches, and the nested TLB are all instances of this
 * template; they differ only in what the 64-bit key and the value mean.
 *
 * Storage is structure-of-arrays — flat keys/stamps/value arrays indexed
 * by set*ways+way — so the hot lookup scans one contiguous run of keys
 * instead of striding over full entry structs. (An interleaved set-major
 * keys+stamps slab was measured here and lost ~10% of end-to-end
 * simulator throughput: these structures are small enough to be
 * host-cache resident either way, and interleaving doubles the stride
 * between consecutive sets' key runs.) Lookup key scans go through the
 * probe primitives of common/simd.hpp — vectorized where the ISA has a
 * native 64-bit lane compare (SSE4.1/NEON), the reference scalar loop
 * otherwise — while insert keeps the historic single pass that resolves
 * existing-key / free-way / LRU-victim together (inserts run several
 * times per TLB miss). Empty ways hold kInvalidKey, so the scan is a bare
 * key compare with no separate valid-bit load; keys must therefore
 * never be all-ones (page and frame numbers are far below 2^64).
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::tlb {

/// Hit/miss counters of an associative structure.
struct AssocStats {
    Counter hits;
    Counter misses;
    Counter evictions;

    double
    hit_rate() const
    {
        std::uint64_t total = hits.value() + misses.value();
        return total ? static_cast<double>(hits.value()) /
                       static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Set-associative cache of Key(u64) -> Value with per-set LRU.
 *
 * @tparam Value copyable payload stored per entry.
 */
template <typename Value>
class AssocCache {
  public:
    /// Key stored in empty ways; real keys must never equal it.
    static constexpr std::uint64_t kInvalidKey = ~0ULL;

    /**
     * @param entries total entry count (must be ways * power-of-two sets)
     * @param ways    associativity
     */
    AssocCache(unsigned entries, unsigned ways) : ways_(ways)
    {
        if (ways == 0 || entries == 0 || entries % ways != 0)
            ptm_fatal("bad assoc-cache shape: %u entries, %u ways",
                      entries, ways);
        num_sets_ = entries / ways;
        if ((num_sets_ & (num_sets_ - 1)) != 0)
            ptm_fatal("assoc-cache set count %u not a power of two",
                      num_sets_);
        const std::size_t n = static_cast<std::size_t>(num_sets_) * ways_;
        keys_.assign(n, kInvalidKey);
        stamps_.assign(n, 0);
        values_.resize(n);
    }

    /// Look up @p key, updating recency on hit.
    std::optional<Value>
    lookup(std::uint64_t key)
    {
        // Same-key repeat: the previous recency-changing operation (hit
        // or insert) was for this very key, so it is resident and MRU —
        // a guaranteed hit whose stamp bump would be an order-preserving
        // no-op. Misses change no recency state, so the memo survives
        // them. Consecutive ops dwell on one page for long runs, making
        // this the common L1-TLB path.
        if (key == memo_key_) {
            stats_.hits.inc();
            return memo_value_;
        }
        const std::size_t base = base_of(key);
        const unsigned w = simd::find_u64(&keys_[base], ways_, key);
        if (w < ways_) {
            stamps_[base + w] = ++clock_;
            stats_.hits.inc();
            memo_key_ = key;
            memo_value_ = values_[base + w];
            return memo_value_;
        }
        stats_.misses.inc();
        return std::nullopt;
    }

    /// Look up without updating recency or stats.
    std::optional<Value>
    probe(std::uint64_t key) const
    {
        const std::size_t base = base_of(key);
        const unsigned w = simd::find_u64(&keys_[base], ways_, key);
        if (w < ways_)
            return values_[base + w];
        return std::nullopt;
    }

    /// Insert (or refresh) key -> value, evicting LRU if the set is full.
    void
    insert(std::uint64_t key, const Value &value)
    {
        const std::size_t base = base_of(key);
        // One pass resolves all three candidates, cheapest first: an
        // existing entry for the key, the first empty way, and the LRU
        // way (smallest stamp, lowest way on ties). Inserts run several
        // times per TLB miss (L1+L2 TLB, PWC levels, nested TLB), so the
        // single pass beats three separate probes here.
        unsigned slot = ways_;
        unsigned first_invalid = ways_;
        unsigned lru = 0;
        for (unsigned w = 0; w < ways_; ++w) {
            if (keys_[base + w] != kInvalidKey) {
                if (keys_[base + w] == key) {
                    slot = w;
                    break;
                }
            } else if (first_invalid == ways_) {
                first_invalid = w;
            }
            if (stamps_[base + w] < stamps_[base + lru])
                lru = w;
        }
        if (slot == ways_) {
            if (first_invalid != ways_) {
                slot = first_invalid;
            } else {
                slot = lru;
                stats_.evictions.inc();
            }
        }
        keys_[base + slot] = key;
        values_[base + slot] = value;
        stamps_[base + slot] = ++clock_;
        // The inserted key is now resident and MRU; it also supersedes
        // any previously memoized key (which may just have been evicted).
        memo_key_ = key;
        memo_value_ = value;
    }

    /// Remove one key if present. Insert keeps keys unique within a set,
    /// so the first match is the only match.
    void
    invalidate(std::uint64_t key)
    {
        if (key == memo_key_)
            memo_key_ = kInvalidKey;
        const std::size_t base = base_of(key);
        const unsigned w = simd::find_u64(&keys_[base], ways_, key);
        if (w < ways_)
            keys_[base + w] = kInvalidKey;
    }

    /// Remove everything (TLB shootdown / context switch without ASIDs).
    /// Stamps are left in place: stale stamps are never consulted before
    /// an insert restamps the way (empty ways win over the LRU probe).
    void
    invalidate_all()
    {
        memo_key_ = kInvalidKey;
        std::fill(keys_.begin(), keys_.end(), kInvalidKey);
    }

    unsigned capacity() const { return num_sets_ * ways_; }
    const AssocStats &stats() const { return stats_; }
    void reset_stats() { stats_ = AssocStats{}; }

    /// Register hit/miss/eviction counters under "<prefix>.hits" etc.
    void
    register_stats(obs::StatRegistry &registry, const std::string &prefix,
                   obs::ResetScope scope = obs::ResetScope::Lifetime)
    {
        registry.counter(prefix + ".hits", &stats_.hits, scope);
        registry.counter(prefix + ".misses", &stats_.misses, scope);
        registry.counter(prefix + ".evictions", &stats_.evictions, scope);
    }

    /// Number of valid entries (test hook).
    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (std::uint64_t k : keys_)
            n += static_cast<unsigned>(k != kInvalidKey);
        return n;
    }

  private:
    std::size_t base_of(std::uint64_t key) const
    {
        return static_cast<std::size_t>(key & (num_sets_ - 1)) * ways_;
    }

    unsigned ways_;
    unsigned num_sets_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> stamps_;
    std::vector<Value> values_;
    /// Key of the most recent hit/insert (resident and MRU by
    /// construction); kInvalidKey when no such guarantee holds.
    std::uint64_t memo_key_ = kInvalidKey;
    Value memo_value_{};
    AssocStats stats_;
};

}  // namespace ptm::tlb
