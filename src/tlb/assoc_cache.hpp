/**
 * @file
 * Generic set-associative key->value cache with true-LRU replacement.
 *
 * The TLBs, page-walk caches, and the nested TLB are all instances of this
 * template; they differ only in what the 64-bit key and the value mean.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace ptm::tlb {

/// Hit/miss counters of an associative structure.
struct AssocStats {
    Counter hits;
    Counter misses;
    Counter evictions;

    double
    hit_rate() const
    {
        std::uint64_t total = hits.value() + misses.value();
        return total ? static_cast<double>(hits.value()) /
                       static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Set-associative cache of Key(u64) -> Value with per-set LRU.
 *
 * @tparam Value copyable payload stored per entry.
 */
template <typename Value>
class AssocCache {
  public:
    /**
     * @param entries total entry count (must be ways * power-of-two sets)
     * @param ways    associativity
     */
    AssocCache(unsigned entries, unsigned ways) : ways_(ways)
    {
        if (ways == 0 || entries == 0 || entries % ways != 0)
            ptm_fatal("bad assoc-cache shape: %u entries, %u ways",
                      entries, ways);
        num_sets_ = entries / ways;
        if ((num_sets_ & (num_sets_ - 1)) != 0)
            ptm_fatal("assoc-cache set count %u not a power of two",
                      num_sets_);
        entries_.resize(static_cast<std::size_t>(num_sets_) * ways_);
    }

    /// Look up @p key, updating recency on hit.
    std::optional<Value>
    lookup(std::uint64_t key)
    {
        Entry *set = set_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].key == key) {
                set[w].stamp = ++clock_;
                stats_.hits.inc();
                return set[w].value;
            }
        }
        stats_.misses.inc();
        return std::nullopt;
    }

    /// Look up without updating recency or stats.
    std::optional<Value>
    probe(std::uint64_t key) const
    {
        const Entry *set = set_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].key == key)
                return set[w].value;
        }
        return std::nullopt;
    }

    /// Insert (or refresh) key -> value, evicting LRU if the set is full.
    void
    insert(std::uint64_t key, const Value &value)
    {
        Entry *set = set_of(key);
        Entry *slot = nullptr;
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].key == key) {
                slot = &set[w];
                break;
            }
        }
        if (slot == nullptr) {
            for (unsigned w = 0; w < ways_; ++w) {
                if (!set[w].valid) {
                    slot = &set[w];
                    break;
                }
            }
        }
        if (slot == nullptr) {
            slot = &set[0];
            for (unsigned w = 1; w < ways_; ++w) {
                if (set[w].stamp < slot->stamp)
                    slot = &set[w];
            }
            stats_.evictions.inc();
        }
        slot->valid = true;
        slot->key = key;
        slot->value = value;
        slot->stamp = ++clock_;
    }

    /// Remove one key if present.
    void
    invalidate(std::uint64_t key)
    {
        Entry *set = set_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].key == key)
                set[w].valid = false;
        }
    }

    /// Remove everything (TLB shootdown / context switch without ASIDs).
    void
    invalidate_all()
    {
        for (Entry &e : entries_)
            e.valid = false;
    }

    unsigned capacity() const { return num_sets_ * ways_; }
    const AssocStats &stats() const { return stats_; }
    void reset_stats() { stats_ = AssocStats{}; }

    /// Number of valid entries (test hook).
    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (const Entry &e : entries_) {
            if (e.valid)
                ++n;
        }
        return n;
    }

  private:
    struct Entry {
        std::uint64_t key = 0;
        Value value{};
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    Entry *set_of(std::uint64_t key)
    {
        return &entries_[(key & (num_sets_ - 1)) * ways_];
    }
    const Entry *set_of(std::uint64_t key) const
    {
        return &entries_[(key & (num_sets_ - 1)) * ways_];
    }

    unsigned ways_;
    unsigned num_sets_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    AssocStats stats_;
};

}  // namespace ptm::tlb
