/**
 * @file
 * Generic set-associative key->value cache with true-LRU replacement.
 *
 * The TLBs, page-walk caches, and the nested TLB are all instances of this
 * template; they differ only in what the 64-bit key and the value mean.
 *
 * Storage is structure-of-arrays — flat keys/stamps/valid/value arrays
 * indexed by set*ways+way — so the hot lookup scans one contiguous run of
 * keys instead of striding over full entry structs, and insert resolves
 * existing-key / free-way / LRU-victim in a single pass over the set.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::tlb {

/// Hit/miss counters of an associative structure.
struct AssocStats {
    Counter hits;
    Counter misses;
    Counter evictions;

    double
    hit_rate() const
    {
        std::uint64_t total = hits.value() + misses.value();
        return total ? static_cast<double>(hits.value()) /
                       static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Set-associative cache of Key(u64) -> Value with per-set LRU.
 *
 * @tparam Value copyable payload stored per entry.
 */
template <typename Value>
class AssocCache {
  public:
    /**
     * @param entries total entry count (must be ways * power-of-two sets)
     * @param ways    associativity
     */
    AssocCache(unsigned entries, unsigned ways) : ways_(ways)
    {
        if (ways == 0 || entries == 0 || entries % ways != 0)
            ptm_fatal("bad assoc-cache shape: %u entries, %u ways",
                      entries, ways);
        num_sets_ = entries / ways;
        if ((num_sets_ & (num_sets_ - 1)) != 0)
            ptm_fatal("assoc-cache set count %u not a power of two",
                      num_sets_);
        const std::size_t n = static_cast<std::size_t>(num_sets_) * ways_;
        keys_.assign(n, 0);
        stamps_.assign(n, 0);
        valid_.assign(n, 0);
        values_.resize(n);
    }

    /// Look up @p key, updating recency on hit.
    std::optional<Value>
    lookup(std::uint64_t key)
    {
        const std::size_t base = base_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid_[base + w] != 0 && keys_[base + w] == key) {
                stamps_[base + w] = ++clock_;
                stats_.hits.inc();
                return values_[base + w];
            }
        }
        stats_.misses.inc();
        return std::nullopt;
    }

    /// Look up without updating recency or stats.
    std::optional<Value>
    probe(std::uint64_t key) const
    {
        const std::size_t base = base_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid_[base + w] != 0 && keys_[base + w] == key)
                return values_[base + w];
        }
        return std::nullopt;
    }

    /// Insert (or refresh) key -> value, evicting LRU if the set is full.
    void
    insert(std::uint64_t key, const Value &value)
    {
        const std::size_t base = base_of(key);
        // One pass resolves all three candidates: an existing entry for
        // the key, the first invalid way, and the LRU way (smallest
        // stamp, lowest way on ties).
        unsigned slot = ways_;
        unsigned first_invalid = ways_;
        unsigned lru = 0;
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid_[base + w] != 0) {
                if (keys_[base + w] == key) {
                    slot = w;
                    break;
                }
            } else if (first_invalid == ways_) {
                first_invalid = w;
            }
            if (stamps_[base + w] < stamps_[base + lru])
                lru = w;
        }
        if (slot == ways_) {
            if (first_invalid != ways_) {
                slot = first_invalid;
            } else {
                slot = lru;
                stats_.evictions.inc();
            }
        }
        valid_[base + slot] = 1;
        keys_[base + slot] = key;
        values_[base + slot] = value;
        stamps_[base + slot] = ++clock_;
    }

    /// Remove one key if present.
    void
    invalidate(std::uint64_t key)
    {
        const std::size_t base = base_of(key);
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid_[base + w] != 0 && keys_[base + w] == key)
                valid_[base + w] = 0;
        }
    }

    /// Remove everything (TLB shootdown / context switch without ASIDs).
    void
    invalidate_all()
    {
        std::fill(valid_.begin(), valid_.end(),
                  static_cast<std::uint8_t>(0));
    }

    unsigned capacity() const { return num_sets_ * ways_; }
    const AssocStats &stats() const { return stats_; }
    void reset_stats() { stats_ = AssocStats{}; }

    /// Register hit/miss/eviction counters under "<prefix>.hits" etc.
    void
    register_stats(obs::StatRegistry &registry, const std::string &prefix,
                   obs::ResetScope scope = obs::ResetScope::Lifetime)
    {
        registry.counter(prefix + ".hits", &stats_.hits, scope);
        registry.counter(prefix + ".misses", &stats_.misses, scope);
        registry.counter(prefix + ".evictions", &stats_.evictions, scope);
    }

    /// Number of valid entries (test hook).
    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (std::uint8_t v : valid_)
            n += v;
        return n;
    }

  private:
    std::size_t base_of(std::uint64_t key) const
    {
        return static_cast<std::size_t>(key & (num_sets_ - 1)) * ways_;
    }

    unsigned ways_;
    unsigned num_sets_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> stamps_;
    std::vector<std::uint8_t> valid_;
    std::vector<Value> values_;
    AssocStats stats_;
};

}  // namespace ptm::tlb
