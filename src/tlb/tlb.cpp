#include "tlb/tlb.hpp"

namespace ptm::tlb {

TlbHierarchy::TlbHierarchy(const TlbConfig &config)
    : l1_(config.l1_entries, config.l1_ways),
      l2_(config.l2_entries, config.l2_ways)
{
}

void
TlbHierarchy::flush()
{
    l1_.invalidate_all();
    l2_.invalidate_all();
}

void
TlbHierarchy::reset_stats()
{
    l1_.reset_stats();
    l2_.reset_stats();
}

void
TlbHierarchy::register_stats(obs::StatRegistry &registry,
                             const std::string &prefix)
{
    l1_.register_stats(registry, prefix + ".l1tlb");
    l2_.register_stats(registry, prefix + ".l2tlb");
}

PageWalkCache::PageWalkCache(const TlbConfig &config)
    : enabled_(config.pwc_enabled),
      levels_{AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways),
              AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways),
              AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways)}
{
}

void
PageWalkCache::flush()
{
    for (auto &level : levels_)
        level.invalidate_all();
}

void
PageWalkCache::register_stats(obs::StatRegistry &registry,
                              const std::string &prefix)
{
    for (unsigned level = 0; level < kPtLevels - 1; ++level)
        levels_[level].register_stats(
            registry, prefix + ".pwc_l" + std::to_string(level));
}

NestedTlb::NestedTlb(const TlbConfig &config)
    : enabled_(config.nested_tlb_enabled),
      cache_(config.nested_entries, config.nested_ways)
{
}

void
NestedTlb::invalidate(std::uint64_t gfn)
{
    cache_.invalidate(gfn);
}

void
NestedTlb::flush()
{
    cache_.invalidate_all();
}

void
NestedTlb::register_stats(obs::StatRegistry &registry,
                          const std::string &prefix)
{
    cache_.register_stats(registry, prefix + ".nested_tlb");
}

}  // namespace ptm::tlb
