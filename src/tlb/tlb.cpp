#include "tlb/tlb.hpp"

namespace ptm::tlb {

TlbHierarchy::TlbHierarchy(const TlbConfig &config)
    : l1_(config.l1_entries, config.l1_ways),
      l2_(config.l2_entries, config.l2_ways)
{
}

TlbHierarchy::Result
TlbHierarchy::lookup(std::uint64_t gvpn)
{
    if (std::optional<std::uint64_t> hfn = l1_.lookup(gvpn))
        return {TlbLevel::L1, *hfn};
    if (std::optional<std::uint64_t> hfn = l2_.lookup(gvpn)) {
        l1_.insert(gvpn, *hfn);
        return {TlbLevel::L2, *hfn};
    }
    return {TlbLevel::Miss, 0};
}

void
TlbHierarchy::insert(std::uint64_t gvpn, std::uint64_t hfn)
{
    l1_.insert(gvpn, hfn);
    l2_.insert(gvpn, hfn);
}

void
TlbHierarchy::invalidate(std::uint64_t gvpn)
{
    l1_.invalidate(gvpn);
    l2_.invalidate(gvpn);
}

void
TlbHierarchy::flush()
{
    l1_.invalidate_all();
    l2_.invalidate_all();
}

void
TlbHierarchy::reset_stats()
{
    l1_.reset_stats();
    l2_.reset_stats();
}

PageWalkCache::PageWalkCache(const TlbConfig &config)
    : enabled_(config.pwc_enabled),
      levels_{AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways),
              AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways),
              AssocCache<std::uint64_t>(config.pwc_entries, config.pwc_ways)}
{
}

std::optional<PageWalkCache::Hit>
PageWalkCache::lookup(std::uint64_t gvpn)
{
    if (!enabled_)
        return std::nullopt;
    // Deepest level first: a PDE hit skips the most walk steps.
    for (unsigned level = kPtLevels - 2;; --level) {
        if (std::optional<std::uint64_t> frame =
                levels_[level].lookup(key_for(gvpn, level))) {
            return Hit{level + 1, *frame};
        }
        if (level == 0)
            break;
    }
    return std::nullopt;
}

void
PageWalkCache::insert(std::uint64_t gvpn, unsigned level,
                      std::uint64_t child_frame)
{
    if (!enabled_)
        return;
    levels_[level].insert(key_for(gvpn, level), child_frame);
}

void
PageWalkCache::flush()
{
    for (auto &level : levels_)
        level.invalidate_all();
}

NestedTlb::NestedTlb(const TlbConfig &config)
    : enabled_(config.nested_tlb_enabled),
      cache_(config.nested_entries, config.nested_ways)
{
}

std::optional<std::uint64_t>
NestedTlb::lookup(std::uint64_t gfn)
{
    if (!enabled_)
        return std::nullopt;
    return cache_.lookup(gfn);
}

void
NestedTlb::insert(std::uint64_t gfn, std::uint64_t hfn)
{
    if (!enabled_)
        return;
    cache_.insert(gfn, hfn);
}

void
NestedTlb::invalidate(std::uint64_t gfn)
{
    cache_.invalidate(gfn);
}

void
NestedTlb::flush()
{
    cache_.invalidate_all();
}

}  // namespace ptm::tlb
