/**
 * @file
 * Address-translation caching structures of one simulated core:
 * two-level TLB, page-walk caches, and the nested (gpa->hpa) TLB.
 *
 * Under virtualization the data TLB caches the *combined* translation
 * guest-virtual page -> host-physical frame; the page-walk caches hold
 * intermediate guest-PT nodes (letting the 2D walker skip upper levels);
 * and the nested TLB caches guest-physical -> host-physical translations
 * so that most gPT-node references avoid a full host walk (§2.5).
 */
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "tlb/assoc_cache.hpp"

namespace ptm::tlb {

/// Shape of one core's translation machinery (Broadwell-like defaults).
struct TlbConfig {
    unsigned l1_entries = 32;
    unsigned l1_ways = 4;
    unsigned l2_entries = 256;
    unsigned l2_ways = 8;
    /// Per-level page-walk cache (for guest PML4E/PDPTE/PDE entries).
    unsigned pwc_entries = 16;
    unsigned pwc_ways = 4;
    /// Nested TLB: guest-physical -> host-physical, for walk accesses.
    unsigned nested_entries = 32;
    unsigned nested_ways = 4;
    bool pwc_enabled = true;
    bool nested_tlb_enabled = true;
};

/// Which structure produced a translation hit.
enum class TlbLevel : std::uint8_t { L1, L2, Miss };

/**
 * Two-level data TLB: guest-virtual page number -> host frame number.
 */
class TlbHierarchy {
  public:
    explicit TlbHierarchy(const TlbConfig &config);

    /// Translate @p gvpn; fills L1 from L2 on an L2 hit.
    struct Result {
        TlbLevel level = TlbLevel::Miss;
        std::uint64_t hfn = 0;
    };
    Result
    lookup(std::uint64_t gvpn)
    {
        if (std::optional<std::uint64_t> hfn = lookup_l1(gvpn))
            return {TlbLevel::L1, *hfn};
        if (std::optional<std::uint64_t> hfn = lookup_l2_fill_l1(gvpn))
            return {TlbLevel::L2, *hfn};
        return {TlbLevel::Miss, 0};
    }

    /// L1-only probe: the first leg of lookup(), split out so the batched
    /// dispatcher can inline the hit fast path (counters behave exactly
    /// as in lookup()).
    std::optional<std::uint64_t>
    lookup_l1(std::uint64_t gvpn)
    {
        return l1_.lookup(gvpn);
    }

    /// Continue a lookup whose L1 probe missed: probe L2 and fill L1 on a
    /// hit, exactly like the second leg of lookup().
    std::optional<std::uint64_t>
    lookup_l2_fill_l1(std::uint64_t gvpn)
    {
        if (std::optional<std::uint64_t> hfn = l2_.lookup(gvpn)) {
            l1_.insert(gvpn, *hfn);
            return hfn;
        }
        return std::nullopt;
    }

    /// Install a completed translation into both levels.
    void
    insert(std::uint64_t gvpn, std::uint64_t hfn)
    {
        l1_.insert(gvpn, hfn);
        l2_.insert(gvpn, hfn);
    }

    /// Remove a single translation (munmap / COW break).
    void
    invalidate(std::uint64_t gvpn)
    {
        l1_.invalidate(gvpn);
        l2_.invalidate(gvpn);
    }

    /// Full flush (context switch; the sim does not model ASIDs).
    void flush();

    const AssocStats &l1_stats() const { return l1_.stats(); }
    const AssocStats &l2_stats() const { return l2_.stats(); }
    void reset_stats();

    /// Register both levels under "<prefix>.l1tlb.*" / "<prefix>.l2tlb.*".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

  private:
    AssocCache<std::uint64_t> l1_;
    AssocCache<std::uint64_t> l2_;
};

/**
 * Page-walk caches for the guest page table: one associative structure per
 * non-leaf level, keyed by the guest-virtual page-number prefix that
 * selects the next-level node. A hit at depth d lets the walker resume at
 * level d+1 directly.
 */
class PageWalkCache {
  public:
    explicit PageWalkCache(const TlbConfig &config);

    /**
     * Deepest cached level for @p gvpn.
     * @return pair(level_to_resume_at, node_frame) where level 1..3 means
     *         the walk may start at that level inside the returned node;
     *         nullopt means start from the root.
     */
    struct Hit {
        unsigned resume_level = 0;
        std::uint64_t node_frame = 0;
    };
    std::optional<Hit>
    lookup(std::uint64_t gvpn)
    {
        if (!enabled_)
            return std::nullopt;
        // Deepest level first: a PDE hit skips the most walk steps.
        for (unsigned level = kPtLevels - 2;; --level) {
            if (std::optional<std::uint64_t> frame =
                    levels_[level].lookup(key_for(gvpn, level))) {
                return Hit{level + 1, *frame};
            }
            if (level == 0)
                break;
        }
        return std::nullopt;
    }

    /// Record that the entry at @p level (0..2) for @p gvpn points at node
    /// frame @p child_frame.
    void
    insert(std::uint64_t gvpn, unsigned level, std::uint64_t child_frame)
    {
        if (!enabled_)
            return;
        levels_[level].insert(key_for(gvpn, level), child_frame);
    }

    void flush();
    bool enabled() const { return enabled_; }

    const AssocStats &stats(unsigned level) const
    {
        return levels_[level].stats();
    }

    /// Register each level under "<prefix>.pwc_l<level>.*".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

  private:
    static std::uint64_t key_for(std::uint64_t gvpn, unsigned level)
    {
        // The prefix that selects the level-`level` entry itself: drop the
        // radix digits consumed by deeper levels.
        return gvpn >> (9 * (kPtLevels - 1 - level));
    }

    bool enabled_;
    // levels_[0] caches PML4 entries, [1] PDPT entries, [2] PD entries.
    AssocCache<std::uint64_t> levels_[kPtLevels - 1];

    friend class PageWalkCacheTestPeer;
};

/**
 * Nested TLB: guest-frame -> host-frame translations used when the 2D
 * walker needs the host-physical address of a guest-PT node or data page.
 */
class NestedTlb {
  public:
    explicit NestedTlb(const TlbConfig &config);

    std::optional<std::uint64_t>
    lookup(std::uint64_t gfn)
    {
        if (!enabled_)
            return std::nullopt;
        return cache_.lookup(gfn);
    }

    void
    insert(std::uint64_t gfn, std::uint64_t hfn)
    {
        if (!enabled_)
            return;
        cache_.insert(gfn, hfn);
    }

    void invalidate(std::uint64_t gfn);
    void flush();
    bool enabled() const { return enabled_; }

    const AssocStats &stats() const { return cache_.stats(); }

    /// Register under "<prefix>.nested_tlb.*".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

  private:
    bool enabled_;
    AssocCache<std::uint64_t> cache_;
};

}  // namespace ptm::tlb
