/**
 * @file
 * Walk register file: the fixed pool of in-flight page-walk state one
 * core keeps while a dispatch batch is open (ChampSim's PW_REG_SIZE
 * register file is the structural exemplar).
 *
 * The simulator's cache model is functional — every access permutes LRU
 * state — so the only issue schedule that preserves end-of-run counter
 * sums is program order. Walks are therefore *issued* in program order
 * and the register file captures their state for the two things that can
 * be deferred to retire without changing any counter:
 *
 *  - per-walk latency histograms are recorded at retire, slot order ==
 *    program order, so batched runs stay bit-identical to serial;
 *  - the opt-in overlapped-timing mode (PlatformConfig::
 *    overlapped_walk_timing) re-charges the batch's hardware walk cycles
 *    as the critical path (max over slots) instead of the serial sum,
 *    modelling walk-level MLP. Faults are kernel software and stay
 *    serialized. Only cycle attribution changes; counters never do.
 */
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::mmu {

/// Register-file occupancy + overlap accounting (per core).
struct WalkRegisterFileStats {
    Counter batches;              ///< dispatch batches retired
    Counter batched_ops;          ///< ops dispatched through batches
    Counter overlap_cycles_saved; ///< sum(walk) - max(walk), overlap mode
    /// Walks in flight per retired batch (the MLP actually available).
    Histogram occupancy{BucketPolicy::Linear, 17};
};

/**
 * The register file itself: a bounded array of walk slots filled between
 * begin_batch() and retire(). Allocation never fails — the dispatcher
 * caps batches at capacity().
 */
class WalkRegisterFile {
  public:
    /// Upper bound on PlatformConfig::walk_batch.
    static constexpr unsigned kCapacity = 16;

    /// One in-flight (issued, not yet retired) walk.
    struct Slot {
        Cycles walk_cycles = 0;   ///< hardware walk portion
        Cycles fault_cycles = 0;  ///< kernel fault portion (serialized)
    };

    void
    begin_batch()
    {
        count_ = 0;
    }

    /// Record one issued walk; returns its slot for the walker to fill.
    Slot &
    allocate()
    {
        return slots_[count_++];
    }

    unsigned in_flight() const { return count_; }

    /**
     * Retire the open batch of @p ops dispatched ops in program order:
     * record each walk's latency histogram entry and the occupancy
     * histogram, and compute the overlap credit (sum - max of the slots'
     * hardware walk cycles).
     * @return cycles saved vs serial issue — 0 unless >= 2 walks are in
     *         flight; the caller subtracts it from the batch charge only
     *         in overlapped-timing mode.
     */
    Cycles
    retire(Histogram &walk_cycles_hist, std::uint64_t ops)
    {
        stats_.batches.inc();
        stats_.batched_ops.inc(ops);
        stats_.occupancy.record(count_);
        if (count_ == 0)
            return 0;
        Cycles sum = 0;
        Cycles max = 0;
        for (unsigned i = 0; i < count_; ++i) {
            const Slot &slot = slots_[i];
            walk_cycles_hist.record(slot.walk_cycles);
            sum += slot.walk_cycles;
            if (slot.walk_cycles > max)
                max = slot.walk_cycles;
        }
        count_ = 0;
        Cycles saved = sum - max;
        stats_.overlap_cycles_saved.inc(saved);
        return saved;
    }

    const WalkRegisterFileStats &stats() const { return stats_; }

    /// Register under "<prefix>.wrf.*" (Measurement scope, like the
    /// walker counters they accompany).
    void
    register_stats(obs::StatRegistry &registry, const std::string &prefix)
    {
        const std::string w = prefix + ".wrf";
        const obs::ResetScope scope = obs::ResetScope::Measurement;
        registry.counter(w + ".batches", &stats_.batches, scope);
        registry.counter(w + ".batched_ops", &stats_.batched_ops, scope);
        registry.counter(w + ".overlap_cycles_saved",
                         &stats_.overlap_cycles_saved, scope);
        registry.histogram(w + ".occupancy", &stats_.occupancy, scope);
    }

    void reset_stats() { stats_ = WalkRegisterFileStats{}; }

  private:
    Slot slots_[kCapacity];
    unsigned count_ = 0;
    WalkRegisterFileStats stats_;
};

}  // namespace ptm::mmu
