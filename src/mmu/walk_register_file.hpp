/**
 * @file
 * Walk register file: the fixed pool of in-flight page-walk state one
 * core keeps while a dispatch batch is open (ChampSim's PW_REG_SIZE
 * register file is the structural exemplar).
 *
 * The simulator's cache model is functional — every access permutes LRU
 * state — so the only issue schedule that preserves end-of-run counter
 * sums is program order. Walks are therefore *issued* in program order
 * and the register file captures their state for the things that can be
 * deferred to retire without changing any counter:
 *
 *  - per-walk latency histograms are recorded at retire, slot order ==
 *    program order, so batched runs stay bit-identical to serial;
 *  - the opt-in overlapped-timing mode (PlatformConfig::
 *    overlapped_walk_timing) re-charges the batch's hardware walk cycles
 *    as a *per-level pipeline*: the walker splits every walk into rounds
 *    (one per guest PT level — each including the nested host sub-walk
 *    for that level's node — plus one for the final host walk of the
 *    data page), and retire charges the batch as if all in-flight walks
 *    advanced one round per pipeline beat: sum over rounds of the
 *    slowest slot in that round. This models the ChampSim-style MMU that
 *    steps every outstanding walk one PT level at a time, and is
 *    strictly tighter than the old whole-walk critical path (max of
 *    sums): sum-of-maxes >= max-of-sums, so the overlap credit can only
 *    shrink. Faults are kernel software and stay serialized (excluded
 *    from rounds). Only cycle attribution changes; counters never do.
 */
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::mmu {

/// Register-file occupancy + overlap accounting (per core).
struct WalkRegisterFileStats {
    Counter batches;              ///< dispatch batches retired
    Counter batched_ops;          ///< ops dispatched through batches
    Counter overlap_cycles_saved; ///< sum(walk) - pipelined, overlap mode
    /// Walks in flight per retired batch (the MLP actually available).
    /// Linear buckets cover 0..kCapacity.
    Histogram occupancy{BucketPolicy::Linear, 33};
    /// Pipeline rounds per retired walk (guest levels + final host walk,
    /// accumulated across fault retries).
    Histogram walk_rounds{BucketPolicy::Linear, 17};
};

/**
 * The register file itself: a bounded array of walk slots filled between
 * begin_batch() and retire(). Allocation never fails — the dispatcher
 * caps batches at capacity().
 */
class WalkRegisterFile {
  public:
    /// Upper bound on PlatformConfig::walk_batch.
    static constexpr unsigned kCapacity = 32;

    /// Per-walk pipeline rounds retained for the critical-path retire.
    /// A plain 4-level guest walk is 5 rounds (4 levels + final host
    /// walk); fault retries append more, and anything beyond the bound
    /// merges into the last round (the charge stays exact in total,
    /// only its round attribution saturates).
    static constexpr unsigned kMaxRounds = 16;

    /// One in-flight (issued, not yet retired) walk.
    struct Slot {
        Cycles walk_cycles = 0;   ///< hardware walk portion
        Cycles fault_cycles = 0;  ///< kernel fault portion (serialized)
        /// Hardware walk cycles per pipeline round, in walk order. The
        /// walker streams these in as the walk advances; their sum
        /// equals walk_cycles by construction.
        Cycles round_cycles[kMaxRounds] = {};
        unsigned rounds = 0;

        void
        add_round(Cycles cycles)
        {
            if (rounds < kMaxRounds)
                round_cycles[rounds++] = cycles;
            else
                round_cycles[kMaxRounds - 1] += cycles;
        }
    };

    void
    begin_batch()
    {
        count_ = 0;
    }

    /// Record one issued walk; returns its (reset) slot for the walker
    /// to fill as the walk advances.
    Slot &
    allocate()
    {
        Slot &slot = slots_[count_++];
        slot.walk_cycles = 0;
        slot.fault_cycles = 0;
        slot.rounds = 0;  // stale round_cycles beyond rounds are never read
        return slot;
    }

    unsigned in_flight() const { return count_; }

    /**
     * Retire the open batch of @p ops dispatched ops in program order:
     * record each walk's latency histogram entry, the occupancy and
     * rounds histograms, and compute the overlap credit — serial sum
     * minus the per-round critical path (each round charged as the
     * slowest slot still in flight at that round).
     * @return cycles saved vs serial issue — 0 unless >= 2 walks are in
     *         flight; the caller subtracts it from the batch charge only
     *         in overlapped-timing mode.
     */
    Cycles
    retire(Histogram &walk_cycles_hist, std::uint64_t ops)
    {
        stats_.batches.inc();
        stats_.batched_ops.inc(ops);
        stats_.occupancy.record(count_);
        if (count_ == 0)
            return 0;
        Cycles serial = 0;
        unsigned max_rounds = 0;
        for (unsigned i = 0; i < count_; ++i) {
            const Slot &slot = slots_[i];
            walk_cycles_hist.record(slot.walk_cycles);
            stats_.walk_rounds.record(slot.rounds);
            serial += slot.walk_cycles;
            if (slot.rounds > max_rounds)
                max_rounds = slot.rounds;
        }
        // Pipelined charge: every beat advances all in-flight walks one
        // round, so beat r costs the slowest round r among the slots.
        Cycles pipelined = 0;
        for (unsigned r = 0; r < max_rounds; ++r) {
            Cycles slowest = 0;
            for (unsigned i = 0; i < count_; ++i) {
                const Slot &slot = slots_[i];
                if (r < slot.rounds && slot.round_cycles[r] > slowest)
                    slowest = slot.round_cycles[r];
            }
            pipelined += slowest;
        }
        count_ = 0;
        // Round sums equal walk_cycles by construction, so pipelined is
        // bounded by [max slot, serial] and the credit is never negative.
        Cycles saved = serial > pipelined ? serial - pipelined : 0;
        stats_.overlap_cycles_saved.inc(saved);
        return saved;
    }

    const WalkRegisterFileStats &stats() const { return stats_; }

    /// Register under "<prefix>.wrf.*" (Measurement scope, like the
    /// walker counters they accompany).
    void
    register_stats(obs::StatRegistry &registry, const std::string &prefix)
    {
        const std::string w = prefix + ".wrf";
        const obs::ResetScope scope = obs::ResetScope::Measurement;
        registry.counter(w + ".batches", &stats_.batches, scope);
        registry.counter(w + ".batched_ops", &stats_.batched_ops, scope);
        registry.counter(w + ".overlap_cycles_saved",
                         &stats_.overlap_cycles_saved, scope);
        registry.histogram(w + ".occupancy", &stats_.occupancy, scope);
        registry.histogram(w + ".walk_rounds", &stats_.walk_rounds, scope);
    }

    void reset_stats() { stats_ = WalkRegisterFileStats{}; }

  private:
    Slot slots_[kCapacity];
    unsigned count_ = 0;
    WalkRegisterFileStats stats_;
};

}  // namespace ptm::mmu
