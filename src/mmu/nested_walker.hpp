/**
 * @file
 * Nested (2D) page walker for one simulated core.
 *
 * Implements the virtualized translation flow of §2.5: on a TLB miss the
 * walker traverses the guest PT level by level; the guest-physical address
 * of every guest-PT node must itself be translated through the host PT
 * (served by the nested TLB when possible), and the final guest-physical
 * data address needs one more host walk — up to 24 memory accesses, each
 * issued into the cache hierarchy with its access kind so the experiments
 * can attribute latency to gPT vs hPT lines.
 *
 * Page faults discovered during the walk (non-present gPTE or hPTE) are
 * delegated to kernel-model callbacks, which return the installed frame
 * and the cycle cost of the fault path; the walk then resumes.
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "cache/hierarchy.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mmu/walk_register_file.hpp"
#include "obs/stat_registry.hpp"
#include "pt/translation_table.hpp"
#include "tlb/tlb.hpp"

namespace ptm::pt {
class PageTable;
}

namespace ptm::mmu {

/// Result of a kernel fault handler invocation.
struct FaultOutcome {
    bool ok = false;            ///< false => unrecoverable (OOM)
    std::uint64_t frame = 0;    ///< installed frame (gfn or hfn)
    Cycles cycles = 0;          ///< cost of the fault path
};

/**
 * Non-owning page-fault callback: a plain function pointer plus a context
 * pointer, bound once at system setup. Replaces std::function on the
 * per-access hot path — no heap allocation, no type erasure, a single
 * indirect call. The bound context must outlive the walker.
 */
class FaultHook {
  public:
    using Fn = FaultOutcome (*)(void *ctx, std::uint64_t id);

    FaultHook() = default;
    FaultHook(Fn fn, void *ctx) : fn_(fn), ctx_(ctx) {}

    explicit operator bool() const { return fn_ != nullptr; }

    FaultOutcome operator()(std::uint64_t id) const
    {
        return fn_(ctx_, id);
    }

  private:
    Fn fn_ = nullptr;
    void *ctx_ = nullptr;
};

/// The guest side of a translation: one process's translation table plus
/// its kernel's page-fault handler.
struct GuestContext {
    pt::TranslationTable *page_table = nullptr;
    /// Handle a guest page fault on the faulting gvpn; must install a
    /// mapping.
    FaultHook fault_handler;
    /// Consult/fill the page-walk cache. Only meaningful for tables with
    /// radix_levels(); bound once at job creation from the table.
    bool use_pwc = true;
    /// Concrete radix table behind page_table, when it is one (bound at
    /// system setup). Lets the walker fuse the descent with its per-node
    /// accounting — no step buffer, no virtual dispatch. nullptr keeps
    /// the generic walk() path (hashed tables, direct test setups).
    const pt::PageTable *radix = nullptr;
};

/// The host side: the VM's host translation table (guest-physical ->
/// host-physical) and the host kernel's lazy-backing fault handler.
struct HostContext {
    pt::TranslationTable *page_table = nullptr;
    /// Handle a host page fault on the faulting guest frame number.
    FaultHook fault_handler;
    /// Concrete radix table behind page_table, when it is one; see
    /// GuestContext::radix.
    const pt::PageTable *radix = nullptr;
};

/// Everything a translation request reports back.
struct TranslationResult {
    std::uint64_t hfn = 0;        ///< host frame of the data page
    std::uint64_t gfn = 0;        ///< guest frame of the data page
                                  ///< (0 on a TLB hit: only walks learn it)
    Cycles cycles = 0;            ///< total translation cost incl. faults
    Cycles walk_cycles = 0;       ///< hardware walk portion only
    bool tlb_hit = false;
    bool faulted = false;
};

/// Walker-level counters (per core).
struct WalkerStats {
    Counter translations;
    Counter tlb_l1_hits;
    Counter tlb_l2_hits;
    Counter tlb_misses;            ///< == page walks performed
    Counter walk_cycles;           ///< cycles inside 2D walks
    Counter guest_pt_cycles;       ///< portion spent on gPT node accesses
    Counter host_pt_cycles;        ///< portion spent traversing the host PT
    Counter host_walks;            ///< full 1D host walks (nested-TLB misses)
    Counter nested_tlb_hits;
    Counter guest_pt_accesses;     ///< gPT node accesses issued
    Counter host_pt_accesses;      ///< hPT node accesses issued
    Counter guest_pt_mem_accesses; ///< ... of which served by main memory
    Counter host_pt_mem_accesses;  ///< ... of which served by main memory
    Counter guest_faults;
    Counter host_faults;
    Counter fault_cycles;          ///< cycles inside kernel fault handlers
    /// Hardware walk cycles per TLB-missing translation (log2 buckets).
    Histogram walk_cycles_hist;
    /// Guest-PT step (radix level, or probe number for hashed tables) of
    /// node accesses served by main memory.
    Histogram guest_pt_level_mem{BucketPolicy::Linear, pt::kMaxWalkSteps};
    /// Host-PT step of node accesses served by main memory.
    Histogram host_pt_level_mem{BucketPolicy::Linear, pt::kMaxWalkSteps};
};

/**
 * One core's MMU: TLBs, PWCs, nested TLB, and the 2D walk algorithm.
 * The cache hierarchy is shared; the core id selects the private levels.
 */
class NestedWalker {
  public:
    /// Extra cycles charged for an L2-TLB (STLB) hit.
    static constexpr Cycles kStlbHitPenalty = 7;

    NestedWalker(unsigned core, const tlb::TlbConfig &config,
                 cache::MemoryHierarchy *hierarchy, HostContext host);

    /**
     * Translate guest-virtual address @p gva for @p guest, performing TLB
     * lookups, the nested walk, and any needed faults.
     */
    TranslationResult translate(GuestContext &guest, Addr gva);

    // ---- batched dispatch (sim::System::step_batch) -----------------
    //
    // The dispatcher issues a batch of independent translations in
    // program order: it probes the L1 TLB inline via lookup_l1() (the
    // ~75% fast path — no call, no TranslationResult), falls into
    // translate_l1_missed() on a miss, and closes the batch with
    // end_batch(), which flushes the deferred per-op counters and
    // retires the walk register file (latency histograms, occupancy,
    // overlap credit). Counter sums and orders are identical to calling
    // translate() per op; see walk_register_file.hpp for why issue stays
    // in program order.

    /// Open a dispatch batch (resets the walk register file).
    void begin_batch() { wrf_.begin_batch(); }

    /// Inline L1-TLB probe. On a hit the caller counts it locally and
    /// passes the total to end_batch(); a hit costs 0 cycles, like the
    /// L1 leg of translate().
    std::optional<std::uint64_t>
    lookup_l1(std::uint64_t gvpn)
    {
        return tlb_.lookup_l1(gvpn);
    }

    /**
     * Slow path of a batched translation whose L1 probe missed: L2 TLB,
     * else the full 2D walk, which is issued into the walk register file
     * (its latency histogram entry is recorded at end_batch() retire,
     * not here). Does not touch the translations/tlb_l1_hits counters —
     * those are flushed by end_batch().
     */
    TranslationResult translate_l1_missed(GuestContext &guest, Addr gva);

    /**
     * Close the batch: flush @p ops deferred translations and @p l1_hits
     * deferred L1 hits, retire the register file in program order.
     * @return the overlap credit (cycles the batch's walks save when
     *         charged as critical path instead of serially); the caller
     *         applies it only in overlapped-timing mode.
     */
    Cycles
    end_batch(std::uint64_t ops, std::uint64_t l1_hits)
    {
        stats_.translations.inc(ops);
        stats_.tlb_l1_hits.inc(l1_hits);
        return wrf_.retire(stats_.walk_cycles_hist, ops);
    }

    /**
     * Translate a guest frame number to a host frame number the way the
     * walker would (nested TLB, else a host 1D walk with lazy backing),
     * charging cycles into @p result. Public for the host-walk ablation
     * and tests.
     */
    std::uint64_t host_translate(std::uint64_t gfn,
                                 TranslationResult &result);

    /// Drop a stale data-TLB entry (munmap, COW break).
    void invalidate(std::uint64_t gvpn);
    /// Drop a stale nested-TLB entry (host-side remap).
    void invalidate_nested(std::uint64_t gfn);
    /// Flush all translation caches on this core.
    void flush_all();

    unsigned core() const { return core_; }
    const WalkerStats &stats() const { return stats_; }
    void
    reset_stats()
    {
        stats_ = WalkerStats{};
        wrf_.reset_stats();
    }

    /// Register walker counters + latency histograms under
    /// "<prefix>.walker.*" (Measurement scope: cleared between the init
    /// and measure phases), and the TLB/PWC/nested-TLB structures under
    /// "<prefix>.l1tlb" etc. (Lifetime scope, like their reset behaviour).
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

    tlb::TlbHierarchy &tlb() { return tlb_; }
    tlb::PageWalkCache &pwc() { return pwc_; }
    tlb::NestedTlb &nested_tlb() { return nested_tlb_; }
    const WalkRegisterFile &walk_register_file() const { return wrf_; }

  private:
    /// One attempt at walking the guest PT; returns the leaf data gfn or
    /// nullopt if a guest fault had to be taken (caller retries).
    std::optional<std::uint64_t> walk_guest_once(GuestContext &guest,
                                                 std::uint64_t gvpn,
                                                 TranslationResult &result);

    /// Fused radix fast paths: identical access/stat/fault sequences to
    /// the generic versions, but descending node-by-node via
    /// pt::PageTable::Cursor instead of materializing a step buffer.
    std::optional<std::uint64_t> walk_guest_radix(GuestContext &guest,
                                                  std::uint64_t gvpn,
                                                  TranslationResult &result);
    std::uint64_t host_walk_radix(std::uint64_t gfn,
                                  TranslationResult &result);

    /// The full TLB-missing 2D walk (fault-and-retry loop + final host
    /// walk + TLB insert), shared by translate() and the batched path.
    void walk_to_completion(GuestContext &guest, std::uint64_t gvpn,
                            TranslationResult &result);

    /**
     * Close the current pipeline round of the active walk: charge the
     * hardware walk cycles accumulated since the previous boundary to
     * the next round of the walk's register-file slot. A no-op on the
     * serial path (no active slot). Rounds are per guest PT level (each
     * including its nested host sub-walk) plus one for the final host
     * walk of the data page, and keep accumulating across fault
     * retries; only the overlapped-timing retire reads them.
     */
    void
    note_round(const TranslationResult &result)
    {
        if (active_slot_ == nullptr)
            return;
        active_slot_->add_round(result.walk_cycles - round_mark_);
        round_mark_ = result.walk_cycles;
    }

    unsigned core_;
    cache::MemoryHierarchy *hierarchy_;
    HostContext host_;
    tlb::TlbHierarchy tlb_;
    tlb::PageWalkCache pwc_;
    tlb::NestedTlb nested_tlb_;
    WalkRegisterFile wrf_;
    WalkerStats stats_;
    // Streaming round state of the in-flight batched walk: the slot is
    // allocated before the walk starts so per-level rounds can be
    // recorded as the walk advances; null on the serial path.
    WalkRegisterFile::Slot *active_slot_ = nullptr;
    Cycles round_mark_ = 0;
    // Reusable step cursors: translate() is called once per simulated
    // op, so the cursor blobs live here instead of being re-created per
    // walk (guest and host walks overlap — host_translate runs mid
    // guest walk — hence two cursors).
    pt::StepCursor guest_cursor_;
    pt::StepCursor host_cursor_;
};

}  // namespace ptm::mmu
