#include "mmu/nested_walker.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "pt/page_table.hpp"

namespace ptm::mmu {

namespace {
/// Retries bound: a translation can fault at most once per guest level
/// plus once per host walk; anything beyond signals a broken kernel model.
constexpr unsigned kMaxAttempts = 16;
}  // namespace

NestedWalker::NestedWalker(unsigned core, const tlb::TlbConfig &config,
                           cache::MemoryHierarchy *hierarchy,
                           HostContext host)
    : core_(core), hierarchy_(hierarchy), host_(std::move(host)),
      tlb_(config), pwc_(config), nested_tlb_(config)
{
    if (hierarchy_ == nullptr)
        ptm_fatal("walker needs a cache hierarchy");
    if (host_.page_table == nullptr || !host_.fault_handler)
        ptm_fatal("walker needs a complete host context");
}

std::uint64_t
NestedWalker::host_translate(std::uint64_t gfn, TranslationResult &result)
{
    if (std::optional<std::uint64_t> hfn = nested_tlb_.lookup(gfn)) {
        stats_.nested_tlb_hits.inc();
        return *hfn;
    }

    // 1D walk of the host page table. Every node access goes through the
    // cache hierarchy tagged HostPt; a non-present entry anywhere means
    // the host has not yet backed this guest frame and takes a host fault
    // (lazy allocation, §3.1), after which the walk restarts.
    stats_.host_walks.inc();
    if (host_.radix != nullptr)
        return host_walk_radix(gfn, result);
    for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
        // Resumable descent: pull one step at a time through the step
        // cursor — same touch order and accounting as walking first and
        // iterating a buffer afterwards, without the buffer round-trip.
        pt::StepCursor &cur = host_cursor_;
        host_.page_table->walk_begin(gfn, cur);
        pt::WalkStep step;
        while (host_.page_table->walk_next(cur, step)) {
            cache::AccessResult access = hierarchy_->access(
                core_, step.entry_paddr, cache::AccessKind::HostPt);
            result.walk_cycles += access.latency;
            result.cycles += access.latency;
            stats_.walk_cycles.inc(access.latency);
            stats_.host_pt_cycles.inc(access.latency);
            stats_.host_pt_accesses.inc();
            if (access.served_by == cache::ServedBy::Memory) {
                stats_.host_pt_mem_accesses.inc();
                stats_.host_pt_level_mem.record(step.level);
            }
        }
        if (cur.complete) {
            std::uint64_t hfn = step.pte.frame();
            nested_tlb_.insert(gfn, hfn);
            return hfn;
        }

        FaultOutcome fault = host_.fault_handler(gfn);
        stats_.host_faults.inc();
        if (!fault.ok)
            ptm_throw("host kernel cannot back guest frame %llu "
                      "(host OOM)", static_cast<unsigned long long>(gfn));
        stats_.fault_cycles.inc(fault.cycles);
        result.cycles += fault.cycles;
        result.faulted = true;
    }
    ptm_panic("host walk did not converge");
}

std::uint64_t
NestedWalker::host_walk_radix(std::uint64_t gfn, TranslationResult &result)
{
    // Fused variant of the loop above: the radix table's walk() is a pure
    // read, so descending node-by-node and accounting each level as it is
    // reached touches the caches in the exact same order as walking first
    // and accounting afterwards. walk() stops after the first non-present
    // entry; so does this descent.
    for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
        pt::PageTable::Cursor cur(*host_.radix, gfn);
        for (;;) {
            cache::AccessResult access = hierarchy_->access(
                core_, cur.entry_paddr(), cache::AccessKind::HostPt);
            result.walk_cycles += access.latency;
            result.cycles += access.latency;
            stats_.walk_cycles.inc(access.latency);
            stats_.host_pt_cycles.inc(access.latency);
            stats_.host_pt_accesses.inc();
            if (access.served_by == cache::ServedBy::Memory) {
                stats_.host_pt_mem_accesses.inc();
                stats_.host_pt_level_mem.record(cur.level());
            }
            if (!cur.pte().present())
                break;
            if (cur.at_leaf()) {
                std::uint64_t hfn = cur.pte().frame();
                nested_tlb_.insert(gfn, hfn);
                return hfn;
            }
            cur.descend();
        }

        FaultOutcome fault = host_.fault_handler(gfn);
        stats_.host_faults.inc();
        if (!fault.ok)
            ptm_throw("host kernel cannot back guest frame %llu "
                      "(host OOM)", static_cast<unsigned long long>(gfn));
        stats_.fault_cycles.inc(fault.cycles);
        result.cycles += fault.cycles;
        result.faulted = true;
    }
    ptm_panic("host walk did not converge");
}

std::optional<std::uint64_t>
NestedWalker::walk_guest_once(GuestContext &guest, std::uint64_t gvpn,
                              TranslationResult &result)
{
    if (guest.radix != nullptr)
        return walk_guest_radix(guest, gvpn, result);

    // Resumable descent through the step cursor: one level at a time,
    // so each level closes its own pipeline round (note_round) the
    // moment its accesses are charged.
    pt::TranslationTable &table = *guest.page_table;
    pt::StepCursor &cur = guest_cursor_;
    table.walk_begin(gvpn, cur);

    // The PWC can let the walker skip upper guest levels whose node it
    // already knows; it caches node frames, so validate the hit against
    // the current walk (a stale hit after unmap simply misses here).
    // Non-radix tables have no stable level->node contract, so the PWC
    // is bypassed for them (guest.use_pwc) — walk_peek/walk_skip only
    // ever run against the buffered cursor of a radix-contract table.
    if (guest.use_pwc) {
        if (std::optional<tlb::PageWalkCache::Hit> hit =
                pwc_.lookup(gvpn)) {
            const pt::WalkStep *resume =
                table.walk_peek(cur, hit->resume_level);
            if (resume != nullptr &&
                resume->node_frame == hit->node_frame) {
                table.walk_skip(cur, hit->resume_level);
            }
        }
    }

    pt::WalkStep step;
    while (table.walk_next(cur, step)) {
        // The guest-PT node lives at a guest-physical frame; the walker
        // needs its host-physical address first (the "2D" part).
        std::uint64_t node_hfn = host_translate(step.node_frame, result);
        Addr entry_hpa =
            node_hfn * kPageSize + step.index * kPteSize;

        cache::AccessResult access = hierarchy_->access(
            core_, entry_hpa, cache::AccessKind::GuestPt);
        result.walk_cycles += access.latency;
        result.cycles += access.latency;
        stats_.walk_cycles.inc(access.latency);
        stats_.guest_pt_cycles.inc(access.latency);
        stats_.guest_pt_accesses.inc();
        if (access.served_by == cache::ServedBy::Memory) {
            stats_.guest_pt_mem_accesses.inc();
            stats_.guest_pt_level_mem.record(step.level);
        }

        // One guest level (nested host sub-walk included) = one round.
        note_round(result);

        if (!step.pte.present()) {
            // Guest page fault: the guest kernel allocates and maps.
            FaultOutcome fault = guest.fault_handler(gvpn);
            stats_.guest_faults.inc();
            if (!fault.ok)
                ptm_throw("guest kernel cannot satisfy page fault on "
                          "gvpn %llu (guest OOM)",
                          static_cast<unsigned long long>(gvpn));
            stats_.fault_cycles.inc(fault.cycles);
            result.cycles += fault.cycles;
            result.faulted = true;
            return std::nullopt;  // retry the walk against the new PT state
        }

        if (guest.use_pwc && !cur.done)
            pwc_.insert(gvpn, step.level, step.pte.frame());
    }

    if (!cur.complete) {
        // An incomplete walk ends on a non-present entry, which is
        // handled above; reaching here without completion cannot happen.
        ptm_panic("guest walk stopped early without fault");
    }
    return step.pte.frame();
}

std::optional<std::uint64_t>
NestedWalker::walk_guest_radix(GuestContext &guest, std::uint64_t gvpn,
                               TranslationResult &result)
{
    // Fused variant of walk_guest_once for radix tables: same access,
    // stat, PWC, and fault sequence, but the descent happens inline —
    // no step buffer, no virtual walk() call per attempt.
    const pt::PageTable &table = *guest.radix;
    pt::PageTable::Cursor cur(table, gvpn);

    // PWC resume: valid iff a silent descent reaches the cached level
    // and finds the cached node there — the same predicate as checking
    // steps[resume_level] of a full walk (a stale hit simply misses).
    if (guest.use_pwc) {
        if (std::optional<tlb::PageWalkCache::Hit> hit =
                pwc_.lookup(gvpn)) {
            pt::PageTable::Cursor probe(table, gvpn);
            bool reachable = true;
            while (probe.level() < hit->resume_level) {
                if (!probe.pte().present() || probe.at_leaf()) {
                    reachable = false;
                    break;
                }
                probe.descend();
            }
            if (reachable && probe.node_frame() == hit->node_frame)
                cur = probe;
        }
    }

    for (;;) {
        // The guest-PT node lives at a guest-physical frame; the walker
        // needs its host-physical address first (the "2D" part).
        std::uint64_t node_hfn = host_translate(cur.node_frame(), result);
        Addr entry_hpa = node_hfn * kPageSize + cur.index() * kPteSize;

        cache::AccessResult access = hierarchy_->access(
            core_, entry_hpa, cache::AccessKind::GuestPt);
        result.walk_cycles += access.latency;
        result.cycles += access.latency;
        stats_.walk_cycles.inc(access.latency);
        stats_.guest_pt_cycles.inc(access.latency);
        stats_.guest_pt_accesses.inc();
        if (access.served_by == cache::ServedBy::Memory) {
            stats_.guest_pt_mem_accesses.inc();
            stats_.guest_pt_level_mem.record(cur.level());
        }

        // One guest level (nested host sub-walk included) = one round.
        note_round(result);

        pt::Pte pte = cur.pte();
        if (!pte.present()) {
            // Guest page fault: the guest kernel allocates and maps.
            FaultOutcome fault = guest.fault_handler(gvpn);
            stats_.guest_faults.inc();
            if (!fault.ok)
                ptm_throw("guest kernel cannot satisfy page fault on "
                          "gvpn %llu (guest OOM)",
                          static_cast<unsigned long long>(gvpn));
            stats_.fault_cycles.inc(fault.cycles);
            result.cycles += fault.cycles;
            result.faulted = true;
            return std::nullopt;  // retry the walk against the new PT state
        }

        if (cur.at_leaf())
            return pte.frame();
        if (guest.use_pwc)
            pwc_.insert(gvpn, cur.level(), pte.frame());
        cur.descend();
    }
}

void
NestedWalker::walk_to_completion(GuestContext &guest, std::uint64_t gvpn,
                                 TranslationResult &result)
{
    stats_.tlb_misses.inc();
    for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
        std::optional<std::uint64_t> data_gfn =
            walk_guest_once(guest, gvpn, result);
        if (!data_gfn)
            continue;  // faulted; PT changed; retry

        // Final host walk: translate the data page itself — the last
        // pipeline round of the walk.
        result.gfn = *data_gfn;
        result.hfn = host_translate(*data_gfn, result);
        note_round(result);
        tlb_.insert(gvpn, result.hfn);
        return;
    }
    ptm_panic("guest translation did not converge");
}

TranslationResult
NestedWalker::translate(GuestContext &guest, Addr gva)
{
    if (guest.page_table == nullptr || !guest.fault_handler)
        ptm_fatal("translate() needs a complete guest context");

    TranslationResult result;
    stats_.translations.inc();

    std::uint64_t gvpn = page_number(gva);
    if (std::optional<std::uint64_t> hfn = tlb_.lookup_l1(gvpn)) {
        stats_.tlb_l1_hits.inc();
        result.hfn = *hfn;
        result.tlb_hit = true;
        return result;
    }
    if (std::optional<std::uint64_t> hfn = tlb_.lookup_l2_fill_l1(gvpn)) {
        stats_.tlb_l2_hits.inc();
        result.hfn = *hfn;
        result.tlb_hit = true;
        result.cycles = kStlbHitPenalty;
        return result;
    }

    walk_to_completion(guest, gvpn, result);
    stats_.walk_cycles_hist.record(result.walk_cycles);
    return result;
}

TranslationResult
NestedWalker::translate_l1_missed(GuestContext &guest, Addr gva)
{
    TranslationResult result;
    std::uint64_t gvpn = page_number(gva);
    if (std::optional<std::uint64_t> hfn = tlb_.lookup_l2_fill_l1(gvpn)) {
        stats_.tlb_l2_hits.inc();
        result.hfn = *hfn;
        result.tlb_hit = true;
        result.cycles = kStlbHitPenalty;
        return result;
    }

    // Issue the walk into the register file before it starts, so the
    // per-level pipeline rounds stream into the slot as the walk
    // advances; its histogram entry is recorded when end_batch()
    // retires the batch in program order.
    WalkRegisterFile::Slot &slot = wrf_.allocate();
    active_slot_ = &slot;
    round_mark_ = 0;
    walk_to_completion(guest, gvpn, result);
    active_slot_ = nullptr;
    slot.walk_cycles = result.walk_cycles;
    slot.fault_cycles = result.cycles - result.walk_cycles;
    return result;
}

void
NestedWalker::register_stats(obs::StatRegistry &registry,
                             const std::string &prefix)
{
    const std::string w = prefix + ".walker";
    const obs::ResetScope scope = obs::ResetScope::Measurement;
    registry.counter(w + ".translations", &stats_.translations, scope);
    registry.counter(w + ".tlb_l1_hits", &stats_.tlb_l1_hits, scope);
    registry.counter(w + ".tlb_l2_hits", &stats_.tlb_l2_hits, scope);
    registry.counter(w + ".tlb_misses", &stats_.tlb_misses, scope);
    registry.counter(w + ".walk_cycles", &stats_.walk_cycles, scope);
    registry.counter(w + ".guest_pt_cycles", &stats_.guest_pt_cycles,
                     scope);
    registry.counter(w + ".host_pt_cycles", &stats_.host_pt_cycles, scope);
    registry.counter(w + ".host_walks", &stats_.host_walks, scope);
    registry.counter(w + ".nested_tlb_hits", &stats_.nested_tlb_hits,
                     scope);
    registry.counter(w + ".guest_pt_accesses", &stats_.guest_pt_accesses,
                     scope);
    registry.counter(w + ".host_pt_accesses", &stats_.host_pt_accesses,
                     scope);
    registry.counter(w + ".guest_pt_mem_accesses",
                     &stats_.guest_pt_mem_accesses, scope);
    registry.counter(w + ".host_pt_mem_accesses",
                     &stats_.host_pt_mem_accesses, scope);
    registry.counter(w + ".guest_faults", &stats_.guest_faults, scope);
    registry.counter(w + ".host_faults", &stats_.host_faults, scope);
    registry.counter(w + ".fault_cycles", &stats_.fault_cycles, scope);
    registry.histogram(w + ".walk_cycles_hist", &stats_.walk_cycles_hist,
                       scope);
    registry.histogram(w + ".guest_pt_level_mem",
                       &stats_.guest_pt_level_mem, scope);
    registry.histogram(w + ".host_pt_level_mem",
                       &stats_.host_pt_level_mem, scope);
    wrf_.register_stats(registry, w);

    tlb_.register_stats(registry, prefix);
    pwc_.register_stats(registry, prefix);
    nested_tlb_.register_stats(registry, prefix);
}

void
NestedWalker::invalidate(std::uint64_t gvpn)
{
    tlb_.invalidate(gvpn);
}

void
NestedWalker::invalidate_nested(std::uint64_t gfn)
{
    nested_tlb_.invalidate(gfn);
}

void
NestedWalker::flush_all()
{
    tlb_.flush();
    pwc_.flush();
    nested_tlb_.flush();
}

}  // namespace ptm::mmu
