/**
 * @file
 * HashedPageTable — an open-addressed hashed translation table, the first
 * non-radix TranslationTable.
 *
 * The classic alternative to radix walks (PowerPC HPTs, and the inverted/
 * hashed designs revisited by recent research): translations live in a
 * flat array of 8-byte entry slots packed into physical frames, found by
 * hashing the vpn and probing linearly. A walk is the probe sequence —
 * each probe is one physically-addressed memory touch, so the walker's
 * cache-footprint accounting stays exact: a hit costs as many touches as
 * the probe distance (1 for most entries at moderate load factor), not a
 * fixed four-level descent.
 *
 * Determinism & bounds: the probe bound is pt::kMaxWalkSteps. Insertion
 * keeps every mapped vpn reachable within that many probes (growing and
 * rehashing when a chain would exceed it or load passes ~70%), so
 * translation of mapped pages always terminates. Tombstones preserve
 * probe chains across unmap.
 *
 * Modeling note: slots hold an 8-byte PTE in simulated physical memory;
 * the vpn tag is tracked model-side (a real HPT spends a second word on
 * the tag — we charge one touch per probe, the dominant effect either
 * way).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "pt/page_table.hpp"
#include "pt/translation_table.hpp"

namespace ptm::pt {

/// Hashed-table activity beyond the common PageTableStats.
struct HashedTableStats {
    Counter probes;    ///< total probe touches across walks/lookups
    Counter rehashes;  ///< table grows (all entries re-placed)
};

class HashedPageTable final : public TranslationTable {
  public:
    /// Entry slots per 4 KiB bucket frame (512 eight-byte entries).
    static constexpr unsigned kSlotsPerFrame = kPtesPerNode;

    /**
     * @param frames         where bucket frames come from / go back to.
     * @param initial_frames starting bucket-frame count (power of two);
     *                       allocated eagerly, like the radix root.
     */
    explicit HashedPageTable(FrameSource frames,
                             std::uint64_t initial_frames = 4);
    ~HashedPageTable() override;

    HashedPageTable(const HashedPageTable &) = delete;
    HashedPageTable &operator=(const HashedPageTable &) = delete;

    bool map(std::uint64_t vpn, const PteFields &fields) override;
    void unmap(std::uint64_t vpn) override;
    std::optional<Pte> lookup(std::uint64_t vpn) const override;
    bool update(std::uint64_t vpn, const PteFields &fields) override;
    WalkResult walk(std::uint64_t vpn, WalkSteps &steps) const override;
    std::optional<Addr> leaf_entry_paddr(std::uint64_t vpn) const override;

    /// Native resumable walk: probes are produced one at a time from
    /// home/probe cursor state — no step buffer — with steps and probe
    /// accounting identical to walk().
    void walk_begin(std::uint64_t vpn, StepCursor &cur) const override;
    bool walk_next(StepCursor &cur, WalkStep &step) const override;

    std::uint64_t root_frame() const override { return frames_.front(); }
    std::uint64_t node_count() const override { return frames_.size(); }
    const PageTableStats &stats() const override { return stats_; }
    std::string name() const override { return "hashed"; }
    /// Probe sequences share no hierarchical prefix: no PWC contract.
    bool radix_levels() const override { return false; }

    const HashedTableStats &hashed_stats() const { return hashed_stats_; }

    /// Live translations (diagnostics / tests).
    std::uint64_t entry_count() const { return occupied_; }
    std::uint64_t slot_count() const
    {
        return static_cast<std::uint64_t>(slots_.size());
    }

  private:
    enum class SlotState : std::uint8_t { Empty, Occupied, Tombstone };

    struct Slot {
        std::uint64_t vpn = 0;
        Pte pte;
        SlotState state = SlotState::Empty;
    };

    static std::uint64_t hash_vpn(std::uint64_t vpn);
    std::uint64_t probe_slot(std::uint64_t home, unsigned i) const
    {
        return (home + i) & (slots_.size() - 1);
    }
    Addr slot_paddr(std::uint64_t slot) const
    {
        return frames_[slot / kSlotsPerFrame] * kPageSize +
               (slot % kSlotsPerFrame) * kPteSize;
    }

    /// Slot holding @p vpn, found within the probe bound; npos if absent.
    std::uint64_t find_slot(std::uint64_t vpn) const;

    /// Double the frame count and re-place every live entry; false on
    /// frame-allocation failure (the table is left unchanged).
    bool grow();

    /// Place (vpn, pte) into @p slots under the probe bound; false if the
    /// chain would exceed it.
    static bool place(std::vector<Slot> &slots, std::uint64_t vpn, Pte pte);

    FrameSource source_;
    std::vector<std::uint64_t> frames_;  ///< bucket frames, in slot order
    std::vector<Slot> slots_;
    std::uint64_t occupied_ = 0;  ///< live entries
    std::uint64_t used_ = 0;      ///< live + tombstoned slots
    PageTableStats stats_;
    /// Probe accounting happens inside const walks/lookups.
    mutable HashedTableStats hashed_stats_;
};

}  // namespace ptm::pt
