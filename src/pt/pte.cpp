#include "pt/pte.hpp"

namespace ptm::pt {

Pte
Pte::encode(const PteFields &fields)
{
    std::uint64_t raw = 0;
    if (fields.present)
        raw |= kPresentBit;
    if (fields.writable)
        raw |= kWritableBit;
    if (fields.user)
        raw |= kUserBit;
    if (fields.accessed)
        raw |= kAccessedBit;
    if (fields.dirty)
        raw |= kDirtyBit;
    if (fields.cow)
        raw |= kCowBit;
    raw |= (fields.frame << kPageShift) & kFrameMask;
    return Pte{raw};
}

PteFields
Pte::decode() const
{
    PteFields fields;
    fields.present = raw_ & kPresentBit;
    fields.writable = raw_ & kWritableBit;
    fields.user = raw_ & kUserBit;
    fields.accessed = raw_ & kAccessedBit;
    fields.dirty = raw_ & kDirtyBit;
    fields.cow = raw_ & kCowBit;
    fields.frame = frame();
    return fields;
}

}  // namespace ptm::pt
