#include "pt/table_factory.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "pt/hashed_page_table.hpp"

namespace ptm::pt {

namespace {

/// Meyers singleton so registrations from static initializers in any
/// translation unit land in one map regardless of init order.
std::map<std::string, TableCtor> &
registry()
{
    static std::map<std::string, TableCtor> tables;
    return tables;
}

std::string
known_names()
{
    std::ostringstream out;
    bool first = true;
    for (const auto &[name, ctor] : registry()) {
        out << (first ? "" : ", ") << name;
        first = false;
    }
    return out.str();
}

}  // namespace

void
register_table(const std::string &name, TableCtor ctor)
{
    registry()[name] = std::move(ctor);
}

bool
table_registered(const std::string &name)
{
    return registry().count(name) != 0;
}

std::vector<std::string>
registered_tables()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, ctor] : registry())
        names.push_back(name);
    return names;
}

std::unique_ptr<TranslationTable>
make_table(const std::string &name, FrameSource frames,
           const PolicyParams &params)
{
    auto it = registry().find(name);
    if (it == registry().end())
        ptm_throw("unknown translation table '%s' (registered: %s)",
                  name.c_str(), known_names().c_str());
    return it->second(std::move(frames), params);
}

// ---------------------------------------------------------------------
// Built-in tables.

namespace {

const bool kBuiltinsRegistered = [] {
    register_table("radix",
                   [](FrameSource frames, const PolicyParams &) {
                       return std::make_unique<PageTable>(std::move(frames));
                   });
    register_table("hashed", [](FrameSource frames,
                                const PolicyParams &params) {
        return std::make_unique<HashedPageTable>(
            std::move(frames), params.get_u64("initial_frames", 4));
    });
    return true;
}();

}  // namespace

}  // namespace ptm::pt
