/**
 * @file
 * TranslationTable — the abstract translation structure behind every
 * simulated address space.
 *
 * The radix PageTable was the one table baked into the kernels and the
 * nested walker; this interface is what they actually rely on: install /
 * remove / overwrite translations, and enumerate the physically-addressed
 * node touches a hardware walker performs — the touches are the whole
 * cache-footprint argument of the paper, so every implementation must
 * report the exact physical byte address of each entry it reads.
 *
 * Implementations: pt::PageTable (4-level radix), pt::HashedPageTable
 * (open-addressed buckets in physical frames). New tables register with
 * pt::register_table (table_factory.hpp) and become sweepable by name.
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "pt/pte.hpp"

namespace ptm::pt {

/// Upper bound on walk steps any table may report per translation. The
/// radix tree uses kPtLevels (4); a hashed table's probe sequence is
/// capped here — implementations must keep every *mapped* translation
/// reachable within this many touches (rehashing if necessary).
inline constexpr unsigned kMaxWalkSteps = 8;

/// One step of a page walk, as seen by the hardware walker.
struct WalkStep {
    unsigned level = 0;        ///< radix level, or probe number (hashed)
    std::uint64_t node_frame = 0;  ///< frame holding the touched node
    unsigned index = 0;        ///< entry index within the node
    Addr entry_paddr = 0;      ///< physical byte address of the entry
    Pte pte;                   ///< entry value after the step
};

/// Outcome of TranslationTable::walk().
struct WalkResult {
    unsigned steps = 0;    ///< entries written to the step buffer (>= 1)
    /// True iff the final step's PTE is the leaf translation for the
    /// requested vpn. False means the walk ended at a non-present entry
    /// (radix: missing level; hashed: empty slot or probe cap) — the
    /// walker takes a page fault and retries.
    bool complete = false;
};

/// Step buffer a walker hands to walk(); sized for any table.
using WalkSteps = std::array<WalkStep, kMaxWalkSteps>;

/**
 * Resumable-walk state for TranslationTable::walk_begin()/walk_next():
 * the per-level pipeline in the nested walker pulls walk steps one at a
 * time instead of materializing a whole step buffer per attempt. One
 * POD blob, owned by the walker and reused across walks — no allocation
 * on the walk path. Tables interpret only their own fields: the
 * buffered default fills steps/count/next via walk(); native
 * implementations (HashedPageTable) use vpn/home/probe and leave the
 * buffer untouched.
 */
struct StepCursor {
    std::uint64_t vpn = 0;

    // Buffered default (walk() output, doled out step by step).
    WalkSteps steps{};
    unsigned count = 0;
    unsigned next = 0;

    // Native hashed-probe state.
    std::uint64_t home = 0;   ///< home slot of vpn's probe sequence
    unsigned probe = 0;       ///< probes produced so far

    /// True iff the terminal step produced was the leaf translation
    /// (the walk() "complete" bit, valid once done is set).
    bool complete = false;
    /// True once the terminal step has been produced.
    bool done = false;
};

/// Table-population counters (shared across implementations).
struct PageTableStats {
    Counter nodes_allocated;
    Counter nodes_released;
    Counter mappings;
    Counter unmappings;
};

/**
 * Abstract translation structure. Not thread-safe; the owning kernel
 * serializes updates (walks from the simulated hardware walker are reads
 * and happen between kernel operations in the deterministic schedule).
 */
class TranslationTable {
  public:
    virtual ~TranslationTable() = default;

    /**
     * Install a translation vpn -> fields (intermediate structure is
     * created on demand).
     * @return false if a frame allocation failed (OOM).
     */
    virtual bool map(std::uint64_t vpn, const PteFields &fields) = 0;

    /// Remove a translation (structure frames may be retained, as Linux
    /// keeps PT pages until region teardown).
    virtual void unmap(std::uint64_t vpn) = 0;

    /// Current leaf entry for @p vpn, if mapped.
    virtual std::optional<Pte> lookup(std::uint64_t vpn) const = 0;

    /// Overwrite the leaf entry of an existing mapping (COW resolve).
    virtual bool update(std::uint64_t vpn, const PteFields &fields) = 0;

    /**
     * Enumerate the physically-addressed node entries a hardware walker
     * touches translating @p vpn, in touch order.
     */
    virtual WalkResult walk(std::uint64_t vpn, WalkSteps &steps) const = 0;

    /**
     * Physical byte address of the leaf entry slot for @p vpn, when the
     * slot exists (the entry itself may be non-present). Drives the
     * fragmentation metric, which is about PTE *placement*.
     */
    virtual std::optional<Addr> leaf_entry_paddr(std::uint64_t vpn)
        const = 0;

    /// Frame of the root structure (CR3 equivalent / bucket frame 0).
    virtual std::uint64_t root_frame() const = 0;

    /// Structure frames currently allocated.
    virtual std::uint64_t node_count() const = 0;

    virtual const PageTableStats &stats() const = 0;

    /// Registered factory name ("radix", "hashed", ...).
    virtual std::string name() const = 0;

    /**
     * True iff walk steps are the fixed radix hierarchy (level i of every
     * walk touches the same node for a shared vpn prefix), which is the
     * contract the page-walk cache exploits. Tables returning false run
     * with the PWC bypassed.
     */
    virtual bool radix_levels() const { return false; }

    // ---- resumable step interface ----------------------------------
    //
    // walk_begin()/walk_next() produce the exact step sequence of
    // walk(), one step at a time, so the nested walker can advance a
    // walk level by level (and account each level as its own pipeline
    // round) without a step buffer round-trip per attempt. The default
    // implementations buffer walk() output in the cursor; tables with a
    // naturally incremental walk (HashedPageTable) override them and
    // must reproduce walk()'s steps — and its stat accounting — bit for
    // bit.

    /// Start a resumable walk of @p vpn into @p cur (reusable blob).
    virtual void
    walk_begin(std::uint64_t vpn, StepCursor &cur) const
    {
        cur.vpn = vpn;
        cur.next = 0;
        WalkResult result = walk(vpn, cur.steps);
        cur.count = result.steps;
        cur.complete = result.complete;
        cur.done = false;
    }

    /**
     * Produce the next step of the walk, or return false when the
     * terminal step has already been produced. After the call that
     * returns the terminal step, cur.done is true and cur.complete
     * reports whether that step was the leaf translation.
     */
    virtual bool
    walk_next(StepCursor &cur, WalkStep &step) const
    {
        if (cur.next >= cur.count) {
            cur.done = true;
            return false;
        }
        step = cur.steps[cur.next++];
        if (cur.next >= cur.count)
            cur.done = true;
        return true;
    }

    /**
     * Step @p i of the walk without consuming anything, or nullptr when
     * the walk has fewer steps. Only meaningful for tables with
     * radix_levels() (the page-walk-cache resume check); the buffered
     * default serves them, and non-radix tables run with the PWC
     * bypassed so their native cursors never see a peek.
     */
    virtual const WalkStep *
    walk_peek(const StepCursor &cur, unsigned i) const
    {
        return i < cur.count ? &cur.steps[i] : nullptr;
    }

    /// Skip the cursor forward so the next step produced is step @p to
    /// (PWC resume). Same radix_levels()-only contract as walk_peek().
    virtual void
    walk_skip(StepCursor &cur, unsigned to) const
    {
        cur.next = to < cur.count ? to : cur.count;
    }
};

}  // namespace ptm::pt
