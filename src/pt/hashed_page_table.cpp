#include "pt/hashed_page_table.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace ptm::pt {

namespace {

constexpr std::uint64_t kNpos = ~0ull;

bool
is_power_of_two(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

HashedPageTable::HashedPageTable(FrameSource frames,
                                 std::uint64_t initial_frames)
    : source_(std::move(frames))
{
    if (!source_.allocate || !source_.release)
        ptm_fatal("hashed page table requires a complete frame source");
    if (!is_power_of_two(initial_frames))
        ptm_fatal("hashed page table frame count must be a power of two "
                  "(got %llu)",
                  static_cast<unsigned long long>(initial_frames));
    frames_.reserve(initial_frames);
    for (std::uint64_t i = 0; i < initial_frames; ++i) {
        std::optional<std::uint64_t> frame = source_.allocate();
        if (!frame) {
            // Recoverable admission failure. The destructor will not run
            // after a throwing constructor, so give back what we took.
            for (std::uint64_t taken : frames_)
                source_.release(taken);
            ptm_throw("cannot allocate hashed page-table bucket frames: "
                      "%llu of %llu allocated before the frame source "
                      "ran dry",
                      static_cast<unsigned long long>(frames_.size()),
                      static_cast<unsigned long long>(initial_frames));
        }
        frames_.push_back(*frame);
    }
    stats_.nodes_allocated.inc(initial_frames);
    slots_.resize(initial_frames * kSlotsPerFrame);
}

HashedPageTable::~HashedPageTable()
{
    for (std::uint64_t frame : frames_)
        source_.release(frame);
    stats_.nodes_released.inc(frames_.size());
}

std::uint64_t
HashedPageTable::hash_vpn(std::uint64_t vpn)
{
    // splitmix64 finalizer: full-avalanche, deterministic across runs.
    std::uint64_t h = vpn + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

std::uint64_t
HashedPageTable::find_slot(std::uint64_t vpn) const
{
    std::uint64_t home = hash_vpn(vpn) & (slots_.size() - 1);
    for (unsigned i = 0; i < kMaxWalkSteps; ++i) {
        std::uint64_t s = probe_slot(home, i);
        const Slot &slot = slots_[s];
        if (slot.state == SlotState::Empty)
            return kNpos;
        if (slot.state == SlotState::Occupied && slot.vpn == vpn)
            return s;
    }
    // Insertion enforces the probe bound, so a vpn absent within it is
    // absent outright.
    return kNpos;
}

bool
HashedPageTable::place(std::vector<Slot> &slots, std::uint64_t vpn, Pte pte)
{
    std::uint64_t home = hash_vpn(vpn) & (slots.size() - 1);
    for (unsigned i = 0; i < kMaxWalkSteps; ++i) {
        std::uint64_t s = (home + i) & (slots.size() - 1);
        if (slots[s].state == SlotState::Empty) {
            slots[s] = Slot{vpn, pte, SlotState::Occupied};
            return true;
        }
    }
    return false;
}

bool
HashedPageTable::grow()
{
    std::uint64_t new_frame_count = frames_.size() * 2;
    for (;;) {
        std::vector<std::uint64_t> new_frames;
        new_frames.reserve(new_frame_count);
        bool oom = false;
        for (std::uint64_t i = 0; i < new_frame_count; ++i) {
            std::optional<std::uint64_t> frame = source_.allocate();
            if (!frame) {
                oom = true;
                break;
            }
            new_frames.push_back(*frame);
        }
        if (oom) {
            for (std::uint64_t frame : new_frames)
                source_.release(frame);
            return false;
        }

        std::vector<Slot> new_slots(new_frame_count * kSlotsPerFrame);
        bool fits = true;
        for (const Slot &slot : slots_) {
            if (slot.state != SlotState::Occupied)
                continue;
            if (!place(new_slots, slot.vpn, slot.pte)) {
                fits = false;
                break;
            }
        }
        if (!fits) {
            // A chain still exceeds the probe bound at this size: free
            // the attempt and double again.
            for (std::uint64_t frame : new_frames)
                source_.release(frame);
            new_frame_count *= 2;
            continue;
        }

        for (std::uint64_t frame : frames_)
            source_.release(frame);
        stats_.nodes_released.inc(frames_.size());
        stats_.nodes_allocated.inc(new_frame_count);
        frames_ = std::move(new_frames);
        slots_ = std::move(new_slots);
        used_ = occupied_;  // rehash clears tombstones
        hashed_stats_.rehashes.inc();
        return true;
    }
}

bool
HashedPageTable::map(std::uint64_t vpn, const PteFields &fields)
{
    PteFields with_present = fields;
    with_present.present = true;
    Pte pte = Pte::encode(with_present);

    std::uint64_t existing = find_slot(vpn);
    if (existing != kNpos) {
        slots_[existing].pte = pte;
        stats_.mappings.inc();
        return true;
    }

    for (;;) {
        // Grow at ~70% load (tombstones included: they lengthen probes
        // just like live entries).
        if ((used_ + 1) * 10 > slots_.size() * 7) {
            if (!grow())
                return false;
        }
        std::uint64_t home = hash_vpn(vpn) & (slots_.size() - 1);
        for (unsigned i = 0; i < kMaxWalkSteps; ++i) {
            std::uint64_t s = probe_slot(home, i);
            Slot &slot = slots_[s];
            if (slot.state == SlotState::Occupied)
                continue;
            if (slot.state == SlotState::Empty)
                ++used_;
            slot = Slot{vpn, pte, SlotState::Occupied};
            ++occupied_;
            stats_.mappings.inc();
            return true;
        }
        // Chain exceeds the probe bound: rehash into a bigger table so
        // the mapped-implies-bounded invariant keeps holding.
        if (!grow())
            return false;
    }
}

void
HashedPageTable::unmap(std::uint64_t vpn)
{
    std::uint64_t s = find_slot(vpn);
    if (s == kNpos)
        return;
    // Tombstone, not Empty: later entries probe through this slot.
    slots_[s] = Slot{0, Pte{}, SlotState::Tombstone};
    --occupied_;
    stats_.unmappings.inc();
}

std::optional<Pte>
HashedPageTable::lookup(std::uint64_t vpn) const
{
    std::uint64_t s = find_slot(vpn);
    if (s == kNpos)
        return std::nullopt;
    return slots_[s].pte;
}

bool
HashedPageTable::update(std::uint64_t vpn, const PteFields &fields)
{
    std::uint64_t s = find_slot(vpn);
    if (s == kNpos)
        return false;
    PteFields with_present = fields;
    with_present.present = true;
    slots_[s].pte = Pte::encode(with_present);
    return true;
}

WalkResult
HashedPageTable::walk(std::uint64_t vpn, WalkSteps &steps) const
{
    std::uint64_t home = hash_vpn(vpn) & (slots_.size() - 1);
    unsigned n = 0;
    for (unsigned i = 0; i < kMaxWalkSteps; ++i) {
        std::uint64_t s = probe_slot(home, i);
        const Slot &slot = slots_[s];
        WalkStep &step = steps[n++];
        step.level = i;
        step.node_frame = frames_[s / kSlotsPerFrame];
        step.index = static_cast<unsigned>(s % kSlotsPerFrame);
        step.entry_paddr = slot_paddr(s);
        if (slot.state == SlotState::Occupied && slot.vpn == vpn) {
            step.pte = slot.pte;
            hashed_stats_.probes.inc(n);
            return WalkResult{.steps = n, .complete = true};
        }
        if (slot.state == SlotState::Empty) {
            step.pte = Pte{};
            hashed_stats_.probes.inc(n);
            return WalkResult{.steps = n, .complete = false};
        }
        // Non-matching entry or deletion marker: the walker reads a
        // foreign slot and keeps probing; report it as present so the
        // generic walk loop does not mistake it for a fault.
        step.pte = Pte::encode(
            {.present = true,
             .frame = slot.state == SlotState::Occupied ? slot.pte.frame()
                                                        : 0});
    }
    // Probe bound exhausted without a match. Mapped vpns never get here
    // (insertion enforces the bound), so signal a fault via a final
    // non-present entry.
    steps[kMaxWalkSteps - 1].pte = Pte{};
    hashed_stats_.probes.inc(kMaxWalkSteps);
    return WalkResult{.steps = kMaxWalkSteps, .complete = false};
}

void
HashedPageTable::walk_begin(std::uint64_t vpn, StepCursor &cur) const
{
    cur.vpn = vpn;
    cur.home = hash_vpn(vpn) & (slots_.size() - 1);
    cur.probe = 0;
    cur.complete = false;
    cur.done = false;
}

bool
HashedPageTable::walk_next(StepCursor &cur, WalkStep &step) const
{
    // One probe of walk()'s loop, produced incrementally. The probes
    // counter is charged once, when the terminal step is produced —
    // the same single inc-by-step-count walk() performs (the walker
    // always consumes a walk through its terminal step: every earlier
    // step reports a present entry).
    if (cur.done)
        return false;
    const unsigned i = cur.probe++;
    const std::uint64_t s = probe_slot(cur.home, i);
    const Slot &slot = slots_[s];
    step.level = i;
    step.node_frame = frames_[s / kSlotsPerFrame];
    step.index = static_cast<unsigned>(s % kSlotsPerFrame);
    step.entry_paddr = slot_paddr(s);
    if (slot.state == SlotState::Occupied && slot.vpn == cur.vpn) {
        step.pte = slot.pte;
        cur.complete = true;
        cur.done = true;
        hashed_stats_.probes.inc(i + 1);
        return true;
    }
    if (slot.state == SlotState::Empty) {
        step.pte = Pte{};
        cur.done = true;
        hashed_stats_.probes.inc(i + 1);
        return true;
    }
    if (i == kMaxWalkSteps - 1) {
        // Probe bound exhausted on a non-matching slot: walk() rewrites
        // this final step to a non-present entry retroactively; the
        // incremental walk knows it is terminal and emits it directly.
        step.pte = Pte{};
        cur.done = true;
        hashed_stats_.probes.inc(kMaxWalkSteps);
        return true;
    }
    // Foreign entry or tombstone mid-chain: present, keep probing.
    step.pte = Pte::encode(
        {.present = true,
         .frame = slot.state == SlotState::Occupied ? slot.pte.frame()
                                                    : 0});
    return true;
}

std::optional<Addr>
HashedPageTable::leaf_entry_paddr(std::uint64_t vpn) const
{
    std::uint64_t s = find_slot(vpn);
    if (s == kNpos)
        return std::nullopt;
    return slot_paddr(s);
}

}  // namespace ptm::pt
