/**
 * @file
 * 8-byte page-table-entry codec in the x86-64 layout.
 *
 * Only the bits the simulation consumes are modelled, but they sit at their
 * architectural positions so the per-line packing arithmetic (8 PTEs per
 * 64-byte cache line) is exact.
 */
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ptm::pt {

/// Software view of a decoded PTE.
struct PteFields {
    bool present = false;
    bool writable = true;
    bool user = true;
    bool accessed = false;
    bool dirty = false;
    bool cow = false;             ///< software bit: copy-on-write pending
    std::uint64_t frame = 0;      ///< physical frame number
};

/// Raw 64-bit PTE value.
class Pte {
  public:
    static constexpr std::uint64_t kPresentBit = 1ULL << 0;
    static constexpr std::uint64_t kWritableBit = 1ULL << 1;
    static constexpr std::uint64_t kUserBit = 1ULL << 2;
    static constexpr std::uint64_t kAccessedBit = 1ULL << 5;
    static constexpr std::uint64_t kDirtyBit = 1ULL << 6;
    /// AVL bit 9: used by the simulated kernels to mark COW mappings.
    static constexpr std::uint64_t kCowBit = 1ULL << 9;
    static constexpr std::uint64_t kFrameMask = 0x000ffffffffff000ULL;

    constexpr Pte() = default;
    constexpr explicit Pte(std::uint64_t raw) : raw_(raw) {}

    static Pte encode(const PteFields &fields);
    PteFields decode() const;

    constexpr std::uint64_t raw() const { return raw_; }
    constexpr bool present() const { return raw_ & kPresentBit; }
    constexpr bool writable() const { return raw_ & kWritableBit; }
    constexpr bool cow() const { return raw_ & kCowBit; }
    constexpr std::uint64_t frame() const
    {
        return (raw_ & kFrameMask) >> kPageShift;
    }

    constexpr bool operator==(const Pte &) const = default;

  private:
    std::uint64_t raw_ = 0;
};

}  // namespace ptm::pt
