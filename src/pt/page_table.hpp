/**
 * @file
 * Four-level radix page table with physically-addressed nodes.
 *
 * Each node is one 4 KiB frame of 512 eight-byte entries, obtained from a
 * caller-supplied frame source (the guest or host buddy allocator), so the
 * *physical placement* of every PTE — the thing the paper's cache-footprint
 * argument is about — is exact: the entry for virtual page v at the leaf
 * level lives at byte address node_frame*4096 + (v & 511)*8.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "pt/pte.hpp"
#include "pt/translation_table.hpp"

namespace ptm::pt {

/// Where page-table node frames come from / go back to.
struct FrameSource {
    /// Allocate one frame for a PT node; nullopt on OOM.
    std::function<std::optional<std::uint64_t>()> allocate;
    /// Return a node frame.
    std::function<void(std::uint64_t)> release;
};

/**
 * The radix tree. Not thread-safe; the owning kernel serializes updates
 * (walks from the simulated hardware walker are reads and happen between
 * kernel operations in the deterministic schedule).
 */
class PageTable final : public TranslationTable {
  public:
    /// Number of leaf-level entries covered by one table node.
    static constexpr unsigned kFanout = kPtesPerNode;

    /**
     * @param frames where node frames come from. The root node is
     *               allocated eagerly (as the kernel does for a new mm).
     */
    explicit PageTable(FrameSource frames);
    ~PageTable() override;

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a translation vpn -> fields. Intermediate nodes are created
     * on demand.
     * @return false if a node allocation failed (OOM).
     */
    bool map(std::uint64_t vpn, const PteFields &fields) override;

    /// Remove a translation; empty intermediate nodes are kept (as Linux
    /// does — PT pages are only freed at exit/unmap of whole regions).
    void unmap(std::uint64_t vpn) override;

    /// Current leaf entry for @p vpn, if the whole path exists.
    std::optional<Pte> lookup(std::uint64_t vpn) const override;

    /// Overwrite the leaf entry for an existing mapping (e.g. COW resolve).
    bool update(std::uint64_t vpn, const PteFields &fields) override;

    /// TranslationTable walk: root to leaf, stopping after a non-present
    /// entry; complete iff all four levels resolved.
    WalkResult walk(std::uint64_t vpn, WalkSteps &steps) const override;

    /**
     * Radix-native walk into a kPtLevels-sized buffer (the historical
     * signature; unit tests of the radix structure use it directly).
     * @return number of steps written to @p steps (1..4).
     */
    unsigned walk(std::uint64_t vpn,
                  std::array<WalkStep, kPtLevels> &steps) const;

    /**
     * Physical byte address of the leaf PTE slot for @p vpn, if the leaf
     * node exists (the entry itself may be non-present). Used by the
     * fragmentation metric, which is about PTE *placement*.
     */
    std::optional<Addr> leaf_entry_paddr(std::uint64_t vpn) const override;

    /// Frame of the root node (CR3 equivalent).
    std::uint64_t root_frame() const override { return root_->frame; }

    /// Total nodes currently allocated, all levels.
    std::uint64_t node_count() const override { return node_count_; }

    const PageTableStats &stats() const override { return stats_; }

    std::string name() const override { return "radix"; }

    /// The PWC contract holds by construction.
    bool radix_levels() const override { return true; }

    /// Radix index of @p vpn at @p level (0 = root).
    static unsigned
    index_at(std::uint64_t vpn, unsigned level)
    {
        unsigned shift = 9 * (kPtLevels - 1 - level);
        return static_cast<unsigned>((vpn >> shift) & (kFanout - 1));
    }

  private:
    struct Node;

    /// One radix entry: the PTE together with (for non-leaf nodes) the
    /// owning pointer to the child node. Keeping them adjacent means a
    /// walk step reads the entry and follows the child from the same
    /// host cache line, instead of hopping between two arrays 4 KiB
    /// apart.
    struct Slot {
        Pte pte;
        std::unique_ptr<Node> child;
    };

    struct Node {
        std::uint64_t frame = 0;
        std::array<Slot, kFanout> slots{};
    };

    std::unique_ptr<Node> make_node();
    void release_node(Node *node, unsigned level);
    const Node *descend(std::uint64_t vpn, unsigned to_level) const;
    unsigned walk_into(std::uint64_t vpn, WalkStep *steps) const;

    FrameSource frames_;
    std::unique_ptr<Node> root_;
    std::uint64_t node_count_ = 0;
    PageTableStats stats_;

  public:
    /**
     * Inline descent cursor: the exact touch sequence of walk(), one
     * level at a time, without materializing a step buffer. The nested
     * walker uses it to fuse the radix descent with its per-node cache
     * accounting — one pass, no virtual dispatch. Read-only; the cursor
     * must not outlive kernel updates to the table.
     */
    class Cursor {
      public:
        Cursor(const PageTable &table, std::uint64_t vpn)
            : node_(table.root_.get()), vpn_(vpn)
        {
        }

        unsigned level() const { return level_; }
        std::uint64_t node_frame() const { return node_->frame; }
        unsigned index() const { return index_at(vpn_, level_); }
        Addr
        entry_paddr() const
        {
            return node_->frame * kPageSize + index() * kPteSize;
        }
        Pte pte() const { return node_->slots[index()].pte; }
        bool at_leaf() const { return level_ + 1 >= kPtLevels; }

        /**
         * Move to the current entry's child node. Only meaningful below
         * the leaf level with a present entry; panics on structural
         * corruption (present non-leaf entry without a child), exactly
         * like walk().
         */
        void
        descend()
        {
            const Node *child = node_->slots[index()].child.get();
            if (child == nullptr)
                ptm_panic("present non-leaf entry without child node");
            node_ = child;
            ++level_;
        }

      private:
        const Node *node_;
        std::uint64_t vpn_;
        unsigned level_ = 0;
    };
};

}  // namespace ptm::pt
