#include "pt/page_table.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace ptm::pt {

PageTable::PageTable(FrameSource frames) : frames_(std::move(frames))
{
    if (!frames_.allocate || !frames_.release)
        ptm_fatal("page table requires a complete frame source");
    root_ = make_node();
    if (!root_) {
        // Recoverable: booting a table into an exhausted frame pool is an
        // admission failure (caller's host may be overcommitted), not a
        // programming error.
        ptm_throw("cannot allocate page-table root node: frame source "
                  "exhausted");
    }
}

PageTable::~PageTable()
{
    release_node(root_.get(), 0);
    root_.reset();
}

std::unique_ptr<PageTable::Node>
PageTable::make_node()
{
    std::optional<std::uint64_t> frame = frames_.allocate();
    if (!frame)
        return nullptr;
    auto node = std::make_unique<Node>();
    node->frame = *frame;
    ++node_count_;
    stats_.nodes_allocated.inc();
    return node;
}

void
PageTable::release_node(Node *node, unsigned level)
{
    if (node == nullptr)
        return;
    if (level + 1 < kPtLevels) {
        for (auto &slot : node->slots)
            release_node(slot.child.get(), level + 1);
    }
    frames_.release(node->frame);
    --node_count_;
    stats_.nodes_released.inc();
}

const PageTable::Node *
PageTable::descend(std::uint64_t vpn, unsigned to_level) const
{
    const Node *node = root_.get();
    for (unsigned level = 0; level < to_level; ++level) {
        unsigned index = index_at(vpn, level);
        node = node->slots[index].child.get();
        if (node == nullptr)
            return nullptr;
    }
    return node;
}

bool
PageTable::map(std::uint64_t vpn, const PteFields &fields)
{
    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kPtLevels; ++level) {
        unsigned index = index_at(vpn, level);
        if (!node->slots[index].child) {
            std::unique_ptr<Node> child = make_node();
            if (!child)
                return false;
            // Non-leaf entries point at the child node's frame.
            node->slots[index].pte =
                Pte::encode({.present = true, .frame = child->frame});
            node->slots[index].child = std::move(child);
        }
        node = node->slots[index].child.get();
    }
    unsigned leaf_index = index_at(vpn, kPtLevels - 1);
    PteFields with_present = fields;
    with_present.present = true;
    node->slots[leaf_index].pte = Pte::encode(with_present);
    stats_.mappings.inc();
    return true;
}

void
PageTable::unmap(std::uint64_t vpn)
{
    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kPtLevels; ++level) {
        node = node->slots[index_at(vpn, level)].child.get();
        if (node == nullptr)
            return;
    }
    Slot &leaf = node->slots[index_at(vpn, kPtLevels - 1)];
    if (leaf.pte.present()) {
        leaf.pte = Pte{};
        stats_.unmappings.inc();
    }
}

std::optional<Pte>
PageTable::lookup(std::uint64_t vpn) const
{
    const Node *node = descend(vpn, kPtLevels - 1);
    if (node == nullptr)
        return std::nullopt;
    Pte pte = node->slots[index_at(vpn, kPtLevels - 1)].pte;
    if (!pte.present())
        return std::nullopt;
    return pte;
}

bool
PageTable::update(std::uint64_t vpn, const PteFields &fields)
{
    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kPtLevels; ++level) {
        node = node->slots[index_at(vpn, level)].child.get();
        if (node == nullptr)
            return false;
    }
    PteFields with_present = fields;
    with_present.present = true;
    node->slots[index_at(vpn, kPtLevels - 1)].pte =
        Pte::encode(with_present);
    return true;
}

unsigned
PageTable::walk_into(std::uint64_t vpn, WalkStep *steps) const
{
    const Node *node = root_.get();
    unsigned count = 0;
    for (unsigned level = 0; level < kPtLevels; ++level) {
        unsigned index = index_at(vpn, level);
        const Slot &slot = node->slots[index];
        WalkStep &step = steps[count++];
        step.level = level;
        step.node_frame = node->frame;
        step.index = index;
        step.entry_paddr = node->frame * kPageSize + index * kPteSize;
        step.pte = slot.pte;
        if (!step.pte.present())
            break;
        if (level + 1 < kPtLevels) {
            node = slot.child.get();
            if (node == nullptr) {
                // Present intermediate entry must have a child node.
                ptm_panic("present non-leaf entry without child node");
            }
        }
    }
    return count;
}

unsigned
PageTable::walk(std::uint64_t vpn,
                std::array<WalkStep, kPtLevels> &steps) const
{
    return walk_into(vpn, steps.data());
}

WalkResult
PageTable::walk(std::uint64_t vpn, WalkSteps &steps) const
{
    unsigned n = walk_into(vpn, steps.data());
    return WalkResult{
        .steps = n,
        .complete = n == kPtLevels && steps[n - 1].pte.present(),
    };
}

std::optional<Addr>
PageTable::leaf_entry_paddr(std::uint64_t vpn) const
{
    const Node *node = descend(vpn, kPtLevels - 1);
    if (node == nullptr)
        return std::nullopt;
    unsigned index = index_at(vpn, kPtLevels - 1);
    return node->frame * kPageSize + index * kPteSize;
}

}  // namespace ptm::pt
