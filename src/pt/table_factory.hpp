/**
 * @file
 * String-keyed registry of TranslationTable implementations.
 *
 * Mirrors vm::ProviderFactory on the translation side: a table is chosen
 * by name ("radix", "hashed", ...) in PlatformConfig / ScenarioConfig, so
 * the ablation suite can sweep table structures the same way it sweeps
 * allocation policies. Adding a table is one file: implement
 * TranslationTable, then register a constructor under a name (see the
 * registrations in table_factory.cpp, and DESIGN.md "Factories &
 * registries").
 *
 * Unknown names fail fast with a SimError that lists every registered
 * name, so a typo in a config or sweep axis dies before any simulation
 * work happens.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "pt/page_table.hpp"
#include "pt/translation_table.hpp"

namespace ptm::pt {

/// Constructor signature for registered tables. @p params carries
/// table-specific knobs (e.g. "initial_frames" for the hashed table);
/// unknown keys are ignored so policy and table params can share one bag.
using TableCtor = std::function<std::unique_ptr<TranslationTable>(
    FrameSource, const PolicyParams &)>;

/// Register @p ctor under @p name; replaces an existing registration of
/// the same name (ptm_fatal would be hostile to tests re-registering).
void register_table(const std::string &name, TableCtor ctor);

/// True iff @p name has a registered constructor.
bool table_registered(const std::string &name);

/// Registered names, sorted (for error messages and sweep enumeration).
std::vector<std::string> registered_tables();

/**
 * Construct the table registered under @p name.
 * @throws SimError listing registered names if @p name is unknown.
 */
std::unique_ptr<TranslationTable> make_table(const std::string &name,
                                             FrameSource frames,
                                             const PolicyParams &params);

}  // namespace ptm::pt
