/**
 * @file
 * The guest operating-system model: processes, page-fault handling, frame
 * accounting, fork/COW, and memory-pressure reclamation.
 *
 * This is "Linux inside the VM" for the purposes of the paper: its
 * physical allocator (the provider) decides which guest frame backs each
 * faulting virtual page, and that decision — made under interleaved
 * faults from colocated processes — is what creates or prevents host-PT
 * fragmentation.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/buddy_allocator.hpp"
#include "mem/physical_memory.hpp"
#include "mmu/nested_walker.hpp"
#include "obs/stat_registry.hpp"
#include "vm/page_provider.hpp"
#include "vm/process.hpp"

namespace ptm::obs {
class TraceSink;
}  // namespace ptm::obs

namespace ptm::vm {

/// Cycle costs of guest kernel paths (tuned, not measured; only relative
/// differences between the baseline and PTEMagnet paths matter).
struct GuestCostModel {
    Cycles fault_base = 1100;        ///< trap, VMA lookup, PTE install
    Cycles buddy_call = 320;         ///< one buddy-allocator invocation
    Cycles reservation_hit = 290;    ///< PaRT hit fast path (§6.4)
    Cycles reservation_insert = 150; ///< PaRT miss: new reservation entry
    Cycles zero_page = 350;          ///< clearing the newly mapped page
    Cycles cow_copy = 900;           ///< copying a page on COW break
};

/// Guest kernel activity counters.
struct GuestKernelStats {
    Counter faults_handled;
    Counter write_faults;
    Counter pages_mapped;
    Counter pages_freed;
    Counter reclaim_runs;
    Counter frames_reclaimed;
    Counter oom_events;
    Counter balloon_inflations;      ///< host-driven inflate requests
    Counter balloon_pages_taken;     ///< guest frames handed to the host
    Counter balloon_pages_returned;  ///< frames deflated back to the guest
    /// Fault-to-mapped latency of each demand fault, in cycles.
    Histogram fault_latency;
};

/// Watermarks controlling the reclamation daemon (§4.3). Zero disables.
struct ReclaimPolicy {
    std::uint64_t low_watermark_frames = 0;   ///< trigger below this
    std::uint64_t high_watermark_frames = 0;  ///< reclaim up to this
};

/**
 * External memory-pressure source (sim::FaultInjector implements this).
 * The kernel polls it once per pressure check — i.e. per handled fault —
 * and runs a provider reclaim sweep whenever it returns a nonzero frame
 * target, independent of the watermark policy. This is how a deterministic
 * FaultPlan opens the paper's §4.3 pressure episodes inside a run.
 */
class PressureAgent {
  public:
    virtual ~PressureAgent() = default;
    /// Frames the kernel should try to reclaim right now (0 = no
    /// pressure at this tick).
    virtual std::uint64_t pressure_tick() = 0;
};

class GuestKernel {
  public:
    /**
     * @param guest_frames size of guest-physical memory, in 4 KiB frames.
     */
    explicit GuestKernel(std::uint64_t guest_frames,
                         GuestCostModel costs = {});

    ~GuestKernel();

    GuestKernel(const GuestKernel &) = delete;
    GuestKernel &operator=(const GuestKernel &) = delete;

    /// Install the physical allocation policy. Must be called before any
    /// fault is handled; defaults to the plain buddy provider.
    void set_provider(std::unique_ptr<PhysicalPageProvider> provider);
    PhysicalPageProvider &provider() { return *provider_; }

    /**
     * Select the translation-table structure (pt::make_table name) used
     * by processes created from now on. Must be called before any process
     * exists; defaults to "radix".
     * @throws SimError if @p name is not registered.
     */
    void set_translation_table(const std::string &name,
                               PolicyParams params = {});
    const std::string &translation_table() const { return table_name_; }

    /// Spawn a new process.
    Process &create_process(const std::string &name);

    /// Fork @p parent: clone the address space, share all mapped pages
    /// copy-on-write. Returns the child.
    Process &fork(Process &parent);

    /// Terminate @p proc, releasing all its memory.
    void exit_process(Process &proc);

    Process &process(std::int32_t pid);
    bool has_process(std::int32_t pid) const
    {
        return processes_.count(pid) != 0;
    }

    /**
     * Guest page-fault path: legitimacy check, provider allocation,
     * PTE installation. Matches the mmu::GuestContext callback shape.
     */
    mmu::FaultOutcome handle_fault(Process &proc, std::uint64_t gvpn);

    /**
     * Write access to a COW-mapped page: break the sharing.
     * @return cycle cost of the break (0 if the page was not COW).
     */
    Cycles handle_write(Process &proc, std::uint64_t gvpn);

    /// True if @p gvpn is currently mapped read-only pending COW.
    bool is_cow(const Process &proc, std::uint64_t gvpn) const;

    /// munmap a region previously returned by proc.vas().mmap(): unmap
    /// and free every backed page.
    void free_region(Process &proc, Addr base);

    /// Free a single page if mapped (workload-level free granularity).
    void free_page(Process &proc, std::uint64_t gvpn);

    mem::BuddyAllocator &buddy() { return buddy_; }
    mem::PhysicalMemory &memory() { return memory_; }
    const GuestCostModel &costs() const { return costs_; }

    void set_reclaim_policy(const ReclaimPolicy &policy)
    {
        reclaim_policy_ = policy;
    }

    /**
     * Arm (or with nullptr disarm) an injected memory-pressure source.
     * The agent must outlive the kernel or be disarmed first; the kernel
     * does not own it. Unarmed cost: one null check per pressure check.
     */
    void set_pressure_agent(PressureAgent *agent)
    {
        pressure_agent_ = agent;
    }

    /// Run the reclamation check immediately (tests / daemon tick).
    void check_memory_pressure();

    /**
     * Balloon driver, guest side (host overcommit): take up to @p target
     * free guest frames out of the buddy allocator and park them in the
     * balloon (FrameUse::Kernel). When the buddy runs dry the provider is
     * asked to reclaim held frames first. The taken guest frame numbers
     * are appended to @p out_gfns so the host can drop their backings.
     * @return frames actually taken (<= target).
     */
    std::uint64_t balloon_inflate(std::uint64_t target,
                                  std::vector<std::uint64_t> &out_gfns);

    /**
     * Return up to @p max_frames ballooned frames to the guest buddy
     * (guest-OOM last resort; touching them will re-fault host backing).
     * @return frames returned; 0 when the balloon is empty.
     */
    std::uint64_t balloon_deflate(std::uint64_t max_frames);

    /// Frames currently held by the balloon.
    std::uint64_t balloon_pages() const { return balloon_.size(); }

    const GuestKernelStats &stats() const { return stats_; }

    /// Register kernel counters + fault-latency histogram under
    /// "<prefix>.kernel.*" and the buddy allocator under
    /// "<prefix>.buddy.*".
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);

    /**
     * Arm (or with nullptr disarm) trace-event emission for faults and
     * reclaim sweeps. The sink must outlive the kernel or be disarmed
     * first; the kernel does not own it. Unarmed cost: one null check
     * per fault.
     */
    void set_trace_sink(obs::TraceSink *sink) { trace_ = sink; }

    /// Sim-layer hook: invoked whenever a translation for (pid, gvpn)
    /// becomes stale and per-core TLBs must drop it.
    std::function<void(std::int32_t pid, std::uint64_t gvpn)>
        on_translation_invalidated;

    /// Iterate over all live processes (metric collection).
    template <typename Fn>
    void
    for_each_process(Fn &&fn)
    {
        for (auto &[pid, proc] : processes_)
            fn(*proc);
    }

  private:
    pt::FrameSource pt_frame_source(std::int32_t pid);
    void unmap_one(Process &proc, std::uint64_t gvpn, pt::Pte pte);
    void invalidate_translation(Process &proc, std::uint64_t gvpn);

    GuestCostModel costs_;
    mem::BuddyAllocator buddy_;
    mem::PhysicalMemory memory_;
    std::unique_ptr<PhysicalPageProvider> provider_;
    std::string table_name_ = "radix";
    PolicyParams table_params_;
    std::map<std::int32_t, std::unique_ptr<Process>> processes_;
    /// COW frame reference counts (only frames shared by >= 2 mappings).
    std::unordered_map<std::uint64_t, std::uint32_t> shared_frames_;
    /// Guest frames surrendered to the host balloon (LIFO).
    std::vector<std::uint64_t> balloon_;
    ReclaimPolicy reclaim_policy_;
    PressureAgent *pressure_agent_ = nullptr;  ///< normally unarmed
    obs::TraceSink *trace_ = nullptr;          ///< normally unarmed
    GuestKernelStats stats_;
    std::int32_t next_pid_ = 1;
};

}  // namespace ptm::vm
