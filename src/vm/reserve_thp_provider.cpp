#include "vm/reserve_thp_provider.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/stat_registry.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::vm {

namespace {

std::uint64_t
region_key(std::int32_t pid, std::uint64_t region)
{
    // pid in the top bits, region (< 2^40 for 48-bit VAs) below.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid))
            << 40) |
           region;
}

bool
key_belongs_to(std::uint64_t key, std::int32_t pid)
{
    return (key >> 40) ==
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid));
}

}  // namespace

ReserveThpProvider::ReserveThpProvider(GuestKernel *kernel,
                                       std::uint64_t promotion_threshold)
    : kernel_(kernel), promotion_threshold_(promotion_threshold)
{
    if (kernel == nullptr)
        ptm_fatal("reserve-thp provider needs a kernel");
    if (promotion_threshold_ > kRegionPages)
        ptm_fatal("promotion threshold %llu exceeds region size %u",
                  static_cast<unsigned long long>(promotion_threshold_),
                  kRegionPages);
}

AllocOutcome
ReserveThpProvider::plain_single()
{
    std::optional<std::uint64_t> gfn = kernel_->buddy().allocate_frame();
    if (!gfn)
        return {.ok = false};
    return {.ok = true,
            .gfn = *gfn,
            .cycles = kernel_->costs().buddy_call};
}

AllocOutcome
ReserveThpProvider::allocate_page(Process &proc, std::uint64_t gvpn)
{
    const std::uint64_t region_index = gvpn / kRegionPages;
    const unsigned offset = static_cast<unsigned>(gvpn % kRegionPages);
    const std::uint64_t key = region_key(proc.pid(), region_index);

    auto it = regions_.find(key);
    if (it != regions_.end()) {
        Region &region = it->second;
        auto frame_it = region.held.find(offset);
        if (frame_it != region.held.end()) {
            std::uint64_t gfn = frame_it->second;
            region.held.erase(frame_it);
            ++region.demand_faults;
            stats_.reservation_hits.inc();
            maybe_promote(proc, region_index, region);
            return {.ok = true,
                    .gfn = gfn,
                    .cycles = kernel_->costs().reservation_hit};
        }
        // Offset was handed out before (and possibly freed to the buddy
        // since), or the region was reclaimed: plain 4 KiB path.
        return plain_single();
    }

    // First touch of the region: reserve an aligned order-9 block, map
    // only the faulting page, park the rest.
    std::optional<std::uint64_t> base =
        kernel_->buddy().allocate_split(kRegionOrder);
    if (!base) {
        stats_.fallback_singles.inc();
        return plain_single();
    }

    stats_.reservations_created.inc();
    Region region;
    region.base = *base;
    region.demand_faults = 1;
    for (unsigned i = 0; i < kRegionPages; ++i) {
        if (i == offset)
            continue;  // the kernel maps the faulting page itself
        kernel_->memory().set_use(*base + i, 1, mem::FrameUse::Kernel,
                                  proc.pid());
        region.held.emplace(i, *base + i);
    }
    regions_.emplace(key, std::move(region));

    return {.ok = true,
            .gfn = *base + offset,
            .cycles = kernel_->costs().buddy_call +
                      kernel_->costs().reservation_insert};
}

void
ReserveThpProvider::maybe_promote(Process &proc, std::uint64_t region_index,
                                  Region &region)
{
    if (region.promoted || promotion_threshold_ == 0 ||
        region.demand_faults < promotion_threshold_)
        return;
    region.promoted = true;
    stats_.promotions.inc();

    std::vector<unsigned> mapped_offsets;
    for (const auto &[offset, frame] : region.held) {
        std::uint64_t page = region_index * kRegionPages + offset;
        if (!proc.vas().is_mapped(page) || proc.page_table().lookup(page))
            continue;  // outside any VMA, or raced with a remap
        if (!proc.page_table().map(page,
                                   {.writable = true, .frame = frame}))
            ptm_throw("guest OOM while promoting region %llu for pid %d",
                      static_cast<unsigned long long>(region_index),
                      proc.pid());
        kernel_->memory().set_use(frame, 1, mem::FrameUse::Data,
                                  proc.pid());
        proc.add_rss(1);
        stats_.pages_eager_mapped.inc();
        mapped_offsets.push_back(offset);
    }
    for (unsigned offset : mapped_offsets)
        region.held.erase(offset);
}

FreeDisposition
ReserveThpProvider::on_page_freed(Process &proc, std::uint64_t gvpn,
                                  std::uint64_t gfn)
{
    const std::uint64_t region_index = gvpn / kRegionPages;
    const unsigned offset = static_cast<unsigned>(gvpn % kRegionPages);
    auto it = regions_.find(region_key(proc.pid(), region_index));
    if (it == regions_.end())
        return FreeDisposition::ReturnToBuddy;
    Region &region = it->second;
    if (gfn != region.base + offset)
        return FreeDisposition::ReturnToBuddy;  // COW copy or fallback page
    // The page still sits in its reserved slot: park it again so a later
    // fault (or promotion) reuses it contiguously.
    kernel_->memory().set_use(gfn, 1, mem::FrameUse::Kernel, proc.pid());
    region.held.emplace(offset, gfn);
    return FreeDisposition::KeptByProvider;
}

void
ReserveThpProvider::release_held(Region &region)
{
    for (const auto &[offset, frame] : region.held) {
        kernel_->memory().set_use(frame, 1, mem::FrameUse::Free);
        kernel_->buddy().free(frame);
    }
    region.held.clear();
}

std::uint64_t
ReserveThpProvider::reclaim(std::uint64_t target_frames)
{
    std::uint64_t released = 0;
    for (auto &[key, region] : regions_) {
        if (released >= target_frames)
            break;
        std::uint64_t give = region.held.size();
        if (give == 0)
            continue;
        release_held(region);
        released += give;
    }
    stats_.frames_reclaimed.inc(released);
    return released;
}

void
ReserveThpProvider::on_process_exit(Process &proc)
{
    for (auto it = regions_.begin(); it != regions_.end();) {
        if (key_belongs_to(it->first, proc.pid())) {
            release_held(it->second);
            it = regions_.erase(it);
        } else {
            ++it;
        }
    }
}

std::uint64_t
ReserveThpProvider::held_frames() const
{
    std::uint64_t total = 0;
    for (const auto &[key, region] : regions_)
        total += region.held.size();
    return total;
}

void
ReserveThpProvider::register_stats(obs::StatRegistry &registry,
                                   const std::string &prefix)
{
    registry.counter(prefix + ".reservations_created",
                     &stats_.reservations_created);
    registry.counter(prefix + ".reservation_hits",
                     &stats_.reservation_hits);
    registry.counter(prefix + ".promotions", &stats_.promotions);
    registry.counter(prefix + ".pages_eager_mapped",
                     &stats_.pages_eager_mapped);
    registry.counter(prefix + ".fallback_singles",
                     &stats_.fallback_singles);
    registry.counter(prefix + ".frames_reclaimed",
                     &stats_.frames_reclaimed);
}

}  // namespace ptm::vm
