#include "vm/buddy_provider.hpp"

#include "common/log.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::vm {

BuddyPageProvider::BuddyPageProvider(GuestKernel *kernel) : kernel_(kernel)
{
    if (kernel == nullptr)
        ptm_fatal("provider needs a kernel");
}

AllocOutcome
BuddyPageProvider::allocate_page(Process &, std::uint64_t)
{
    std::optional<std::uint64_t> gfn = kernel_->buddy().allocate_frame();
    if (!gfn)
        return {.ok = false};
    return {.ok = true,
            .gfn = *gfn,
            .cycles = kernel_->costs().buddy_call};
}

FreeDisposition
BuddyPageProvider::on_page_freed(Process &, std::uint64_t, std::uint64_t)
{
    return FreeDisposition::ReturnToBuddy;
}

void
BuddyPageProvider::on_process_exit(Process &)
{
}

}  // namespace ptm::vm
