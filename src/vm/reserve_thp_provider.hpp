/**
 * @file
 * Reservation-based THP: reserve a 2 MiB block on first touch, map pages
 * lazily, promote (eagerly map the remainder) once the region proves hot.
 *
 * The middle ground between PTEMagnet's small reservations and the
 * eager-everything THP model (§2.3): first touch of a 2 MiB virtual
 * region reserves an aligned 512-frame block but maps only the faulting
 * page; later faults in the region are served from the reservation
 * (keeping the region physically contiguous, like a FreeBSD-style
 * reservation system). When promotion_threshold pages of a region have
 * been demand-faulted, the region is promoted: every remaining page
 * inside a VMA is eagerly mapped, THP-style. If no aligned block is
 * available (fragmentation), the fault falls back to a plain 4 KiB buddy
 * allocation.
 *
 * Parameters (PolicyParams): "promotion_threshold" — demand faults per
 * region before promotion (default 64; 0 disables promotion, leaving a
 * purely lazy reservation policy).
 */
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/stats.hpp"
#include "vm/page_provider.hpp"

namespace ptm::vm {

class GuestKernel;

/// Reserve-THP activity counters.
struct ReserveThpStats {
    Counter reservations_created;  ///< order-9 blocks reserved
    Counter reservation_hits;      ///< faults served from a reservation
    Counter promotions;            ///< regions promoted to eager mapping
    Counter pages_eager_mapped;    ///< pages mapped by promotion
    Counter fallback_singles;      ///< no order-9 block: plain 4 KiB path
    Counter frames_reclaimed;      ///< held frames released under pressure
};

class ReserveThpProvider final : public PhysicalPageProvider {
  public:
    /// Pages per reserved region: 2 MiB / 4 KiB.
    static constexpr unsigned kRegionPages = 512;
    /// Buddy order of one region.
    static constexpr unsigned kRegionOrder = 9;

    explicit ReserveThpProvider(GuestKernel *kernel,
                                std::uint64_t promotion_threshold = 64);

    AllocOutcome allocate_page(Process &proc, std::uint64_t gvpn) override;
    FreeDisposition on_page_freed(Process &proc, std::uint64_t gvpn,
                                  std::uint64_t gfn) override;
    void on_process_exit(Process &proc) override;
    std::uint64_t reclaim(std::uint64_t target_frames) override;
    std::string name() const override { return "reserve-thp"; }

    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix) override;
    std::uint64_t held_frames() const override;

    const ReserveThpStats &stats() const { return stats_; }
    std::uint64_t promotion_threshold() const
    {
        return promotion_threshold_;
    }

  private:
    /// One reserved 2 MiB region of one process.
    struct Region {
        std::uint64_t base = 0;  ///< first frame of the reserved block
        /// Parked frames by page offset (reserved, not yet mapped).
        std::unordered_map<unsigned, std::uint64_t> held;
        std::uint64_t demand_faults = 0;
        bool promoted = false;
    };

    AllocOutcome plain_single();
    void maybe_promote(Process &proc, std::uint64_t region_index,
                       Region &region);
    void release_held(Region &region);

    GuestKernel *kernel_;
    std::uint64_t promotion_threshold_;
    /// (pid << 40 | region) -> reservation state. Ordered so reclaim and
    /// exit sweep deterministically.
    std::map<std::uint64_t, Region> regions_;
    ReserveThpStats stats_;
};

}  // namespace ptm::vm
