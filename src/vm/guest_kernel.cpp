#include "vm/guest_kernel.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace_sink.hpp"
#include "pt/table_factory.hpp"
#include "vm/buddy_provider.hpp"

namespace ptm::vm {

GuestKernel::GuestKernel(std::uint64_t guest_frames, GuestCostModel costs)
    : costs_(costs), buddy_(0, guest_frames), memory_(0, guest_frames),
      provider_(std::make_unique<BuddyPageProvider>(this))
{
}

GuestKernel::~GuestKernel()
{
    // Destroy processes (and their page tables, which release node frames
    // through the frame source) before the allocator they point into.
    processes_.clear();
}

void
GuestKernel::set_provider(std::unique_ptr<PhysicalPageProvider> provider)
{
    if (!provider)
        ptm_fatal("null page provider");
    provider_ = std::move(provider);
}

void
GuestKernel::set_translation_table(const std::string &name,
                                   PolicyParams params)
{
    if (!processes_.empty())
        ptm_fatal("cannot change the translation table with live "
                  "processes");
    if (!pt::table_registered(name)) {
        // Fail the same way make_table would, before a process exists.
        pt::make_table(name, pt_frame_source(0), params);
    }
    table_name_ = name;
    table_params_ = std::move(params);
}

pt::FrameSource
GuestKernel::pt_frame_source(std::int32_t pid)
{
    return pt::FrameSource{
        .allocate =
            [this, pid]() -> std::optional<std::uint64_t> {
                std::optional<std::uint64_t> frame = buddy_.allocate_frame();
                if (frame) {
                    memory_.set_use(*frame, 1, mem::FrameUse::PageTable,
                                    pid);
                }
                return frame;
            },
        .release =
            [this](std::uint64_t frame) {
                memory_.set_use(frame, 1, mem::FrameUse::Free);
                buddy_.free(frame);
            },
    };
}

Process &
GuestKernel::create_process(const std::string &name)
{
    std::int32_t pid = next_pid_++;
    auto proc = std::make_unique<Process>(
        pid, name,
        pt::make_table(table_name_, pt_frame_source(pid), table_params_));
    Process &ref = *proc;
    processes_.emplace(pid, std::move(proc));
    return ref;
}

Process &
GuestKernel::process(std::int32_t pid)
{
    auto it = processes_.find(pid);
    if (it == processes_.end())
        ptm_panic("no process with pid %d", pid);
    return *it->second;
}

void
GuestKernel::invalidate_translation(Process &proc, std::uint64_t gvpn)
{
    if (on_translation_invalidated)
        on_translation_invalidated(proc.pid(), gvpn);
}

mmu::FaultOutcome
GuestKernel::handle_fault(Process &proc, std::uint64_t gvpn)
{
    if (!proc.vas().is_mapped(gvpn)) {
        ptm_panic("pid %d faulted on unmapped page 0x%llx (segfault)",
                  proc.pid(), static_cast<unsigned long long>(gvpn));
    }

    // Spurious fault: another thread (or an earlier retry) already
    // installed the mapping — return it, as the real fault path does.
    if (std::optional<pt::Pte> existing = proc.page_table().lookup(gvpn)) {
        return {.ok = true,
                .frame = existing->frame(),
                .cycles = costs_.fault_base};
    }

    stats_.faults_handled.inc();
    proc.stats().page_faults.inc();

    AllocOutcome alloc = provider_->allocate_page(proc, gvpn);
    if (!alloc.ok) {
        // Last resort: reclaim provider-held memory, then retry once.
        check_memory_pressure();
        alloc = provider_->allocate_page(proc, gvpn);
        if (!alloc.ok) {
            // Dead last resort: pop ballooned frames back into the buddy
            // (a no-op — and bit-identical to the historic path — when
            // the host never inflated the balloon).
            if (balloon_deflate(64) > 0)
                alloc = provider_->allocate_page(proc, gvpn);
            if (!alloc.ok) {
                stats_.oom_events.inc();
                return {.ok = false};
            }
        }
    }

    if (!proc.page_table().map(gvpn, {.writable = true, .frame = alloc.gfn}))
        ptm_throw("guest OOM while allocating page-table nodes for pid %d",
                  proc.pid());

    memory_.set_use(alloc.gfn, 1, mem::FrameUse::Data, proc.pid());
    proc.add_rss(1);
    stats_.pages_mapped.inc();

    check_memory_pressure();

    Cycles total = costs_.fault_base + costs_.zero_page + alloc.cycles;
    stats_.fault_latency.record(total);
    if (trace_ != nullptr)
        trace_->event_now("guest_fault", "kernel", total,
                          {{"pid", static_cast<std::uint64_t>(proc.pid())},
                           {"gvpn", gvpn},
                           {"gfn", alloc.gfn}});

    return {.ok = true, .frame = alloc.gfn, .cycles = total};
}

bool
GuestKernel::is_cow(const Process &proc, std::uint64_t gvpn) const
{
    std::optional<pt::Pte> pte = proc.page_table().lookup(gvpn);
    return pte && pte->cow();
}

Cycles
GuestKernel::handle_write(Process &proc, std::uint64_t gvpn)
{
    std::optional<pt::Pte> pte = proc.page_table().lookup(gvpn);
    if (!pte || !pte->cow())
        return 0;

    stats_.write_faults.inc();
    proc.stats().cow_breaks.inc();
    std::uint64_t gfn = pte->frame();

    auto shared = shared_frames_.find(gfn);
    if (shared == shared_frames_.end() || shared->second <= 1) {
        // Sole remaining owner: take the frame private again in place.
        if (shared != shared_frames_.end())
            shared_frames_.erase(shared);
        proc.page_table().update(gvpn, {.writable = true, .frame = gfn});
        memory_.set_use(gfn, 1, mem::FrameUse::Data, proc.pid());
        invalidate_translation(proc, gvpn);
        return costs_.fault_base;
    }

    // Copy: COW pages bypass the provider (PTEMagnet cannot enhance
    // contiguity among COWs, §4.4) and go straight to the buddy.
    --shared->second;
    if (shared->second == 1)
        shared_frames_.erase(shared);
    std::optional<std::uint64_t> copy = buddy_.allocate_frame();
    if (!copy) {
        // COW pages bypass the provider, but reclaim can still free
        // parked reservation frames; try once before giving up.
        check_memory_pressure();
        copy = buddy_.allocate_frame();
        if (!copy)
            ptm_throw("guest OOM on COW break for pid %d", proc.pid());
    }
    memory_.set_use(*copy, 1, mem::FrameUse::Data, proc.pid());
    proc.page_table().update(gvpn, {.writable = true, .frame = *copy});
    proc.add_rss(1);
    invalidate_translation(proc, gvpn);
    return costs_.fault_base + costs_.buddy_call + costs_.cow_copy;
}

Process &
GuestKernel::fork(Process &parent)
{
    Process &child = create_process(parent.name() + "-child");
    child.set_parent_pid(parent.pid());
    child.vas() = parent.vas();

    for (const Vma &vma : parent.vas().vmas()) {
        for (std::uint64_t vpn = vma.begin_page; vpn < vma.end_page; ++vpn) {
            std::optional<pt::Pte> pte = parent.page_table().lookup(vpn);
            if (!pte)
                continue;
            std::uint64_t gfn = pte->frame();
            pt::PteFields shared_fields{
                .writable = false, .cow = true, .frame = gfn};
            parent.page_table().update(vpn, shared_fields);
            if (!child.page_table().map(vpn, shared_fields))
                ptm_throw("guest OOM while forking page tables "
                          "(pid %d -> %d)", parent.pid(), child.pid());
            child.add_rss(1);
            auto [it, inserted] = shared_frames_.emplace(gfn, 2);
            if (!inserted)
                ++it->second;
            invalidate_translation(parent, vpn);
        }
    }

    provider_->on_fork(parent, child);
    return child;
}

void
GuestKernel::unmap_one(Process &proc, std::uint64_t gvpn, pt::Pte pte)
{
    std::uint64_t gfn = pte.frame();
    proc.page_table().unmap(gvpn);
    proc.add_rss(-1);
    proc.stats().pages_freed.inc();
    stats_.pages_freed.inc();
    invalidate_translation(proc, gvpn);

    auto shared = shared_frames_.find(gfn);
    if (shared != shared_frames_.end()) {
        // Another mapping still references the frame; just drop ours.
        if (--shared->second <= 1)
            shared_frames_.erase(shared);
        return;
    }

    FreeDisposition disposition =
        provider_->on_page_freed(proc, gvpn, gfn);
    if (disposition == FreeDisposition::ReturnToBuddy) {
        memory_.set_use(gfn, 1, mem::FrameUse::Free);
        buddy_.free(gfn);
    }
}

void
GuestKernel::free_page(Process &proc, std::uint64_t gvpn)
{
    std::optional<pt::Pte> pte = proc.page_table().lookup(gvpn);
    if (pte)
        unmap_one(proc, gvpn, *pte);
}

void
GuestKernel::free_region(Process &proc, Addr base)
{
    std::optional<Vma> vma = proc.vas().munmap(base);
    if (!vma)
        ptm_panic("free_region: 0x%llx is not a region base",
                  static_cast<unsigned long long>(base));
    for (std::uint64_t vpn = vma->begin_page; vpn < vma->end_page; ++vpn) {
        std::optional<pt::Pte> pte = proc.page_table().lookup(vpn);
        if (pte)
            unmap_one(proc, vpn, *pte);
    }
}

void
GuestKernel::exit_process(Process &proc)
{
    for (const Vma &vma : proc.vas().vmas()) {
        for (std::uint64_t vpn = vma.begin_page; vpn < vma.end_page; ++vpn) {
            std::optional<pt::Pte> pte = proc.page_table().lookup(vpn);
            if (pte)
                unmap_one(proc, vpn, *pte);
        }
    }
    provider_->on_process_exit(proc);
    processes_.erase(proc.pid());
}

void
GuestKernel::check_memory_pressure()
{
    // Injected pressure first: an armed FaultPlan opens episodes at
    // deterministic fault counts regardless of the watermark state.
    if (pressure_agent_ != nullptr) {
        if (std::uint64_t target = pressure_agent_->pressure_tick()) {
            stats_.reclaim_runs.inc();
            std::uint64_t reclaimed = provider_->reclaim(target);
            stats_.frames_reclaimed.inc(reclaimed);
            if (trace_ != nullptr)
                trace_->event_now("reclaim_sweep", "kernel", 0,
                                  {{"target", target},
                                   {"reclaimed", reclaimed}});
        }
    }

    if (reclaim_policy_.low_watermark_frames == 0)
        return;
    if (buddy_.free_frames_count() >= reclaim_policy_.low_watermark_frames)
        return;
    std::uint64_t target =
        reclaim_policy_.high_watermark_frames > buddy_.free_frames_count()
            ? reclaim_policy_.high_watermark_frames -
                  buddy_.free_frames_count()
            : 0;
    if (target == 0)
        return;
    stats_.reclaim_runs.inc();
    std::uint64_t reclaimed = provider_->reclaim(target);
    stats_.frames_reclaimed.inc(reclaimed);
    if (trace_ != nullptr)
        trace_->event_now("reclaim_sweep", "kernel", 0,
                          {{"target", target}, {"reclaimed", reclaimed}});
}

std::uint64_t
GuestKernel::balloon_inflate(std::uint64_t target,
                             std::vector<std::uint64_t> &out_gfns)
{
    if (target == 0)
        return 0;
    stats_.balloon_inflations.inc();

    std::uint64_t taken = 0;
    while (taken < target) {
        std::optional<std::uint64_t> gfn = buddy_.allocate_frame();
        if (!gfn) {
            // Free list dry: squeeze provider-held frames (reservation
            // tails etc.) back into the buddy, then keep going.
            std::uint64_t reclaimed = provider_->reclaim(target - taken);
            if (reclaimed == 0)
                break;  // the guest genuinely has nothing left to give
            stats_.reclaim_runs.inc();
            stats_.frames_reclaimed.inc(reclaimed);
            continue;
        }
        memory_.set_use(*gfn, 1, mem::FrameUse::Kernel);
        balloon_.push_back(*gfn);
        out_gfns.push_back(*gfn);
        ++taken;
    }
    stats_.balloon_pages_taken.inc(taken);
    return taken;
}

std::uint64_t
GuestKernel::balloon_deflate(std::uint64_t max_frames)
{
    std::uint64_t returned = 0;
    while (returned < max_frames && !balloon_.empty()) {
        std::uint64_t gfn = balloon_.back();
        balloon_.pop_back();
        memory_.set_use(gfn, 1, mem::FrameUse::Free);
        buddy_.free(gfn);
        ++returned;
    }
    stats_.balloon_pages_returned.inc(returned);
    return returned;
}

void
GuestKernel::register_stats(obs::StatRegistry &registry,
                            const std::string &prefix)
{
    const std::string k = prefix + ".kernel";
    registry.counter(k + ".faults_handled", &stats_.faults_handled);
    registry.counter(k + ".write_faults", &stats_.write_faults);
    registry.counter(k + ".pages_mapped", &stats_.pages_mapped);
    registry.counter(k + ".pages_freed", &stats_.pages_freed);
    registry.counter(k + ".reclaim_runs", &stats_.reclaim_runs);
    registry.counter(k + ".frames_reclaimed", &stats_.frames_reclaimed);
    registry.counter(k + ".oom_events", &stats_.oom_events);
    registry.counter(k + ".balloon_inflations",
                     &stats_.balloon_inflations);
    registry.counter(k + ".balloon_pages_taken",
                     &stats_.balloon_pages_taken);
    registry.counter(k + ".balloon_pages_returned",
                     &stats_.balloon_pages_returned);
    registry.histogram(k + ".fault_latency", &stats_.fault_latency);
    buddy_.register_stats(registry, prefix + ".buddy");
}

}  // namespace ptm::vm
