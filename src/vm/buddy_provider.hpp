/**
 * @file
 * The default Linux allocation policy: one buddy-allocator call per fault.
 */
#pragma once

#include "vm/page_provider.hpp"

namespace ptm::vm {

class GuestKernel;

/**
 * Baseline provider modelling the stock Linux/x86 page-fault handler
 * (§2.2): every fault requests exactly one order-0 frame from the buddy
 * allocator, in fault-arrival order.
 */
class BuddyPageProvider final : public PhysicalPageProvider {
  public:
    explicit BuddyPageProvider(GuestKernel *kernel);

    AllocOutcome allocate_page(Process &proc, std::uint64_t gvpn) override;
    FreeDisposition on_page_freed(Process &proc, std::uint64_t gvpn,
                                  std::uint64_t gfn) override;
    void on_process_exit(Process &proc) override;
    std::string name() const override { return "linux-buddy"; }

  private:
    GuestKernel *kernel_;
};

}  // namespace ptm::vm
