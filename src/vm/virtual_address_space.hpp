/**
 * @file
 * Guest-virtual address-space layout of one process.
 *
 * Models Linux's eager virtual allocation (§2.2): mmap()/brk() hand out
 * contiguous virtual ranges immediately; physical backing arrives later,
 * page by page, through faults. Only anonymous private memory is modelled
 * — that is the memory whose allocation order the paper studies.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ptm::vm {

/// One virtual memory area (inclusive start page, exclusive end page).
struct Vma {
    std::uint64_t begin_page = 0;
    std::uint64_t end_page = 0;

    std::uint64_t pages() const { return end_page - begin_page; }
    bool contains(std::uint64_t vpn) const
    {
        return vpn >= begin_page && vpn < end_page;
    }
};

/**
 * Ordered set of non-overlapping VMAs plus mmap/brk cursors.
 */
class VirtualAddressSpace {
  public:
    VirtualAddressSpace();

    /**
     * Eagerly allocate @p length bytes of virtual space (rounded up to
     * pages) from the mmap area.
     * @return base address of the new region.
     */
    Addr mmap(Addr length);

    /// Grow the heap by @p delta bytes; returns the old break address.
    Addr brk(Addr delta);

    /// Remove the region starting exactly at @p base (munmap of a whole
    /// prior mmap). Returns the removed VMA, if any.
    std::optional<Vma> munmap(Addr base);

    /// The VMA covering @p vpn, if any.
    const Vma *find(std::uint64_t vpn) const;

    bool is_mapped(std::uint64_t vpn) const { return find(vpn) != nullptr; }

    /// All current VMAs in address order.
    std::vector<Vma> vmas() const;

    /// Total virtual pages currently reserved.
    std::uint64_t total_pages() const;

  private:
    /// keyed by begin_page
    std::map<std::uint64_t, Vma> regions_;
    std::uint64_t mmap_cursor_page_;
    std::uint64_t heap_begin_page_;
    std::uint64_t heap_end_page_;
    /// Last VMA find() returned: faults cluster within one region, so
    /// most lookups rehit it and skip the tree descent. Map nodes are
    /// pointer-stable under insert and in-place growth (brk); munmap
    /// clears the cache because erase is the one invalidating operation.
    mutable const Vma *last_find_ = nullptr;
};

}  // namespace ptm::vm
