/**
 * @file
 * The guest kernel's pluggable physical-page allocation policy.
 *
 * The default kernel asks the buddy allocator for one frame per fault
 * (§2.2); PTEMagnet (src/core) substitutes a reservation-based policy.
 * The interface is deliberately the narrow waist of the reproduction: the
 * *only* difference between the baseline and PTEMagnet runs is which
 * provider the guest kernel is constructed with.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ptm::obs {
class StatRegistry;
}  // namespace ptm::obs

namespace ptm::vm {

class Process;

/// Result of a provider allocation.
struct AllocOutcome {
    bool ok = false;
    std::uint64_t gfn = 0;  ///< guest frame assigned to the faulting page
    Cycles cycles = 0;      ///< policy cost (buddy call / PaRT lookup...)
};

/// What should happen to a freed page's frame.
enum class FreeDisposition : std::uint8_t {
    ReturnToBuddy,   ///< kernel frees the frame to the buddy allocator
    KeptByProvider,  ///< provider retained the frame (e.g. in a reservation)
};

/**
 * Allocation policy hooks invoked by the guest kernel's fault and unmap
 * paths. Implementations must be deterministic given the fault order.
 */
class PhysicalPageProvider {
  public:
    virtual ~PhysicalPageProvider() = default;

    /// Provide a guest frame for @p proc's fault on page @p gvpn.
    virtual AllocOutcome allocate_page(Process &proc, std::uint64_t gvpn) = 0;

    /// A mapped page (gvpn -> gfn) of @p proc is being freed.
    virtual FreeDisposition on_page_freed(Process &proc, std::uint64_t gvpn,
                                          std::uint64_t gfn) = 0;

    /// @p proc is exiting; release any per-process provider state.
    virtual void on_process_exit(Process &proc) = 0;

    /// @p parent forked @p child (PTEMagnet links the child to the
    /// parent's reservation map, §4.4). Default: nothing.
    virtual void
    on_fork(Process &parent, Process &child)
    {
        (void)parent;
        (void)child;
    }

    /**
     * Memory pressure: release provider-held frames until @p target_frames
     * are freed or nothing is left to give back. Invoked by the kernel's
     * watermark daemon, by injected pressure episodes, and by the guest
     * balloon driver when the host's overcommit daemon asks this VM to
     * surrender frames and the free list alone cannot satisfy the target.
     * @return frames actually released to the buddy allocator.
     */
    virtual std::uint64_t reclaim(std::uint64_t target_frames)
    {
        (void)target_frames;
        return 0;
    }

    /// Human-readable policy name (appears in reports).
    virtual std::string name() const = 0;

    /// Register provider counters under "<prefix>.*". Default: nothing
    /// (stateless policies have nothing to report).
    virtual void
    register_stats(obs::StatRegistry &registry, const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }

    /**
     * Frames the provider currently retains that no mapping uses
     * (parked reservation tails, eager-backed leftovers). This is the
     * "memory bloat" axis of the policy ablation.
     */
    virtual std::uint64_t held_frames() const { return 0; }
};

}  // namespace ptm::vm
