/**
 * @file
 * A transparent-huge-page-like allocation policy, for comparison.
 *
 * The paper's §2.3 discusses why clouds often leave THP off: eager 2 MiB
 * backing wastes memory on sparsely-used regions, and demotion under
 * pressure causes latency anomalies. This provider models the
 * *allocation* behaviour of THP at fault time — on the first fault to a
 * 2 MiB-aligned virtual region it takes an aligned 512-frame block and
 * eagerly maps every page of the region — so the ablation bench can
 * contrast its (perfect) contiguity and its (large) memory overhead with
 * PTEMagnet's reservation approach.
 *
 * Simplification: translations still use 4 KiB leaf PTEs (no 2 MiB leaf
 * entries or huge-TLB modelling); the comparison axis is contiguity and
 * memory footprint, which is the axis the paper argues about.
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/stats.hpp"
#include "vm/page_provider.hpp"

namespace ptm::vm {

class GuestKernel;

/// Huge-page provider counters.
struct HugePageStats {
    Counter regions_backed;     ///< 2 MiB regions eagerly mapped
    Counter pages_eager_mapped; ///< pages mapped without being faulted
    Counter fallback_singles;   ///< no 512-frame block: plain 4 KiB path
};

class HugePageProvider final : public PhysicalPageProvider {
  public:
    /// Pages per huge region: 2 MiB / 4 KiB.
    static constexpr unsigned kHugePages = 512;

    explicit HugePageProvider(GuestKernel *kernel);

    AllocOutcome allocate_page(Process &proc, std::uint64_t gvpn) override;
    FreeDisposition on_page_freed(Process &proc, std::uint64_t gvpn,
                                  std::uint64_t gfn) override;
    void on_process_exit(Process &proc) override;
    std::string name() const override { return "thp-like"; }

    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix) override;

    /// Backed-but-unmapped frames across all processes (memory bloat).
    std::uint64_t held_frames() const override;

    const HugePageStats &stats() const { return stats_; }

    /// Frames backed for @p pid that no mapping uses — the internal
    /// fragmentation the paper's §2.3 criticizes THP for.
    std::uint64_t unused_backed_pages(std::int32_t pid) const;

  private:
    GuestKernel *kernel_;
    /// Per promoted (pid, region): retained frames by page offset —
    /// backed at promotion but not mapped (outside a VMA, or freed).
    std::unordered_map<std::uint64_t,
                       std::unordered_map<unsigned, std::uint64_t>>
        leftovers_;
    HugePageStats stats_;
};

}  // namespace ptm::vm
