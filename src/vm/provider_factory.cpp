#include "vm/provider_factory.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"
#include "vm/buddy_provider.hpp"
#include "vm/huge_page_provider.hpp"
#include "vm/reserve_thp_provider.hpp"

namespace ptm::vm {

namespace {

/// Meyers singleton so registrations from static initializers in any
/// translation unit land in one map regardless of init order.
std::map<std::string, ProviderCtor> &
registry()
{
    static std::map<std::string, ProviderCtor> providers;
    return providers;
}

std::string
known_names()
{
    std::ostringstream out;
    bool first = true;
    for (const auto &[name, ctor] : registry()) {
        out << (first ? "" : ", ") << name;
        first = false;
    }
    return out.str();
}

}  // namespace

void
register_provider(const std::string &name, ProviderCtor ctor)
{
    registry()[name] = std::move(ctor);
}

bool
provider_registered(const std::string &name)
{
    return registry().count(name) != 0;
}

std::vector<std::string>
registered_providers()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, ctor] : registry())
        names.push_back(name);
    return names;
}

std::unique_ptr<PhysicalPageProvider>
make_provider(const std::string &name, GuestKernel *kernel,
              const PolicyParams &params)
{
    auto it = registry().find(name);
    if (it == registry().end())
        ptm_throw("unknown allocation policy '%s' (registered: %s)",
                  name.c_str(), known_names().c_str());
    return it->second(kernel, params);
}

// ---------------------------------------------------------------------
// Built-in policies. PTEMagnet lives a layer up (src/core) and registers
// itself there with a ProviderRegistrar.

namespace {

const bool kBuiltinsRegistered = [] {
    register_provider("buddy",
                      [](GuestKernel *kernel, const PolicyParams &) {
                          return std::make_unique<BuddyPageProvider>(kernel);
                      });
    register_provider("thp",
                      [](GuestKernel *kernel, const PolicyParams &) {
                          return std::make_unique<HugePageProvider>(kernel);
                      });
    register_provider(
        "reserve_thp", [](GuestKernel *kernel, const PolicyParams &params) {
            return std::make_unique<ReserveThpProvider>(
                kernel, params.get_u64("promotion_threshold", 64));
        });
    return true;
}();

}  // namespace

}  // namespace ptm::vm
