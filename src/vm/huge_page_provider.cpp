#include "vm/huge_page_provider.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/stat_registry.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::vm {

namespace {

std::uint64_t
region_key(std::int32_t pid, std::uint64_t region)
{
    // pid in the top bits, region (< 2^40 for 48-bit VAs) below.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid))
            << 40) |
           region;
}

}  // namespace

HugePageProvider::HugePageProvider(GuestKernel *kernel) : kernel_(kernel)
{
    if (kernel == nullptr)
        ptm_fatal("huge-page provider needs a kernel");
}

AllocOutcome
HugePageProvider::allocate_page(Process &proc, std::uint64_t gvpn)
{
    const std::uint64_t region = gvpn / kHugePages;
    const unsigned offset = static_cast<unsigned>(gvpn % kHugePages);
    const std::uint64_t key = region_key(proc.pid(), region);

    auto leftover_it = leftovers_.find(key);
    if (leftover_it != leftovers_.end()) {
        // Region already promoted: serve the fault from the retained
        // frames (pages that were outside a VMA at promotion time, or
        // were freed since).
        auto &frames = leftover_it->second;
        auto frame_it = frames.find(offset);
        if (frame_it != frames.end()) {
            std::uint64_t gfn = frame_it->second;
            frames.erase(frame_it);
            return {.ok = true,
                    .gfn = gfn,
                    .cycles = kernel_->costs().reservation_hit};
        }
        // Frame was handed out and freed to the buddy earlier: plain 4K.
        std::optional<std::uint64_t> gfn = kernel_->buddy().allocate_frame();
        if (!gfn)
            return {.ok = false};
        return {.ok = true,
                .gfn = *gfn,
                .cycles = kernel_->costs().buddy_call};
    }

    // First touch of a huge region: take an aligned order-9 block and
    // eagerly map every page that lies inside a VMA.
    std::optional<std::uint64_t> base = kernel_->buddy().allocate_split(9);
    if (!base) {
        std::optional<std::uint64_t> gfn = kernel_->buddy().allocate_frame();
        stats_.fallback_singles.inc();
        if (!gfn)
            return {.ok = false};
        return {.ok = true,
                .gfn = *gfn,
                .cycles = kernel_->costs().buddy_call};
    }

    stats_.regions_backed.inc();
    auto &frames = leftovers_[key];

    for (unsigned i = 0; i < kHugePages; ++i) {
        std::uint64_t page = region * kHugePages + i;
        if (i == offset)
            continue;  // the kernel maps the faulting page itself
        if (proc.vas().is_mapped(page) && !proc.page_table().lookup(page)) {
            if (!proc.page_table().map(
                    page, {.writable = true, .frame = *base + i}))
                ptm_throw("guest OOM while eagerly mapping huge region "
                          "%llu for pid %d",
                          static_cast<unsigned long long>(region),
                          proc.pid());
            kernel_->memory().set_use(*base + i, 1, mem::FrameUse::Data,
                                      proc.pid());
            proc.add_rss(1);
            stats_.pages_eager_mapped.inc();
        } else {
            // Internal fragmentation: a backed frame with no user.
            kernel_->memory().set_use(*base + i, 1, mem::FrameUse::Kernel,
                                      proc.pid());
            frames.emplace(i, *base + i);
        }
    }

    return {.ok = true,
            .gfn = *base + offset,
            .cycles = kernel_->costs().buddy_call +
                      kernel_->costs().zero_page * 4};
}

FreeDisposition
HugePageProvider::on_page_freed(Process &, std::uint64_t, std::uint64_t)
{
    // No demotion modelling: freed pages simply return to the buddy.
    return FreeDisposition::ReturnToBuddy;
}

std::uint64_t
HugePageProvider::unused_backed_pages(std::int32_t pid) const
{
    std::uint64_t total = 0;
    for (const auto &[key, frames] : leftovers_) {
        if ((key >> 40) ==
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)))
            total += frames.size();
    }
    return total;
}

std::uint64_t
HugePageProvider::held_frames() const
{
    std::uint64_t total = 0;
    for (const auto &[key, frames] : leftovers_)
        total += frames.size();
    return total;
}

void
HugePageProvider::register_stats(obs::StatRegistry &registry,
                                 const std::string &prefix)
{
    registry.counter(prefix + ".regions_backed", &stats_.regions_backed);
    registry.counter(prefix + ".pages_eager_mapped",
                     &stats_.pages_eager_mapped);
    registry.counter(prefix + ".fallback_singles",
                     &stats_.fallback_singles);
}

void
HugePageProvider::on_process_exit(Process &proc)
{
    // Return retained (never-mapped) frames of this process's regions.
    for (auto it = leftovers_.begin(); it != leftovers_.end();) {
        bool mine =
            (it->first >> 40) ==
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                proc.pid()));
        if (mine) {
            for (const auto &[offset, frame] : it->second) {
                kernel_->memory().set_use(frame, 1, mem::FrameUse::Free);
                kernel_->buddy().free(frame);
            }
            it = leftovers_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace ptm::vm
