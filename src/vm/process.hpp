/**
 * @file
 * One guest process: virtual address space + guest page table + a little
 * accounting. Lifecycle and policy live in GuestKernel.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "pt/page_table.hpp"
#include "pt/translation_table.hpp"
#include "vm/virtual_address_space.hpp"

namespace ptm::vm {

/// Per-process activity counters.
struct ProcessStats {
    Counter page_faults;
    Counter cow_breaks;
    Counter pages_freed;
};

class Process {
  public:
    /// Convenience: a process with the default radix page table.
    Process(std::int32_t pid, std::string name, pt::FrameSource pt_frames);

    /// A process owning an explicit translation table (factory-built).
    Process(std::int32_t pid, std::string name,
            std::unique_ptr<pt::TranslationTable> table);

    std::int32_t pid() const { return pid_; }
    const std::string &name() const { return name_; }

    VirtualAddressSpace &vas() { return vas_; }
    const VirtualAddressSpace &vas() const { return vas_; }

    pt::TranslationTable &page_table() { return *page_table_; }
    const pt::TranslationTable &page_table() const { return *page_table_; }

    /// Resident pages (mapped data pages).
    std::uint64_t rss_pages() const { return rss_pages_; }
    void add_rss(std::int64_t delta);

    std::int32_t parent_pid() const { return parent_pid_; }
    void set_parent_pid(std::int32_t pid) { parent_pid_ = pid; }

    /// Orchestrator-declared memory limit (cgroup memory.limit_in_bytes);
    /// 0 means unset. Drives the PTEMagnet enablement policy (§4.4).
    Addr memory_limit_bytes() const { return memory_limit_bytes_; }
    void set_memory_limit_bytes(Addr limit) { memory_limit_bytes_ = limit; }

    ProcessStats &stats() { return stats_; }
    const ProcessStats &stats() const { return stats_; }

  private:
    std::int32_t pid_;
    std::string name_;
    std::int32_t parent_pid_ = -1;
    Addr memory_limit_bytes_ = 0;
    VirtualAddressSpace vas_;
    std::unique_ptr<pt::TranslationTable> page_table_;
    std::uint64_t rss_pages_ = 0;
    ProcessStats stats_;
};

}  // namespace ptm::vm
