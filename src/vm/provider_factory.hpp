/**
 * @file
 * String-keyed registry of PhysicalPageProvider implementations — the
 * allocation-policy side of the factory pair (see pt/table_factory.hpp
 * for the translation-structure side).
 *
 * Policies are chosen by name in ScenarioConfig ("buddy", "ptemagnet",
 * "thp", "reserve_thp", ...), with a PolicyParams bag carrying
 * policy-specific knobs, so new policies need no enum edits and become
 * sweepable by the ablation suite immediately. Layer-up policies (core's
 * PTEMagnet) register themselves from their own translation unit via
 * ProviderRegistrar.
 *
 * Unknown names fail fast with a SimError listing every registered name.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "vm/page_provider.hpp"

namespace ptm::vm {

class GuestKernel;

/// Constructor signature for registered policies. Unknown param keys are
/// ignored by convention — each policy picks the knobs it understands.
using ProviderCtor = std::function<std::unique_ptr<PhysicalPageProvider>(
    GuestKernel *, const PolicyParams &)>;

/// Register @p ctor under @p name; replaces an existing registration.
void register_provider(const std::string &name, ProviderCtor ctor);

/// True iff @p name has a registered constructor.
bool provider_registered(const std::string &name);

/// Registered names, sorted (error messages and sweep enumeration).
std::vector<std::string> registered_providers();

/**
 * Construct the policy registered under @p name for @p kernel.
 * @throws SimError listing registered names if @p name is unknown.
 */
std::unique_ptr<PhysicalPageProvider>
make_provider(const std::string &name, GuestKernel *kernel,
              const PolicyParams &params);

/// Static-registrar helper: `static ProviderRegistrar r{"x", ctor};`
struct ProviderRegistrar {
    ProviderRegistrar(const std::string &name, ProviderCtor ctor)
    {
        register_provider(name, std::move(ctor));
    }
};

}  // namespace ptm::vm
