#include "vm/virtual_address_space.hpp"

#include "common/log.hpp"

namespace ptm::vm {

namespace {
// Guest-virtual layout: a heap region and an mmap region, well separated.
constexpr std::uint64_t kHeapBasePage = 0x0000'1000;      // 16 MiB mark
constexpr std::uint64_t kMmapBasePage = 0x0010'0000;      // 4 GiB mark
// Guard gap between consecutive mmap regions, in pages.
constexpr std::uint64_t kMmapGuardPages = 16;
}  // namespace

VirtualAddressSpace::VirtualAddressSpace()
    : mmap_cursor_page_(kMmapBasePage), heap_begin_page_(kHeapBasePage),
      heap_end_page_(kHeapBasePage)
{
}

Addr
VirtualAddressSpace::mmap(Addr length)
{
    if (length == 0)
        ptm_fatal("mmap of zero bytes");
    std::uint64_t pages = page_number(page_ceil(length));
    std::uint64_t begin = mmap_cursor_page_;
    mmap_cursor_page_ += pages + kMmapGuardPages;
    regions_.emplace(begin, Vma{begin, begin + pages});
    return page_address(begin);
}

Addr
VirtualAddressSpace::brk(Addr delta)
{
    Addr old_brk = page_address(heap_end_page_);
    if (delta == 0)
        return old_brk;
    std::uint64_t pages = page_number(page_ceil(delta));
    if (heap_end_page_ == heap_begin_page_) {
        regions_.emplace(heap_begin_page_,
                         Vma{heap_begin_page_, heap_begin_page_ + pages});
    } else {
        auto it = regions_.find(heap_begin_page_);
        ptm_assert(it != regions_.end(),
                   "heap VMA at page %llu missing during brk growth",
                   static_cast<unsigned long long>(heap_begin_page_));
        it->second.end_page += pages;
    }
    heap_end_page_ += pages;
    return old_brk;
}

std::optional<Vma>
VirtualAddressSpace::munmap(Addr base)
{
    auto it = regions_.find(page_number(base));
    if (it == regions_.end())
        return std::nullopt;
    Vma vma = it->second;
    last_find_ = nullptr;
    regions_.erase(it);
    return vma;
}

const Vma *
VirtualAddressSpace::find(std::uint64_t vpn) const
{
    if (last_find_ != nullptr && last_find_->contains(vpn))
        return last_find_;
    auto it = regions_.upper_bound(vpn);
    if (it == regions_.begin())
        return nullptr;
    --it;
    if (!it->second.contains(vpn))
        return nullptr;
    last_find_ = &it->second;
    return last_find_;
}

std::vector<Vma>
VirtualAddressSpace::vmas() const
{
    std::vector<Vma> out;
    out.reserve(regions_.size());
    for (const auto &[begin, vma] : regions_)
        out.push_back(vma);
    return out;
}

std::uint64_t
VirtualAddressSpace::total_pages() const
{
    std::uint64_t n = 0;
    for (const auto &[begin, vma] : regions_)
        n += vma.pages();
    return n;
}

}  // namespace ptm::vm
