#include "vm/process.hpp"

#include "common/log.hpp"

namespace ptm::vm {

Process::Process(std::int32_t pid, std::string name,
                 pt::FrameSource pt_frames)
    : Process(pid, std::move(name),
              std::make_unique<pt::PageTable>(std::move(pt_frames)))
{
}

Process::Process(std::int32_t pid, std::string name,
                 std::unique_ptr<pt::TranslationTable> table)
    : pid_(pid), name_(std::move(name)), page_table_(std::move(table))
{
    if (!page_table_)
        ptm_panic("process %d created without a translation table", pid_);
}

void
Process::add_rss(std::int64_t delta)
{
    if (delta < 0 &&
        rss_pages_ < static_cast<std::uint64_t>(-delta)) {
        ptm_panic("rss underflow for pid %d", pid_);
    }
    rss_pages_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rss_pages_) + delta);
}

}  // namespace ptm::vm
