/**
 * @file
 * Scenario runner: the standard experimental protocol of §5-§6.
 *
 * A scenario colocates one victim benchmark with a set of co-runners in
 * one VM, optionally under PTEMagnet, runs the victim's allocation (init)
 * phase with full interleaving, then measures a fixed number of victim
 * operations and reports the paper's metric set. Execution-time
 * comparisons between two scenarios that differ only in the provider
 * reproduce Figures 6/7; metric diffs reproduce Tables 1/4.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/metrics.hpp"
#include "sim/platform.hpp"
#include "sim/system.hpp"

namespace ptm::sim {

/// One co-runner: a catalog workload running @p workers worker processes
/// (the paper's co-runners are multi-threaded; each worker is one job).
struct CorunnerSpec {
    std::string name;
    unsigned workers = 1;
};

/// Declarative description of one run.
struct ScenarioConfig {
    std::string victim;                 ///< catalog name
    std::vector<CorunnerSpec> corunners;
    bool use_ptemagnet = false;
    /// Reservation granularity in pages (ablation; the paper uses 8).
    unsigned reservation_pages = kPagesPerReservation;
    double scale = 1.0;                  ///< workload footprint multiplier
    std::uint64_t measure_ops = 1'500'000;  ///< victim ops measured
    std::uint64_t seed = 1;
    /// Co-runner operations executed before the victim starts, modelling
    /// services that are already in steady state when the victim is
    /// scheduled onto the VM (the common VPC case).
    std::uint64_t corunner_warmup_ops = 100'000;
    /// Table 1 protocol: stop co-runners once the victim finishes
    /// allocating (init), so no cache contention during measurement.
    bool stop_corunners_after_init = false;
    /// Measure from the first operation (includes the init phase); used
    /// by the §6.4 allocation-latency microbenchmark.
    bool measure_init = false;
    PlatformConfig platform;
};

/// Everything a run reports.
struct ScenarioResult {
    MetricSet metrics;                    ///< Table 1/4 metric set
    Cycles victim_cycles = 0;             ///< measured execution time
    std::uint64_t victim_ops = 0;
    FragmentationReport fragmentation;    ///< §3.2 metric detail
    /// §6.2: peak (reserved-but-unmapped pages / victim RSS) observed.
    double peak_unused_reservation_fraction = 0.0;
    /// Provider telemetry (PTEMagnet runs only; zeros otherwise).
    std::uint64_t reservations_created = 0;
    std::uint64_t part_hits = 0;
    std::uint64_t buddy_calls = 0;
};

/// Execute one scenario start to finish.
ScenarioResult run_scenario(const ScenarioConfig &config);

/**
 * Convenience for the Figure 6/7 bars: run @p config twice (baseline
 * buddy vs PTEMagnet, same seed) and return the pair.
 */
struct PairedResult {
    ScenarioResult baseline;
    ScenarioResult ptemagnet;

    /// Performance improvement as the paper defines it: reduction of
    /// execution time relative to the baseline, in percent.
    double improvement_percent() const;
};
PairedResult run_paired(ScenarioConfig config);

/// Geometric mean over improvement factors (the paper's "Geomean" bar).
double geomean_improvement(const std::vector<double> &percents);

}  // namespace ptm::sim
