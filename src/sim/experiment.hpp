/**
 * @file
 * Scenario runner: the standard experimental protocol of §5-§6.
 *
 * A scenario colocates one victim benchmark with a set of co-runners in
 * one VM, optionally under PTEMagnet, runs the victim's allocation (init)
 * phase with full interleaving, then measures a fixed number of victim
 * operations and reports the paper's metric set. Execution-time
 * comparisons between two scenarios that differ only in the provider
 * reproduce Figures 6/7; metric diffs reproduce Tables 1/4.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "sim/fault_injection.hpp"
#include "sim/metrics.hpp"
#include "sim/overcommit.hpp"
#include "sim/platform.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace ptm::sim {

/// Co-runner specs live in the workload layer (workload/catalog.hpp) so
/// presets can be shared; the old sim-level name remains as an alias.
using workload::CorunnerSpec;

/**
 * One co-resident guest VM of a multi-VM scenario (VM 1..N-1; VM 0 is
 * the victim's VM, described by the top-level config fields). Empty /
 * zero fields inherit the scenario's corresponding value.
 */
struct VmSpec {
    std::string workload = "stress-ng";  ///< catalog name of each job
    unsigned workers = 1;                ///< jobs booted in this VM
    std::string policy;                  ///< empty = the scenario's policy
    PolicyParams policy_params;          ///< used only when policy is set
    double scale = 0.0;                  ///< 0 = the scenario's scale
    std::uint64_t guest_frames = 0;      ///< 0 = the platform default
};

/**
 * Declarative description of one run.
 *
 * A plain aggregate; the `with_*` fluent setters exist so bench code can
 * build configs declaratively in a single expression:
 *
 *     ScenarioConfig{}.with_victim("pagerank")
 *                     .with_corunner_preset("objdet8")
 *                     .with_policy("reserve_thp")
 *                     .with_policy_param("promotion_threshold", 64)
 *                     .with_table("hashed")
 *                     .with_measure_ops(600'000)
 */
struct ScenarioConfig {
    /// Victim workload by factory name (workload::make_workload).
    std::string victim = "pagerank";
    /// Victim-specific generator knobs, forwarded to the workload
    /// factory (co-runners use their registered defaults).
    workload::WorkloadParams workload_params;
    std::vector<CorunnerSpec> corunners;
    /// Allocation policy by factory name (vm::make_provider); empty
    /// means "buddy".
    std::string policy_name;
    /// Policy-specific knobs, forwarded to the provider factory.
    PolicyParams policy_params;
    /// Reservation granularity in pages (ablation; the paper uses 8).
    /// Injected as policy param "group_pages" for ptemagnet runs unless
    /// the param bag already sets one.
    unsigned reservation_pages = kPagesPerReservation;
    double scale = 1.0;                  ///< workload footprint multiplier
    std::uint64_t measure_ops = 1'500'000;  ///< victim ops measured
    std::uint64_t seed = 1;
    /// Co-runner operations executed before the victim starts, modelling
    /// services that are already in steady state when the victim is
    /// scheduled onto the VM (the common VPC case).
    std::uint64_t corunner_warmup_ops = 100'000;
    /// Table 1 protocol: stop co-runners once the victim finishes
    /// allocating (init), so no cache contention during measurement.
    bool stop_corunners_after_init = false;
    /// Measure from the first operation (includes the init phase); used
    /// by the §6.4 allocation-latency microbenchmark.
    bool measure_init = false;
    /// Deterministic fault/pressure schedule; inert unless armed().
    FaultPlan fault_plan;
    /// When set, every job's op stream (ops + context interactions) is
    /// recorded and written to this .ptt file when the run ends.
    std::string trace_record;
    /// When set, jobs replay the named .ptt file's streams instead of
    /// running their generators. The trace must have exactly one stream
    /// per configured job (victim first, then co-runner workers in
    /// order). Because scheduling is done in op space, one recorded
    /// trace drives every {policy × table} leg identically.
    std::string trace_replay;
    /// Replay-only fast-forward: apply the recorded warmup/init phases
    /// functionally (mapping-state effects only — same kernel calls in
    /// the same fault order, no TLB/cache/cycle simulation), then flush
    /// all microarchitectural state and drop into the detailed model at
    /// the recorded init-end marker. Requires trace_replay set and
    /// measure_init false. Measured-phase metrics are bit-identical to
    /// a full-fidelity run with cold_measurement set.
    bool replay_fast_forward = false;
    /// Flush TLBs, PWCs, nested TLBs, and the cache hierarchy at the
    /// init/measure boundary so measurement starts from a cold
    /// machine. This is the state a fast-forwarded run measures from;
    /// set it on a full-fidelity run to make the two comparable.
    bool cold_measurement = false;
    /// Co-resident VM count sharing the host (1 = the historic single-VM
    /// scenario). VMs beyond the first are described by vm_specs; when
    /// that list is shorter than vms - 1 the last spec repeats.
    unsigned vms = 1;
    std::vector<VmSpec> vm_specs;
    /// Host overcommit-survival policy (balloon sweeps, backoff,
    /// OOM-kill); inert unless armed().
    OvercommitPolicy overcommit;
    /// Seeded VM churn schedule (boot/kill/fork storms); inert unless
    /// armed(). Incompatible with trace record/replay.
    ChurnPlan churn;
    /// Per-VM dirty rings + working-set-guided reclaim; inert unless
    /// armed() — disarmed runs are bit-identical to pre-ring builds.
    DirtyRingConfig dirty_ring;
    PlatformConfig platform;

    // ---- fluent setters --------------------------------------------
    ScenarioConfig &
    with_victim(std::string name)
    {
        victim = std::move(name);
        return *this;
    }
    /**
     * Select the victim workload by factory name, fail-fast: unknown
     * names throw immediately instead of at run time.
     * @throws SimError listing registered names if @p name is unknown.
     */
    ScenarioConfig &with_workload(const std::string &name);
    /// Set one victim-workload knob (repeatable).
    ScenarioConfig &
    with_workload_param(const std::string &key, double value)
    {
        workload_params.set(key, value);
        return *this;
    }
    ScenarioConfig &
    with_corunners(std::vector<CorunnerSpec> specs)
    {
        corunners = std::move(specs);
        return *this;
    }
    /// Append one co-runner (repeatable).
    ScenarioConfig &
    with_corunner(std::string name, unsigned workers = 1)
    {
        corunners.push_back({std::move(name), workers});
        return *this;
    }
    /// Replace the co-runner list with a named workload preset.
    ScenarioConfig &
    with_corunner_preset(const std::string &preset)
    {
        corunners = workload::corunner_preset(preset);
        return *this;
    }
    /**
     * Select the allocation policy by factory name.
     * @throws SimError listing registered names if @p name is unknown.
     */
    ScenarioConfig &with_policy(const std::string &name);
    /// Set one policy-specific knob (repeatable).
    ScenarioConfig &
    with_policy_param(const std::string &key, double value)
    {
        policy_params.set(key, value);
        return *this;
    }
    /**
     * Select the translation-table structure by factory name (applies to
     * both the guest and host tables of the run).
     * @throws SimError listing registered names if @p name is unknown.
     */
    ScenarioConfig &with_table(const std::string &name);
    /// Set one table-specific knob (repeatable).
    ScenarioConfig &
    with_table_param(const std::string &key, double value)
    {
        platform.table_params.set(key, value);
        return *this;
    }
    ScenarioConfig &
    with_ptemagnet(unsigned group_pages = kPagesPerReservation)
    {
        policy_name = "ptemagnet";
        reservation_pages = group_pages;
        return *this;
    }
    ScenarioConfig &
    with_scale(double s)
    {
        scale = s;
        return *this;
    }
    ScenarioConfig &
    with_measure_ops(std::uint64_t ops)
    {
        measure_ops = ops;
        return *this;
    }
    ScenarioConfig &
    with_seed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    ScenarioConfig &
    with_warmup_ops(std::uint64_t ops)
    {
        corunner_warmup_ops = ops;
        return *this;
    }
    ScenarioConfig &
    with_stop_corunners_after_init(bool stop = true)
    {
        stop_corunners_after_init = stop;
        return *this;
    }
    ScenarioConfig &
    with_measure_init(bool measure = true)
    {
        measure_init = measure;
        return *this;
    }
    ScenarioConfig &
    with_fault_plan(FaultPlan plan)
    {
        fault_plan = std::move(plan);
        return *this;
    }
    /// Record all job op streams to @p path (.ptt) at run end.
    ScenarioConfig &
    with_trace_record(std::string path)
    {
        trace_record = std::move(path);
        return *this;
    }
    /// Replay job op streams from @p path (.ptt) instead of generators.
    ScenarioConfig &
    with_trace_replay(std::string path)
    {
        trace_replay = std::move(path);
        return *this;
    }
    /// Fast-forward the replayed init phases (see replay_fast_forward).
    ScenarioConfig &
    with_replay_fast_forward(bool ff = true)
    {
        replay_fast_forward = ff;
        return *this;
    }
    /// Start measurement from flushed microarchitectural state.
    ScenarioConfig &
    with_cold_measurement(bool cold = true)
    {
        cold_measurement = cold;
        return *this;
    }
    /// Co-locate @p n VMs on the host (clamped to at least 1).
    ScenarioConfig &
    with_vms(unsigned n)
    {
        vms = n < 1 ? 1 : n;
        return *this;
    }
    /// Append one co-resident VM description (repeatable).
    ScenarioConfig &
    with_vm_spec(VmSpec spec)
    {
        vm_specs.push_back(std::move(spec));
        return *this;
    }
    ScenarioConfig &
    with_overcommit(OvercommitPolicy oc)
    {
        overcommit = std::move(oc);
        return *this;
    }
    ScenarioConfig &
    with_churn(ChurnPlan plan)
    {
        churn = std::move(plan);
        return *this;
    }
    ScenarioConfig &
    with_dirty_ring(DirtyRingConfig config)
    {
        dirty_ring = config;
        return *this;
    }

    // ---- resolution -------------------------------------------------
    /// Factory name this run will use: policy_name when set, else the
    /// "buddy" default.
    std::string
    resolved_policy() const
    {
        return policy_name.empty() ? "buddy" : policy_name;
    }
    /// Policy params with legacy knobs folded in (reservation_pages
    /// becomes "group_pages" for ptemagnet runs).
    PolicyParams
    resolved_policy_params() const
    {
        PolicyParams params = policy_params;
        if (resolved_policy() == "ptemagnet" && !params.has("group_pages"))
            params.set("group_pages",
                       static_cast<double>(reservation_pages));
        return params;
    }
    /// Translation-table factory name of this run.
    const std::string &
    resolved_table() const
    {
        return platform.translation_table;
    }
    /// Spec of co-resident VM @p index (>= 1): the matching vm_specs
    /// entry, with the last one repeating past the end of the list; a
    /// default-constructed spec when the list is empty.
    VmSpec
    vm_spec_for(unsigned index) const
    {
        if (vm_specs.empty())
            return VmSpec{};
        std::size_t i = index >= 1 ? index - 1 : 0;
        if (i >= vm_specs.size())
            i = vm_specs.size() - 1;
        return vm_specs[i];
    }
    /// True when the run exercises the multi-VM / overcommit machinery.
    bool
    multi_vm() const
    {
        return vms > 1 || overcommit.armed() || churn.armed();
    }
};

/**
 * Per-VM survival record of a multi-VM run: one entry per VM slot,
 * killed VMs included. An OOM-kill surfaces here as a degraded status —
 * never as a SimError — so the run (and its surviving VMs' metrics)
 * completes normally.
 */
struct VmRecord {
    unsigned vm = 0;
    /// "alive", "oom_killed", or "churn_killed".
    std::string status = "alive";
    std::string status_detail;
    std::uint64_t balloon_pages = 0;       ///< guest frames the balloon took
    std::uint64_t frames_repossessed = 0;  ///< host frames freed at kill
    /// Host frames backing the VM at run end (at kill time for victims).
    std::uint64_t backed_pages = 0;
    std::uint64_t walk_cycles = 0;         ///< summed over the VM's jobs
    std::uint64_t ops = 0;                 ///< summed over the VM's jobs
    std::uint64_t oom_events = 0;          ///< guest-side unserviceable faults
    /// Last closed dirty-ring epoch's distinct-dirty-page count (0 when
    /// the ring is disarmed or no epoch closed).
    std::uint64_t ws_estimate_pages = 0;
};

/// Everything a run reports.
struct ScenarioResult {
    MetricSet metrics;                    ///< Table 1/4 metric set
    /// Full stat-registry snapshot at run end: every component counter
    /// and histogram summary, keyed by hierarchical path. Serialized as
    /// the "stats" block of BENCH files.
    obs::StatSnapshot stats;
    Cycles victim_cycles = 0;             ///< measured execution time
    std::uint64_t victim_ops = 0;
    std::uint64_t victim_rss_pages = 0;   ///< resident set at run end
    FragmentationReport fragmentation;    ///< §3.2 metric detail
    /// §6.2: peak (reserved-but-unmapped pages / victim RSS) observed.
    double peak_unused_reservation_fraction = 0.0;
    /// Provider telemetry (PTEMagnet runs only; zeros otherwise).
    std::uint64_t reservations_created = 0;
    std::uint64_t part_hits = 0;
    std::uint64_t buddy_calls = 0;
    /// Provider-held but unmapped frames at run end (memory bloat axis
    /// of the policy ablation; any reservation-style policy reports it).
    std::uint64_t provider_held_pages = 0;

    // ---- robustness telemetry (nonzero only under an armed FaultPlan
    // or genuine memory exhaustion) -----------------------------------
    bool fault_plan_armed = false;
    std::uint64_t injected_denials = 0;   ///< buddy calls vetoed by plan
    std::uint64_t pressure_episodes = 0;  ///< injected episodes opened
    std::uint64_t reclaim_sweeps = 0;     ///< injected sweeps requested
    std::uint64_t frames_reclaimed = 0;   ///< frames released by reclaim
    std::uint64_t fallback_singles = 0;   ///< provider single-frame fallbacks
    std::uint64_t oom_events = 0;         ///< unserviceable guest faults

    // ---- multi-VM overcommit survival (populated only when the config's
    // multi_vm() is true; empty/zero for historic single-VM runs) ------
    std::vector<VmRecord> vms;            ///< one record per VM slot
    std::uint64_t host_reclaim_sweeps = 0;
    std::uint64_t host_emergency_sweeps = 0;
    std::uint64_t host_backoff_waits = 0;
    std::uint64_t host_balloon_pages = 0;
    std::uint64_t host_frames_unbacked = 0;
    std::uint64_t oom_kills = 0;
    std::uint64_t churn_boots = 0;
    std::uint64_t churn_kills = 0;
    std::uint64_t churn_forks = 0;
    std::uint64_t churn_boot_failures = 0;

    // ---- dirty-ring working-set estimation (populated only when the
    // config's dirty_ring is armed; zero otherwise) --------------------
    bool dirty_ring_armed = false;
    std::uint64_t dirty_ring_logged = 0;    ///< write walks recorded
    std::uint64_t dirty_ring_harvests = 0;  ///< ring drains
    std::uint64_t dirty_ring_epochs = 0;    ///< closed epochs (all VMs)
    std::uint64_t ws_estimate_pages = 0;    ///< VM 0's last estimate
    std::uint64_t ws_guided_sweeps = 0;     ///< ws-ordered balloon sweeps

    // ---- simulator-performance provenance (host-side, NOT simulated
    // state: excluded from the determinism comparisons) ---------------
    /// Host wall-clock seconds run_scenario took, warmup/init included.
    double host_seconds = 0.0;
    /// Dispatch-loop stage breakdown (all zeros unless the run's
    /// platform.stage_timing was set — bench-only instrumentation).
    StageTimes stage_times;
    /// Simulated operations executed across all jobs, all phases.
    std::uint64_t total_ops = 0;
    /// Simulator throughput of this leg, in simulated ops per host second.
    double
    ops_per_second() const
    {
        return host_seconds > 0.0
                   ? static_cast<double>(total_ops) / host_seconds
                   : 0.0;
    }
};

/// Execute one scenario start to finish.
ScenarioResult run_scenario(const ScenarioConfig &config);

/**
 * Convenience for the Figure 6/7 bars: run @p config twice with the same
 * seed — once under the "buddy" baseline, once under the config's own
 * policy (PTEMagnet when the config names none) — and return the pair.
 * ExperimentSuite (sim/suite.hpp) composes this primitive to run the two
 * legs — and whole suites of scenarios — concurrently.
 */
struct PairedResult {
    ScenarioResult baseline;
    /// Treatment leg (named `ptemagnet` for source compatibility; holds
    /// whatever policy the config resolved to).
    ScenarioResult ptemagnet;

    /// Performance improvement as the paper defines it: reduction of
    /// execution time relative to the baseline, in percent.
    double improvement_percent() const;
};
PairedResult run_paired(ScenarioConfig config);

/// Geometric mean over improvement factors (the paper's "Geomean" bar).
double geomean_improvement(const std::vector<double> &percents);

}  // namespace ptm::sim
