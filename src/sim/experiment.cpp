#include "sim/experiment.hpp"

#include <chrono>
#include <cmath>

#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/ptemagnet_provider.hpp"
#include "pt/table_factory.hpp"
#include "vm/provider_factory.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace ptm::sim {

ScenarioConfig &
ScenarioConfig::with_workload(const std::string &name)
{
    if (!workload::workload_registered(name)) {
        // Fail the same way run_scenario would, but at config-build time;
        // make_workload throws the SimError listing registered names.
        workload::make_workload(name, {});
    }
    victim = name;
    return *this;
}

ScenarioConfig &
ScenarioConfig::with_policy(const std::string &name)
{
    if (!vm::provider_registered(name)) {
        // Fail the same way run_scenario would, but at config-build time;
        // the factory throws before it ever touches the (null) kernel.
        vm::make_provider(name, nullptr, {});
    }
    policy_name = name;
    return *this;
}

ScenarioConfig &
ScenarioConfig::with_table(const std::string &name)
{
    if (!pt::table_registered(name)) {
        // The factory throws before the frame source is ever invoked.
        pt::make_table(name, pt::FrameSource{}, {});
    }
    platform.translation_table = name;
    return *this;
}

namespace {
/// §6.2 sampling cadence, in victim operations (the paper samples every
/// second of wall time; one sample per ~64k simulated ops is comparable).
constexpr std::uint64_t kReservationSampleOps = 64 * 1024;
}  // namespace

ScenarioResult
run_scenario(const ScenarioConfig &config)
{
    const auto wall_start = std::chrono::steady_clock::now();

    const bool multi_vm = config.multi_vm();
    if (multi_vm &&
        (!config.trace_record.empty() || !config.trace_replay.empty())) {
        ptm_throw("trace record/replay supports single-VM scenarios only "
                  "(vms=%u, overcommit %s, churn %s)",
                  config.vms, config.overcommit.armed() ? "armed" : "off",
                  config.churn.armed() ? "armed" : "off");
    }
    if (config.replay_fast_forward &&
        (config.trace_replay.empty() || config.measure_init)) {
        ptm_throw("replay_fast_forward requires trace_replay and "
                  "measure_init=false: the init phase must come from a "
                  "recorded stream and be excluded from measurement "
                  "(trace_replay %s, measure_init %s)",
                  config.trace_replay.empty() ? "unset" : "set",
                  config.measure_init ? "true" : "false");
    }

    // Every job needs a core for its whole life; churn boots/forks each
    // add at most one, so size the hierarchy for the worst case.
    unsigned cores = 1;
    for (const CorunnerSpec &spec : config.corunners)
        cores += spec.workers;
    for (unsigned k = 1; k < config.vms; ++k)
        cores += config.vm_spec_for(k).workers;
    cores += static_cast<unsigned>(
        config.churn.count(ChurnAction::Boot) +
        config.churn.count(ChurnAction::Fork));

    // Replay streams come from here; declared first so the TraceFile
    // outlives the jobs decoding from it (and the System owning them).
    std::optional<workload::TraceFile> trace;
    if (!config.trace_replay.empty()) {
        trace.emplace(workload::TraceFile::load(config.trace_replay));
        if (trace->job_count() != cores) {
            ptm_throw("trace %s has %u job streams, scenario needs %u "
                      "(victim + co-runner workers)",
                      config.trace_replay.c_str(), trace->job_count(),
                      cores);
        }
    }
    PlatformConfig platform = config.platform;
    platform.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;

    // Declared before the System: the buddy allocators and guest kernel
    // hold raw pointers into the injector, so it must be destroyed last.
    std::optional<FaultInjector> injector;

    System system(platform, cores);
    // Co-resident VMs boot right after VM 0 so their slot indices (and
    // registry namespaces "vm1".."vmN-1") are assigned before any job or
    // churn event exists.
    for (unsigned k = 1; k < config.vms; ++k)
        system.boot_vm(config.vm_spec_for(k).guest_frames);
    if (config.fault_plan.armed()) {
        injector.emplace(config.fault_plan);
        system.arm_fault_injection(*injector);
    }
    // "buddy" keeps the kernel's built-in provider: no replacement, no
    // "vm0.provider" registry subtree — bit-identical to historic runs.
    const std::string policy = config.resolved_policy();
    if (policy != "buddy")
        system.set_policy(policy, config.resolved_policy_params());
    for (unsigned k = 1; k < config.vms; ++k) {
        const VmSpec spec = config.vm_spec_for(k);
        const std::string vm_policy =
            spec.policy.empty() ? policy : spec.policy;
        if (vm_policy != "buddy") {
            system.set_policy(k, vm_policy,
                              spec.policy.empty()
                                  ? config.resolved_policy_params()
                                  : spec.policy_params);
        }
    }
    system.set_overcommit(config.overcommit);  // no-op unless armed
    system.set_churn_plan(config.churn);       // no-op unless armed
    if (config.dirty_ring.armed())
        system.arm_dirty_ring(config.dirty_ring);

    workload::WorkloadOptions options;
    options.scale = config.scale;
    options.seed = config.seed;

    // Per-job workload source, by mode:
    //  - replay: decode the trace stream for this job index;
    //  - record: the real generator wrapped in a recorder (raw pointers
    //    collected so the trace can be written after the run);
    //  - otherwise: the StreamCache memo of the generator's stream (the
    //    second leg of a paired run and repeated suite legs decode
    //    instead of regenerating), or the bare generator when disabled.
    std::vector<const workload::RecordingWorkload *> recorders;
    auto job_workload = [&](const std::string &name,
                            const workload::WorkloadOptions &opt,
                            unsigned job_index)
        -> std::unique_ptr<workload::Workload> {
        if (trace)
            return trace->make_replayer(job_index);
        if (!config.trace_record.empty()) {
            auto rec = std::make_unique<workload::RecordingWorkload>(
                workload::make_workload(name, opt));
            recorders.push_back(rec.get());
            return rec;
        }
        if (workload::StreamCache::enabled())
            return workload::StreamCache::instance().replay(name, opt);
        return workload::make_workload(name, opt);
    };

    // Only the victim sees the config's workload knobs; co-runners keep
    // their registered defaults (their streams — and StreamCache keys —
    // stay identical across victim-param sweeps).
    workload::WorkloadOptions victim_options = options;
    victim_options.params = config.workload_params;
    Job &victim =
        system.add_job(job_workload(config.victim, victim_options, 0));
    unsigned worker_index = 0;
    for (const CorunnerSpec &spec : config.corunners) {
        for (unsigned w = 0; w < spec.workers; ++w) {
            workload::WorkloadOptions co_options = options;
            co_options.seed = config.seed + 1000 + (++worker_index);
            system.add_job(
                job_workload(spec.name, co_options, worker_index));
        }
    }
    // Co-resident VMs' jobs (never trace-driven: multi-VM runs refuse
    // record/replay above, so the job index does not matter).
    for (unsigned k = 1; k < config.vms; ++k) {
        const VmSpec spec = config.vm_spec_for(k);
        for (unsigned w = 0; w < spec.workers; ++w) {
            workload::WorkloadOptions vm_options;
            vm_options.scale =
                spec.scale > 0.0 ? spec.scale : config.scale;
            vm_options.seed = config.seed + 10'000ULL * k + w;
            system.add_job(k,
                           job_workload(spec.workload, vm_options, 0));
        }
    }

    ScenarioResult result;
    auto sample_reservations = [&]() {
        core::PtemagnetProvider *provider = system.ptemagnet();
        if (provider == nullptr)
            return;
        const core::Part *part = provider->part_of(victim.process().pid());
        if (part == nullptr || victim.process().rss_pages() == 0)
            return;
        double fraction =
            static_cast<double>(part->unmapped_reserved_pages()) /
            static_cast<double>(victim.process().rss_pages());
        if (fraction > result.peak_unused_reservation_fraction)
            result.peak_unused_reservation_fraction = fraction;
    };

    // Fast-forward mode: the warmup and init phases below run
    // functionally (mapping state only); the detailed model takes over
    // at the init-end handover before Phase B.
    if (config.replay_fast_forward)
        system.set_functional_mode(true);

    // Phase 0: co-runners reach steady state before the victim starts.
    if (config.corunner_warmup_ops > 0 && !config.corunners.empty()) {
        victim.set_paused(true);
        std::uint64_t target = config.corunner_warmup_ops;
        system.run_until([&system, &victim, target]() {
            std::uint64_t total = 0;
            for (auto &job : system.jobs()) {
                if (job.get() != &victim)
                    total += job->stats().ops.value();
            }
            return total >= target;
        });
        victim.set_paused(false);
        system.churn_tick();
    }

    // Phase A: the victim allocates its memory under full colocation —
    // this is where the allocation-order decisions are made. Sampled
    // frequently: partially-filled reservations peak mid-allocation.
    while (!victim.finished() && victim.workload().in_init_phase()) {
        std::uint64_t before = victim.stats().ops.value();
        system.run_until([&victim, before]() {
            return victim.finished() ||
                   !victim.workload().in_init_phase() ||
                   // Prime stride: never a multiple of the group size,
                   // so samples land inside partially-filled groups too.
                   victim.stats().ops.value() >= before + 4093;
        });
        sample_reservations();
        system.churn_tick();
    }

    if (config.stop_corunners_after_init) {
        for (auto &job : system.jobs()) {
            if (job.get() != &victim)
                job->set_paused(true);
        }
    }

    // Phase B: measure.
    if (config.replay_fast_forward) {
        // Handover: leave functional mode and flush the (empty) micro-
        // architectural state, so the measured phase runs the detailed
        // model from exactly the cold state a cold_measurement run
        // measures from.
        system.set_functional_mode(false);
        system.flush_microarch();
    } else if (config.cold_measurement) {
        system.flush_microarch();
    }
    if (!config.measure_init)
        system.reset_measurement();
    std::uint64_t remaining = config.measure_ops;
    // Churn events fire between chunks, so an armed plan shortens them to
    // keep boot/kill/fork timing close to the scheduled step counts.
    const std::uint64_t chunk_ops =
        system.churn_armed() ? 4096 : kReservationSampleOps;
    while (remaining > 0 && !victim.finished()) {
        std::uint64_t chunk = std::min(remaining, chunk_ops);
        std::uint64_t before = victim.stats().ops.value();
        system.run_ops(victim, chunk);
        std::uint64_t done = victim.stats().ops.value() - before;
        if (done == 0)
            break;  // victim finished mid-chunk
        remaining -= std::min(remaining, done);
        sample_reservations();
        system.churn_tick();
    }

    result.victim_cycles = victim.stats().cycles.value();
    result.victim_ops = victim.stats().ops.value();
    result.victim_rss_pages = victim.process().rss_pages();
    result.metrics = collect_metrics(system, victim);
    result.stats = system.stat_registry().snapshot();
    if (const host::VmInstance *vm0 = system.vm_if_alive(0)) {
        result.fragmentation =
            host_pt_fragmentation(victim.process(), *vm0);
    }

    if (core::PtemagnetProvider *provider = system.ptemagnet()) {
        result.reservations_created =
            provider->stats().reservations_created.value();
        result.part_hits = provider->stats().part_hits.value();
        result.buddy_calls = provider->stats().buddy_calls.value();
        result.fallback_singles =
            provider->stats().fallback_singles.value();
    } else {
        result.buddy_calls =
            system.guest().buddy().stats().alloc_calls.value();
    }

    result.provider_held_pages = system.guest().provider().held_frames();
    result.frames_reclaimed =
        system.guest().stats().frames_reclaimed.value();
    result.oom_events = system.guest().stats().oom_events.value();
    if (injector) {
        const InjectorStats &inj = injector->stats();
        result.fault_plan_armed = true;
        result.injected_denials = inj.injected_denials.value();
        result.pressure_episodes = inj.pressure_episodes.value();
        result.reclaim_sweeps = inj.reclaim_sweeps.value();
        // Only armed runs grow the metric set: the golden snapshot (and
        // its new-key guard) covers unarmed runs exactly as before.
        result.metrics.set("injected_denials",
                           static_cast<double>(result.injected_denials));
        result.metrics.set("pressure_episodes",
                           static_cast<double>(result.pressure_episodes));
        result.metrics.set("reclaim_sweeps",
                           static_cast<double>(result.reclaim_sweeps));
        result.metrics.set("frames_reclaimed",
                           static_cast<double>(result.frames_reclaimed));
        result.metrics.set("fallback_singles",
                           static_cast<double>(result.fallback_singles));
    }

    if (multi_vm) {
        const OvercommitStats &oc = system.overcommit_stats();
        result.host_reclaim_sweeps = oc.reclaim_sweeps.value();
        result.host_emergency_sweeps = oc.emergency_sweeps.value();
        result.host_backoff_waits = oc.backoff_waits.value();
        result.host_balloon_pages = oc.balloon_pages.value();
        result.host_frames_unbacked = oc.frames_unbacked.value();
        result.oom_kills = oc.oom_kills.value();
        result.churn_boots = oc.churn_boots.value();
        result.churn_kills = oc.churn_kills.value();
        result.churn_forks = oc.churn_forks.value();
        result.churn_boot_failures = oc.churn_boot_failures.value();

        for (unsigned k = 0; k < system.num_vms(); ++k) {
            const VmSlot &slot = system.vm_slot(k);
            VmRecord rec;
            rec.vm = k;
            rec.status = slot.status;
            rec.status_detail = slot.status_detail;
            rec.balloon_pages =
                slot.guest->stats().balloon_pages_taken.value();
            rec.frames_repossessed = slot.frames_repossessed;
            rec.backed_pages = slot.alive ? slot.vm->backed_pages()
                                          : slot.backed_pages_at_kill;
            rec.oom_events = slot.guest->stats().oom_events.value();
            if (const obs::DirtyRing *ring = system.dirty_ring(k);
                ring != nullptr && ring->has_estimate()) {
                rec.ws_estimate_pages = ring->estimate_pages();
            }
            for (const auto &job : system.jobs()) {
                if (job->vm_index() != k)
                    continue;
                rec.ops += job->stats().ops.value();
                rec.walk_cycles +=
                    job->walker().stats().walk_cycles.value();
            }
            result.vms.push_back(std::move(rec));
        }

        // Only armed runs grow the metric set (same contract as the
        // fault-plan block above): the golden snapshot and its new-key
        // guard keep covering unarmed single-VM runs unchanged.
        if (config.overcommit.armed() || config.churn.armed()) {
            result.metrics.set(
                "oom_kills", static_cast<double>(result.oom_kills));
            result.metrics.set(
                "host_reclaim_sweeps",
                static_cast<double>(result.host_reclaim_sweeps));
            result.metrics.set(
                "host_balloon_pages",
                static_cast<double>(result.host_balloon_pages));
            result.metrics.set(
                "host_frames_unbacked",
                static_cast<double>(result.host_frames_unbacked));
            result.metrics.set(
                "churn_boots",
                static_cast<double>(result.churn_boots));
        }
    }

    if (system.dirty_ring_armed()) {
        result.dirty_ring_armed = true;
        for (unsigned k = 0; k < system.num_vms(); ++k) {
            const obs::DirtyRing *ring = system.dirty_ring(k);
            if (ring == nullptr)
                continue;
            result.dirty_ring_logged += ring->stats().logged.value();
            result.dirty_ring_harvests += ring->stats().harvests.value();
            result.dirty_ring_epochs += ring->stats().epochs.value();
        }
        if (const obs::DirtyRing *ring = system.dirty_ring(0);
            ring != nullptr && ring->has_estimate()) {
            result.ws_estimate_pages = ring->estimate_pages();
        }
        result.ws_guided_sweeps =
            system.overcommit_stats().ws_guided_sweeps.value();
        // Armed-only metric growth, same contract as the fault-plan and
        // overcommit blocks: disarmed runs keep the golden metric set.
        result.metrics.set("dirty_ring_logged",
                           static_cast<double>(result.dirty_ring_logged));
        result.metrics.set("dirty_ring_epochs",
                           static_cast<double>(result.dirty_ring_epochs));
        result.metrics.set("ws_estimate_pages",
                           static_cast<double>(result.ws_estimate_pages));
        result.metrics.set("ws_guided_sweeps",
                           static_cast<double>(result.ws_guided_sweeps));
    }

    if (!config.trace_record.empty())
        workload::TraceFile::write(config.trace_record, recorders);

    result.total_ops = system.total_steps();
    result.stage_times = system.stage_times();
    result.host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return result;
}

double
PairedResult::improvement_percent() const
{
    if (baseline.victim_cycles == 0)
        return 0.0;
    double base = static_cast<double>(baseline.victim_cycles);
    double ptm = static_cast<double>(ptemagnet.victim_cycles);
    return 100.0 * (base - ptm) / base;
}

PairedResult
run_paired(ScenarioConfig config)
{
    // A config that names no treatment policy (or names the baseline
    // itself) gets the paper's default comparison: buddy vs PTEMagnet.
    std::string treatment = config.resolved_policy();
    if (treatment == "buddy")
        treatment = "ptemagnet";

    PairedResult result;
    ScenarioConfig baseline = config;
    baseline.policy_name = "buddy";
    result.baseline = run_scenario(baseline);
    config.policy_name = treatment;
    result.ptemagnet = run_scenario(config);
    return result;
}

double
geomean_improvement(const std::vector<double> &percents)
{
    if (percents.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double p : percents)
        log_sum += std::log(1.0 + p / 100.0);
    return 100.0 *
           (std::exp(log_sum / static_cast<double>(percents.size())) - 1.0);
}

}  // namespace ptm::sim
