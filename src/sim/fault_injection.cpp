#include "sim/fault_injection.hpp"

#include <algorithm>
#include <cstddef>

namespace ptm::sim {

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed),
      rule_state_(plan.denials.size()),
      episode_state_(plan.episodes.size())
{
    guest_gate_.owner = this;
    guest_gate_.site = AllocSite::GuestBuddy;
    host_gate_.owner = this;
    host_gate_.site = AllocSite::HostBuddy;
}

bool
FaultInjector::deny_alloc(AllocSite site, unsigned order)
{
    stats_.gate_calls.inc();
    bool deny = false;
    for (std::size_t i = 0; i < plan_.denials.size(); ++i) {
        const AllocDenyRule &rule = plan_.denials[i];
        if (rule.site != site)
            continue;
        if (rule.order != AllocDenyRule::kAnyOrder &&
            static_cast<unsigned>(rule.order) != order)
            continue;
        RuleState &state = rule_state_[i];
        std::uint64_t index = state.matched++;
        if (rule.count > 0 && index >= rule.after &&
            index < rule.after + rule.count) {
            deny = true;
        }
        // Draw even when already denied so the RNG stream depends only on
        // the sequence of matching calls, not on which rule fired first.
        if (rule.probability > 0.0 && rng_.chance(rule.probability))
            deny = true;
    }
    if (deny)
        stats_.injected_denials.inc();
    return deny;
}

std::uint64_t
FaultInjector::pressure_tick()
{
    const std::uint64_t now = ++ticks_;
    stats_.pressure_ticks.inc();

    std::uint64_t target = 0;
    for (std::size_t i = 0; i < plan_.episodes.size(); ++i) {
        const PressureEpisode &episode = plan_.episodes[i];
        EpisodeState &state = episode_state_[i];
        if (state.done)
            continue;

        if (!state.open) {
            if (now < episode.open_at_fault)
                continue;
            state.open = true;
            state.opened_at = now;
            stats_.pressure_episodes.inc();
            stats_.reclaim_sweeps.inc();
            target = std::max(target, episode.target_frames);
            continue;
        }

        const std::uint64_t age = now - state.opened_at;
        if (age >= episode.close_after) {
            state.open = false;
            state.done = true;
            continue;
        }
        if (episode.sweep_period > 0 && age % episode.sweep_period == 0) {
            stats_.reclaim_sweeps.inc();
            target = std::max(target, episode.target_frames);
        }
    }
    return target;
}

}  // namespace ptm::sim
