/**
 * @file
 * ExperimentSuite: the declarative, parallel experiment driver.
 *
 * Every reproduction target (Figures 5-7, Tables 1/4, the §6.x
 * ablations) is the same shape: a set of named scenarios, each an
 * independent `System` simulation, followed by a report. The suite makes
 * that shape first-class:
 *
 *     ExperimentSuite suite("fig6_perf_objdet");
 *     for (const std::string &name : workload::benchmark_names())
 *         suite.add(name, ScenarioConfig{}
 *                             .with_victim(name)
 *                             .with_corunner_preset("objdet8")
 *                             .with_scale(0.5)
 *                             .with_measure_ops(600'000));
 *     SuiteResult result = suite.run();
 *     print_improvement_table(result);
 *
 * run() executes every scenario leg (two legs per Paired entry: buddy
 * baseline and PTEMagnet) concurrently on a thread pool — `System`s
 * share no mutable state, so results are bit-identical to a serial run —
 * and writes `BENCH_<suite>.json` with the full machine-readable result
 * set so the repo's perf trajectory can be tracked by tools.
 *
 * `run_scenario`/`run_paired` (sim/experiment.hpp) stay the thin
 * primitives this driver composes.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"

namespace ptm::sim {

/// How one registered scenario is executed.
enum class RunKind {
    Single,  ///< one run with the config's own policy
    /// Two runs: buddy baseline vs the config's own policy — PTEMagnet
    /// when the config names none (the Figure 6/7 bars).
    Paired,
};

/// One registered scenario.
struct SuiteEntry {
    std::string name;      ///< unique within the suite
    ScenarioConfig config;
    RunKind kind = RunKind::Paired;
    std::string sweep_param;  ///< parameter name when part of a sweep
    double sweep_value = 0.0; ///< parameter value (numeric sweeps)
    std::string sweep_text;   ///< parameter value (text sweeps)
};

/// Terminal state of one entry after run().
enum class EntryStatus {
    Ok,      ///< every leg completed
    Failed,  ///< a leg threw SimError (after exhausting retries)
};

/// Outcome of one entry; `single` or `paired` is filled per `kind`.
struct EntryResult {
    SuiteEntry entry;
    ScenarioResult single;
    PairedResult paired;
    EntryStatus status = EntryStatus::Ok;
    std::string error;      ///< first SimError message when Failed
    unsigned attempts = 0;  ///< run_scenario calls spent on this entry
    /// Every failed attempt's SimError message, in occurrence order —
    /// retried-then-succeeded legs leave their history here too, so a
    /// flaky entry is distinguishable from a clean one.
    std::vector<std::string> attempt_errors;

    bool is_paired() const { return entry.kind == RunKind::Paired; }
    bool failed() const { return status == EntryStatus::Failed; }

    /// The run of interest: the PTEMagnet leg of a pair, else the single
    /// run itself.
    const ScenarioResult &
    primary() const
    {
        return is_paired() ? paired.ptemagnet : single;
    }

    /// Paired improvement (baseline vs PTEMagnet); 0 for Single entries.
    double
    improvement_percent() const
    {
        return is_paired() ? paired.improvement_percent() : 0.0;
    }
};

/// Everything a suite run produced, in registration order.
class SuiteResult {
  public:
    const std::string &suite_name() const { return suite_name_; }
    /// Worker threads the run used (for provenance in reports).
    unsigned threads() const { return threads_; }

    const std::vector<EntryResult> &entries() const { return entries_; }
    const EntryResult &at(const std::string &name) const;
    bool has(const std::string &name) const;

    /// improvement_percent() of every completed Paired entry, in order
    /// (failed entries contribute nothing — see EntryStatus).
    std::vector<double> improvements() const;
    /// Entries whose status is Failed.
    std::size_t failed_count() const;
    /// The paper's "Geomean" bar over all Paired entries.
    double geomean() const;

    Json to_json() const;

    /**
     * Write to_json() to `<dir>/BENCH_<suite>.json`. @p dir defaults to
     * $PTM_BENCH_DIR, falling back to the working directory. Returns the
     * path written. Crash-safe: the document is written to a temporary
     * file and atomically renamed into place, so a reader (or a crash
     * mid-write) never observes a truncated BENCH file.
     */
    std::string write_json(const std::string &dir = "") const;

  private:
    friend class ExperimentSuite;

    std::string suite_name_;
    unsigned threads_ = 1;
    std::vector<EntryResult> entries_;
};

/// Knobs for ExperimentSuite::run().
struct SuiteOptions {
    /// Worker threads; 0 = PTM_SUITE_THREADS or hardware concurrency.
    unsigned threads = 0;
    bool write_json = true;      ///< emit BENCH_<suite>.json after the run
    std::string json_dir;        ///< see SuiteResult::write_json
    bool announce = true;        ///< one-line progress note on stderr
    /// Extra run_scenario attempts per leg after a SimError before the
    /// entry is marked Failed. Retries are deterministic re-runs: useful
    /// when a probabilistic FaultPlan made the failure seed-dependent.
    unsigned retries = 0;
};

class ExperimentSuite {
  public:
    explicit ExperimentSuite(std::string name);

    /**
     * Register scenario @p name. Paired entries run a buddy baseline leg
     * against the config's own policy (PTEMagnet when none is named);
     * Single entries run exactly as configured. Returns the stored
     * config for further tweaks. Duplicate names are fatal.
     */
    ScenarioConfig &add(const std::string &name, ScenarioConfig config,
                        RunKind kind = RunKind::Paired);

    /**
     * Parameter sweep: register one entry per value, each a copy of
     * @p base with @p param set to the value, named
     * "<label>/<param>=<value>". Supported params: reservation_pages,
     * scale, measure_ops, seed, corunner_warmup_ops, pressure_every
     * (periodic FaultPlan pressure cadence in faults; 0 = unarmed), vms
     * (co-resident VM count); unknown names are fatal.
     */
    void sweep(const std::string &label, const std::string &param,
               const std::vector<double> &values, ScenarioConfig base,
               RunKind kind = RunKind::Paired);

    /**
     * Text-valued parameter sweep, for the factory-name axes: "policy"
     * sweeps ScenarioConfig::with_policy over registered allocation
     * policies, "table" sweeps with_table over translation structures —
     * both fail fast (SimError listing registered names) on unknown
     * values. Any numeric parameter of the double overload also works
     * with its value spelled as text. Entries are named
     * "<label>/<param>=<value>" and default to RunKind::Single, since a
     * swept policy IS the run's treatment.
     */
    void sweep(const std::string &label, const std::string &param,
               const std::vector<std::string> &values, ScenarioConfig base,
               RunKind kind = RunKind::Single);

    /**
     * Execute every registered scenario on a thread pool. Reentrant:
     * entries are not consumed, so a suite can be run repeatedly.
     *
     * Crash isolation: a leg that throws SimError is retried up to
     * options.retries times, then its entry is marked EntryStatus::Failed
     * with the error recorded — sibling entries run to completion
     * unaffected and run() still returns (and writes JSON) normally.
     * Only non-SimError exceptions (simulator bugs) propagate.
     */
    SuiteResult run(const SuiteOptions &options = {}) const;

    const std::string &name() const { return name_; }
    std::size_t size() const { return entries_.size(); }
    const std::vector<SuiteEntry> &entries() const { return entries_; }

  private:
    std::string name_;
    std::vector<SuiteEntry> entries_;
};

// ---- reporting helpers ----------------------------------------------

/**
 * The Figure 6/7-style stdout table: one row per Paired entry (name,
 * baseline cycles, PTEMagnet cycles, improvement) plus the Geomean row.
 * @p name_width widens the first column for long benchmark names.
 */
void print_improvement_table(const SuiteResult &result,
                             int name_width = 10);

// ---- JSON serialization ----------------------------------------------

Json to_json(const ScenarioConfig &config);
Json to_json(const ScenarioResult &result);

/// Inverse of to_json(const ScenarioResult&); used by tooling and the
/// round-trip tests.
ScenarioResult scenario_result_from_json(const Json &json);

}  // namespace ptm::sim
