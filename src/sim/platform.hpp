/**
 * @file
 * Platform configuration: the simulated analogue of the paper's Table 2,
 * scaled down (see DESIGN.md §1). One struct gathers every knob so that
 * experiments and ablations can tweak a single value.
 */
#pragma once

#include <cstdint>
#include <string>

#include "cache/hierarchy.hpp"
#include "common/params.hpp"
#include "common/types.hpp"
#include "host/host_kernel.hpp"
#include "tlb/tlb.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::sim {

/// Everything fixed about the simulated machine + VM.
struct PlatformConfig {
    /// Guest-physical memory: 512 MiB (paper VM: 64 GB, scaled ~1:128).
    std::uint64_t guest_frames = 128 * 1024;
    /// Host-physical memory: 896 MiB.
    std::uint64_t host_frames = 224 * 1024;

    cache::HierarchyConfig hierarchy;  ///< 32K L1 / 256K L2 / 2M LLC
    tlb::TlbConfig tlb;                ///< 64-entry L1, 1536-entry STLB

    vm::GuestCostModel guest_costs;
    host::HostCostModel host_costs;

    /// Fixed per-operation core cost (non-memory work).
    Cycles base_op_cycles = 2;
    /// Cost of an mmap() syscall (eager VA allocation is cheap).
    Cycles mmap_cycles = 900;
    /// Per-page cost of munmap teardown.
    Cycles munmap_page_cycles = 250;

    /// Round-robin scheduling quantum, in operations. Small values model
    /// the fine-grained page-fault interleaving of truly concurrent
    /// processes.
    unsigned slice_ops = 2;

    /// Walk-register-file depth: how many independent translations one
    /// core keeps in flight per dispatch batch. The effective batch is
    /// min(walk_batch, remaining slice), so scheduling interleave and
    /// every end-of-run metric are identical at any depth; 1 restores
    /// the historic one-op step loop exactly.
    unsigned walk_batch = 8;
    /// Opt-in MLP timing model: the walk cycles of one batch are charged
    /// as the batch critical path (max) instead of the serial sum,
    /// modelling overlapped page walks. Changes simulated cycles (never
    /// counters), so it is off by default and excluded from the golden
    /// bit-identity contract.
    bool overlapped_walk_timing = false;
    /// Collect a host-time breakdown of the dispatch/walk/retire/stats
    /// stages (two clock reads per stage per batch — measurable overhead,
    /// so off by default; sim_throughput enables it on a side run).
    bool stage_timing = false;

    /// Master seed for scheduler jitter and random replacement.
    std::uint64_t seed = 12345;

    /// Translation structure for both the guest and host page tables,
    /// by pt::make_table name ("radix", "hashed", ...).
    std::string translation_table = "radix";
    /// Table-specific knobs (e.g. "initial_frames" for "hashed").
    PolicyParams table_params;
};

}  // namespace ptm::sim
