/**
 * @file
 * Measurement helpers: the paper's host-PT fragmentation metric (§3.2)
 * and the perf-style metric sets of Tables 1 and 4.
 */
#pragma once

#include "common/stats.hpp"
#include "host/host_kernel.hpp"
#include "sim/system.hpp"
#include "vm/process.hpp"

namespace ptm::sim {

/// Per-group (32 KiB / one gPTE cache line) fragmentation summary.
struct FragmentationReport {
    double average_hpte_lines = 0.0;   ///< the §3.2 metric (1 is perfect)
    double fragmented_fraction = 0.0;  ///< groups whose hPTEs span >1 line
    double max_hpte_lines = 0.0;       ///< worst group
    std::uint64_t groups = 0;          ///< populated 8-page groups seen
};

/**
 * Compute the host-PT fragmentation of @p proc: for every group of eight
 * guest-virtual pages whose gPTEs share one cache line, count the
 * distinct cache lines holding the corresponding host PTEs; average over
 * groups with at least one mapped page.
 */
FragmentationReport host_pt_fragmentation(const vm::Process &proc,
                                          const host::VmInstance &vm);

/**
 * Snapshot the paper's metric set for @p job (Tables 1 and 4):
 * execution_time, cache_misses, tlb_misses, page_walk_cycles,
 * host_pt_walk_cycles, guest/host_pt_mem_accesses, host_pt_fragmentation.
 *
 * The values are read from @p system's stat registry by path (the same
 * source the BENCH stats block is built from); the metric *names* are the
 * paper's, kept stable for golden-snapshot comparability.
 */
MetricSet collect_metrics(const System &system, const Job &job);

}  // namespace ptm::sim
