#include "sim/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace ptm::sim {

bool
Json::as_bool() const
{
    if (!is_bool())
        ptm_fatal("json: not a bool");
    return std::get<bool>(value_);
}

double
Json::as_double() const
{
    if (!is_number())
        ptm_fatal("json: not a number");
    return std::get<double>(value_);
}

std::uint64_t
Json::as_u64() const
{
    double d = as_double();
    if (d < 0.0 || d != std::floor(d))
        ptm_fatal("json: %g is not an unsigned integer", d);
    return static_cast<std::uint64_t>(d);
}

const std::string &
Json::as_string() const
{
    if (!is_string())
        ptm_fatal("json: not a string");
    return std::get<std::string>(value_);
}

const JsonArray &
Json::as_array() const
{
    if (!is_array())
        ptm_fatal("json: not an array");
    return std::get<JsonArray>(value_);
}

const JsonObject &
Json::as_object() const
{
    if (!is_object())
        ptm_fatal("json: not an object");
    return std::get<JsonObject>(value_);
}

const Json &
Json::at(const std::string &key) const
{
    for (const auto &[k, v] : as_object()) {
        if (k == key)
            return v;
    }
    ptm_fatal("json: missing key '%s'", key.c_str());
}

bool
Json::contains(const std::string &key) const
{
    for (const auto &[k, v] : as_object()) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (!is_object())
        ptm_fatal("json: set() on a non-object");
    auto &fields = std::get<JsonObject>(value_);
    for (auto &[k, v] : fields) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    fields.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push_back(Json value)
{
    if (!is_array())
        ptm_fatal("json: push_back() on a non-array");
    std::get<JsonArray>(value_).push_back(std::move(value));
    return *this;
}

// ---- serializer ----------------------------------------------------

namespace {

void
dump_string(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
dump_number(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    if (d == std::floor(d) && std::fabs(d) < 0x1p53) {
        out += strprintf("%lld", static_cast<long long>(d));
        return;
    }
    // %.17g round-trips any double exactly.
    out += strprintf("%.17g", d);
}

void
newline_indent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void
Json::dump_to(std::string &out, int indent, int depth) const
{
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += std::get<bool>(value_) ? "true" : "false";
    } else if (is_number()) {
        dump_number(out, std::get<double>(value_));
    } else if (is_string()) {
        dump_string(out, std::get<std::string>(value_));
    } else if (is_array()) {
        const auto &items = std::get<JsonArray>(value_);
        if (items.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        bool first = true;
        for (const Json &item : items) {
            if (!first)
                out += ',';
            first = false;
            newline_indent(out, indent, depth + 1);
            item.dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += ']';
    } else {
        const auto &fields = std::get<JsonObject>(value_);
        if (fields.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, value] : fields) {
            if (!first)
                out += ',';
            first = false;
            newline_indent(out, indent, depth + 1);
            dump_string(out, key);
            out += indent > 0 ? ": " : ":";
            value.dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += '}';
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// ---- parser ---------------------------------------------------------

namespace {

class Parser {
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parse_document()
    {
        Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        ptm_fatal("json parse error at offset %zu: %s", pos_, what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    take()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail("unexpected character");
    }

    bool
    consume_literal(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parse_value()
    {
        skip_ws();
        switch (peek()) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return Json(parse_string());
          case 't':
            if (!consume_literal("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consume_literal("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consume_literal("null"))
                fail("bad literal");
            return Json(nullptr);
          default: return parse_number();
        }
    }

    Json
    parse_object()
    {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(key, parse_value());
            skip_ws();
            char c = take();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Json
    parse_array()
    {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            char c = take();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string
    parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = take();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = take();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = take();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // We only emit \u for control characters; decode the
                // BMP code point as UTF-8 for generality.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Json
    parse_number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        char *end = nullptr;
        std::string token = text_.substr(start, pos_ - start);
        double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number");
        return Json(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse_document();
}

}  // namespace ptm::sim
