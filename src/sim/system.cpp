#include "sim/system.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/ptemagnet_provider.hpp"
#include "pt/page_table.hpp"
#include "obs/trace_sink.hpp"
#include "sim/fault_injection.hpp"
#include "vm/provider_factory.hpp"
#include "workload/catalog.hpp"

namespace ptm::sim {

Job::Job(unsigned core, vm::Process *process,
         std::unique_ptr<workload::Workload> workload)
    : core_(core), process_(process), workload_(std::move(workload))
{
}

/**
 * WorkloadContext implementation binding a workload to its process: mmap
 * and munmap go through the job's guest kernel and are charged to the job.
 */
class System::JobWorkloadContext final : public workload::WorkloadContext {
  public:
    JobWorkloadContext(System *system, Job *job)
        : system_(system), job_(job)
    {
    }

    Addr
    mmap(Addr bytes) override
    {
        job_->stats_.cycles.inc(system_->config_.mmap_cycles);
        return job_->process_->vas().mmap(bytes);
    }

    void
    munmap(Addr base) override
    {
        // Charge teardown per page currently backed.
        const vm::Vma *vma = job_->process_->vas().find(page_number(base));
        if (vma != nullptr) {
            job_->stats_.cycles.inc(
                system_->config_.munmap_page_cycles * vma->pages());
        }
        job_->slot_->guest->free_region(*job_->process_, base);
    }

    void
    free_page(Addr gva) override
    {
        job_->stats_.cycles.inc(system_->config_.munmap_page_cycles);
        job_->slot_->guest->free_page(*job_->process_, page_number(gva));
    }

  private:
    System *system_;
    Job *job_;
};

System::System(const PlatformConfig &config, unsigned num_cores)
    : config_(config), rng_(config.seed)
{
    host_ = std::make_unique<host::HostKernel>(config_.host_frames,
                                               config_.host_costs);
    if (config_.translation_table != "radix") {
        host_->set_translation_table(config_.translation_table,
                                     config_.table_params);
    }

    // VM 0 boots first so the registration order of single-VM runs stays
    // exactly historic: "vm0" -> "host" -> "vm0.hier".
    boot_slot(config_.guest_frames, /*churn_booted=*/false);

    hierarchy_ = std::make_unique<cache::MemoryHierarchy>(
        config_.hierarchy, num_cores, &rng_);

    // Wire every component into the stat registry up front; jobs add
    // their per-core subtrees as they are created. Registration is
    // pointer capture only — the hot path never consults the registry.
    host_->register_stats(registry_, "host");
    // The shared hierarchy keeps its historic "vm0.hier" path: it is one
    // machine-level component, and path stability matters more than the
    // (single-VM era) prefix.
    hierarchy_->register_stats(registry_, "vm0.hier");

    // Balloon shootdowns: a host backing dropped by unback() may still be
    // cached in the owning VM's nested TLBs (keyed by gfn, so no other
    // VM can alias it).
    host_->on_backing_invalidated =
        [this](std::int32_t vm_id, std::uint64_t gfn) {
            for (auto &slot : slots_) {
                if (slot->vm == nullptr || slot->vm->id() != vm_id)
                    continue;
                for (auto &job : jobs_) {
                    if (job->slot_ == slot.get())
                        job->walker_->invalidate_nested(gfn);
                }
                return;
            }
        };

    batch_depth_ = config_.walk_batch < 1 ? 1 : config_.walk_batch;
    if (batch_depth_ > mmu::WalkRegisterFile::kCapacity)
        batch_depth_ = mmu::WalkRegisterFile::kCapacity;
}

System::~System() = default;

const VmSlot &
System::slot_at(unsigned index) const
{
    if (index >= slots_.size())
        ptm_fatal("no vm slot %u (have %zu)", index, slots_.size());
    return *slots_[index];
}

host::VmInstance &
System::vm_instance(unsigned index)
{
    VmSlot &slot = slot_at(index);
    if (slot.vm == nullptr)
        ptm_panic("vm%u is dead (%s): no host-side instance", index,
                  slot.status.c_str());
    return *slot.vm;
}

unsigned
System::boot_slot(std::uint64_t guest_frames, bool churn_booted)
{
    const unsigned index = static_cast<unsigned>(slots_.size());
    auto slot = std::make_unique<VmSlot>();
    slot->index = index;
    slot->system = this;
    slot->prefix = "vm" + std::to_string(index);
    slot->churn_booted = churn_booted;

    // Throws a recoverable SimError when the host cannot back the boot
    // page-table frames; nothing is registered in that case.
    slot->vm = &host_->create_vm();

    slot->guest = std::make_unique<vm::GuestKernel>(
        guest_frames != 0 ? guest_frames : config_.guest_frames,
        config_.guest_costs);
    if (config_.translation_table != "radix") {
        slot->guest->set_translation_table(config_.translation_table,
                                           config_.table_params);
    }

    slot->host_ctx = mmu::HostContext{
        .page_table = &slot->vm->page_table(),
        .fault_handler =
            mmu::FaultHook(&System::host_fault_thunk, slot.get()),
    };
    // Enable the walker's fused descent when the table really is the
    // radix implementation (it always is on the host side today, but the
    // cast keeps that a local fact rather than an assumption).
    slot->host_ctx.radix =
        dynamic_cast<const pt::PageTable *>(slot->host_ctx.page_table);

    // Stale-translation shootdowns: drop the data-TLB entry on the core
    // of the affected process (scoped to this VM's jobs).
    VmSlot *raw = slot.get();
    slot->guest->on_translation_invalidated =
        [this, raw](std::int32_t pid, std::uint64_t gvpn) {
            for (auto &job : jobs_) {
                if (job->slot_ == raw && job->process_->pid() == pid)
                    job->walker_->invalidate(gvpn);
            }
        };

    slot->guest->register_stats(registry_, slot->prefix);
    if (trace_ != nullptr)
        slot->guest->set_trace_sink(trace_);
    if (injector_ != nullptr) {
        slot->guest->buddy().set_alloc_gate(injector_->guest_gate());
        slot->guest->set_pressure_agent(injector_);
    }
    if (dirty_log_armed_)
        attach_dirty_ring(*slot);

    slots_.push_back(std::move(slot));
    return index;
}

unsigned
System::boot_vm(std::uint64_t guest_frames)
{
    return boot_slot(guest_frames, /*churn_booted=*/false);
}

void
System::set_policy(unsigned index, const std::string &name,
                   const PolicyParams &params)
{
    VmSlot &slot = slot_at(index);
    for (auto &job : jobs_) {
        if (job->slot_ == &slot)
            ptm_fatal("set the allocation policy before adding jobs");
    }
    std::unique_ptr<vm::PhysicalPageProvider> provider =
        vm::make_provider(name, slot.guest.get(), params);
    slot.ptemagnet = dynamic_cast<core::PtemagnetProvider *>(provider.get());
    provider->register_stats(registry_, slot.prefix + ".provider");
    slot.guest->set_provider(std::move(provider));
}

void
System::enable_ptemagnet(unsigned group_pages)
{
    set_policy("ptemagnet",
               PolicyParams{{"group_pages",
                             static_cast<double>(group_pages)}});
}

void
System::arm_fault_injection(FaultInjector &injector)
{
    for (auto &slot : slots_)
        slot->guest->buddy().set_alloc_gate(injector.guest_gate());
    host_->buddy().set_alloc_gate(injector.host_gate());
    for (auto &slot : slots_)
        slot->guest->set_pressure_agent(&injector);
    injector.register_stats(registry_, "fault_injection");
    injector_ = &injector;  // VMs booted later are gated in boot_slot
}

void
System::register_overcommit_stats()
{
    if (ocstats_registered_)
        return;
    ocstats_.register_stats(registry_, "host.overcommit");
    ocstats_registered_ = true;
}

void
System::set_overcommit(const OvercommitPolicy &policy)
{
    if (overcommit_.armed())
        ptm_fatal("overcommit policy already armed");
    if (!policy.armed())
        return;
    if (policy.victim_policy != "largest_backed" &&
        policy.victim_policy != "lowest_index" &&
        policy.victim_policy != "youngest") {
        ptm_fatal("unknown OOM victim policy '%s' (largest_backed, "
                  "lowest_index, youngest)",
                  policy.victim_policy.c_str());
    }
    if (policy.high_watermark_frames < policy.low_watermark_frames)
        ptm_fatal("overcommit high watermark below the low watermark");
    overcommit_ = policy;
    backoff_ = overcommit_.backoff_initial;
    next_sweep_tick_ = 0;
    if (overcommit_.protect_primary && !slots_.empty())
        slots_[0]->oom_protected = true;
    register_overcommit_stats();
}

void
System::set_churn_plan(const ChurnPlan &plan)
{
    if (churn_.armed())
        ptm_fatal("churn plan already armed");
    if (!plan.armed())
        return;
    churn_ = plan;
    churn_cursor_ = 0;
    register_overcommit_stats();
}

void
System::attach_dirty_ring(VmSlot &slot)
{
    slot.dirty_ring = std::make_unique<obs::DirtyRing>(
        dirty_ring_cfg_.ring_entries, dirty_ring_cfg_.epoch_ops,
        total_steps_);
    slot.dirty_ring->stats().register_stats(registry_,
                                            slot.prefix + ".dirty_ring");
}

void
System::arm_dirty_ring(const DirtyRingConfig &config)
{
    if (dirty_log_armed_)
        ptm_fatal("dirty ring already armed");
    if (!config.armed())
        return;
    dirty_ring_cfg_ = config;
    dirty_log_armed_ = true;
    for (auto &slot : slots_)
        attach_dirty_ring(*slot);  // VMs booted later attach in boot_slot
}

void
System::close_dirty_epochs()
{
    for (auto &slot : slots_) {
        if (slot->alive)
            slot->dirty_ring->maybe_close_epoch(total_steps_);
    }
}

void
System::set_trace_sink(obs::TraceSink *sink)
{
    trace_ = sink;
    for (auto &slot : slots_)
        slot->guest->set_trace_sink(sink);
    host_->set_trace_sink(sink);
}

Job &
System::add_job(unsigned vm_index,
                std::unique_ptr<workload::Workload> workload)
{
    VmSlot &slot = slot_at(vm_index);
    if (!slot.alive)
        ptm_fatal("cannot add a job to dead vm%u", vm_index);
    vm::Process &process = slot.guest->create_process(workload->name());
    return make_job(slot, process, std::move(workload));
}

Job &
System::fork_job(Job &parent, std::unique_ptr<workload::Workload> workload)
{
    VmSlot &slot = *parent.slot_;
    vm::Process &child = slot.guest->fork(parent.process());
    Job &job = make_job(slot, child, std::move(workload));
    parent.cow_possible_ = true;
    job.cow_possible_ = true;
    return job;
}

Job &
System::make_job(VmSlot &slot, vm::Process &process,
                 std::unique_ptr<workload::Workload> workload)
{
    // Reuse cores returned by killed VMs before minting fresh ones; with
    // no kills the assignment sequence is the historic jobs_.size().
    unsigned core;
    if (!free_cores_.empty()) {
        core = free_cores_.back();
        free_cores_.pop_back();
    } else {
        if (next_core_ >= hierarchy_->num_cores())
            ptm_fatal("more jobs than cores (%u)", hierarchy_->num_cores());
        core = next_core_++;
    }

    auto job = std::make_unique<Job>(core, &process, std::move(workload));
    job->system_ = this;
    job->slot_ = &slot;
    job->walker_ = std::make_unique<mmu::NestedWalker>(
        core, config_.tlb, hierarchy_.get(), slot.host_ctx);
    job->stat_prefix_ = slot.prefix + ".core" + std::to_string(core);
    const std::string j = job->stat_prefix_ + ".job";
    const obs::ResetScope scope = obs::ResetScope::Measurement;
    registry_.counter(j + ".ops", &job->stats_.ops, scope);
    registry_.counter(j + ".cycles", &job->stats_.cycles, scope);
    registry_.counter(j + ".data_accesses", &job->stats_.data_accesses,
                      scope);
    registry_.counter(j + ".data_mem_accesses",
                      &job->stats_.data_mem_accesses, scope);
    registry_.counter(j + ".data_cycles", &job->stats_.data_cycles, scope);
    job->walker_->register_stats(registry_, job->stat_prefix_);
    job->guest_ctx_ = mmu::GuestContext{
        .page_table = &process.page_table(),
        .fault_handler =
            mmu::FaultHook(&System::guest_fault_thunk, job.get()),
        // The PWC's resume contract only holds for radix hierarchies.
        .use_pwc = process.page_table().radix_levels(),
    };
    job->guest_ctx_.radix =
        dynamic_cast<const pt::PageTable *>(&process.page_table());
    job->workload_ctx_ =
        std::make_unique<JobWorkloadContext>(this, job.get());
    job->workload_->setup(*job->workload_ctx_);

    jobs_.push_back(std::move(job));
    return *jobs_.back();
}

void
System::kill_vm(unsigned index, const char *status, std::string detail)
{
    VmSlot &slot = slot_at(index);
    if (!slot.alive)
        return;

    // Finish the VM's jobs and return their cores to the pool. The job
    // vector itself is never mutated: run_until may be iterating it.
    for (auto &job : jobs_) {
        if (job->slot_ != &slot)
            continue;
        job->finished_ = true;
        if (!job->core_released_) {
            free_cores_.push_back(job->core_);
            job->core_released_ = true;
        }
    }

    slot.alive = false;
    slot.status = status;
    slot.status_detail = std::move(detail);
    slot.backed_pages_at_kill = slot.vm->backed_pages();
    slot.frames_repossessed = host_->destroy_vm(*slot.vm);
    slot.vm = nullptr;
    slot.host_ctx.page_table = nullptr;
    slot.host_ctx.radix = nullptr;
}

// ---- overcommit survival ----------------------------------------------

std::uint64_t
System::reclaim_sweep(std::uint64_t target)
{
    ocstats_.reclaim_sweeps.inc();
    sweep_scratch_.clear();
    for (auto &slot : slots_) {
        if (slot->alive)
            sweep_scratch_.push_back(slot.get());
    }
    if (dirty_log_armed_ && dirty_ring_cfg_.reclaim_by_ws) {
        // Balloon idle VMs first: idle = backed frames beyond the last
        // epoch's working-set estimate. A VM with no closed epoch yet is
        // assumed all-hot (idle 0); stable sort keeps slot order on ties
        // so the disabled and no-estimate cases degrade to the historic
        // index-order sweep.
        ocstats_.ws_guided_sweeps.inc();
        auto idle = [](const VmSlot *slot) -> std::uint64_t {
            const obs::DirtyRing &ring = *slot->dirty_ring;
            if (!ring.has_estimate())
                return 0;
            const std::uint64_t backed = slot->vm->backed_pages();
            const std::uint64_t ws = ring.estimate_pages();
            return backed > ws ? backed - ws : 0;
        };
        std::stable_sort(sweep_scratch_.begin(), sweep_scratch_.end(),
                         [&idle](const VmSlot *a, const VmSlot *b) {
                             return idle(a) > idle(b);
                         });
    }
    std::uint64_t freed = 0;
    for (VmSlot *slot : sweep_scratch_) {
        if (freed >= target)
            break;
        balloon_scratch_.clear();
        std::uint64_t taken = slot->guest->balloon_inflate(
            overcommit_.balloon_step, balloon_scratch_);
        ocstats_.balloon_pages.inc(taken);
        for (std::uint64_t gfn : balloon_scratch_) {
            // Unproductive when the guest never touched the frame: the
            // balloon took a page the host never backed.
            freed += host_->unback(*slot->vm, gfn) ? 1 : 0;
        }
    }
    ocstats_.frames_unbacked.inc(freed);
    return freed;
}

void
System::reclaim_daemon_tick()
{
    ++reclaim_ticks_;
    // Estimates stay fresh on the daemon's own clock so ws-guided
    // sweeps see current epochs even in chunks with no churn tick.
    if (dirty_log_armed_)
        close_dirty_epochs();
    const std::uint64_t free = host_->buddy().free_frames_count();
    if (free >= overcommit_.low_watermark_frames)
        return;
    if (reclaim_ticks_ < next_sweep_tick_) {
        ocstats_.backoff_waits.inc();
        return;
    }
    const std::uint64_t freed =
        reclaim_sweep(overcommit_.high_watermark_frames - free);
    // Bounded exponential backoff: dry sweeps space out (the guests have
    // nothing left to give), a productive sweep resets the cadence.
    backoff_ = freed == 0
                   ? std::min(backoff_ * 2, overcommit_.backoff_max)
                   : overcommit_.backoff_initial;
    next_sweep_tick_ = reclaim_ticks_ + backoff_;
}

int
System::choose_oom_victim(unsigned faulting_index) const
{
    int best = -1;
    for (const auto &slot : slots_) {
        const VmSlot &s = *slot;
        // Never the faulting VM: its walker is mid-descent in its own
        // host page table.
        if (!s.alive || s.oom_protected || s.index == faulting_index)
            continue;
        if (best < 0) {
            best = static_cast<int>(s.index);
            continue;
        }
        const VmSlot &b = *slots_[static_cast<unsigned>(best)];
        if (overcommit_.victim_policy == "largest_backed") {
            if (s.vm->backed_pages() > b.vm->backed_pages())
                best = static_cast<int>(s.index);
        } else if (overcommit_.victim_policy == "youngest") {
            best = static_cast<int>(s.index);  // higher index == younger
        }
        // "lowest_index": keep the first candidate.
    }
    return best;
}

mmu::FaultOutcome
System::handle_host_fault(VmSlot &slot, std::uint64_t gfn)
{
    if (slot.vm == nullptr)
        return {.ok = false};  // fault from a VM killed mid-chunk

    if (overcommit_.armed())
        reclaim_daemon_tick();

    mmu::FaultOutcome out = host_->handle_fault(*slot.vm, gfn);
    if (out.ok || !overcommit_.armed())
        return out;

    // Survival ladder, rung 1: emergency balloon sweep ignoring the
    // backoff clock — the host is out of frames right now.
    ocstats_.emergency_sweeps.inc();
    reclaim_sweep(overcommit_.high_watermark_frames);
    out = host_->handle_fault(*slot.vm, gfn);
    if (out.ok)
        return out;

    // Rung 2: OOM-kill policy-chosen victims until the fault succeeds or
    // no candidate remains. The kill is recorded in the victim's slot —
    // the run itself survives.
    while (overcommit_.oom_kill_enabled) {
        const int victim = choose_oom_victim(slot.index);
        if (victim < 0)
            break;
        ocstats_.oom_kills.inc();
        kill_vm(static_cast<unsigned>(victim), "oom_killed",
                strprintf("host OOM backing vm%u gfn %llu", slot.index,
                          static_cast<unsigned long long>(gfn)));
        out = host_->handle_fault(*slot.vm, gfn);
        if (out.ok)
            return out;
    }
    return out;  // !ok: the walker raises a recoverable SimError
}

// ---- churn engine ------------------------------------------------------

void
System::churn_boot()
{
    ++churn_boot_seq_;
    if (!has_free_core()) {
        ocstats_.churn_boot_failures.inc();
        return;
    }
    unsigned index;
    try {
        index = boot_slot(churn_.guest_frames, /*churn_booted=*/true);
    } catch (const SimError &) {
        // Host too full to admit the VM: a refused boot, not a crash.
        ocstats_.churn_boot_failures.inc();
        return;
    }
    ocstats_.churn_boots.inc();
    workload::WorkloadOptions options;
    options.scale = churn_.scale;
    options.seed = churn_.seed + 7919ULL * churn_boot_seq_;
    add_job(index, workload::make_workload(churn_.workload, options));
}

void
System::churn_kill()
{
    for (auto &slot : slots_) {
        if (slot->churn_booted && slot->alive) {
            ocstats_.churn_kills.inc();
            kill_vm(slot->index, "churn_killed", "seeded churn storm");
            return;
        }
    }
    // No live churn VM to kill: the event is a no-op.
}

void
System::churn_fork()
{
    if (!has_free_core()) {
        ocstats_.churn_boot_failures.inc();
        return;
    }
    std::vector<Job *> candidates;
    for (auto &job : jobs_) {
        if (!job->finished_ && job->slot_->churn_booted &&
            job->slot_->alive) {
            candidates.push_back(job.get());
        }
    }
    if (candidates.empty())
        return;
    Job &parent = *candidates[churn_fork_seq_ % candidates.size()];
    ++churn_fork_seq_;
    workload::WorkloadOptions options;
    options.scale = churn_.scale;
    options.seed = churn_.seed + 104729ULL * churn_fork_seq_;
    try {
        fork_job(parent,
                 workload::make_workload(churn_.workload, options));
        ocstats_.churn_forks.inc();
    } catch (const SimError &) {
        // Guest too full to clone the address space: refused, not fatal.
        ocstats_.churn_boot_failures.inc();
    }
}

void
System::churn_tick()
{
    if (dirty_log_armed_)
        close_dirty_epochs();
    while (churn_cursor_ < churn_.events.size() &&
           churn_.events[churn_cursor_].at_step <= total_steps_) {
        const ChurnEvent &event = churn_.events[churn_cursor_++];
        switch (event.action) {
          case ChurnAction::Boot: churn_boot(); break;
          case ChurnAction::Kill: churn_kill(); break;
          case ChurnAction::Fork: churn_fork(); break;
        }
    }
}

// ---- execution ---------------------------------------------------------

void
System::step(Job &job)
{
    if (functional_mode_) {
        step_functional(job);
        return;
    }

    if (job.finished_ || job.paused_)
        return;

    std::optional<workload::MemOp> op =
        job.workload_->next(*job.workload_ctx_);
    if (!op) {
        job.finished_ = true;
        return;
    }

    // Stamp the trace clock before any emit site can fire: kernel events
    // raised inside translate() inherit this (timestamp, tid).
    if (trace_ != nullptr)
        trace_->set_now(job.stats_.cycles.value(), job.core_);

    Cycles cycles = config_.base_op_cycles;

    // COW break check: only needed once the process has forked children.
    if (op->write && job.cow_possible_) {
        cycles += job.slot_->guest->handle_write(*job.process_,
                                                 page_number(op->gva));
    }

    mmu::TranslationResult trans =
        job.walker_->translate(job.guest_ctx_, op->gva);
    cycles += trans.cycles;

    // PML model: hardware logs the dirtied GPA when a *write walk*
    // retires — TLB hits set no dirty bit worth logging (and gfn is only
    // learned by walks anyway). Same condition as the batched path.
    if (dirty_log_armed_ && op->write && !trans.tlb_hit)
        job.slot_->dirty_ring->log(trans.gfn);

    Addr hpa = trans.hfn * kPageSize + (op->gva & kPageOffsetMask);
    cache::AccessResult data =
        hierarchy_->access(job.core_, hpa, cache::AccessKind::Data);
    cycles += data.latency;

    ++total_steps_;
    job.stats_.ops.inc();
    job.stats_.cycles.inc(cycles);
    job.stats_.data_accesses.inc();
    job.stats_.data_cycles.inc(data.latency);
    if (data.served_by == cache::ServedBy::Memory)
        job.stats_.data_mem_accesses.inc();

    if (trace_ != nullptr && !trans.tlb_hit) {
        trace_->event(
            "walk", "mmu", trace_->now(), trans.cycles, job.core_,
            {{"gva", op->gva},
             {"gpa", trans.gfn * kPageSize + (op->gva & kPageOffsetMask)},
             {"hpa", hpa},
             {"served_by", static_cast<std::uint64_t>(data.served_by)},
             {"walk_cycles", trans.walk_cycles},
             {"faulted", static_cast<std::uint64_t>(trans.faulted)}});
    }
}

template <bool Timed>
unsigned
System::step_batch_impl(Job &job, unsigned max_ops)
{
    using Clock = std::chrono::steady_clock;
    const auto elapsed_ns = [](Clock::time_point from, Clock::time_point to) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                .count());
    };

    if (job.finished_ || job.paused_)
        return 0;
    if (max_ops > mmu::WalkRegisterFile::kCapacity)
        max_ops = mmu::WalkRegisterFile::kCapacity;

    Clock::time_point t0;
    if constexpr (Timed)
        t0 = Clock::now();

    workload::MemOp ops[mmu::WalkRegisterFile::kCapacity];
    unsigned n =
        job.workload_->next_batch(*job.workload_ctx_, ops, max_ops);

    if constexpr (Timed) {
        Clock::time_point t1 = Clock::now();
        stage_times_.dispatch_ns += elapsed_ns(t0, t1);
        t0 = t1;
    }

    if (n == 0) {
        job.finished_ = true;
        return 0;
    }

    mmu::NestedWalker &walker = *job.walker_;
    walker.begin_batch();
    std::uint64_t l1_hits = 0;
    std::uint64_t mem_accesses = 0;
    Cycles cycles = static_cast<Cycles>(n) * config_.base_op_cycles;
    Cycles data_cycles = 0;

    for (unsigned i = 0; i < n; ++i) {
        const workload::MemOp op = ops[i];
        const std::uint64_t gvpn = page_number(op.gva);
        std::uint64_t hfn;
        if (std::optional<std::uint64_t> hit = walker.lookup_l1(gvpn)) {
            ++l1_hits;
            hfn = *hit;
        } else {
            mmu::TranslationResult trans =
                walker.translate_l1_missed(job.guest_ctx_, op.gva);
            cycles += trans.cycles;
            hfn = trans.hfn;
            // Mirrors the serial step(): L1 hits above never log, and
            // trans.tlb_hit here covers the L2 hit case.
            if (dirty_log_armed_ && op.write && !trans.tlb_hit)
                job.slot_->dirty_ring->log(trans.gfn);
        }
        if constexpr (Timed) {
            Clock::time_point t1 = Clock::now();
            stage_times_.walk_ns += elapsed_ns(t0, t1);
            t0 = t1;
        }

        Addr hpa = hfn * kPageSize + (op.gva & kPageOffsetMask);
        cache::AccessResult data =
            hierarchy_->access(job.core_, hpa, cache::AccessKind::Data);
        cycles += data.latency;
        data_cycles += data.latency;
        mem_accesses += static_cast<std::uint64_t>(
            data.served_by == cache::ServedBy::Memory);
        if constexpr (Timed) {
            Clock::time_point t1 = Clock::now();
            stage_times_.retire_ns += elapsed_ns(t0, t1);
            t0 = t1;
        }
    }

    Cycles overlap = walker.end_batch(n, l1_hits);
    if (config_.overlapped_walk_timing)
        cycles -= overlap;

    total_steps_ += n;
    job.stats_.ops.inc(n);
    job.stats_.cycles.inc(cycles);
    job.stats_.data_accesses.inc(n);
    job.stats_.data_cycles.inc(data_cycles);
    job.stats_.data_mem_accesses.inc(mem_accesses);
    if constexpr (Timed)
        stage_times_.stats_ns += elapsed_ns(t0, Clock::now());
    return n;
}

unsigned
System::step_batch(Job &job, unsigned max_ops)
{
    return config_.stage_timing ? step_batch_impl<true>(job, max_ops)
                                : step_batch_impl<false>(job, max_ops);
}

void
System::ensure_backed(VmSlot &slot, std::uint64_t gfn)
{
    // The walker's host leg, reduced to its mapping-state effect: a
    // radix host walk is complete-and-present iff lookup() returns a
    // present entry (the same holds for the hashed table — its probe
    // bound makes lookup and walk agree on absence), and the only
    // mapping-state side effect of a host walk is the lazy-backing
    // fault taken on a missing leaf. Nested-TLB/PWC hits in the
    // detailed run never hide a fault here: a cached translation was
    // walked before, and single-VM replay scenarios (the only ones
    // fast-forward supports) never unback a frame afterwards.
    for (;;) {
        std::optional<pt::Pte> pte = slot.host_ctx.page_table->lookup(gfn);
        if (pte && pte->present())
            return;
        mmu::FaultOutcome fault = slot.host_ctx.fault_handler(gfn);
        if (!fault.ok) {
            ptm_throw("host kernel cannot back guest frame %llu "
                      "(host OOM)",
                      static_cast<unsigned long long>(gfn));
        }
    }
}

void
System::step_functional(Job &job)
{
    if (job.finished_ || job.paused_)
        return;

    std::optional<workload::MemOp> op =
        job.workload_->next(*job.workload_ctx_);
    if (!op) {
        job.finished_ = true;
        return;
    }

    if (op->write && job.cow_possible_) {
        job.slot_->guest->handle_write(*job.process_,
                                       page_number(op->gva));
    }

    const std::uint64_t gvpn = page_number(op->gva);
    pt::TranslationTable &gpt = job.process_->page_table();
    VmSlot &slot = *job.slot_;

    // Fast path: the data page is mapped in both dimensions. Safe to
    // skip the node-frame checks because the op that installed the
    // guest leaf ran the slow path below, which host-backed every
    // guest-PT node frame on the path — and nothing unbacks frames in
    // the scenarios functional mode supports.
    bool mapped = false;
    if (std::optional<pt::Pte> leaf = gpt.lookup(gvpn);
        leaf && leaf->present()) {
        std::optional<pt::Pte> host =
            slot.host_ctx.page_table->lookup(leaf->frame());
        mapped = host && host->present();
    }

    if (!mapped) {
        // Slow path: replay the detailed walker's fault order exactly —
        // per guest walk step, host-back the node frame, then check the
        // entry (guest fault and retry on a non-present one); finally
        // host-back the data page. Fault order decides allocation
        // order, so this is what keeps the mapping state bit-identical
        // to a detailed run's.
        pt::WalkSteps steps;
        for (;;) {
            pt::WalkResult walk = gpt.walk(gvpn, steps);
            bool faulted = false;
            for (unsigned i = 0; i < walk.steps; ++i) {
                ensure_backed(slot, steps[i].node_frame);
                if (!steps[i].pte.present()) {
                    mmu::FaultOutcome fault =
                        job.guest_ctx_.fault_handler(gvpn);
                    if (!fault.ok) {
                        ptm_throw("guest kernel cannot satisfy page "
                                  "fault on gvpn %llu (guest OOM)",
                                  static_cast<unsigned long long>(gvpn));
                    }
                    faulted = true;
                    break;
                }
            }
            if (faulted)
                continue;  // retry against the new PT state
            ensure_backed(slot, steps[walk.steps - 1].pte.frame());
            break;
        }
    }

    // Only the op clocks advance: job ops drive the scenario phase
    // loops, total_steps_ the throughput denominator. Cycle and access
    // counters stay untouched — they are Measurement-scoped and reset
    // at the detailed handover anyway.
    ++total_steps_;
    job.stats_.ops.inc();
}

void
System::flush_microarch()
{
    for (auto &job : jobs_)
        job->walker_->flush_all();
    hierarchy_->flush_all();
}

mmu::FaultOutcome
System::host_fault_thunk(void *ctx, std::uint64_t gfn)
{
    auto *slot = static_cast<VmSlot *>(ctx);
    return slot->system->handle_host_fault(*slot, gfn);
}

mmu::FaultOutcome
System::guest_fault_thunk(void *ctx, std::uint64_t gvpn)
{
    auto *job = static_cast<Job *>(ctx);
    return job->slot_->guest->handle_fault(*job->process_, gvpn);
}

void
System::run_until_init_done(Job &job)
{
    run_until([&job]() {
        return job.finished() || !job.workload().in_init_phase();
    });
}

void
System::run_ops(Job &job, std::uint64_t ops)
{
    std::uint64_t target = job.stats_.ops.value() + ops;
    run_until([&job, target]() {
        return job.finished() || job.stats().ops.value() >= target;
    });
}

void
System::reset_measurement()
{
    registry_.reset(obs::ResetScope::Measurement);
}

}  // namespace ptm::sim
