#include "sim/system.hpp"

#include "common/log.hpp"
#include "core/ptemagnet_provider.hpp"
#include "obs/trace_sink.hpp"
#include "sim/fault_injection.hpp"
#include "vm/provider_factory.hpp"

namespace ptm::sim {

Job::Job(unsigned core, vm::Process *process,
         std::unique_ptr<workload::Workload> workload)
    : core_(core), process_(process), workload_(std::move(workload))
{
}

/**
 * WorkloadContext implementation binding a workload to its process: mmap
 * and munmap go through the guest kernel and are charged to the job.
 */
class System::JobWorkloadContext final : public workload::WorkloadContext {
  public:
    JobWorkloadContext(System *system, Job *job)
        : system_(system), job_(job)
    {
    }

    Addr
    mmap(Addr bytes) override
    {
        job_->stats_.cycles.inc(system_->config_.mmap_cycles);
        return job_->process_->vas().mmap(bytes);
    }

    void
    munmap(Addr base) override
    {
        // Charge teardown per page currently backed.
        const vm::Vma *vma = job_->process_->vas().find(page_number(base));
        if (vma != nullptr) {
            job_->stats_.cycles.inc(
                system_->config_.munmap_page_cycles * vma->pages());
        }
        system_->guest_->free_region(*job_->process_, base);
    }

    void
    free_page(Addr gva) override
    {
        job_->stats_.cycles.inc(system_->config_.munmap_page_cycles);
        system_->guest_->free_page(*job_->process_, page_number(gva));
    }

  private:
    System *system_;
    Job *job_;
};

System::System(const PlatformConfig &config, unsigned num_cores)
    : config_(config), rng_(config.seed)
{
    host_ = std::make_unique<host::HostKernel>(config_.host_frames,
                                               config_.host_costs);
    if (config_.translation_table != "radix") {
        host_->set_translation_table(config_.translation_table,
                                     config_.table_params);
    }
    vm_ = &host_->create_vm();
    guest_ = std::make_unique<vm::GuestKernel>(config_.guest_frames,
                                               config_.guest_costs);
    if (config_.translation_table != "radix") {
        guest_->set_translation_table(config_.translation_table,
                                      config_.table_params);
    }
    hierarchy_ = std::make_unique<cache::MemoryHierarchy>(
        config_.hierarchy, num_cores, &rng_);

    host_ctx_ = mmu::HostContext{
        .page_table = &vm_->page_table(),
        .fault_handler = mmu::FaultHook(&System::host_fault_thunk, this),
    };

    // Stale-translation shootdowns: drop the data-TLB entry on the core
    // of the affected process.
    guest_->on_translation_invalidated =
        [this](std::int32_t pid, std::uint64_t gvpn) {
            for (auto &job : jobs_) {
                if (job->process_->pid() == pid)
                    job->walker_->invalidate(gvpn);
            }
        };

    // Wire every component into the stat registry up front; jobs add
    // their per-core subtrees as they are created. Registration is
    // pointer capture only — the hot path never consults the registry.
    guest_->register_stats(registry_, "vm0");
    host_->register_stats(registry_, "host");
    hierarchy_->register_stats(registry_, "vm0.hier");
}

System::~System() = default;

void
System::set_policy(const std::string &name, const PolicyParams &params)
{
    if (!jobs_.empty())
        ptm_fatal("set the allocation policy before adding jobs");
    std::unique_ptr<vm::PhysicalPageProvider> provider =
        vm::make_provider(name, guest_.get(), params);
    ptemagnet_ = dynamic_cast<core::PtemagnetProvider *>(provider.get());
    provider->register_stats(registry_, "vm0.provider");
    guest_->set_provider(std::move(provider));
}

void
System::enable_ptemagnet(unsigned group_pages)
{
    set_policy("ptemagnet",
               PolicyParams{{"group_pages",
                             static_cast<double>(group_pages)}});
}

void
System::arm_fault_injection(FaultInjector &injector)
{
    guest_->buddy().set_alloc_gate(injector.guest_gate());
    host_->buddy().set_alloc_gate(injector.host_gate());
    guest_->set_pressure_agent(&injector);
    injector.register_stats(registry_, "fault_injection");
}

void
System::set_trace_sink(obs::TraceSink *sink)
{
    trace_ = sink;
    guest_->set_trace_sink(sink);
    host_->set_trace_sink(sink);
}

Job &
System::add_job(std::unique_ptr<workload::Workload> workload)
{
    vm::Process &process = guest_->create_process(workload->name());
    return make_job(process, std::move(workload));
}

Job &
System::fork_job(Job &parent, std::unique_ptr<workload::Workload> workload)
{
    vm::Process &child = guest_->fork(parent.process());
    Job &job = make_job(child, std::move(workload));
    parent.cow_possible_ = true;
    job.cow_possible_ = true;
    return job;
}

Job &
System::make_job(vm::Process &process,
                 std::unique_ptr<workload::Workload> workload)
{
    unsigned core = static_cast<unsigned>(jobs_.size());
    if (core >= hierarchy_->num_cores())
        ptm_fatal("more jobs than cores (%u)", hierarchy_->num_cores());

    auto job = std::make_unique<Job>(core, &process, std::move(workload));
    job->system_ = this;
    job->walker_ = std::make_unique<mmu::NestedWalker>(
        core, config_.tlb, hierarchy_.get(), host_ctx_);
    job->stat_prefix_ = "vm0.core" + std::to_string(core);
    const std::string j = job->stat_prefix_ + ".job";
    const obs::ResetScope scope = obs::ResetScope::Measurement;
    registry_.counter(j + ".ops", &job->stats_.ops, scope);
    registry_.counter(j + ".cycles", &job->stats_.cycles, scope);
    registry_.counter(j + ".data_accesses", &job->stats_.data_accesses,
                      scope);
    registry_.counter(j + ".data_mem_accesses",
                      &job->stats_.data_mem_accesses, scope);
    registry_.counter(j + ".data_cycles", &job->stats_.data_cycles, scope);
    job->walker_->register_stats(registry_, job->stat_prefix_);
    job->guest_ctx_ = mmu::GuestContext{
        .page_table = &process.page_table(),
        .fault_handler =
            mmu::FaultHook(&System::guest_fault_thunk, job.get()),
        // The PWC's resume contract only holds for radix hierarchies.
        .use_pwc = process.page_table().radix_levels(),
    };
    job->workload_ctx_ =
        std::make_unique<JobWorkloadContext>(this, job.get());
    job->workload_->setup(*job->workload_ctx_);

    jobs_.push_back(std::move(job));
    return *jobs_.back();
}

void
System::step(Job &job)
{
    if (job.finished_ || job.paused_)
        return;

    std::optional<workload::MemOp> op =
        job.workload_->next(*job.workload_ctx_);
    if (!op) {
        job.finished_ = true;
        return;
    }

    // Stamp the trace clock before any emit site can fire: kernel events
    // raised inside translate() inherit this (timestamp, tid).
    if (trace_ != nullptr)
        trace_->set_now(job.stats_.cycles.value(), job.core_);

    Cycles cycles = config_.base_op_cycles;

    // COW break check: only needed once the process has forked children.
    if (op->write && job.cow_possible_) {
        cycles += guest_->handle_write(*job.process_,
                                       page_number(op->gva));
    }

    mmu::TranslationResult trans =
        job.walker_->translate(job.guest_ctx_, op->gva);
    cycles += trans.cycles;

    Addr hpa = trans.hfn * kPageSize + (op->gva & kPageOffsetMask);
    cache::AccessResult data =
        hierarchy_->access(job.core_, hpa, cache::AccessKind::Data);
    cycles += data.latency;

    ++total_steps_;
    job.stats_.ops.inc();
    job.stats_.cycles.inc(cycles);
    job.stats_.data_accesses.inc();
    job.stats_.data_cycles.inc(data.latency);
    if (data.served_by == cache::ServedBy::Memory)
        job.stats_.data_mem_accesses.inc();

    if (trace_ != nullptr && !trans.tlb_hit) {
        trace_->event(
            "walk", "mmu", trace_->now(), trans.cycles, job.core_,
            {{"gva", op->gva},
             {"gpa", trans.gfn * kPageSize + (op->gva & kPageOffsetMask)},
             {"hpa", hpa},
             {"served_by", static_cast<std::uint64_t>(data.served_by)},
             {"walk_cycles", trans.walk_cycles},
             {"faulted", static_cast<std::uint64_t>(trans.faulted)}});
    }
}

mmu::FaultOutcome
System::host_fault_thunk(void *ctx, std::uint64_t gfn)
{
    auto *system = static_cast<System *>(ctx);
    return system->host_->handle_fault(*system->vm_, gfn);
}

mmu::FaultOutcome
System::guest_fault_thunk(void *ctx, std::uint64_t gvpn)
{
    auto *job = static_cast<Job *>(ctx);
    return job->system_->guest_->handle_fault(*job->process_, gvpn);
}

void
System::run_until_init_done(Job &job)
{
    run_until([&job]() {
        return job.finished() || !job.workload().in_init_phase();
    });
}

void
System::run_ops(Job &job, std::uint64_t ops)
{
    std::uint64_t target = job.stats_.ops.value() + ops;
    run_until([&job, target]() {
        return job.finished() || job.stats().ops.value() >= target;
    });
}

void
System::reset_measurement()
{
    registry_.reset(obs::ResetScope::Measurement);
}

}  // namespace ptm::sim
