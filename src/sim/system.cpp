#include "sim/system.hpp"

#include <chrono>

#include "common/log.hpp"
#include "core/ptemagnet_provider.hpp"
#include "pt/page_table.hpp"
#include "obs/trace_sink.hpp"
#include "sim/fault_injection.hpp"
#include "vm/provider_factory.hpp"

namespace ptm::sim {

Job::Job(unsigned core, vm::Process *process,
         std::unique_ptr<workload::Workload> workload)
    : core_(core), process_(process), workload_(std::move(workload))
{
}

/**
 * WorkloadContext implementation binding a workload to its process: mmap
 * and munmap go through the guest kernel and are charged to the job.
 */
class System::JobWorkloadContext final : public workload::WorkloadContext {
  public:
    JobWorkloadContext(System *system, Job *job)
        : system_(system), job_(job)
    {
    }

    Addr
    mmap(Addr bytes) override
    {
        job_->stats_.cycles.inc(system_->config_.mmap_cycles);
        return job_->process_->vas().mmap(bytes);
    }

    void
    munmap(Addr base) override
    {
        // Charge teardown per page currently backed.
        const vm::Vma *vma = job_->process_->vas().find(page_number(base));
        if (vma != nullptr) {
            job_->stats_.cycles.inc(
                system_->config_.munmap_page_cycles * vma->pages());
        }
        system_->guest_->free_region(*job_->process_, base);
    }

    void
    free_page(Addr gva) override
    {
        job_->stats_.cycles.inc(system_->config_.munmap_page_cycles);
        system_->guest_->free_page(*job_->process_, page_number(gva));
    }

  private:
    System *system_;
    Job *job_;
};

System::System(const PlatformConfig &config, unsigned num_cores)
    : config_(config), rng_(config.seed)
{
    host_ = std::make_unique<host::HostKernel>(config_.host_frames,
                                               config_.host_costs);
    if (config_.translation_table != "radix") {
        host_->set_translation_table(config_.translation_table,
                                     config_.table_params);
    }
    vm_ = &host_->create_vm();
    guest_ = std::make_unique<vm::GuestKernel>(config_.guest_frames,
                                               config_.guest_costs);
    if (config_.translation_table != "radix") {
        guest_->set_translation_table(config_.translation_table,
                                      config_.table_params);
    }
    hierarchy_ = std::make_unique<cache::MemoryHierarchy>(
        config_.hierarchy, num_cores, &rng_);

    host_ctx_ = mmu::HostContext{
        .page_table = &vm_->page_table(),
        .fault_handler = mmu::FaultHook(&System::host_fault_thunk, this),
    };
    // Enable the walker's fused descent when the table really is the
    // radix implementation (it always is on the host side today, but the
    // cast keeps that a local fact rather than an assumption).
    host_ctx_.radix =
        dynamic_cast<const pt::PageTable *>(host_ctx_.page_table);

    // Stale-translation shootdowns: drop the data-TLB entry on the core
    // of the affected process.
    guest_->on_translation_invalidated =
        [this](std::int32_t pid, std::uint64_t gvpn) {
            for (auto &job : jobs_) {
                if (job->process_->pid() == pid)
                    job->walker_->invalidate(gvpn);
            }
        };

    // Wire every component into the stat registry up front; jobs add
    // their per-core subtrees as they are created. Registration is
    // pointer capture only — the hot path never consults the registry.
    guest_->register_stats(registry_, "vm0");
    host_->register_stats(registry_, "host");
    hierarchy_->register_stats(registry_, "vm0.hier");

    batch_depth_ = config_.walk_batch < 1 ? 1 : config_.walk_batch;
    if (batch_depth_ > mmu::WalkRegisterFile::kCapacity)
        batch_depth_ = mmu::WalkRegisterFile::kCapacity;
}

System::~System() = default;

void
System::set_policy(const std::string &name, const PolicyParams &params)
{
    if (!jobs_.empty())
        ptm_fatal("set the allocation policy before adding jobs");
    std::unique_ptr<vm::PhysicalPageProvider> provider =
        vm::make_provider(name, guest_.get(), params);
    ptemagnet_ = dynamic_cast<core::PtemagnetProvider *>(provider.get());
    provider->register_stats(registry_, "vm0.provider");
    guest_->set_provider(std::move(provider));
}

void
System::enable_ptemagnet(unsigned group_pages)
{
    set_policy("ptemagnet",
               PolicyParams{{"group_pages",
                             static_cast<double>(group_pages)}});
}

void
System::arm_fault_injection(FaultInjector &injector)
{
    guest_->buddy().set_alloc_gate(injector.guest_gate());
    host_->buddy().set_alloc_gate(injector.host_gate());
    guest_->set_pressure_agent(&injector);
    injector.register_stats(registry_, "fault_injection");
}

void
System::set_trace_sink(obs::TraceSink *sink)
{
    trace_ = sink;
    guest_->set_trace_sink(sink);
    host_->set_trace_sink(sink);
}

Job &
System::add_job(std::unique_ptr<workload::Workload> workload)
{
    vm::Process &process = guest_->create_process(workload->name());
    return make_job(process, std::move(workload));
}

Job &
System::fork_job(Job &parent, std::unique_ptr<workload::Workload> workload)
{
    vm::Process &child = guest_->fork(parent.process());
    Job &job = make_job(child, std::move(workload));
    parent.cow_possible_ = true;
    job.cow_possible_ = true;
    return job;
}

Job &
System::make_job(vm::Process &process,
                 std::unique_ptr<workload::Workload> workload)
{
    unsigned core = static_cast<unsigned>(jobs_.size());
    if (core >= hierarchy_->num_cores())
        ptm_fatal("more jobs than cores (%u)", hierarchy_->num_cores());

    auto job = std::make_unique<Job>(core, &process, std::move(workload));
    job->system_ = this;
    job->walker_ = std::make_unique<mmu::NestedWalker>(
        core, config_.tlb, hierarchy_.get(), host_ctx_);
    job->stat_prefix_ = "vm0.core" + std::to_string(core);
    const std::string j = job->stat_prefix_ + ".job";
    const obs::ResetScope scope = obs::ResetScope::Measurement;
    registry_.counter(j + ".ops", &job->stats_.ops, scope);
    registry_.counter(j + ".cycles", &job->stats_.cycles, scope);
    registry_.counter(j + ".data_accesses", &job->stats_.data_accesses,
                      scope);
    registry_.counter(j + ".data_mem_accesses",
                      &job->stats_.data_mem_accesses, scope);
    registry_.counter(j + ".data_cycles", &job->stats_.data_cycles, scope);
    job->walker_->register_stats(registry_, job->stat_prefix_);
    job->guest_ctx_ = mmu::GuestContext{
        .page_table = &process.page_table(),
        .fault_handler =
            mmu::FaultHook(&System::guest_fault_thunk, job.get()),
        // The PWC's resume contract only holds for radix hierarchies.
        .use_pwc = process.page_table().radix_levels(),
    };
    job->guest_ctx_.radix =
        dynamic_cast<const pt::PageTable *>(&process.page_table());
    job->workload_ctx_ =
        std::make_unique<JobWorkloadContext>(this, job.get());
    job->workload_->setup(*job->workload_ctx_);

    jobs_.push_back(std::move(job));
    return *jobs_.back();
}

void
System::step(Job &job)
{
    if (job.finished_ || job.paused_)
        return;

    std::optional<workload::MemOp> op =
        job.workload_->next(*job.workload_ctx_);
    if (!op) {
        job.finished_ = true;
        return;
    }

    // Stamp the trace clock before any emit site can fire: kernel events
    // raised inside translate() inherit this (timestamp, tid).
    if (trace_ != nullptr)
        trace_->set_now(job.stats_.cycles.value(), job.core_);

    Cycles cycles = config_.base_op_cycles;

    // COW break check: only needed once the process has forked children.
    if (op->write && job.cow_possible_) {
        cycles += guest_->handle_write(*job.process_,
                                       page_number(op->gva));
    }

    mmu::TranslationResult trans =
        job.walker_->translate(job.guest_ctx_, op->gva);
    cycles += trans.cycles;

    Addr hpa = trans.hfn * kPageSize + (op->gva & kPageOffsetMask);
    cache::AccessResult data =
        hierarchy_->access(job.core_, hpa, cache::AccessKind::Data);
    cycles += data.latency;

    ++total_steps_;
    job.stats_.ops.inc();
    job.stats_.cycles.inc(cycles);
    job.stats_.data_accesses.inc();
    job.stats_.data_cycles.inc(data.latency);
    if (data.served_by == cache::ServedBy::Memory)
        job.stats_.data_mem_accesses.inc();

    if (trace_ != nullptr && !trans.tlb_hit) {
        trace_->event(
            "walk", "mmu", trace_->now(), trans.cycles, job.core_,
            {{"gva", op->gva},
             {"gpa", trans.gfn * kPageSize + (op->gva & kPageOffsetMask)},
             {"hpa", hpa},
             {"served_by", static_cast<std::uint64_t>(data.served_by)},
             {"walk_cycles", trans.walk_cycles},
             {"faulted", static_cast<std::uint64_t>(trans.faulted)}});
    }
}

template <bool Timed>
unsigned
System::step_batch_impl(Job &job, unsigned max_ops)
{
    using Clock = std::chrono::steady_clock;
    const auto elapsed_ns = [](Clock::time_point from, Clock::time_point to) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                .count());
    };

    if (job.finished_ || job.paused_)
        return 0;
    if (max_ops > mmu::WalkRegisterFile::kCapacity)
        max_ops = mmu::WalkRegisterFile::kCapacity;

    Clock::time_point t0;
    if constexpr (Timed)
        t0 = Clock::now();

    workload::MemOp ops[mmu::WalkRegisterFile::kCapacity];
    unsigned n =
        job.workload_->next_batch(*job.workload_ctx_, ops, max_ops);

    if constexpr (Timed) {
        Clock::time_point t1 = Clock::now();
        stage_times_.dispatch_ns += elapsed_ns(t0, t1);
        t0 = t1;
    }

    if (n == 0) {
        job.finished_ = true;
        return 0;
    }

    mmu::NestedWalker &walker = *job.walker_;
    walker.begin_batch();
    std::uint64_t l1_hits = 0;
    std::uint64_t mem_accesses = 0;
    Cycles cycles = static_cast<Cycles>(n) * config_.base_op_cycles;
    Cycles data_cycles = 0;

    for (unsigned i = 0; i < n; ++i) {
        const workload::MemOp op = ops[i];
        const std::uint64_t gvpn = page_number(op.gva);
        std::uint64_t hfn;
        if (std::optional<std::uint64_t> hit = walker.lookup_l1(gvpn)) {
            ++l1_hits;
            hfn = *hit;
        } else {
            mmu::TranslationResult trans =
                walker.translate_l1_missed(job.guest_ctx_, op.gva);
            cycles += trans.cycles;
            hfn = trans.hfn;
        }
        if constexpr (Timed) {
            Clock::time_point t1 = Clock::now();
            stage_times_.walk_ns += elapsed_ns(t0, t1);
            t0 = t1;
        }

        Addr hpa = hfn * kPageSize + (op.gva & kPageOffsetMask);
        cache::AccessResult data =
            hierarchy_->access(job.core_, hpa, cache::AccessKind::Data);
        cycles += data.latency;
        data_cycles += data.latency;
        mem_accesses += static_cast<std::uint64_t>(
            data.served_by == cache::ServedBy::Memory);
        if constexpr (Timed) {
            Clock::time_point t1 = Clock::now();
            stage_times_.retire_ns += elapsed_ns(t0, t1);
            t0 = t1;
        }
    }

    Cycles overlap = walker.end_batch(n, l1_hits);
    if (config_.overlapped_walk_timing)
        cycles -= overlap;

    total_steps_ += n;
    job.stats_.ops.inc(n);
    job.stats_.cycles.inc(cycles);
    job.stats_.data_accesses.inc(n);
    job.stats_.data_cycles.inc(data_cycles);
    job.stats_.data_mem_accesses.inc(mem_accesses);
    if constexpr (Timed)
        stage_times_.stats_ns += elapsed_ns(t0, Clock::now());
    return n;
}

unsigned
System::step_batch(Job &job, unsigned max_ops)
{
    return config_.stage_timing ? step_batch_impl<true>(job, max_ops)
                                : step_batch_impl<false>(job, max_ops);
}

mmu::FaultOutcome
System::host_fault_thunk(void *ctx, std::uint64_t gfn)
{
    auto *system = static_cast<System *>(ctx);
    return system->host_->handle_fault(*system->vm_, gfn);
}

mmu::FaultOutcome
System::guest_fault_thunk(void *ctx, std::uint64_t gvpn)
{
    auto *job = static_cast<Job *>(ctx);
    return job->system_->guest_->handle_fault(*job->process_, gvpn);
}

void
System::run_until_init_done(Job &job)
{
    run_until([&job]() {
        return job.finished() || !job.workload().in_init_phase();
    });
}

void
System::run_ops(Job &job, std::uint64_t ops)
{
    std::uint64_t target = job.stats_.ops.value() + ops;
    run_until([&job, target]() {
        return job.finished() || job.stats().ops.value() >= target;
    });
}

void
System::reset_measurement()
{
    registry_.reset(obs::ResetScope::Measurement);
}

}  // namespace ptm::sim
