/**
 * @file
 * Deterministic fault injection and memory-pressure episodes.
 *
 * The paper's robustness story (§4.3-§4.4) is that PTEMagnet *degrades
 * gracefully*: an unavailable order-3 chunk falls back to single-frame
 * allocation, and under memory pressure the kernel reclaims parked
 * reservation frames. Neither path is reachable from a well-provisioned
 * scenario, so this module makes them schedulable events:
 *
 * - a FaultPlan is a pure value describing *what* to inject: allocation
 *   denials (per buddy site and order, windowed by call index or drawn
 *   at a seeded probability) and memory-pressure episodes (opened and
 *   closed at guest-fault counts, each sweep reclaiming reservation
 *   frames through the provider);
 * - a FaultInjector is the per-run state machine executing one plan. It
 *   plugs into the simulated machine through two narrow hooks that cost
 *   a single null check when unarmed: mem::AllocGate (consulted by
 *   BuddyAllocator::allocate) and vm::PressureAgent (polled by
 *   GuestKernel::check_memory_pressure).
 *
 * Determinism: the injector's randomness comes only from the plan's seed
 * and the order of simulated events, both of which are fixed per run —
 * so a plan yields bit-identical metrics across repeats and across
 * ExperimentSuite thread counts.
 *
 * Multi-VM runs share one injector: every guest buddy consults the same
 * GuestBuddy gate, so a denial rule's match index counts allocations
 * across all co-resident VMs in simulated order. That order is itself
 * deterministic (serial round-robin scheduling plus the seeded churn
 * schedule), so the determinism contract is unchanged.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mem/buddy_allocator.hpp"
#include "vm/guest_kernel.hpp"

namespace ptm::sim {

/// Which simulated buddy allocator a denial rule applies to.
enum class AllocSite : std::uint8_t {
    GuestBuddy,  ///< the guest kernel's zone (provider + PT nodes + COW)
    HostBuddy,   ///< the host kernel's zone (VM backing + host PT nodes)
};

/**
 * One deterministic allocation-denial rule. A buddy call matches when its
 * site equals @p site and its order equals @p order (or @p order is
 * kAnyOrder). Matching calls are denied while their per-rule match index
 * falls inside [after, after + count), and additionally at @p probability
 * via the injector's seeded RNG.
 */
struct AllocDenyRule {
    static constexpr int kAnyOrder = -1;

    AllocSite site = AllocSite::GuestBuddy;
    int order = kAnyOrder;      ///< restrict to one order; -1 = any
    std::uint64_t after = 0;    ///< match index opening the denial window
    std::uint64_t count = 0;    ///< denials in the window (0 = no window)
    double probability = 0.0;   ///< seeded per-match denial rate
};

/**
 * One memory-pressure episode, in guest-fault time. The episode opens at
 * the @p open_at_fault-th pressure check (one check per handled guest
 * fault), immediately runs a reclaim sweep, repeats a sweep every
 * @p sweep_period further checks while open, and closes @p close_after
 * checks after opening.
 */
struct PressureEpisode {
    std::uint64_t open_at_fault = 0;
    std::uint64_t close_after = 1;
    std::uint64_t sweep_period = 0;  ///< 0 = one sweep, at open only
    /// Frames each sweep asks the provider to reclaim.
    std::uint64_t target_frames = std::numeric_limits<std::uint64_t>::max();
};

/// Counters the injector accumulates over a run (surfaced through
/// sim/metrics when a plan is armed).
struct InjectorStats {
    Counter injected_denials;   ///< buddy calls vetoed by a rule
    Counter pressure_episodes;  ///< episodes opened
    Counter reclaim_sweeps;     ///< sweeps requested from the kernel
    Counter gate_calls;         ///< buddy calls inspected
    Counter pressure_ticks;     ///< pressure checks observed
};

/**
 * The declarative injection schedule. A default-constructed plan is
 * inert (armed() == false) and costs nothing at run time: run_scenario
 * only builds an injector when armed() is true, and the unarmed hooks
 * are null.
 */
struct FaultPlan {
    std::uint64_t seed = 1;  ///< drives probabilistic denial draws only
    std::vector<AllocDenyRule> denials;
    std::vector<PressureEpisode> episodes;

    bool
    armed() const
    {
        return !denials.empty() || !episodes.empty();
    }

    // ---- fluent builders -------------------------------------------
    FaultPlan &
    with_seed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    /// Deny @p count guest-buddy calls at @p order starting from the
    /// @p after-th matching call.
    FaultPlan &
    deny_guest(int order, std::uint64_t count,
               std::uint64_t after = 0)
    {
        denials.push_back({AllocSite::GuestBuddy, order, after, count, 0.0});
        return *this;
    }
    /// Deny matching guest-buddy calls at a seeded @p probability.
    FaultPlan &
    deny_guest_probability(int order, double probability)
    {
        denials.push_back(
            {AllocSite::GuestBuddy, order, 0, 0, probability});
        return *this;
    }
    /// Deny @p count host-buddy calls at @p order starting from the
    /// @p after-th matching call.
    FaultPlan &
    deny_host(int order, std::uint64_t count, std::uint64_t after = 0)
    {
        denials.push_back({AllocSite::HostBuddy, order, after, count, 0.0});
        return *this;
    }
    /// Append one pressure episode.
    FaultPlan &
    pressure(PressureEpisode episode)
    {
        episodes.push_back(episode);
        return *this;
    }

    /**
     * Standing pressure cadence: a sweep every @p every_faults handled
     * guest faults for the rest of the run (the pressure_reclaim bench
     * sweeps this knob as its intensity axis). @p every_faults == 0
     * leaves the plan unchanged.
     */
    FaultPlan &
    periodic_pressure(std::uint64_t every_faults)
    {
        if (every_faults > 0) {
            episodes.push_back(
                {.open_at_fault = every_faults,
                 .close_after = std::numeric_limits<std::uint64_t>::max(),
                 .sweep_period = every_faults});
        }
        return *this;
    }
};

/**
 * Per-run execution state of one FaultPlan. Construct, arm via
 * System::arm_fault_injection (which hands the gates to both buddy
 * allocators and the agent to the guest kernel), run the scenario, read
 * stats(). Not thread-safe: one injector per System, like every other
 * per-run structure.
 */
class FaultInjector final : public vm::PressureAgent {
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /// mem::AllocGate for the guest kernel's buddy allocator.
    mem::AllocGate *guest_gate() { return &guest_gate_; }
    /// mem::AllocGate for the host kernel's buddy allocator.
    mem::AllocGate *host_gate() { return &host_gate_; }

    /// vm::PressureAgent: one call per guest pressure check; returns the
    /// frame target of a due reclaim sweep, or 0.
    std::uint64_t pressure_tick() override;

    const InjectorStats &stats() const { return stats_; }
    const FaultPlan &plan() const { return plan_; }

    /// Register injection counters under "<prefix>.*".
    void
    register_stats(obs::StatRegistry &registry, const std::string &prefix)
    {
        registry.counter(prefix + ".injected_denials",
                         &stats_.injected_denials);
        registry.counter(prefix + ".pressure_episodes",
                         &stats_.pressure_episodes);
        registry.counter(prefix + ".reclaim_sweeps",
                         &stats_.reclaim_sweeps);
        registry.counter(prefix + ".gate_calls", &stats_.gate_calls);
        registry.counter(prefix + ".pressure_ticks",
                         &stats_.pressure_ticks);
    }

  private:
    struct Gate final : mem::AllocGate {
        FaultInjector *owner = nullptr;
        AllocSite site = AllocSite::GuestBuddy;
        bool
        deny(unsigned order) override
        {
            return owner->deny_alloc(site, order);
        }
    };

    struct RuleState {
        std::uint64_t matched = 0;  ///< matching calls seen so far
    };

    struct EpisodeState {
        bool open = false;
        bool done = false;
        std::uint64_t opened_at = 0;
    };

    bool deny_alloc(AllocSite site, unsigned order);

    FaultPlan plan_;
    Rng rng_;
    Gate guest_gate_;
    Gate host_gate_;
    std::vector<RuleState> rule_state_;
    std::vector<EpisodeState> episode_state_;
    std::uint64_t ticks_ = 0;
    InjectorStats stats_;
};

}  // namespace ptm::sim
