#include "sim/metrics.hpp"

#include <cstdio>
#include <set>

#include "pt/page_table.hpp"

namespace ptm::sim {

FragmentationReport
host_pt_fragmentation(const vm::Process &proc, const host::VmInstance &vm)
{
    FragmentationReport report;
    double total_lines = 0.0;
    std::uint64_t fragmented = 0;

    for (const vm::Vma &vma : proc.vas().vmas()) {
        std::uint64_t group_begin =
            vma.begin_page / kPagesPerReservation;
        std::uint64_t group_end =
            (vma.end_page + kPagesPerReservation - 1) /
            kPagesPerReservation;
        for (std::uint64_t group = group_begin; group < group_end;
             ++group) {
            std::set<std::uint64_t> hpte_lines;
            bool any_mapped = false;
            for (unsigned i = 0; i < kPagesPerReservation; ++i) {
                std::uint64_t gvpn = group * kPagesPerReservation + i;
                if (!vma.contains(gvpn))
                    continue;
                std::optional<pt::Pte> pte =
                    proc.page_table().lookup(gvpn);
                if (!pte)
                    continue;
                any_mapped = true;
                std::optional<Addr> hpte =
                    vm.page_table().leaf_entry_paddr(pte->frame());
                if (hpte)
                    hpte_lines.insert(line_number(*hpte));
            }
            if (!any_mapped)
                continue;
            ++report.groups;
            double lines = static_cast<double>(hpte_lines.size());
            total_lines += lines;
            if (lines > report.max_hpte_lines)
                report.max_hpte_lines = lines;
            if (hpte_lines.size() > 1)
                ++fragmented;
        }
    }

    if (report.groups > 0) {
        report.average_hpte_lines =
            total_lines / static_cast<double>(report.groups);
        report.fragmented_fraction =
            static_cast<double>(fragmented) /
            static_cast<double>(report.groups);
    }
    return report;
}

MetricSet
collect_metrics(const Job &job, const host::VmInstance &vm)
{
    MetricSet m;
    const JobCounters &c = job.counters();
    const mmu::WalkerStats &w = job.walker().stats();

    m.set("execution_time", static_cast<double>(c.cycles.value()));
    m.set("cache_misses", static_cast<double>(c.data_mem_accesses.value()));
    m.set("tlb_misses", static_cast<double>(w.tlb_misses.value()));
    m.set("page_walk_cycles", static_cast<double>(w.walk_cycles.value()));
    m.set("host_pt_walk_cycles",
          static_cast<double>(w.host_pt_cycles.value()));
    m.set("guest_pt_mem_accesses",
          static_cast<double>(w.guest_pt_mem_accesses.value()));
    m.set("host_pt_mem_accesses",
          static_cast<double>(w.host_pt_mem_accesses.value()));

    FragmentationReport frag = host_pt_fragmentation(job.process(), vm);
    m.set("host_pt_fragmentation", frag.average_hpte_lines);
    m.set("fragmented_group_fraction", frag.fragmented_fraction);
    return m;
}

void
print_metrics(const MetricSet &metrics, const std::string &title)
{
    std::printf("%s\n", title.c_str());
    for (const auto &[name, value] : metrics.values())
        std::printf("  %-28s %.4g\n", name.c_str(), value);
}

void
print_change_table(const MetricSet &baseline, const MetricSet &experiment,
                   const std::string &title)
{
    std::printf("%s\n", title.c_str());
    std::printf("  %-28s %12s %12s %9s\n", "metric", "baseline",
                "experiment", "change");
    MetricSet delta = experiment.percent_change_from(baseline);
    for (const auto &[name, value] : baseline.values()) {
        if (!experiment.has(name))
            continue;
        std::printf("  %-28s %12.4g %12.4g %+8.1f%%\n", name.c_str(),
                    value, experiment.get(name),
                    delta.has(name) ? delta.get(name) : 0.0);
    }
}

}  // namespace ptm::sim
