#include "sim/metrics.hpp"

#include <set>

#include "common/log.hpp"
#include "pt/page_table.hpp"

namespace ptm::sim {

FragmentationReport
host_pt_fragmentation(const vm::Process &proc, const host::VmInstance &vm)
{
    FragmentationReport report;
    double total_lines = 0.0;
    std::uint64_t fragmented = 0;

    for (const vm::Vma &vma : proc.vas().vmas()) {
        std::uint64_t group_begin =
            vma.begin_page / kPagesPerReservation;
        std::uint64_t group_end =
            (vma.end_page + kPagesPerReservation - 1) /
            kPagesPerReservation;
        for (std::uint64_t group = group_begin; group < group_end;
             ++group) {
            std::set<std::uint64_t> hpte_lines;
            bool any_mapped = false;
            for (unsigned i = 0; i < kPagesPerReservation; ++i) {
                std::uint64_t gvpn = group * kPagesPerReservation + i;
                if (!vma.contains(gvpn))
                    continue;
                std::optional<pt::Pte> pte =
                    proc.page_table().lookup(gvpn);
                if (!pte)
                    continue;
                any_mapped = true;
                std::optional<Addr> hpte =
                    vm.page_table().leaf_entry_paddr(pte->frame());
                if (hpte)
                    hpte_lines.insert(line_number(*hpte));
            }
            if (!any_mapped)
                continue;
            ++report.groups;
            double lines = static_cast<double>(hpte_lines.size());
            total_lines += lines;
            if (lines > report.max_hpte_lines)
                report.max_hpte_lines = lines;
            if (hpte_lines.size() > 1)
                ++fragmented;
        }
    }

    if (report.groups > 0) {
        report.average_hpte_lines =
            total_lines / static_cast<double>(report.groups);
        report.fragmented_fraction =
            static_cast<double>(fragmented) /
            static_cast<double>(report.groups);
    }
    return report;
}

MetricSet
collect_metrics(const System &system, const Job &job)
{
    MetricSet m;
    const obs::StatSnapshot snap = system.stat_registry().snapshot();
    const std::string &p = job.stat_prefix();

    m.set("execution_time", snap.value(p + ".job.cycles"));
    m.set("cache_misses", snap.value(p + ".job.data_mem_accesses"));
    m.set("tlb_misses", snap.value(p + ".walker.tlb_misses"));
    m.set("page_walk_cycles", snap.value(p + ".walker.walk_cycles"));
    m.set("host_pt_walk_cycles", snap.value(p + ".walker.host_pt_cycles"));
    m.set("guest_pt_mem_accesses",
          snap.value(p + ".walker.guest_pt_mem_accesses"));
    m.set("host_pt_mem_accesses",
          snap.value(p + ".walker.host_pt_mem_accesses"));

    // Fragmentation is measured against the job's own VM's host page
    // table; an OOM-killed VM has no host-side table left to inspect.
    if (const host::VmInstance *vm = system.vm_if_alive(job.vm_index())) {
        FragmentationReport frag =
            host_pt_fragmentation(job.process(), *vm);
        m.set("host_pt_fragmentation", frag.average_hpte_lines);
        m.set("fragmented_group_fraction", frag.fragmented_fraction);
    } else {
        m.set("host_pt_fragmentation", 0.0);
        m.set("fragmented_group_fraction", 0.0);
    }
    return m;
}

}  // namespace ptm::sim
