/**
 * @file
 * System assembly and execution: host kernel + one VM + guest kernel +
 * cache hierarchy + one core (MMU) per colocated job, and the round-robin
 * scheduler that interleaves the jobs' memory operations.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "host/host_kernel.hpp"
#include "mmu/nested_walker.hpp"
#include "obs/stat_registry.hpp"
#include "sim/platform.hpp"
#include "vm/guest_kernel.hpp"
#include "workload/workload.hpp"

namespace ptm::core {
class PtemagnetProvider;
}

namespace ptm::obs {
class TraceSink;
}

namespace ptm::sim {

class FaultInjector;

/// Per-job measurement stats, owned by the job and registered under
/// "vm0.core<N>.job.*" with Measurement scope (cleared by
/// System::reset_measurement()).
struct JobStats {
    Counter ops;
    Counter cycles;
    Counter data_accesses;
    Counter data_mem_accesses;  ///< data accesses served by main memory
    Counter data_cycles;
};

class System;

/// Host-nanosecond breakdown of the batched dispatch loop, accumulated
/// only when PlatformConfig::stage_timing is set (host-side provenance,
/// never simulated state).
struct StageTimes {
    std::uint64_t dispatch_ns = 0;  ///< workload next_batch fills
    std::uint64_t walk_ns = 0;      ///< TLB probes + 2D walks + faults
    std::uint64_t retire_ns = 0;    ///< data-cache access per op
    std::uint64_t stats_ns = 0;     ///< end-of-batch counter flushes

    std::uint64_t
    total_ns() const
    {
        return dispatch_ns + walk_ns + retire_ns + stats_ns;
    }
};

/**
 * One colocated application: a guest process driven by a workload on a
 * dedicated core.
 */
class Job {
  public:
    Job(unsigned core, vm::Process *process,
        std::unique_ptr<workload::Workload> workload);

    unsigned core() const { return core_; }
    vm::Process &process() { return *process_; }
    const vm::Process &process() const { return *process_; }
    workload::Workload &workload() { return *workload_; }

    bool finished() const { return finished_; }
    bool paused() const { return paused_; }
    void set_paused(bool paused) { paused_ = paused; }

    const JobStats &stats() const { return stats_; }

    /// Registry path prefix of this job's stats ("vm0.core<N>").
    const std::string &stat_prefix() const { return stat_prefix_; }

    /// Owning system (set when the job is added; never null afterwards).
    const System *system() const { return system_; }

    mmu::NestedWalker &walker() { return *walker_; }
    const mmu::NestedWalker &walker() const { return *walker_; }

  private:
    friend class System;

    unsigned core_;
    System *system_ = nullptr;
    vm::Process *process_;
    std::unique_ptr<workload::Workload> workload_;
    std::unique_ptr<mmu::NestedWalker> walker_;
    mmu::GuestContext guest_ctx_;
    std::unique_ptr<workload::WorkloadContext> workload_ctx_;
    JobStats stats_;
    std::string stat_prefix_;
    bool finished_ = false;
    bool paused_ = false;
    bool cow_possible_ = false;  ///< set after the process is forked
};

/**
 * The whole simulated machine. Construction order matters and is managed
 * internally: host kernel -> VM -> guest kernel -> hierarchy -> cores.
 */
class System {
  public:
    /// @param num_cores upper bound on colocated jobs.
    System(const PlatformConfig &config, unsigned num_cores);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Install the guest allocation policy by factory name (call before
     * any job exists, at most once per System). Registers the provider's
     * counters under "vm0.provider".
     * @throws SimError if @p name is not registered.
     */
    void set_policy(const std::string &name,
                    const PolicyParams &params = {});

    /// Switch the guest kernel to PTEMagnet (call before any job runs).
    /// Equivalent to set_policy("ptemagnet", {{"group_pages", ...}}).
    /// @param group_pages reservation granularity (ablation knob).
    void enable_ptemagnet(unsigned group_pages = kPagesPerReservation);
    bool ptemagnet_enabled() const { return ptemagnet_ != nullptr; }

    /**
     * Arm deterministic fault injection: hand @p injector's gates to both
     * buddy allocators and its pressure agent to the guest kernel. The
     * injector must outlive this System (declare it first); without this
     * call every hook stays null and the hot path is untouched.
     */
    void arm_fault_injection(FaultInjector &injector);

    /**
     * Add a job running @p workload; calls workload->setup() immediately
     * (eager virtual allocation, no faults yet).
     */
    Job &add_job(std::unique_ptr<workload::Workload> workload);

    /**
     * Fork @p parent's process (COW-sharing all its pages) and drive the
     * child with @p workload on its own core. Marks both jobs as
     * COW-capable so writes check for pending breaks.
     */
    Job &fork_job(Job &parent,
                  std::unique_ptr<workload::Workload> workload);

    /// Execute exactly one operation of @p job (test / tracing hook).
    void step(Job &job);

    /**
     * Execute up to @p max_ops operations of @p job as one dispatch
     * batch through the walk register file: fetch a batch from the
     * workload, issue each op's translation + data access in program
     * order (L1-TLB hits inline), retire the batch, flush counters once.
     * End-of-run metrics are identical to calling step() per op.
     * @return ops executed; 0 marks the job finished.
     *
     * Preconditions (run_until enforces them; direct callers must too):
     * no trace sink armed and the job not COW-capable — both need the
     * per-op serial path.
     */
    unsigned step_batch(Job &job, unsigned max_ops);

    /**
     * Round-robin over non-paused, non-finished jobs in slices of
     * config.slice_ops until @p stop returns true (checked between
     * slices) or every job finished. Templated on the predicate so the
     * per-slice stop check is a direct call, not a std::function hop.
     *
     * Within a slice, ops are dispatched in batches of
     * min(walk_batch, remaining slice) through step_batch(); batches
     * never cross slice boundaries, so scheduling interleave and the
     * stop-check points are identical at every batch depth. Jobs that
     * need per-op handling (armed trace sink, COW-capable process) take
     * the serial step() path.
     */
    template <typename Stop>
    void
    run_until(Stop &&stop)
    {
        const bool batched =
            (batch_depth_ > 1 || config_.stage_timing) &&
            trace_ == nullptr;
        while (!stop()) {
            bool any_alive = false;
            for (auto &job : jobs_) {
                if (job->finished_ || job->paused_)
                    continue;
                any_alive = true;
                if (batched && !job->cow_possible_) {
                    unsigned left = config_.slice_ops;
                    while (left > 0 && !job->finished_) {
                        unsigned want =
                            left < batch_depth_ ? left : batch_depth_;
                        left -= step_batch(*job, want);
                    }
                } else {
                    for (unsigned i = 0;
                         i < config_.slice_ops && !job->finished_; ++i) {
                        step(*job);
                    }
                }
                if (stop())
                    return;
            }
            if (!any_alive)
                return;
        }
    }

    /// Run until @p job leaves its init phase (faulting in its data).
    void run_until_init_done(Job &job);

    /// Run until @p job has executed @p ops more operations.
    void run_ops(Job &job, std::uint64_t ops);

    /// Reset all measurement-window statistics (jobs, walkers, caches) —
    /// exactly the registry entries registered with Measurement scope.
    void reset_measurement();

    vm::GuestKernel &guest() { return *guest_; }
    host::HostKernel &host() { return *host_; }
    host::VmInstance &vm() { return *vm_; }
    const host::VmInstance &vm() const { return *vm_; }
    cache::MemoryHierarchy &hierarchy() { return *hierarchy_; }
    const cache::MemoryHierarchy &hierarchy() const { return *hierarchy_; }
    const PlatformConfig &config() const { return config_; }

    /// Every component's counters and histograms, by hierarchical path.
    obs::StatRegistry &stat_registry() { return registry_; }
    const obs::StatRegistry &stat_registry() const { return registry_; }

    /**
     * Arm (or with nullptr disarm) chrome-trace event emission: walk
     * events from the stepper, fault/reclaim events from the kernels.
     * The sink must outlive this System or be disarmed first. Unarmed,
     * every emit site is a single null check and runs are bit-identical
     * to a build without tracing.
     */
    void set_trace_sink(obs::TraceSink *sink);

    /// Operations executed across all jobs since construction. Unlike the
    /// per-job counters this is never reset by reset_measurement(): it is
    /// the denominator of the simulator-throughput metric.
    std::uint64_t total_steps() const { return total_steps_; }

    /// Dispatch-loop stage breakdown (all zeros unless
    /// config.stage_timing is set). Host-side, never reset.
    const StageTimes &stage_times() const { return stage_times_; }

    std::vector<std::unique_ptr<Job>> &jobs() { return jobs_; }

    /// PTEMagnet provider, when enabled (nullptr otherwise).
    core::PtemagnetProvider *ptemagnet() { return ptemagnet_; }

  private:
    class JobWorkloadContext;

    Job &make_job(vm::Process &process,
                  std::unique_ptr<workload::Workload> workload);

    template <bool Timed>
    unsigned step_batch_impl(Job &job, unsigned max_ops);

    // FaultHook trampolines (bound once per system / per job; see
    // mmu::FaultHook).
    static mmu::FaultOutcome host_fault_thunk(void *ctx,
                                              std::uint64_t gfn);
    static mmu::FaultOutcome guest_fault_thunk(void *ctx,
                                               std::uint64_t gvpn);

    PlatformConfig config_;
    Rng rng_;
    std::unique_ptr<host::HostKernel> host_;
    host::VmInstance *vm_ = nullptr;
    std::unique_ptr<vm::GuestKernel> guest_;
    std::unique_ptr<cache::MemoryHierarchy> hierarchy_;
    mmu::HostContext host_ctx_;
    std::vector<std::unique_ptr<Job>> jobs_;
    core::PtemagnetProvider *ptemagnet_ = nullptr;
    obs::StatRegistry registry_;
    obs::TraceSink *trace_ = nullptr;  ///< normally unarmed
    /// min(config.walk_batch, register-file capacity), at least 1.
    unsigned batch_depth_ = 1;
    StageTimes stage_times_;
    /// Never registered: survives reset_measurement() as the denominator
    /// of the simulator-throughput metric.
    std::uint64_t total_steps_ = 0;
};

}  // namespace ptm::sim
