/**
 * @file
 * System assembly and execution: one host kernel + N guest VMs (each with
 * its own guest kernel, provider, and jobs) sharing the host buddy
 * allocator and cache hierarchy, one core (MMU) per colocated job, and
 * the round-robin scheduler that interleaves the jobs' memory operations.
 *
 * On top of the multi-VM plumbing sits the overcommit-survival layer: a
 * host reclaim daemon (balloon sweeps with bounded exponential backoff),
 * a deterministic OOM-killer whose kills are recorded per VM instead of
 * crashing the run, and a seeded churn engine that boots/kills/forks VMs
 * between run chunks. All of it is inert — one branch per host fault —
 * unless armed, and single-VM configs stay bit-identical to historic runs.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "host/host_kernel.hpp"
#include "mmu/nested_walker.hpp"
#include "obs/dirty_ring.hpp"
#include "obs/stat_registry.hpp"
#include "sim/overcommit.hpp"
#include "sim/platform.hpp"
#include "vm/guest_kernel.hpp"
#include "workload/workload.hpp"

namespace ptm::core {
class PtemagnetProvider;
}

namespace ptm::obs {
class TraceSink;
}

namespace ptm::sim {

class FaultInjector;

/// Per-job measurement stats, owned by the job and registered under
/// "vm<K>.core<N>.job.*" with Measurement scope (cleared by
/// System::reset_measurement()).
struct JobStats {
    Counter ops;
    Counter cycles;
    Counter data_accesses;
    Counter data_mem_accesses;  ///< data accesses served by main memory
    Counter data_cycles;
};

class System;

/// Host-nanosecond breakdown of the batched dispatch loop, accumulated
/// only when PlatformConfig::stage_timing is set (host-side provenance,
/// never simulated state).
struct StageTimes {
    std::uint64_t dispatch_ns = 0;  ///< workload next_batch fills
    std::uint64_t walk_ns = 0;      ///< TLB probes + 2D walks + faults
    std::uint64_t retire_ns = 0;    ///< data-cache access per op
    std::uint64_t stats_ns = 0;     ///< end-of-batch counter flushes

    std::uint64_t
    total_ns() const
    {
        return dispatch_ns + walk_ns + retire_ns + stats_ns;
    }
};

/**
 * One guest VM sharing the host: its host-side instance, guest kernel,
 * walker fault context, and degradation record. Slots are append-only —
 * a killed VM keeps its slot (guest kernel, registered stats, status)
 * with vm == nullptr, so registry paths and indices stay stable.
 */
struct VmSlot {
    unsigned index = 0;              ///< position in System::vm slots
    System *system = nullptr;
    host::VmInstance *vm = nullptr;  ///< null once the VM was killed
    std::unique_ptr<vm::GuestKernel> guest;
    mmu::HostContext host_ctx;       ///< this VM's host-fault context
    core::PtemagnetProvider *ptemagnet = nullptr;
    std::string prefix;              ///< registry namespace ("vm<K>")
    bool alive = true;
    bool oom_protected = false;      ///< never chosen by the OOM-killer
    bool churn_booted = false;       ///< booted by the churn engine
    /// EntryStatus-style degradation record: "alive", "oom_killed",
    /// "churn_killed".
    std::string status = "alive";
    std::string status_detail;
    /// Host frames freed when the VM was killed (0 while alive).
    std::uint64_t frames_repossessed = 0;
    std::uint64_t backed_pages_at_kill = 0;
    /// PML-style dirty ring; null unless System::arm_dirty_ring was
    /// called with an armed config.
    std::unique_ptr<obs::DirtyRing> dirty_ring;
};

/**
 * One colocated application: a guest process driven by a workload on a
 * dedicated core.
 */
class Job {
  public:
    Job(unsigned core, vm::Process *process,
        std::unique_ptr<workload::Workload> workload);

    unsigned core() const { return core_; }
    vm::Process &process() { return *process_; }
    const vm::Process &process() const { return *process_; }
    workload::Workload &workload() { return *workload_; }

    bool finished() const { return finished_; }
    bool paused() const { return paused_; }
    void set_paused(bool paused) { paused_ = paused; }

    const JobStats &stats() const { return stats_; }

    /// Registry path prefix of this job's stats ("vm<K>.core<N>").
    const std::string &stat_prefix() const { return stat_prefix_; }

    /// Owning system (set when the job is added; never null afterwards).
    const System *system() const { return system_; }

    /// Index of the VM slot this job runs in.
    unsigned vm_index() const { return slot_->index; }

    mmu::NestedWalker &walker() { return *walker_; }
    const mmu::NestedWalker &walker() const { return *walker_; }

  private:
    friend class System;

    unsigned core_;
    System *system_ = nullptr;
    VmSlot *slot_ = nullptr;
    vm::Process *process_;
    std::unique_ptr<workload::Workload> workload_;
    std::unique_ptr<mmu::NestedWalker> walker_;
    mmu::GuestContext guest_ctx_;
    std::unique_ptr<workload::WorkloadContext> workload_ctx_;
    JobStats stats_;
    std::string stat_prefix_;
    bool finished_ = false;
    bool paused_ = false;
    bool cow_possible_ = false;  ///< set after the process is forked
    bool core_released_ = false; ///< core returned to the free pool
};

/**
 * The whole simulated machine. Construction order matters and is managed
 * internally: host kernel -> VM 0 -> guest kernel -> hierarchy -> cores.
 * Additional VMs are booted with boot_vm() and appear as later slots.
 */
class System {
  public:
    /// @param num_cores upper bound on colocated jobs (all VMs combined).
    System(const PlatformConfig &config, unsigned num_cores);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Boot an additional guest VM sharing this host. Its components
     * register under "vm<K>.*"; it starts with the kernel's default
     * buddy provider (see the two-argument set_policy).
     * @param guest_frames guest-physical size; 0 = the platform default.
     * @return the new VM's slot index.
     * @throws SimError when the host cannot back the VM's boot frames.
     */
    unsigned boot_vm(std::uint64_t guest_frames = 0);

    unsigned num_vms() const { return static_cast<unsigned>(slots_.size()); }
    bool vm_alive(unsigned index) const { return slot_at(index).alive; }
    const VmSlot &vm_slot(unsigned index) const { return slot_at(index); }

    /**
     * Install VM @p index's guest allocation policy by factory name (call
     * before that VM has jobs, at most once per VM). Registers the
     * provider's counters under "vm<K>.provider".
     * @throws SimError if @p name is not registered.
     */
    void set_policy(unsigned index, const std::string &name,
                    const PolicyParams &params = {});
    /// VM 0's policy (the historic single-VM call).
    void
    set_policy(const std::string &name, const PolicyParams &params = {})
    {
        set_policy(0, name, params);
    }

    /// Switch VM 0 to PTEMagnet (call before any job runs). Equivalent
    /// to set_policy("ptemagnet", {{"group_pages", ...}}).
    /// @param group_pages reservation granularity (ablation knob).
    void enable_ptemagnet(unsigned group_pages = kPagesPerReservation);
    bool ptemagnet_enabled() const { return ptemagnet(0) != nullptr; }

    /**
     * Arm deterministic fault injection: hand @p injector's gates to the
     * host buddy and every guest buddy (current and future VMs) and its
     * pressure agent to the guest kernels. The injector must outlive this
     * System (declare it first); without this call every hook stays null
     * and the hot path is untouched.
     */
    void arm_fault_injection(FaultInjector &injector);

    /**
     * Arm the host overcommit-survival daemon (watermark balloon sweeps,
     * backoff, OOM-kill). Call at most once, before running; a policy
     * with armed() == false is a no-op. Registers daemon counters under
     * "host.overcommit".
     */
    void set_overcommit(const OvercommitPolicy &policy);
    bool overcommit_armed() const { return overcommit_.armed(); }
    const OvercommitStats &overcommit_stats() const { return ocstats_; }

    /// Exclude / include VM @p index as an OOM-kill candidate.
    void
    set_oom_protected(unsigned index, bool protect)
    {
        slot_at(index).oom_protected = protect;
    }

    /**
     * Install the seeded churn schedule (call at most once, before
     * running). Events fire from churn_tick(); arming also registers the
     * "host.overcommit" counters if set_overcommit has not.
     */
    void set_churn_plan(const ChurnPlan &plan);
    bool churn_armed() const { return churn_.armed(); }

    /**
     * Arm per-VM dirty rings (call at most once, before running; a
     * config with armed() == false is a no-op). Every current and
     * future VM gets a ring registered under "vm<K>.dirty_ring"; the
     * stepper logs the gfn of each retired write walk into the owning
     * VM's ring, epochs close on the churn/reclaim slow paths, and —
     * with reclaim_by_ws — balloon sweeps visit VMs in descending
     * idle-memory order. Disarmed, the hot path pays one bool check.
     */
    void arm_dirty_ring(const DirtyRingConfig &config);
    bool dirty_ring_armed() const { return dirty_log_armed_; }
    /// VM @p index's ring, or nullptr when disarmed.
    const obs::DirtyRing *
    dirty_ring(unsigned index) const
    {
        return slot_at(index).dirty_ring.get();
    }

    /**
     * Apply every churn event whose at_step has been reached. Must be
     * called between run chunks, never from inside run_until: boots and
     * forks append to the job vector the scheduler iterates.
     */
    void churn_tick();

    /**
     * Kill VM @p index: finish its jobs (returning their cores to the
     * free pool), repossess its host frames, and record @p status /
     * @p detail in its slot. Idempotent; VM 0 can be killed too (the
     * scenario runner guards its own accesses). Safe between run chunks
     * and from the host fault path of a *different* VM.
     */
    void kill_vm(unsigned index, const char *status, std::string detail);

    /**
     * Add a job running @p workload in VM @p vm_index; calls
     * workload->setup() immediately (eager virtual allocation, no faults
     * yet).
     */
    Job &add_job(unsigned vm_index,
                 std::unique_ptr<workload::Workload> workload);
    /// VM 0 job (the historic single-VM call).
    Job &
    add_job(std::unique_ptr<workload::Workload> workload)
    {
        return add_job(0, std::move(workload));
    }

    /**
     * Fork @p parent's process (COW-sharing all its pages) and drive the
     * child with @p workload on its own core, in the parent's VM. Marks
     * both jobs as COW-capable so writes check for pending breaks.
     */
    Job &fork_job(Job &parent,
                  std::unique_ptr<workload::Workload> workload);

    /// Execute exactly one operation of @p job (test / tracing hook).
    void step(Job &job);

    // ---- functional fast-forward (replay init phases) ---------------
    //
    // In functional mode step() applies each operation's *mapping-state*
    // effects only: COW breaks, guest page faults, and host lazy backing
    // run through the same kernel paths in the same order as a detailed
    // run, but no TLB, cache, or cycle state is touched. The scenario
    // runner uses it to fast-forward a .ptt replay through its recorded
    // warmup/init phases and drop into the detailed model at the
    // init-end marker (ScenarioConfig::replay_fast_forward); see
    // step_functional() for why the resulting mapping state is
    // bit-identical to a detailed run's.

    /// Enter/leave functional mode (affects step() and run_until()).
    void set_functional_mode(bool on) { functional_mode_ = on; }
    bool functional_mode() const { return functional_mode_; }

    /// Flush every core's translation caches and the whole cache
    /// hierarchy: the cold-start state both a fast-forwarded and a
    /// cold_measurement run measure from.
    void flush_microarch();

    /**
     * Execute up to @p max_ops operations of @p job as one dispatch
     * batch through the walk register file: fetch a batch from the
     * workload, issue each op's translation + data access in program
     * order (L1-TLB hits inline), retire the batch, flush counters once.
     * End-of-run metrics are identical to calling step() per op.
     * @return ops executed; 0 marks the job finished.
     *
     * Preconditions (run_until enforces them; direct callers must too):
     * no trace sink armed and the job not COW-capable — both need the
     * per-op serial path.
     */
    unsigned step_batch(Job &job, unsigned max_ops);

    /**
     * Round-robin over non-paused, non-finished jobs in slices of
     * config.slice_ops until @p stop returns true (checked between
     * slices) or every job finished. Templated on the predicate so the
     * per-slice stop check is a direct call, not a std::function hop.
     *
     * Within a slice, ops are dispatched in batches of
     * min(walk_batch, remaining slice) through step_batch(); batches
     * never cross slice boundaries, so scheduling interleave and the
     * stop-check points are identical at every batch depth. Jobs that
     * need per-op handling (armed trace sink, COW-capable process) take
     * the serial step() path.
     *
     * The job vector is never mutated from inside this loop: churn
     * boots/forks happen in churn_tick() between calls, and OOM kills
     * reached through a fault only flip finished_ flags.
     */
    template <typename Stop>
    void
    run_until(Stop &&stop)
    {
        const bool batched =
            (batch_depth_ > 1 || config_.stage_timing) &&
            trace_ == nullptr && !functional_mode_;
        while (!stop()) {
            bool any_alive = false;
            for (auto &job : jobs_) {
                if (job->finished_ || job->paused_)
                    continue;
                any_alive = true;
                if (batched && !job->cow_possible_) {
                    unsigned left = config_.slice_ops;
                    while (left > 0 && !job->finished_) {
                        unsigned want =
                            left < batch_depth_ ? left : batch_depth_;
                        left -= step_batch(*job, want);
                    }
                } else {
                    for (unsigned i = 0;
                         i < config_.slice_ops && !job->finished_; ++i) {
                        step(*job);
                    }
                }
                if (stop())
                    return;
            }
            if (!any_alive)
                return;
        }
    }

    /// Run until @p job leaves its init phase (faulting in its data).
    void run_until_init_done(Job &job);

    /// Run until @p job has executed @p ops more operations.
    void run_ops(Job &job, std::uint64_t ops);

    /// Reset all measurement-window statistics (jobs, walkers, caches) —
    /// exactly the registry entries registered with Measurement scope.
    void reset_measurement();

    /// VM @p index's guest kernel (alive even after a kill: only the
    /// host-side instance dies).
    vm::GuestKernel &guest(unsigned index) { return *slot_at(index).guest; }
    const vm::GuestKernel &
    guest(unsigned index) const
    {
        return *slot_at(index).guest;
    }
    /// VM 0's guest kernel (the historic single-VM accessor).
    vm::GuestKernel &guest() { return guest(0); }

    host::HostKernel &host() { return *host_; }

    /// VM 0's host-side instance (the historic single-VM accessor).
    /// Panics if VM 0 has been killed — use vm_if_alive() when the
    /// scenario can OOM-kill it.
    host::VmInstance &vm() { return vm_instance(0); }
    const host::VmInstance &
    vm() const
    {
        return const_cast<System *>(this)->vm_instance(0);
    }
    /// VM @p index's instance, or nullptr once killed.
    const host::VmInstance *
    vm_if_alive(unsigned index) const
    {
        return slot_at(index).vm;
    }

    cache::MemoryHierarchy &hierarchy() { return *hierarchy_; }
    const cache::MemoryHierarchy &hierarchy() const { return *hierarchy_; }
    const PlatformConfig &config() const { return config_; }

    /// Every component's counters and histograms, by hierarchical path.
    obs::StatRegistry &stat_registry() { return registry_; }
    const obs::StatRegistry &stat_registry() const { return registry_; }

    /**
     * Arm (or with nullptr disarm) chrome-trace event emission: walk
     * events from the stepper, fault/reclaim events from the kernels.
     * The sink must outlive this System or be disarmed first. Unarmed,
     * every emit site is a single null check and runs are bit-identical
     * to a build without tracing.
     */
    void set_trace_sink(obs::TraceSink *sink);

    /// Operations executed across all jobs since construction. Unlike the
    /// per-job counters this is never reset by reset_measurement(): it is
    /// the denominator of the simulator-throughput metric — and the clock
    /// the churn schedule is keyed on.
    std::uint64_t total_steps() const { return total_steps_; }

    /// Dispatch-loop stage breakdown (all zeros unless
    /// config.stage_timing is set). Host-side, never reset.
    const StageTimes &stage_times() const { return stage_times_; }

    std::vector<std::unique_ptr<Job>> &jobs() { return jobs_; }

    /// True when a job slot (free core) is available for a new job.
    bool
    has_free_core() const
    {
        return !free_cores_.empty() ||
               next_core_ < hierarchy_->num_cores();
    }

    /// VM @p index's PTEMagnet provider, when enabled (nullptr otherwise).
    core::PtemagnetProvider *
    ptemagnet(unsigned index) const
    {
        return slot_at(index).ptemagnet;
    }
    /// VM 0's provider (the historic single-VM accessor).
    core::PtemagnetProvider *ptemagnet() { return ptemagnet(0); }

  private:
    class JobWorkloadContext;

    VmSlot &
    slot_at(unsigned index)
    {
        return const_cast<VmSlot &>(
            static_cast<const System *>(this)->slot_at(index));
    }
    const VmSlot &slot_at(unsigned index) const;
    host::VmInstance &vm_instance(unsigned index);

    /// Boot a slot (VM 0 from the constructor, others from boot_vm /
    /// churn_boot) and register its "vm<K>" subtree.
    unsigned boot_slot(std::uint64_t guest_frames, bool churn_booted);

    Job &make_job(VmSlot &slot, vm::Process &process,
                  std::unique_ptr<workload::Workload> workload);

    // ---- overcommit-survival internals -----------------------------
    mmu::FaultOutcome handle_host_fault(VmSlot &slot, std::uint64_t gfn);
    void reclaim_daemon_tick();
    std::uint64_t reclaim_sweep(std::uint64_t target);
    int choose_oom_victim(unsigned faulting_index) const;
    void register_overcommit_stats();

    // ---- dirty-ring internals --------------------------------------
    void attach_dirty_ring(VmSlot &slot);
    void close_dirty_epochs();

    void churn_boot();
    void churn_kill();
    void churn_fork();

    template <bool Timed>
    unsigned step_batch_impl(Job &job, unsigned max_ops);

    /// One functional-mode operation: mapping-state effects only.
    void step_functional(Job &job);
    /// Make guest frame @p gfn host-backed, taking host faults through
    /// the slot's handler exactly as the walker would.
    void ensure_backed(VmSlot &slot, std::uint64_t gfn);

    // FaultHook trampolines (bound once per VM slot / per job; see
    // mmu::FaultHook).
    static mmu::FaultOutcome host_fault_thunk(void *ctx,
                                              std::uint64_t gfn);
    static mmu::FaultOutcome guest_fault_thunk(void *ctx,
                                               std::uint64_t gvpn);

    PlatformConfig config_;
    Rng rng_;
    std::unique_ptr<host::HostKernel> host_;
    /// Stable-address slots, VM 0 first; never shrinks.
    std::vector<std::unique_ptr<VmSlot>> slots_;
    std::unique_ptr<cache::MemoryHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Job>> jobs_;
    obs::StatRegistry registry_;
    obs::TraceSink *trace_ = nullptr;      ///< normally unarmed
    FaultInjector *injector_ = nullptr;    ///< normally unarmed
    /// min(config.walk_batch, register-file capacity), at least 1.
    unsigned batch_depth_ = 1;
    bool functional_mode_ = false;
    StageTimes stage_times_;
    /// Never registered: survives reset_measurement() as the denominator
    /// of the simulator-throughput metric.
    std::uint64_t total_steps_ = 0;

    // Core pool: cores freed by kill_vm are reused before fresh ones.
    std::vector<unsigned> free_cores_;
    unsigned next_core_ = 0;

    // Overcommit daemon state (all inert unless overcommit_.armed()).
    OvercommitPolicy overcommit_;
    OvercommitStats ocstats_;
    bool ocstats_registered_ = false;
    std::uint64_t reclaim_ticks_ = 0;    ///< armed host faults seen
    std::uint64_t next_sweep_tick_ = 0;
    std::uint64_t backoff_ = 0;
    std::vector<std::uint64_t> balloon_scratch_;
    std::vector<VmSlot *> sweep_scratch_;

    // Dirty-ring state (inert unless arm_dirty_ring armed it).
    DirtyRingConfig dirty_ring_cfg_;
    bool dirty_log_armed_ = false;  ///< hot-path flag for the stepper

    // Churn engine state.
    ChurnPlan churn_;
    std::size_t churn_cursor_ = 0;
    std::uint64_t churn_boot_seq_ = 0;   ///< boots attempted (seed salt)
    std::uint64_t churn_fork_seq_ = 0;   ///< forks done (round-robin)
};

}  // namespace ptm::sim
