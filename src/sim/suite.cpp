#include "sim/suite.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ptm::sim {

namespace {

void
apply_sweep_param(ScenarioConfig &config, const std::string &param,
                  double value)
{
    if (param == "reservation_pages")
        config.reservation_pages = static_cast<unsigned>(value);
    else if (param == "scale")
        config.scale = value;
    else if (param == "measure_ops")
        config.measure_ops = static_cast<std::uint64_t>(value);
    else if (param == "seed")
        config.seed = static_cast<std::uint64_t>(value);
    else if (param == "corunner_warmup_ops")
        config.corunner_warmup_ops = static_cast<std::uint64_t>(value);
    else if (param == "pressure_every")
        config.fault_plan.periodic_pressure(
            static_cast<std::uint64_t>(value));
    else if (param == "vms")
        config.with_vms(static_cast<unsigned>(value));
    else
        ptm_fatal("unknown sweep parameter '%s'", param.c_str());
}

/**
 * Text-valued sweep axes: the factory-name parameters sweep registered
 * names directly (with_policy/with_table validate and throw the listing
 * SimError on unknowns); anything else must parse as a number and is
 * forwarded to the numeric overload.
 */
void
apply_sweep_param(ScenarioConfig &config, const std::string &param,
                  const std::string &value)
{
    if (param == "policy") {
        config.with_policy(value);
        return;
    }
    if (param == "table") {
        config.with_table(value);
        return;
    }
    if (param == "workload") {
        config.with_workload(value);
        return;
    }
    char *end = nullptr;
    double numeric = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        ptm_fatal("sweep parameter '%s': non-numeric value '%s'",
                  param.c_str(), value.c_str());
    apply_sweep_param(config, param, numeric);
}

std::string
format_sweep_value(double value)
{
    if (value == std::floor(value) && std::fabs(value) < 0x1p53)
        return strprintf("%lld", static_cast<long long>(value));
    return strprintf("%g", value);
}

}  // namespace

// ---- SuiteResult -----------------------------------------------------

const EntryResult &
SuiteResult::at(const std::string &name) const
{
    for (const EntryResult &entry : entries_) {
        if (entry.entry.name == name)
            return entry;
    }
    ptm_fatal("suite '%s' has no entry '%s'", suite_name_.c_str(),
              name.c_str());
}

bool
SuiteResult::has(const std::string &name) const
{
    for (const EntryResult &entry : entries_) {
        if (entry.entry.name == name)
            return true;
    }
    return false;
}

std::vector<double>
SuiteResult::improvements() const
{
    std::vector<double> percents;
    for (const EntryResult &entry : entries_) {
        if (entry.is_paired() && !entry.failed())
            percents.push_back(entry.improvement_percent());
    }
    return percents;
}

std::size_t
SuiteResult::failed_count() const
{
    std::size_t n = 0;
    for (const EntryResult &entry : entries_)
        n += entry.failed() ? 1 : 0;
    return n;
}

double
SuiteResult::geomean() const
{
    return geomean_improvement(improvements());
}

Json
SuiteResult::to_json() const
{
    Json doc = Json::object();
    doc.set("suite", suite_name_);
    doc.set("threads", threads_);

    Json entries = Json::array();
    for (const EntryResult &entry : entries_) {
        Json e = Json::object();
        e.set("name", entry.entry.name);
        e.set("kind", entry.is_paired() ? "paired" : "single");
        if (!entry.entry.sweep_param.empty()) {
            e.set("sweep_param", entry.entry.sweep_param);
            if (!entry.entry.sweep_text.empty())
                e.set("sweep_value", entry.entry.sweep_text);
            else
                e.set("sweep_value", entry.entry.sweep_value);
        }
        e.set("config", sim::to_json(entry.entry.config));
        e.set("status", entry.failed() ? "failed" : "ok");
        e.set("attempts", entry.attempts);
        if (entry.failed())
            e.set("error", entry.error);
        if (!entry.attempt_errors.empty()) {
            Json errors = Json::array();
            for (const std::string &message : entry.attempt_errors)
                errors.push_back(message);
            e.set("errors", std::move(errors));
        }
        if (entry.is_paired()) {
            e.set("baseline", sim::to_json(entry.paired.baseline));
            e.set("ptemagnet", sim::to_json(entry.paired.ptemagnet));
            e.set("improvement_percent", entry.improvement_percent());
        } else {
            e.set("result", sim::to_json(entry.single));
        }
        entries.push_back(std::move(e));
    }
    doc.set("entries", std::move(entries));

    std::vector<double> percents = improvements();
    if (!percents.empty()) {
        Json summary = Json::object();
        summary.set("paired_entries",
                    static_cast<std::uint64_t>(percents.size()));
        summary.set("geomean_improvement_percent",
                    geomean_improvement(percents));
        doc.set("summary", std::move(summary));
    }
    return doc;
}

std::string
SuiteResult::write_json(const std::string &dir) const
{
    std::string out_dir = dir;
    if (out_dir.empty()) {
        if (const char *env = std::getenv("PTM_BENCH_DIR"))
            out_dir = env;
        else
            out_dir = ".";
    }
    std::string path = out_dir + "/BENCH_" + suite_name_ + ".json";

    // Write-then-rename so a crash (or concurrent reader) never sees a
    // truncated BENCH file: the temp name stays in out_dir so the rename
    // is within one filesystem and therefore atomic.
    std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::trunc);
        if (!out)
            ptm_fatal("cannot write '%s'", tmp_path.c_str());
        out << to_json().dump(2) << '\n';
        out.flush();
        if (!out.good())
            ptm_fatal("short write to '%s'", tmp_path.c_str());
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        ptm_fatal("cannot rename '%s' to '%s'", tmp_path.c_str(),
                  path.c_str());
    }
    return path;
}

// ---- ExperimentSuite -------------------------------------------------

ExperimentSuite::ExperimentSuite(std::string name)
    : name_(std::move(name))
{
}

ScenarioConfig &
ExperimentSuite::add(const std::string &name, ScenarioConfig config,
                     RunKind kind)
{
    for (const SuiteEntry &entry : entries_) {
        if (entry.name == name)
            ptm_fatal("suite '%s': duplicate scenario '%s'",
                      name_.c_str(), name.c_str());
    }
    entries_.push_back(
        SuiteEntry{name, std::move(config), kind, "", 0.0, ""});
    return entries_.back().config;
}

void
ExperimentSuite::sweep(const std::string &label, const std::string &param,
                       const std::vector<double> &values,
                       ScenarioConfig base, RunKind kind)
{
    for (double value : values) {
        ScenarioConfig config = base;
        apply_sweep_param(config, param, value);
        std::string name =
            label + "/" + param + "=" + format_sweep_value(value);
        add(name, std::move(config), kind);
        entries_.back().sweep_param = param;
        entries_.back().sweep_value = value;
    }
}

void
ExperimentSuite::sweep(const std::string &label, const std::string &param,
                       const std::vector<std::string> &values,
                       ScenarioConfig base, RunKind kind)
{
    for (const std::string &value : values) {
        ScenarioConfig config = base;
        apply_sweep_param(config, param, value);
        std::string name = label + "/" + param + "=" + value;
        add(name, std::move(config), kind);
        entries_.back().sweep_param = param;
        entries_.back().sweep_text = value;
    }
}

SuiteResult
ExperimentSuite::run(const SuiteOptions &options) const
{
    SuiteResult result;
    result.suite_name_ = name_;
    result.entries_.reserve(entries_.size());

    std::size_t runs = 0;
    for (const SuiteEntry &entry : entries_) {
        EntryResult &slot = result.entries_.emplace_back();
        slot.entry = entry;
        runs += entry.kind == RunKind::Paired ? 2 : 1;
    }

    unsigned threads =
        options.threads != 0 ? options.threads
                             : ThreadPool::default_threads();
    if (runs < threads)
        threads = runs != 0 ? static_cast<unsigned>(runs) : 1;
    result.threads_ = threads;

    if (options.announce) {
        std::fprintf(stderr,
                     "[suite %s] %zu scenarios, %zu runs, %u threads\n",
                     name_.c_str(), entries_.size(), runs, threads);
    }

    {
        ThreadPool pool(threads);

        // Entry bookkeeping (status / error / attempts) is shared by the
        // two legs of a paired entry, which may fail concurrently.
        std::mutex status_mutex;
        const unsigned retries = options.retries;

        // One leg: run (with retries) and store into its result slot; a
        // SimError after the last attempt marks the whole entry Failed.
        // Anything else — ptm_panic aborts, bad_alloc, logic errors —
        // escapes to the pool and is rethrown from wait(): crash
        // isolation covers *recoverable* per-run errors only.
        auto run_leg = [&status_mutex, retries](EntryResult &slot,
                                                ScenarioResult &out,
                                                ScenarioConfig config) {
            for (unsigned attempt = 0;; ++attempt) {
                {
                    std::lock_guard<std::mutex> lock(status_mutex);
                    ++slot.attempts;
                }
                try {
                    out = run_scenario(config);
                    return;
                } catch (const SimError &e) {
                    {
                        // Record every attempt's error, not just the one
                        // that exhausted the retries: a retried-then-
                        // green leg stays distinguishable from a clean
                        // one in the entry JSON.
                        std::lock_guard<std::mutex> lock(status_mutex);
                        slot.attempt_errors.push_back(e.what());
                    }
                    if (attempt < retries)
                        continue;
                    std::lock_guard<std::mutex> lock(status_mutex);
                    slot.status = EntryStatus::Failed;
                    if (slot.error.empty())
                        slot.error = e.what();
                    return;
                }
            }
        };

        for (EntryResult &slot : result.entries_) {
            if (slot.entry.kind == RunKind::Paired) {
                // The two legs of a pair are independent runs too; the
                // pool executes them concurrently, unlike run_paired.
                pool.submit([&run_leg, &slot]() {
                    ScenarioConfig config = slot.entry.config;
                    config.policy_name = "buddy";
                    run_leg(slot, slot.paired.baseline, std::move(config));
                });
                pool.submit([&run_leg, &slot]() {
                    ScenarioConfig config = slot.entry.config;
                    // Same treatment rule as run_paired: the config's own
                    // policy, upgraded to PTEMagnet when it IS the
                    // baseline.
                    std::string treatment = config.resolved_policy();
                    if (treatment == "buddy")
                        treatment = "ptemagnet";
                    config.policy_name = std::move(treatment);
                    run_leg(slot, slot.paired.ptemagnet,
                            std::move(config));
                });
            } else {
                pool.submit([&run_leg, &slot]() {
                    run_leg(slot, slot.single, slot.entry.config);
                });
            }
        }
        pool.wait();
    }

    if (options.announce && result.failed_count() > 0) {
        std::fprintf(stderr, "[suite %s] %zu of %zu entries failed\n",
                     name_.c_str(), result.failed_count(),
                     result.entries_.size());
    }

    if (options.write_json) {
        std::string path = result.write_json(options.json_dir);
        if (options.announce)
            std::fprintf(stderr, "[suite %s] results -> %s\n",
                         name_.c_str(), path.c_str());
    }
    return result;
}

// ---- reporting -------------------------------------------------------

void
print_improvement_table(const SuiteResult &result, int name_width)
{
    std::printf("%-*s %14s %14s %13s\n", name_width, "benchmark",
                "base cycles", "ptm cycles", "improvement");
    for (const EntryResult &entry : result.entries()) {
        if (!entry.is_paired())
            continue;
        if (entry.failed()) {
            std::printf("%-*s %14s %14s %13s\n", name_width,
                        entry.entry.name.c_str(), "-", "-", "FAILED");
            continue;
        }
        std::printf("%-*s %14llu %14llu %+12.1f%%\n", name_width,
                    entry.entry.name.c_str(),
                    static_cast<unsigned long long>(
                        entry.paired.baseline.victim_cycles),
                    static_cast<unsigned long long>(
                        entry.paired.ptemagnet.victim_cycles),
                    entry.improvement_percent());
    }
    std::printf("%-*s %14s %14s %+12.1f%%\n", name_width, "Geomean", "",
                "", result.geomean());
}

// ---- JSON serialization ----------------------------------------------

Json
to_json(const ScenarioConfig &config)
{
    Json j = Json::object();
    j.set("victim", config.victim);
    if (!config.workload_params.empty()) {
        Json params = Json::object();
        for (const auto &[key, value] : config.workload_params.entries())
            params.set(key, value);
        j.set("workload_params", std::move(params));
    }
    Json corunners = Json::array();
    for (const CorunnerSpec &spec : config.corunners) {
        Json c = Json::object();
        c.set("name", spec.name);
        c.set("workers", spec.workers);
        corunners.push_back(std::move(c));
    }
    j.set("corunners", std::move(corunners));
    j.set("policy", config.resolved_policy());
    if (!config.policy_params.empty()) {
        Json params = Json::object();
        for (const auto &[key, value] : config.policy_params.entries())
            params.set(key, value);
        j.set("policy_params", std::move(params));
    }
    j.set("table", config.resolved_table());
    if (!config.platform.table_params.empty()) {
        Json params = Json::object();
        for (const auto &[key, value] :
             config.platform.table_params.entries())
            params.set(key, value);
        j.set("table_params", std::move(params));
    }
    j.set("reservation_pages", config.reservation_pages);
    j.set("scale", config.scale);
    j.set("measure_ops", config.measure_ops);
    j.set("seed", config.seed);
    j.set("corunner_warmup_ops", config.corunner_warmup_ops);
    j.set("stop_corunners_after_init", config.stop_corunners_after_init);
    j.set("measure_init", config.measure_init);
    // Multi-VM axes only appear when exercised, keeping single-VM BENCH
    // documents byte-stable.
    if (config.multi_vm()) {
        j.set("vms", config.vms);
        if (config.overcommit.armed()) {
            Json oc = Json::object();
            oc.set("low_watermark_frames",
                   config.overcommit.low_watermark_frames);
            oc.set("high_watermark_frames",
                   config.overcommit.high_watermark_frames);
            oc.set("balloon_step", config.overcommit.balloon_step);
            oc.set("backoff_initial", config.overcommit.backoff_initial);
            oc.set("backoff_max", config.overcommit.backoff_max);
            oc.set("victim_policy", config.overcommit.victim_policy);
            oc.set("oom_kill_enabled", config.overcommit.oom_kill_enabled);
            oc.set("protect_primary", config.overcommit.protect_primary);
            j.set("overcommit", std::move(oc));
        }
        if (config.churn.armed()) {
            Json churn = Json::object();
            churn.set("seed", config.churn.seed);
            churn.set("workload", config.churn.workload);
            churn.set("scale", config.churn.scale);
            churn.set("guest_frames", config.churn.guest_frames);
            churn.set("boots",
                      config.churn.count(ChurnAction::Boot));
            churn.set("kills",
                      config.churn.count(ChurnAction::Kill));
            churn.set("forks",
                      config.churn.count(ChurnAction::Fork));
            j.set("churn", std::move(churn));
        }
    }
    // Same only-when-armed contract as the multi-VM axes above.
    if (config.dirty_ring.armed()) {
        Json ring = Json::object();
        ring.set("ring_entries", config.dirty_ring.ring_entries);
        ring.set("epoch_ops", config.dirty_ring.epoch_ops);
        ring.set("reclaim_by_ws", config.dirty_ring.reclaim_by_ws);
        j.set("dirty_ring", std::move(ring));
    }
    return j;
}

Json
to_json(const ScenarioResult &result)
{
    Json j = Json::object();

    Json metrics = Json::object();
    for (const auto &[name, value] : result.metrics.values())
        metrics.set(name, value);
    j.set("metrics", std::move(metrics));

    j.set("victim_cycles", result.victim_cycles);
    j.set("victim_ops", result.victim_ops);
    j.set("victim_rss_pages", result.victim_rss_pages);

    Json frag = Json::object();
    frag.set("average_hpte_lines", result.fragmentation.average_hpte_lines);
    frag.set("fragmented_fraction",
             result.fragmentation.fragmented_fraction);
    frag.set("max_hpte_lines", result.fragmentation.max_hpte_lines);
    frag.set("groups", result.fragmentation.groups);
    j.set("fragmentation", std::move(frag));

    j.set("peak_unused_reservation_fraction",
          result.peak_unused_reservation_fraction);
    j.set("reservations_created", result.reservations_created);
    j.set("part_hits", result.part_hits);
    j.set("buddy_calls", result.buddy_calls);
    j.set("provider_held_pages", result.provider_held_pages);

    Json rob = Json::object();
    rob.set("fault_plan_armed", result.fault_plan_armed);
    rob.set("injected_denials", result.injected_denials);
    rob.set("pressure_episodes", result.pressure_episodes);
    rob.set("reclaim_sweeps", result.reclaim_sweeps);
    rob.set("frames_reclaimed", result.frames_reclaimed);
    rob.set("fallback_singles", result.fallback_singles);
    rob.set("oom_events", result.oom_events);
    // Overcommit-survival telemetry, present only for multi-VM runs so
    // historic single-VM documents keep their exact shape.
    if (!result.vms.empty()) {
        rob.set("host_reclaim_sweeps", result.host_reclaim_sweeps);
        rob.set("host_emergency_sweeps", result.host_emergency_sweeps);
        rob.set("host_backoff_waits", result.host_backoff_waits);
        rob.set("host_balloon_pages", result.host_balloon_pages);
        rob.set("host_frames_unbacked", result.host_frames_unbacked);
        rob.set("oom_kills", result.oom_kills);
        rob.set("churn_boots", result.churn_boots);
        rob.set("churn_kills", result.churn_kills);
        rob.set("churn_forks", result.churn_forks);
        rob.set("churn_boot_failures", result.churn_boot_failures);
        Json vms = Json::array();
        for (const VmRecord &rec : result.vms) {
            Json v = Json::object();
            v.set("vm", rec.vm);
            v.set("status", rec.status);
            if (!rec.status_detail.empty())
                v.set("status_detail", rec.status_detail);
            v.set("balloon_pages", rec.balloon_pages);
            v.set("frames_repossessed", rec.frames_repossessed);
            v.set("backed_pages", rec.backed_pages);
            v.set("walk_cycles", rec.walk_cycles);
            v.set("ops", rec.ops);
            v.set("oom_events", rec.oom_events);
            // Present only under an armed ring, so pre-ring multi-VM
            // documents keep their exact per-VM shape.
            if (result.dirty_ring_armed)
                v.set("ws_estimate_pages", rec.ws_estimate_pages);
            vms.push_back(std::move(v));
        }
        rob.set("vms", std::move(vms));
    }
    // Working-set estimation telemetry, present only under an armed ring.
    if (result.dirty_ring_armed) {
        Json ring = Json::object();
        ring.set("logged", result.dirty_ring_logged);
        ring.set("harvests", result.dirty_ring_harvests);
        ring.set("epochs", result.dirty_ring_epochs);
        ring.set("ws_estimate_pages", result.ws_estimate_pages);
        ring.set("ws_guided_sweeps", result.ws_guided_sweeps);
        rob.set("dirty_ring", std::move(ring));
    }
    j.set("robustness", std::move(rob));

    Json perf = Json::object();
    perf.set("host_seconds", result.host_seconds);
    perf.set("total_ops", result.total_ops);
    perf.set("ops_per_second", result.ops_per_second());
    j.set("sim_perf", std::move(perf));

    // Registry snapshot: counters as numbers, histograms as summary
    // objects, keyed by their hierarchical path in registration order.
    Json stats = Json::object();
    for (const obs::StatSnapshot::Entry &entry : result.stats.entries()) {
        if (entry.is_histogram) {
            const obs::HistogramSummary &h = entry.histogram;
            Json hist = Json::object();
            hist.set("count", h.count);
            hist.set("sum", h.sum);
            hist.set("min", h.min);
            hist.set("max", h.max);
            hist.set("mean", h.mean);
            hist.set("p50", h.p50);
            hist.set("p90", h.p90);
            hist.set("p99", h.p99);
            stats.set(entry.path, std::move(hist));
        } else {
            stats.set(entry.path, entry.value);
        }
    }
    j.set("stats", std::move(stats));
    return j;
}

ScenarioResult
scenario_result_from_json(const Json &json)
{
    ScenarioResult result;
    for (const auto &[name, value] : json.at("metrics").as_object())
        result.metrics.set(name, value.as_double());
    result.victim_cycles = json.at("victim_cycles").as_u64();
    result.victim_ops = json.at("victim_ops").as_u64();
    result.victim_rss_pages = json.at("victim_rss_pages").as_u64();

    const Json &frag = json.at("fragmentation");
    result.fragmentation.average_hpte_lines =
        frag.at("average_hpte_lines").as_double();
    result.fragmentation.fragmented_fraction =
        frag.at("fragmented_fraction").as_double();
    result.fragmentation.max_hpte_lines =
        frag.at("max_hpte_lines").as_double();
    result.fragmentation.groups = frag.at("groups").as_u64();

    result.peak_unused_reservation_fraction =
        json.at("peak_unused_reservation_fraction").as_double();
    result.reservations_created =
        json.at("reservations_created").as_u64();
    result.part_hits = json.at("part_hits").as_u64();
    result.buddy_calls = json.at("buddy_calls").as_u64();
    // Older BENCH files predate the memory-bloat axis; leave the zero.
    if (json.contains("provider_held_pages"))
        result.provider_held_pages =
            json.at("provider_held_pages").as_u64();

    // Older BENCH files predate the robustness block; leave the zeros.
    if (json.contains("robustness")) {
        const Json &rob = json.at("robustness");
        result.fault_plan_armed = rob.at("fault_plan_armed").as_bool();
        result.injected_denials = rob.at("injected_denials").as_u64();
        result.pressure_episodes = rob.at("pressure_episodes").as_u64();
        result.reclaim_sweeps = rob.at("reclaim_sweeps").as_u64();
        result.frames_reclaimed = rob.at("frames_reclaimed").as_u64();
        result.fallback_singles = rob.at("fallback_singles").as_u64();
        result.oom_events = rob.at("oom_events").as_u64();
        // Each multi-VM key guarded on its own: documents from single-VM
        // runs (and older BENCH files) simply lack them.
        if (rob.contains("host_reclaim_sweeps"))
            result.host_reclaim_sweeps =
                rob.at("host_reclaim_sweeps").as_u64();
        if (rob.contains("host_emergency_sweeps"))
            result.host_emergency_sweeps =
                rob.at("host_emergency_sweeps").as_u64();
        if (rob.contains("host_backoff_waits"))
            result.host_backoff_waits =
                rob.at("host_backoff_waits").as_u64();
        if (rob.contains("host_balloon_pages"))
            result.host_balloon_pages =
                rob.at("host_balloon_pages").as_u64();
        if (rob.contains("host_frames_unbacked"))
            result.host_frames_unbacked =
                rob.at("host_frames_unbacked").as_u64();
        if (rob.contains("oom_kills"))
            result.oom_kills = rob.at("oom_kills").as_u64();
        if (rob.contains("churn_boots"))
            result.churn_boots = rob.at("churn_boots").as_u64();
        if (rob.contains("churn_kills"))
            result.churn_kills = rob.at("churn_kills").as_u64();
        if (rob.contains("churn_forks"))
            result.churn_forks = rob.at("churn_forks").as_u64();
        if (rob.contains("churn_boot_failures"))
            result.churn_boot_failures =
                rob.at("churn_boot_failures").as_u64();
        if (rob.contains("vms")) {
            for (const Json &v : rob.at("vms").as_array()) {
                VmRecord rec;
                rec.vm = static_cast<unsigned>(v.at("vm").as_u64());
                rec.status = v.at("status").as_string();
                if (v.contains("status_detail"))
                    rec.status_detail =
                        v.at("status_detail").as_string();
                rec.balloon_pages = v.at("balloon_pages").as_u64();
                rec.frames_repossessed =
                    v.at("frames_repossessed").as_u64();
                rec.backed_pages = v.at("backed_pages").as_u64();
                rec.walk_cycles = v.at("walk_cycles").as_u64();
                rec.ops = v.at("ops").as_u64();
                rec.oom_events = v.at("oom_events").as_u64();
                if (v.contains("ws_estimate_pages"))
                    rec.ws_estimate_pages =
                        v.at("ws_estimate_pages").as_u64();
                result.vms.push_back(std::move(rec));
            }
        }
        // Pre-ring BENCH files lack the block; leave the zeros.
        if (rob.contains("dirty_ring")) {
            const Json &ring = rob.at("dirty_ring");
            result.dirty_ring_armed = true;
            result.dirty_ring_logged = ring.at("logged").as_u64();
            result.dirty_ring_harvests = ring.at("harvests").as_u64();
            result.dirty_ring_epochs = ring.at("epochs").as_u64();
            result.ws_estimate_pages =
                ring.at("ws_estimate_pages").as_u64();
            result.ws_guided_sweeps =
                ring.at("ws_guided_sweeps").as_u64();
        }
    }

    const Json &perf = json.at("sim_perf");
    result.host_seconds = perf.at("host_seconds").as_double();
    result.total_ops = perf.at("total_ops").as_u64();

    // Older BENCH files predate the stats block; leave it empty.
    if (json.contains("stats")) {
        for (const auto &[path, value] : json.at("stats").as_object()) {
            if (value.is_object()) {
                obs::HistogramSummary h;
                h.count = value.at("count").as_u64();
                h.sum = value.at("sum").as_u64();
                h.min = value.at("min").as_u64();
                h.max = value.at("max").as_u64();
                h.mean = value.at("mean").as_double();
                h.p50 = value.at("p50").as_u64();
                h.p90 = value.at("p90").as_u64();
                h.p99 = value.at("p99").as_u64();
                result.stats.add_histogram(path, h);
            } else {
                result.stats.add_counter(path, value.as_double());
            }
        }
    }
    return result;
}

}  // namespace ptm::sim
