/**
 * @file
 * Minimal JSON value type for machine-readable experiment output.
 *
 * The suite driver writes every scenario's result set as
 * `BENCH_<suite>.json` so the perf trajectory of the repo can be tracked
 * by tools instead of scraped from text tables. We need no external
 * dependency for that: this is a small ordered-object JSON model with a
 * serializer and a strict recursive-descent parser (the parser exists so
 * tests can assert that output round-trips, and so future tooling can
 * diff result files in-process).
 *
 * Numbers are stored as doubles; counters up to 2^53 round-trip exactly,
 * far beyond any simulated cycle count.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ptm::sim {

class Json;

/// Object keys keep insertion order: result files should read in the
/// order experiments declare their fields, not alphabetically.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
  public:
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(unsigned u) : value_(static_cast<double>(u)) {}
    Json(std::int64_t i) : value_(static_cast<double>(i)) {}
    Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    static Json object() { return Json(JsonObject{}); }
    static Json array() { return Json(JsonArray{}); }

    bool is_null() const { return holds<std::nullptr_t>(); }
    bool is_bool() const { return holds<bool>(); }
    bool is_number() const { return holds<double>(); }
    bool is_string() const { return holds<std::string>(); }
    bool is_array() const { return holds<JsonArray>(); }
    bool is_object() const { return holds<JsonObject>(); }

    /// Typed accessors; fatal on type mismatch (experiment files are
    /// produced by us — a mismatch is a bug, not user input).
    bool as_bool() const;
    double as_double() const;
    std::uint64_t as_u64() const;
    const std::string &as_string() const;
    const JsonArray &as_array() const;
    const JsonObject &as_object() const;

    /// Object field access; fatal if not an object or key missing.
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;

    /// Set (insert or overwrite) an object field; fatal if not an object.
    Json &set(const std::string &key, Json value);
    /// Append an array element; fatal if not an array.
    Json &push_back(Json value);

    /// Serialize. @p indent > 0 pretty-prints with that many spaces.
    std::string dump(int indent = 0) const;

    /// Strict parse of a complete JSON document; fatal on any error.
    static Json parse(const std::string &text);

  private:
    template <typename T>
    bool
    holds() const
    {
        return std::holds_alternative<T>(value_);
    }

    void dump_to(std::string &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        value_;
};

}  // namespace ptm::sim
