#include "sim/overcommit.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ptm::sim {

void
OvercommitStats::register_stats(obs::StatRegistry &registry,
                                const std::string &prefix)
{
    registry.counter(prefix + ".reclaim_sweeps", &reclaim_sweeps);
    registry.counter(prefix + ".emergency_sweeps", &emergency_sweeps);
    registry.counter(prefix + ".backoff_waits", &backoff_waits);
    registry.counter(prefix + ".balloon_pages", &balloon_pages);
    registry.counter(prefix + ".frames_unbacked", &frames_unbacked);
    registry.counter(prefix + ".ws_guided_sweeps", &ws_guided_sweeps);
    registry.counter(prefix + ".oom_kills", &oom_kills);
    registry.counter(prefix + ".churn_boots", &churn_boots);
    registry.counter(prefix + ".churn_kills", &churn_kills);
    registry.counter(prefix + ".churn_forks", &churn_forks);
    registry.counter(prefix + ".churn_boot_failures",
                     &churn_boot_failures);
}

std::uint64_t
ChurnPlan::count(ChurnAction action) const
{
    std::uint64_t n = 0;
    for (const ChurnEvent &event : events)
        n += event.action == action ? 1 : 0;
    return n;
}

ChurnPlan &
ChurnPlan::event_at(std::uint64_t step, ChurnAction action)
{
    events.push_back({step, action});
    std::stable_sort(events.begin(), events.end(),
                     [](const ChurnEvent &a, const ChurnEvent &b) {
                         return a.at_step < b.at_step;
                     });
    return *this;
}

ChurnPlan
ChurnPlan::storm(std::uint64_t seed, std::uint64_t begin_step,
                 std::uint64_t end_step, std::uint64_t boots,
                 std::uint64_t kills, std::uint64_t forks)
{
    ChurnPlan plan;
    plan.seed = seed;
    Rng rng(seed ^ 0xc4ceb9fe1a85ec53ULL);
    const std::uint64_t span =
        end_step > begin_step ? end_step - begin_step : 1;
    auto draw = [&](ChurnAction action, std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i)
            plan.events.push_back(
                {begin_step + rng.below(span), action});
    };
    draw(ChurnAction::Boot, boots);
    draw(ChurnAction::Kill, kills);
    draw(ChurnAction::Fork, forks);
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const ChurnEvent &a, const ChurnEvent &b) {
                         return a.at_step < b.at_step;
                     });
    return plan;
}

}  // namespace ptm::sim
