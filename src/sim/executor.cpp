#include "sim/executor.hpp"

#include <cstdlib>
#include <utility>

#include "common/log.hpp"

namespace ptm::sim {

unsigned
ThreadPool::default_threads()
{
    if (const char *env = std::getenv("PTM_SUITE_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
        ptm_warn("ignoring invalid PTM_SUITE_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = default_threads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            ptm_panic("submit() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this]() { return queue_.empty() && in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker_loop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !first_error_)
                first_error_ = error;
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

}  // namespace ptm::sim
