/**
 * @file
 * Thread-pool executor for independent simulation runs.
 *
 * Every `System` is fully self-contained (its own host/guest kernels,
 * allocators, caches and RNG — no globals anywhere in the simulator), so
 * scenario runs are embarrassingly parallel. The pool is a plain
 * fixed-size worker set over a FIFO queue: submit() enqueues a task,
 * wait() blocks until the queue is drained and all workers are idle.
 *
 * Tasks must not throw (simulator errors go through ptm_fatal/ptm_panic,
 * which terminate); an escaped exception would std::terminate anyway
 * since workers are plain threads.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptm::sim {

class ThreadPool {
  public:
    /// @param threads worker count; 0 picks default_threads().
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Enqueue @p task for execution by any worker.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.
    void wait();

    unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Worker count used when the caller does not choose one: the
     * PTM_SUITE_THREADS environment variable if set (so CI and scripts
     * can pin parallelism), otherwise std::thread::hardware_concurrency.
     */
    static unsigned default_threads();

  private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable task_ready_;   ///< signalled on submit/stop
    std::condition_variable idle_;         ///< signalled when work drains
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;            ///< tasks popped but unfinished
    bool stopping_ = false;
};

}  // namespace ptm::sim
