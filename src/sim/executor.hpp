/**
 * @file
 * Thread-pool executor for independent simulation runs.
 *
 * Every `System` is fully self-contained (its own host/guest kernels,
 * allocators, caches and RNG — no globals anywhere in the simulator), so
 * scenario runs are embarrassingly parallel. The pool is a plain
 * fixed-size worker set over a FIFO queue: submit() enqueues a task,
 * wait() blocks until the queue is drained and all workers are idle.
 *
 * Exception contract: a task that throws does NOT take the process (or
 * the pool) down. The worker captures the exception, and the *first* one
 * captured is rethrown from the next wait() on the submitting thread —
 * after the queue has fully drained, so sibling tasks still run. Callers
 * that want per-task isolation (ExperimentSuite) catch inside the task;
 * the pool-level capture is the safety net for everything unexpected.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptm::sim {

class ThreadPool {
  public:
    /// @param threads worker count; 0 picks default_threads().
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Enqueue @p task for execution by any worker.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished. Rethrows the first
    /// exception that escaped a task since the previous wait(), if any.
    void wait();

    unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Worker count used when the caller does not choose one: the
     * PTM_SUITE_THREADS environment variable if set (so CI and scripts
     * can pin parallelism), otherwise std::thread::hardware_concurrency.
     */
    static unsigned default_threads();

  private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable task_ready_;   ///< signalled on submit/stop
    std::condition_variable idle_;         ///< signalled when work drains
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;            ///< tasks popped but unfinished
    std::exception_ptr first_error_;       ///< first escaped task exception
    bool stopping_ = false;
};

}  // namespace ptm::sim
