/**
 * @file
 * Host-memory overcommit survival: the policy knobs of the host reclaim
 * daemon (ballooning, bounded-backoff sweeps, deterministic OOM-kill) and
 * the seeded VM churn engine (boot/kill/fork storms).
 *
 * Mechanisms live lower in the stack (GuestKernel::balloon_inflate,
 * HostKernel::unback / destroy_vm); orchestration lives in sim::System,
 * which is the only layer that sees both sides. Everything here is plain
 * data so ScenarioConfig can carry it by value.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::sim {

/**
 * Watermark/backoff policy of the host reclaim daemon. Inert unless
 * armed(); an unarmed System is bit-identical to the historic single-VM
 * path (one branch per host fault).
 *
 * The daemon's clock is armed host faults: each fault below the low
 * watermark may trigger a balloon sweep toward the high watermark, with
 * bounded exponential backoff between unproductive sweeps.
 */
struct OvercommitPolicy {
    /// Sweep when host free frames drop below this. 0 disarms everything.
    std::uint64_t low_watermark_frames = 0;
    /// Sweep target: balloon until free frames reach this.
    std::uint64_t high_watermark_frames = 0;
    /// Frames requested from each VM's balloon per sweep visit.
    std::uint64_t balloon_step = 256;
    /// Daemon ticks (armed host faults) between sweeps after a productive
    /// one; doubled after each unproductive sweep up to backoff_max.
    std::uint64_t backoff_initial = 64;
    std::uint64_t backoff_max = 4096;
    /// OOM victim choice: "largest_backed" (most host frames, lowest
    /// index on ties), "lowest_index", or "youngest".
    std::string victim_policy = "largest_backed";
    /// Allow the OOM-killer as the final rung of the survival ladder.
    bool oom_kill_enabled = true;
    /// Never OOM-kill VM 0 (the measured victim's VM).
    bool protect_primary = true;

    bool armed() const { return low_watermark_frames > 0; }

    // ---- fluent setters --------------------------------------------
    OvercommitPolicy &
    with_watermarks(std::uint64_t low, std::uint64_t high)
    {
        low_watermark_frames = low;
        high_watermark_frames = high;
        return *this;
    }
    OvercommitPolicy &
    with_balloon_step(std::uint64_t frames)
    {
        balloon_step = frames;
        return *this;
    }
    OvercommitPolicy &
    with_backoff(std::uint64_t initial, std::uint64_t max)
    {
        backoff_initial = initial;
        backoff_max = max;
        return *this;
    }
    OvercommitPolicy &
    with_victim_policy(std::string name)
    {
        victim_policy = std::move(name);
        return *this;
    }
    OvercommitPolicy &
    with_oom_kill(bool enabled)
    {
        oom_kill_enabled = enabled;
        return *this;
    }
    OvercommitPolicy &
    with_protect_primary(bool protect)
    {
        protect_primary = protect;
        return *this;
    }
};

/**
 * Per-VM dirty-ring arming (obs/dirty_ring.hpp). Inert unless armed():
 * a disarmed System never touches a ring on the hot path, keeping
 * single-VM golden snapshots byte-stable. When armed alongside an
 * OvercommitPolicy and reclaim_by_ws, the reclaim daemon balloons VMs
 * in descending idle-memory order (backed frames minus the last epoch's
 * working-set estimate) instead of slot order.
 */
struct DirtyRingConfig {
    /// Ring capacity in entries; 0 disarms dirty logging entirely.
    std::uint64_t ring_entries = 0;
    /// Simulated ops per estimation epoch.
    std::uint64_t epoch_ops = 65536;
    /// Feed the estimate to the reclaim daemon's sweep order.
    bool reclaim_by_ws = true;

    bool armed() const { return ring_entries > 0; }

    // ---- fluent setters --------------------------------------------
    DirtyRingConfig &
    with_ring_entries(std::uint64_t entries)
    {
        ring_entries = entries;
        return *this;
    }
    DirtyRingConfig &
    with_epoch_ops(std::uint64_t ops)
    {
        epoch_ops = ops;
        return *this;
    }
    DirtyRingConfig &
    with_reclaim_by_ws(bool enabled)
    {
        reclaim_by_ws = enabled;
        return *this;
    }
};

/// Host-side overcommit + churn activity, registered under
/// "host.overcommit.*" when the policy (or a churn plan) is armed.
struct OvercommitStats {
    Counter reclaim_sweeps;       ///< all sweeps, emergency included
    Counter emergency_sweeps;     ///< sweeps forced by a failing fault
    Counter backoff_waits;        ///< ticks skipped below the watermark
    Counter balloon_pages;        ///< guest frames taken by balloons
    Counter frames_unbacked;      ///< host frames freed by balloon sweeps
    Counter ws_guided_sweeps;     ///< sweeps ordered by dirty-ring idle
    Counter oom_kills;
    Counter churn_boots;
    Counter churn_kills;
    Counter churn_forks;
    Counter churn_boot_failures;  ///< boots/forks refused (no core/frames)

    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix);
};

/// What one churn event does when its step count is reached.
enum class ChurnAction : std::uint8_t {
    Boot,  ///< boot a fresh VM with one churn job
    Kill,  ///< kill the oldest live churn-booted VM
    Fork,  ///< fork a job inside a live churn VM (round-robin)
};

struct ChurnEvent {
    std::uint64_t at_step = 0;  ///< fires once System::total_steps() >= this
    ChurnAction action = ChurnAction::Boot;
};

/**
 * Seeded VM churn schedule. Events are keyed on the simulated op count
 * and applied between run chunks (System::churn_tick), so the schedule is
 * deterministic and thread-count-invariant exactly like FaultPlan: the
 * same (plan, scenario seed) always boots/kills/forks the same VMs at the
 * same simulated instants.
 */
struct ChurnPlan {
    std::uint64_t seed = 1;
    /// Workload each churn-booted VM runs (catalog name).
    std::string workload = "stress-ng";
    double scale = 0.02;
    /// Guest-physical frames of churn-booted VMs; 0 = platform default.
    std::uint64_t guest_frames = 0;
    /// Schedule, kept sorted by at_step (storm() and *_at guarantee it).
    std::vector<ChurnEvent> events;

    bool armed() const { return !events.empty(); }
    std::uint64_t count(ChurnAction action) const;

    // ---- fluent setters --------------------------------------------
    ChurnPlan &
    with_seed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    ChurnPlan &
    with_workload(std::string name)
    {
        workload = std::move(name);
        return *this;
    }
    ChurnPlan &
    with_scale(double s)
    {
        scale = s;
        return *this;
    }
    ChurnPlan &
    with_guest_frames(std::uint64_t frames)
    {
        guest_frames = frames;
        return *this;
    }
    /// Append one event; re-sorts so hand-built plans stay ordered.
    ChurnPlan &event_at(std::uint64_t step, ChurnAction action);
    ChurnPlan &
    boot_at(std::uint64_t step)
    {
        return event_at(step, ChurnAction::Boot);
    }
    ChurnPlan &
    kill_at(std::uint64_t step)
    {
        return event_at(step, ChurnAction::Kill);
    }
    ChurnPlan &
    fork_at(std::uint64_t step)
    {
        return event_at(step, ChurnAction::Fork);
    }

    /**
     * A seeded storm: @p boots boot, @p kills kill, and @p forks fork
     * events drawn uniformly over [begin_step, end_step) and stably
     * sorted by step (ties keep the boot/kill/fork draw order).
     */
    static ChurnPlan storm(std::uint64_t seed, std::uint64_t begin_step,
                           std::uint64_t end_step, std::uint64_t boots,
                           std::uint64_t kills, std::uint64_t forks);
};

}  // namespace ptm::sim
