/**
 * @file
 * Binary buddy allocator over a flat frame space, modelling the Linux
 * physical page allocator.
 *
 * Behavioural properties that the reproduction depends on:
 *  - order-0 allocations from a fresh zone return ascending, contiguous
 *    frames (higher-order blocks are split and handed out low-half first),
 *    so a lone process faulting sequentially gets contiguous physical
 *    memory — the paper's "isolation" baseline;
 *  - freed blocks are reused most-recently-freed-first (LIFO, like the
 *    Linux per-order free lists), so interleaved allocate/free traffic from
 *    co-runners scatters a victim's allocations — the paper's
 *    fragmentation-genesis mechanism (§2.4).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/stat_registry.hpp"

namespace ptm::mem {

/// Highest supported order (Linux's MAX_ORDER - 1 == 10: 4 MiB blocks).
inline constexpr unsigned kMaxBuddyOrder = 10;

/// Aggregate counters for allocator activity.
struct BuddyStats {
    Counter alloc_calls;       ///< successful allocations
    Counter failed_allocs;     ///< allocations refused (out of memory)
    Counter free_calls;        ///< blocks returned
    Counter splits;            ///< block splits performed
    Counter merges;            ///< buddy coalesces performed
    /// Split steps taken per successful allocate() (0 = exact-order hit).
    Histogram split_depth{BucketPolicy::Linear, kMaxBuddyOrder + 1};
    /// Coalesce steps taken per free() (0 = no buddy available).
    Histogram merge_depth{BucketPolicy::Linear, kMaxBuddyOrder + 1};
};

/**
 * Failure-injection hook consulted before the free lists. When armed
 * (sim::FaultInjector implements this), a deny() veto makes allocate()
 * behave exactly as if no block of the requested order were free, so the
 * caller's OOM/fallback path runs without the zone actually being empty.
 * The unarmed cost is a single null-pointer check per allocation.
 */
class AllocGate {
  public:
    virtual ~AllocGate() = default;
    /// True => refuse this allocation.
    virtual bool deny(unsigned order) = 0;
};

/**
 * Binary buddy allocator. Frames are identified by plain frame numbers in
 * [base_frame, base_frame + frame_count); address-space tagging is done by
 * the owning kernel model.
 *
 * Not thread-safe: guest/host kernels serialize access (the simulated
 * kernel holds the zone lock), matching Linux's zone->lock discipline.
 */
class BuddyAllocator {
  public:
    /// Highest supported order (Linux's MAX_ORDER - 1 == 10: 4 MiB blocks).
    static constexpr unsigned kMaxOrder = kMaxBuddyOrder;

    /**
     * Construct an allocator over @p frame_count frames starting at
     * @p base_frame. The whole range starts out free.
     */
    BuddyAllocator(std::uint64_t base_frame, std::uint64_t frame_count);

    /**
     * Allocate a naturally-aligned block of 2^order frames.
     * @return base frame number of the block, or std::nullopt if no block
     *         of sufficient size exists (the caller models OOM/reclaim).
     */
    std::optional<std::uint64_t> allocate(unsigned order);

    /// Allocate a single frame (order 0).
    std::optional<std::uint64_t> allocate_frame() { return allocate(0); }

    /**
     * Allocate a contiguous, aligned block of 2^order frames but register
     * the frames as 2^order individual order-0 allocations, so each can
     * later be freed (and coalesced) independently. This is how PTEMagnet
     * takes a reservation chunk: the pages belong to the OS one by one.
     */
    std::optional<std::uint64_t> allocate_split(unsigned order);

    /**
     * Free a previously-allocated block by its base frame. The order is
     * recovered from internal bookkeeping; freeing an address that is not
     * a live block base is a simulator bug and panics.
     */
    void free(std::uint64_t base_frame);

    /**
     * Free @p count order-0 frames individually starting at @p base_frame.
     * Helper for callers that allocated a high-order block but release it
     * page-by-page (e.g. partial reservation reclaim).
     */
    void free_frames(std::uint64_t base_frame, std::uint64_t count);

    /// Number of frames currently free.
    std::uint64_t free_frames_count() const { return free_frames_; }
    /// Number of frames currently allocated.
    std::uint64_t allocated_frames_count() const
    {
        return frame_count_ - free_frames_;
    }
    /// Total frames managed.
    std::uint64_t total_frames() const { return frame_count_; }

    /// True if a block of 2^order frames could be allocated right now.
    bool can_allocate(unsigned order) const;

    /// Free blocks currently on the given order's list.
    std::size_t free_blocks_at_order(unsigned order) const;

    /// Activity counters.
    const BuddyStats &stats() const { return stats_; }

    /// Register counters plus split/merge depth histograms under
    /// "<prefix>.alloc_calls", "<prefix>.split_depth", etc.
    void register_stats(obs::StatRegistry &registry,
                        const std::string &prefix,
                        obs::ResetScope scope = obs::ResetScope::Lifetime);

    /**
     * Arm (or with nullptr disarm) deterministic allocation-failure
     * injection. The gate must outlive the allocator or be disarmed
     * before it is destroyed; the allocator does not own it.
     */
    void set_alloc_gate(AllocGate *gate) { gate_ = gate; }

    /**
     * Exhaustive internal consistency check (test hook): free blocks are
     * aligned, disjoint, in-range, and the frame accounting adds up.
     * Panics on violation.
     */
    void check_invariants() const;

  private:
    /// Sentinel for the per-frame order arrays: frame is not a block
    /// base in that role.
    static constexpr std::uint8_t kNoOrder = 0xFF;

    struct OrderList {
        // LIFO stack of block bases; entries may be stale (already merged
        // away) and are skipped at pop time using the per-frame
        // free_order_ array as the source of truth.
        std::vector<std::uint64_t> stack;
        std::uint64_t live = 0;  ///< blocks currently free at this order
    };

    void push_free(std::uint64_t block, unsigned order);
    std::optional<std::uint64_t> pop_free(unsigned order);
    bool take_specific(std::uint64_t block, unsigned order);
    void insert_free_block(std::uint64_t block, unsigned order);

    std::uint64_t buddy_of(std::uint64_t block, unsigned order) const
    {
        return ((block - base_frame_) ^ (std::uint64_t{1} << order)) +
               base_frame_;
    }

    std::size_t index_of(std::uint64_t frame) const
    {
        return static_cast<std::size_t>(frame - base_frame_);
    }

    std::uint64_t base_frame_;
    std::uint64_t frame_count_;
    std::uint64_t free_frames_ = 0;
    OrderList free_lists_[kMaxOrder + 1];
    /// Per-frame bookkeeping, flat over [base_frame, base_frame+count):
    /// order of the live allocated block based at this frame (kNoOrder
    /// if none) / order of the free block based at this frame (kNoOrder
    /// if none). A frame is never both at once.
    std::vector<std::uint8_t> allocated_order_;
    std::vector<std::uint8_t> free_order_;
    BuddyStats stats_;
    AllocGate *gate_ = nullptr;  ///< fault injection; normally unarmed
};

}  // namespace ptm::mem
