#include "mem/physical_memory.hpp"

#include "common/log.hpp"

namespace ptm::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t base_frame,
                               std::uint64_t frame_count)
    : base_frame_(base_frame), frame_count_(frame_count),
      frames_(frame_count)
{
    if (frame_count == 0)
        ptm_fatal("physical memory with zero frames");
}

std::size_t
PhysicalMemory::index_of(std::uint64_t frame) const
{
    if (frame < base_frame_ || frame >= base_frame_ + frame_count_) {
        ptm_panic("frame %llu outside physical memory [%llu, %llu)",
                  static_cast<unsigned long long>(frame),
                  static_cast<unsigned long long>(base_frame_),
                  static_cast<unsigned long long>(base_frame_ + frame_count_));
    }
    return static_cast<std::size_t>(frame - base_frame_);
}

void
PhysicalMemory::set_use(std::uint64_t frame, std::uint64_t count,
                        FrameUse use, std::int32_t owner)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        FrameInfo &fi = frames_[index_of(frame + i)];
        fi.use = use;
        fi.owner = (use == FrameUse::Free) ? -1 : owner;
    }
}

const FrameInfo &
PhysicalMemory::info(std::uint64_t frame) const
{
    return frames_[index_of(frame)];
}

std::uint64_t
PhysicalMemory::count_use(FrameUse use, std::int32_t owner) const
{
    std::uint64_t n = 0;
    for (const FrameInfo &fi : frames_) {
        if (fi.use == use && (owner < 0 || fi.owner == owner))
            ++n;
    }
    return n;
}

std::string
PhysicalMemory::use_name(FrameUse use)
{
    switch (use) {
      case FrameUse::Free: return "free";
      case FrameUse::Data: return "data";
      case FrameUse::PageTable: return "page-table";
      case FrameUse::Reserved: return "reserved";
      case FrameUse::Kernel: return "kernel";
    }
    return "unknown";
}

}  // namespace ptm::mem
