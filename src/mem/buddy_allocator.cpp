#include "mem/buddy_allocator.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ptm::mem {

BuddyAllocator::BuddyAllocator(std::uint64_t base_frame,
                               std::uint64_t frame_count)
    : base_frame_(base_frame), frame_count_(frame_count)
{
    if (frame_count == 0)
        ptm_fatal("buddy allocator over an empty frame range");

    // Carve the range into maximal naturally-aligned free blocks.
    std::uint64_t offset = 0;
    while (offset < frame_count_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((offset & ((std::uint64_t{1} << order) - 1)) != 0 ||
                offset + (std::uint64_t{1} << order) > frame_count_)) {
            --order;
        }
        insert_free_block(base_frame_ + offset, order);
        free_frames_ += std::uint64_t{1} << order;
        offset += std::uint64_t{1} << order;
    }
}

void
BuddyAllocator::push_free(std::uint64_t block, unsigned order)
{
    auto &list = free_lists_[order];
    list.stack.push_back(block);
    list.members.insert(block);
}

void
BuddyAllocator::insert_free_block(std::uint64_t block, unsigned order)
{
    // Initial seeding inserts lowest-address-first so that a fresh zone
    // serves ascending addresses (the stack is popped from the back, so we
    // seed in *descending* address order per order level later; simpler:
    // push now, then reverse in the constructor). We instead keep seeding
    // order as-is and rely on pop order being last-pushed-first: the
    // constructor pushes low addresses first, so we reverse each stack once
    // seeding completes. To avoid a second pass, push_front semantics are
    // emulated here by inserting at the beginning.
    auto &list = free_lists_[order];
    list.stack.insert(list.stack.begin(), block);
    list.members.insert(block);
}

std::optional<std::uint64_t>
BuddyAllocator::pop_free(unsigned order)
{
    auto &list = free_lists_[order];
    while (!list.stack.empty()) {
        std::uint64_t block = list.stack.back();
        list.stack.pop_back();
        auto it = list.members.find(block);
        if (it != list.members.end()) {
            list.members.erase(it);
            return block;
        }
        // Stale entry: block was merged away by a coalesce; skip it.
    }
    return std::nullopt;
}

bool
BuddyAllocator::take_specific(std::uint64_t block, unsigned order)
{
    auto &list = free_lists_[order];
    auto it = list.members.find(block);
    if (it == list.members.end())
        return false;
    list.members.erase(it);
    // The matching stack entry becomes stale and is skipped on pop.
    return true;
}

std::optional<std::uint64_t>
BuddyAllocator::allocate(unsigned order)
{
    if (order > kMaxOrder)
        ptm_fatal("allocation order %u exceeds max %u", order, kMaxOrder);

    unsigned avail = order;
    std::optional<std::uint64_t> block;
    while (avail <= kMaxOrder) {
        block = pop_free(avail);
        if (block)
            break;
        ++avail;
    }
    if (!block) {
        stats_.failed_allocs.inc();
        return std::nullopt;
    }

    // Split down, returning the low half and freeing the high half, so that
    // sequential order-0 allocations walk a fresh block in ascending
    // address order.
    while (avail > order) {
        --avail;
        std::uint64_t high = *block + (std::uint64_t{1} << avail);
        push_free(high, avail);
        stats_.splits.inc();
    }

    allocated_.emplace(*block, order);
    free_frames_ -= std::uint64_t{1} << order;
    stats_.alloc_calls.inc();
    return block;
}

std::optional<std::uint64_t>
BuddyAllocator::allocate_split(unsigned order)
{
    std::optional<std::uint64_t> block = allocate(order);
    if (!block)
        return std::nullopt;
    auto it = allocated_.find(*block);
    ptm_assert(it != allocated_.end() && it->second == order);
    allocated_.erase(it);
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << order); ++i)
        allocated_.emplace(*block + i, 0u);
    return block;
}

void
BuddyAllocator::free(std::uint64_t base)
{
    auto it = allocated_.find(base);
    if (it == allocated_.end())
        ptm_panic("free of frame %llu which is not a live block base",
                  static_cast<unsigned long long>(base));
    unsigned order = it->second;
    allocated_.erase(it);

    free_frames_ += std::uint64_t{1} << order;
    stats_.free_calls.inc();

    std::uint64_t block = base;
    while (order < kMaxOrder) {
        std::uint64_t buddy = buddy_of(block, order);
        if (buddy + (std::uint64_t{1} << order) > base_frame_ + frame_count_)
            break;
        if (!take_specific(buddy, order))
            break;
        stats_.merges.inc();
        block = std::min(block, buddy);
        ++order;
    }
    push_free(block, order);
}

void
BuddyAllocator::free_frames(std::uint64_t base, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        free(base + i);
}

bool
BuddyAllocator::can_allocate(unsigned order) const
{
    for (unsigned o = order; o <= kMaxOrder; ++o) {
        if (!free_lists_[o].members.empty())
            return true;
    }
    return false;
}

std::size_t
BuddyAllocator::free_blocks_at_order(unsigned order) const
{
    return free_lists_[order].members.size();
}

void
BuddyAllocator::check_invariants() const
{
    std::uint64_t counted_free = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;

    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        for (std::uint64_t block : free_lists_[order].members) {
            std::uint64_t size = std::uint64_t{1} << order;
            if (block < base_frame_ ||
                block + size > base_frame_ + frame_count_) {
                ptm_panic("free block out of range");
            }
            if (((block - base_frame_) & (size - 1)) != 0)
                ptm_panic("free block misaligned for its order");
            counted_free += size;
            ranges.emplace_back(block, block + size);
        }
    }
    for (const auto &[base, order] : allocated_) {
        std::uint64_t size = std::uint64_t{1} << order;
        ranges.emplace_back(base, base + size);
        (void)size;
    }
    if (counted_free != free_frames_)
        ptm_panic("free-frame accounting mismatch");

    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        if (ranges[i].first < ranges[i - 1].second)
            ptm_panic("overlapping blocks in buddy allocator");
    }
}

}  // namespace ptm::mem
