#include "mem/buddy_allocator.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace ptm::mem {

BuddyAllocator::BuddyAllocator(std::uint64_t base_frame,
                               std::uint64_t frame_count)
    : base_frame_(base_frame), frame_count_(frame_count)
{
    if (frame_count == 0)
        ptm_fatal("buddy allocator over an empty frame range");
    allocated_order_.assign(frame_count_, kNoOrder);
    free_order_.assign(frame_count_, kNoOrder);

    // Carve the range into maximal naturally-aligned free blocks.
    std::uint64_t offset = 0;
    while (offset < frame_count_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((offset & ((std::uint64_t{1} << order) - 1)) != 0 ||
                offset + (std::uint64_t{1} << order) > frame_count_)) {
            --order;
        }
        insert_free_block(base_frame_ + offset, order);
        free_frames_ += std::uint64_t{1} << order;
        offset += std::uint64_t{1} << order;
    }
}

void
BuddyAllocator::push_free(std::uint64_t block, unsigned order)
{
    auto &list = free_lists_[order];
    list.stack.push_back(block);
    free_order_[index_of(block)] = static_cast<std::uint8_t>(order);
    ++list.live;
}

void
BuddyAllocator::insert_free_block(std::uint64_t block, unsigned order)
{
    // Initial seeding inserts lowest-address-first so that a fresh zone
    // serves ascending addresses (the stack is popped from the back, so we
    // seed in *descending* address order per order level later; simpler:
    // push now, then reverse in the constructor). We instead keep seeding
    // order as-is and rely on pop order being last-pushed-first: the
    // constructor pushes low addresses first, so we reverse each stack once
    // seeding completes. To avoid a second pass, push_front semantics are
    // emulated here by inserting at the beginning.
    auto &list = free_lists_[order];
    list.stack.insert(list.stack.begin(), block);
    free_order_[index_of(block)] = static_cast<std::uint8_t>(order);
    ++list.live;
}

std::optional<std::uint64_t>
BuddyAllocator::pop_free(unsigned order)
{
    auto &list = free_lists_[order];
    while (!list.stack.empty()) {
        std::uint64_t block = list.stack.back();
        list.stack.pop_back();
        std::uint8_t &state = free_order_[index_of(block)];
        if (state == order) {
            state = kNoOrder;
            --list.live;
            return block;
        }
        // Stale entry: block was merged away by a coalesce; skip it.
    }
    return std::nullopt;
}

bool
BuddyAllocator::take_specific(std::uint64_t block, unsigned order)
{
    std::uint8_t &state = free_order_[index_of(block)];
    if (state != order)
        return false;
    state = kNoOrder;
    --free_lists_[order].live;
    // The matching stack entry becomes stale and is skipped on pop.
    return true;
}

std::optional<std::uint64_t>
BuddyAllocator::allocate(unsigned order)
{
    if (order > kMaxOrder)
        ptm_fatal("allocation order %u exceeds max %u", order, kMaxOrder);

    if (gate_ != nullptr && gate_->deny(order)) {
        stats_.failed_allocs.inc();
        return std::nullopt;
    }

    unsigned avail = order;
    std::optional<std::uint64_t> block;
    while (avail <= kMaxOrder) {
        block = pop_free(avail);
        if (block)
            break;
        ++avail;
    }
    if (!block) {
        stats_.failed_allocs.inc();
        return std::nullopt;
    }

    // Split down, returning the low half and freeing the high half, so that
    // sequential order-0 allocations walk a fresh block in ascending
    // address order.
    stats_.split_depth.record(avail - order);
    while (avail > order) {
        --avail;
        std::uint64_t high = *block + (std::uint64_t{1} << avail);
        push_free(high, avail);
        stats_.splits.inc();
    }

    allocated_order_[index_of(*block)] = static_cast<std::uint8_t>(order);
    free_frames_ -= std::uint64_t{1} << order;
    stats_.alloc_calls.inc();
    return block;
}

std::optional<std::uint64_t>
BuddyAllocator::allocate_split(unsigned order)
{
    std::optional<std::uint64_t> block = allocate(order);
    if (!block)
        return std::nullopt;
    std::uint8_t &state = allocated_order_[index_of(*block)];
    ptm_assert(state == order,
               "block %llu allocated at order %u, expected %u",
               static_cast<unsigned long long>(*block), state, order);
    state = kNoOrder;
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << order); ++i)
        allocated_order_[index_of(*block + i)] = 0;
    return block;
}

void
BuddyAllocator::free(std::uint64_t base)
{
    if (base < base_frame_ || base >= base_frame_ + frame_count_ ||
        allocated_order_[index_of(base)] == kNoOrder) {
        ptm_panic("free of frame %llu which is not a live block base",
                  static_cast<unsigned long long>(base));
    }
    unsigned order = allocated_order_[index_of(base)];
    allocated_order_[index_of(base)] = kNoOrder;

    free_frames_ += std::uint64_t{1} << order;
    stats_.free_calls.inc();

    std::uint64_t block = base;
    std::uint64_t merged = 0;
    while (order < kMaxOrder) {
        std::uint64_t buddy = buddy_of(block, order);
        if (buddy + (std::uint64_t{1} << order) > base_frame_ + frame_count_)
            break;
        if (!take_specific(buddy, order))
            break;
        stats_.merges.inc();
        ++merged;
        block = std::min(block, buddy);
        ++order;
    }
    stats_.merge_depth.record(merged);
    push_free(block, order);
}

void
BuddyAllocator::free_frames(std::uint64_t base, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        free(base + i);
}

void
BuddyAllocator::register_stats(obs::StatRegistry &registry,
                               const std::string &prefix,
                               obs::ResetScope scope)
{
    registry.counter(prefix + ".alloc_calls", &stats_.alloc_calls, scope);
    registry.counter(prefix + ".failed_allocs", &stats_.failed_allocs,
                     scope);
    registry.counter(prefix + ".free_calls", &stats_.free_calls, scope);
    registry.counter(prefix + ".splits", &stats_.splits, scope);
    registry.counter(prefix + ".merges", &stats_.merges, scope);
    registry.histogram(prefix + ".split_depth", &stats_.split_depth, scope);
    registry.histogram(prefix + ".merge_depth", &stats_.merge_depth, scope);
}

bool
BuddyAllocator::can_allocate(unsigned order) const
{
    for (unsigned o = order; o <= kMaxOrder; ++o) {
        if (free_lists_[o].live != 0)
            return true;
    }
    return false;
}

std::size_t
BuddyAllocator::free_blocks_at_order(unsigned order) const
{
    return static_cast<std::size_t>(free_lists_[order].live);
}

void
BuddyAllocator::check_invariants() const
{
    std::uint64_t counted_free = 0;
    std::uint64_t live_seen[kMaxOrder + 1] = {};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;

    for (std::uint64_t idx = 0; idx < frame_count_; ++idx) {
        std::uint64_t frame = base_frame_ + idx;
        if (free_order_[idx] != kNoOrder) {
            unsigned order = free_order_[idx];
            std::uint64_t size = std::uint64_t{1} << order;
            if (order > kMaxOrder || frame + size > base_frame_ + frame_count_)
                ptm_panic("free block out of range");
            if ((idx & (size - 1)) != 0)
                ptm_panic("free block misaligned for its order");
            counted_free += size;
            ++live_seen[order];
            ranges.emplace_back(frame, frame + size);
        }
        if (allocated_order_[idx] != kNoOrder) {
            std::uint64_t size = std::uint64_t{1}
                                 << allocated_order_[idx];
            ranges.emplace_back(frame, frame + size);
        }
    }
    if (counted_free != free_frames_)
        ptm_panic("free-frame accounting mismatch");
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        if (live_seen[order] != free_lists_[order].live)
            ptm_panic("free-list live count mismatch at order %u", order);
    }

    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        if (ranges[i].first < ranges[i - 1].second)
            ptm_panic("overlapping blocks in buddy allocator");
    }
}

}  // namespace ptm::mem
