/**
 * @file
 * Frame-space metadata for a simulated physical memory.
 *
 * The simulator never stores page *contents* — only addresses matter for
 * translation/caching behaviour — but kernels, tests, and the examples need
 * to know what every frame is currently used for. PhysicalMemory keeps one
 * small descriptor per frame, the analogue of Linux's `struct page` array.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ptm::mem {

/// What a physical frame is currently used for.
enum class FrameUse : std::uint8_t {
    Free,       ///< on the buddy free lists
    Data,       ///< mapped application data page
    PageTable,  ///< holds a page-table node
    Reserved,   ///< held inside a PTEMagnet reservation, not yet mapped
    Kernel,     ///< other kernel-internal use
};

/// Per-frame descriptor.
struct FrameInfo {
    FrameUse use = FrameUse::Free;
    std::int32_t owner = -1;  ///< owning process id, -1 for none/kernel
};

/**
 * Flat frame space of @c frame_count frames with per-frame metadata.
 * Pure bookkeeping: allocation policy lives in BuddyAllocator.
 */
class PhysicalMemory {
  public:
    PhysicalMemory(std::uint64_t base_frame, std::uint64_t frame_count);

    std::uint64_t base_frame() const { return base_frame_; }
    std::uint64_t frame_count() const { return frame_count_; }
    Addr size_bytes() const { return frame_count_ * kPageSize; }

    /// Mark @p count frames starting at @p frame.
    void set_use(std::uint64_t frame, std::uint64_t count, FrameUse use,
                 std::int32_t owner = -1);

    const FrameInfo &info(std::uint64_t frame) const;

    /// Count frames in a given use state (optionally for one owner).
    std::uint64_t count_use(FrameUse use, std::int32_t owner = -1) const;

    /// Human-readable name of a frame-use tag.
    static std::string use_name(FrameUse use);

  private:
    std::size_t index_of(std::uint64_t frame) const;

    std::uint64_t base_frame_;
    std::uint64_t frame_count_;
    std::vector<FrameInfo> frames_;
};

}  // namespace ptm::mem
