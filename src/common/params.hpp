/**
 * @file
 * PolicyParams — the key/value parameter bag carried by the policy and
 * translation-table factories.
 *
 * Factories (vm::make_provider, pt::make_table) accept a name plus one of
 * these bags, so a new policy's knobs ("promotion_threshold",
 * "group_pages", ...) need no new ScenarioConfig fields and round-trip
 * through BENCH_*.json as a plain object. Values are doubles — the same
 * numeric model as the JSON layer — and keys keep insertion order so
 * serialized configs read in declaration order.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ptm {

class PolicyParams {
  public:
    using Entry = std::pair<std::string, double>;

    PolicyParams() = default;
    PolicyParams(std::initializer_list<Entry> entries)
        : entries_(entries)
    {
    }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    bool
    has(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    /// Value of @p key, or @p fallback when absent — unknown keys are the
    /// policy's business (it picks its defaults), not an error here.
    double
    get(const std::string &key, double fallback = 0.0) const
    {
        const Entry *entry = find(key);
        return entry != nullptr ? entry->second : fallback;
    }

    /// get() rounded to an unsigned integer knob (counts, thresholds).
    std::uint64_t
    get_u64(const std::string &key, std::uint64_t fallback = 0) const
    {
        const Entry *entry = find(key);
        if (entry == nullptr)
            return fallback;
        return entry->second <= 0.0
                   ? 0
                   : static_cast<std::uint64_t>(entry->second + 0.5);
    }

    /// Insert or overwrite @p key.
    PolicyParams &
    set(const std::string &key, double value)
    {
        for (Entry &entry : entries_) {
            if (entry.first == key) {
                entry.second = value;
                return *this;
            }
        }
        entries_.emplace_back(key, value);
        return *this;
    }

    const std::vector<Entry> &entries() const { return entries_; }

    bool
    operator==(const PolicyParams &other) const
    {
        return entries_ == other.entries_;
    }

  private:
    const Entry *
    find(const std::string &key) const
    {
        auto it = std::find_if(
            entries_.begin(), entries_.end(),
            [&key](const Entry &e) { return e.first == key; });
        return it != entries_.end() ? &*it : nullptr;
    }

    std::vector<Entry> entries_;
};

}  // namespace ptm
