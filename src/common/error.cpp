#include "common/error.hpp"

#include <cstdarg>

#include "common/log.hpp"

namespace ptm {

void
throw_sim_error(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw SimError(strprintf("%s (%s:%d)", msg.c_str(), file, line));
}

}  // namespace ptm
