/**
 * @file
 * Portable SIMD set-probe primitives for the tag/key scans on the
 * simulator's hottest paths (cache::Cache, tlb::AssocCache).
 *
 * The tag stores are contiguous lane runs (set-major slabs), so a set
 * probe is "find the first lane equal to a needle in a short array".
 * This header provides exactly that, per lane width:
 *
 *  - find_u32() / find_u64(): the selected backend per width;
 *  - find_u32_scalar() / find_u64_scalar(): the reference loops, always
 *    compiled, so property tests can compare the vector paths against
 *    them in the same binary;
 *  - min_index_u64(): branchless first-minimum scan (LRU victim /
 *    insert), shared by all backends.
 *
 * Backend selection is compile-time only: SSE2 is baseline on x86-64 and
 * NEON on AArch64, so no runtime dispatch is needed. Width matters:
 * 32-bit lanes have a native single-instruction compare everywhere
 * (_mm_cmpeq_epi32 / vceqq_u32) and are the layout cache::Cache stores
 * its tags in; 64-bit lanes only vectorize profitably where a native
 * 64-bit compare exists (SSE4.1's _mm_cmpeq_epi64, NEON's vceqq_u64) —
 * emulating it on bare SSE2 measurably *loses* to the well-predicted
 * scalar loop, so plain SSE2 keeps the scalar path for u64. Defining
 * PTM_NO_SIMD (CMake option -DPTM_NO_SIMD=ON) forces the scalar
 * fallback everywhere — CI builds both flavors and the test suite pins
 * them to identical decisions.
 *
 * Contract notes shared by all backends:
 *  - the needle occurs in at most one lane (set invariants guarantee tag
 *    uniqueness), so "first match" and "any match" coincide — but the
 *    implementations still return the first-match index so empty-way
 *    scans (needle = the invalid sentinel, possibly many lanes) behave
 *    identically to the historic scalar loops;
 *  - arrays are unaligned (slab strides are not multiples of the vector
 *    width), so all loads are unaligned loads.
 */
#pragma once

#include <bit>
#include <cstdint>

#if !defined(PTM_NO_SIMD)
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PTM_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define PTM_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace ptm::simd {

/// Human-readable backend name (provenance in bench/CI output).
inline constexpr const char *kBackend =
#if defined(PTM_SIMD_SSE2)
    "sse2";
#elif defined(PTM_SIMD_NEON)
    "neon";
#else
    "scalar";
#endif

/// True when a vector backend is active (false under PTM_NO_SIMD or on
/// targets without SSE2/NEON).
inline constexpr bool kVectorized =
#if defined(PTM_SIMD_SSE2) || defined(PTM_SIMD_NEON)
    true;
#else
    false;
#endif

/**
 * Reference scans: index of the first element of keys[0..n) equal to
 * @p needle, or @p n when absent. Always compiled; the vector backends
 * are tested against them.
 */
inline unsigned
find_u32_scalar(const std::uint32_t *keys, unsigned n,
                std::uint32_t needle)
{
    for (unsigned w = 0; w < n; ++w) {
        if (keys[w] == needle)
            return w;
    }
    return n;
}

inline unsigned
find_u64_scalar(const std::uint64_t *keys, unsigned n,
                std::uint64_t needle)
{
    for (unsigned w = 0; w < n; ++w) {
        if (keys[w] == needle)
            return w;
    }
    return n;
}

#if defined(PTM_SIMD_SSE2)

/// SSE2 backend for 32-bit lanes: native _mm_cmpeq_epi32, 8 lanes per
/// iteration (two vectors), one branch per block. An 8-way tag run is a
/// single iteration; a 16-way LLC set is two.
inline unsigned
find_u32(const std::uint32_t *keys, unsigned n, std::uint32_t needle)
{
    const __m128i want = _mm_set1_epi32(static_cast<int>(needle));
    const auto eq_mask = [&want](const std::uint32_t *p) -> unsigned {
        const __m128i eq = _mm_cmpeq_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)), want);
        return static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
    };
    unsigned w = 0;
    for (; w + 8 <= n; w += 8) {
        const unsigned mask =
            eq_mask(keys + w) | (eq_mask(keys + w + 4) << 4);
        if (mask)
            return w + static_cast<unsigned>(std::countr_zero(mask));
    }
    if (w + 4 <= n) {
        const unsigned mask = eq_mask(keys + w);
        if (mask)
            return w + static_cast<unsigned>(std::countr_zero(mask));
        w += 4;
    }
    for (; w < n; ++w) {
        if (keys[w] == needle)
            return w;
    }
    return n;
}

/// 64-bit lanes on bare SSE2: the scalar loop. SSE2 has no 64-bit
/// compare; emulating one (paired 32-bit compares + shuffle + mask
/// merge) measured ~30% *slower* end-to-end than the well-predicted
/// scalar early-exit scan on the short runs these probes cover, so the
/// vector u64 path requires a native compare (SSE4.1 / NEON).
#if defined(__SSE4_1__)
inline unsigned
find_u64(const std::uint64_t *keys, unsigned n, std::uint64_t needle)
{
    const __m128i want = _mm_set1_epi64x(static_cast<long long>(needle));
    unsigned w = 0;
    for (; w + 2 <= n; w += 2) {
        const __m128i eq = _mm_cmpeq_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(keys + w)),
            want);
        const unsigned mask = static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(eq)));
        if (mask)
            return w + static_cast<unsigned>(std::countr_zero(mask));
    }
    if (w < n && keys[w] == needle)
        return w;
    return n;
}
#else
inline unsigned
find_u64(const std::uint64_t *keys, unsigned n, std::uint64_t needle)
{
    return find_u64_scalar(keys, n, needle);
}
#endif

#elif defined(PTM_SIMD_NEON)

/// NEON backend for 32-bit lanes: 4 lanes per iteration.
inline unsigned
find_u32(const std::uint32_t *keys, unsigned n, std::uint32_t needle)
{
    const uint32x4_t want = vdupq_n_u32(needle);
    unsigned w = 0;
    for (; w + 4 <= n; w += 4) {
        const uint32x4_t eq = vceqq_u32(vld1q_u32(keys + w), want);
        // Narrow each 32-bit lane to 16 bits and read the four lane
        // masks as one 64-bit value: 16 set bits per matching lane.
        const std::uint64_t mask =
            vget_lane_u64(vreinterpret_u64_u16(vmovn_u32(eq)), 0);
        if (mask)
            return w + static_cast<unsigned>(std::countr_zero(mask)) / 16;
    }
    for (; w < n; ++w) {
        if (keys[w] == needle)
            return w;
    }
    return n;
}

/// NEON backend for 64-bit lanes: native vceqq_u64, 2 lanes per
/// iteration.
inline unsigned
find_u64(const std::uint64_t *keys, unsigned n, std::uint64_t needle)
{
    const uint64x2_t want = vdupq_n_u64(needle);
    unsigned w = 0;
    for (; w + 2 <= n; w += 2) {
        uint64x2_t eq = vceqq_u64(vld1q_u64(keys + w), want);
        // One test for "any lane matched", then lane order decides.
        if (vgetq_lane_u64(vorrq_u64(eq, vextq_u64(eq, eq, 1)), 0)) {
            return vgetq_lane_u64(eq, 0) ? w : w + 1;
        }
    }
    if (w < n && keys[w] == needle)
        return w;
    return n;
}

#else

/// Scalar fallback (PTM_NO_SIMD or no vector ISA): the reference scans.
inline unsigned
find_u32(const std::uint32_t *keys, unsigned n, std::uint32_t needle)
{
    return find_u32_scalar(keys, n, needle);
}

inline unsigned
find_u64(const std::uint64_t *keys, unsigned n, std::uint64_t needle)
{
    return find_u64_scalar(keys, n, needle);
}

#endif

/**
 * The scan used by the *inlined hot lookup* (cache::Cache::access).
 * Deliberately the scalar early-exit loop on every backend: measured
 * in situ, the vector scan costs ~25% of end-to-end simulator
 * throughput on a Broadwell-class Xeon even though it wins a tight
 * microbenchmark of the probe alone — inside the large inlined access
 * path the unaligned 16-byte loads and mask-merge chain lose to eight
 * well-predicted 4-byte compares that the core can speculate past.
 * Decision-identical to find_u32 by the probe contract, so the choice
 * is pure performance tuning; the vector path still serves the cold
 * call sites (install/fill/probe/invalidate) and stays pinned to the
 * scalar reference by the property tests.
 */
inline unsigned
find_u32_hot(const std::uint32_t *keys, unsigned n, std::uint32_t needle)
{
    return find_u32_scalar(keys, n, needle);
}

/**
 * Index of the first minimum of values[0..n); ties keep the lowest
 * index (the historic LRU tie-break). Branchless conditional-move form;
 * n >= 1. Shared by all backends — SSE2 has no unsigned 64-bit min, and
 * n is at most the associativity, so a cmov chain already saturates.
 */
inline unsigned
min_index_u64(const std::uint64_t *values, unsigned n)
{
    unsigned best = 0;
    for (unsigned w = 1; w < n; ++w)
        best = values[w] < values[best] ? w : best;
    return best;
}

}  // namespace ptm::simd
