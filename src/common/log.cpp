#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ptm {

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

namespace {

void
emit(const char *kind, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
}

}  // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal_impl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    emit("fatal", file, line, msg);
    std::exit(1);
}

void
panic_impl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    emit("panic", file, line, msg);
    std::abort();
}

void
warn_impl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    emit("warn", file, line, msg);
}

void
assert_fail_impl(const char *file, int line, const char *cond)
{
    emit("panic", file, line,
         strprintf("assertion failed: %s", cond));
    std::abort();
}

void
assert_fail_impl(const char *file, int line, const char *cond,
                 const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string context = vstrprintf(fmt, ap);
    va_end(ap);
    emit("panic", file, line,
         strprintf("assertion failed: %s: %s", cond, context.c_str()));
    std::abort();
}

}  // namespace ptm
