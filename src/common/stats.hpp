/**
 * @file
 * Lightweight statistics primitives.
 *
 * Subsystems expose plain structs of Counter/Average members; the sim layer
 * snapshots and diffs them to produce perf-style deltas, so counters must be
 * cheap (single u64 increment) and copyable.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ptm {

/// Monotonic event counter.
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/// Running mean over observed samples.
class Average {
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/// Fixed-bucket histogram for distribution-shaped stats (e.g. walk length).
class Histogram {
  public:
    explicit Histogram(std::size_t buckets = 16) : buckets_(buckets, 0) {}

    void
    sample(std::size_t bucket)
    {
        if (bucket >= buckets_.size())
            bucket = buckets_.size() - 1;
        ++buckets_[bucket];
        ++total_;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t size() const { return buckets_.size(); }
    std::uint64_t total() const { return total_; }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Named scalar snapshot used by reporters: an ordered name -> value map
 * that supports elementwise difference and percent-change formatting.
 */
class MetricSet {
  public:
    void set(const std::string &name, double v) { values_[name] = v; }
    double get(const std::string &name) const;
    bool has(const std::string &name) const { return values_.count(name) != 0; }

    const std::map<std::string, double> &values() const { return values_; }

    /// Percent change of each metric relative to @p baseline ((this-b)/b).
    MetricSet percent_change_from(const MetricSet &baseline) const;

  private:
    std::map<std::string, double> values_;
};

}  // namespace ptm
