/**
 * @file
 * Lightweight statistics primitives.
 *
 * Subsystems expose plain structs of Counter/Histogram members; the
 * observability layer (obs::StatRegistry) aggregates them by non-owning
 * pointer, so the primitives must be cheap on the hot path (a single u64
 * increment / a bucket increment), copyable, and resettable in place.
 */
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ptm {

/// Monotonic event counter.
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/// Running mean over observed samples.
class Average {
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/// How a Histogram maps a recorded value to a bucket.
enum class BucketPolicy : std::uint8_t {
    /// Bucket i holds values whose bit width is i (bucket 0 <=> value 0,
    /// bucket i <=> [2^(i-1), 2^i)). Covers the full u64 range in 65
    /// buckets; the right shape for latencies spanning orders of
    /// magnitude (a cache hit vs a faulting 2D walk).
    Log2,
    /// Bucket i holds exactly the value i; the last bucket clamps
    /// overflow. For small enumerable quantities (PT level, split depth).
    Linear,
};

/**
 * Bucketed distribution of u64 samples with percentile accessors.
 *
 * record() is hot-path safe: one bucket increment plus min/max/sum
 * bookkeeping, no allocation. Percentiles are resolved at read time by a
 * cumulative scan; the returned value is the upper bound of the bucket
 * containing the requested rank, tightened to the observed maximum — for
 * Linear histograms (and single-valued buckets) that is exact.
 */
class Histogram {
  public:
    /// Buckets needed for a full-range Log2 histogram (bit widths 0..64).
    static constexpr std::size_t kLog2Buckets = 65;

    /// Full-range Log2 histogram (the default shape for latencies).
    Histogram() : Histogram(BucketPolicy::Log2, 0) {}

    /**
     * @param policy  bucketing rule.
     * @param buckets bucket count; 0 means the policy default (65 for
     *                Log2; Linear has no default and requires an
     *                explicit count).
     */
    explicit Histogram(BucketPolicy policy, std::size_t buckets = 0);

    /// Record one sample.
    void
    record(std::uint64_t value)
    {
        ++buckets_[bucket_index(value)];
        sum_ += value;
        if (count_ == 0 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
        ++count_;
    }

    BucketPolicy policy() const { return policy_; }
    std::size_t bucket_count() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value at quantile @p q (in percent, 0..100): the upper bound of the
     * bucket containing the ceil(q/100 * count)-th smallest sample,
     * clamped to the observed maximum. Returns 0 on an empty histogram;
     * fatal on q outside [0, 100].
     */
    std::uint64_t percentile(double q) const;
    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p90() const { return percentile(90.0); }
    std::uint64_t p99() const { return percentile(99.0); }

    /// Smallest value bucket @p i can hold.
    std::uint64_t bucket_lower(std::size_t i) const;
    /// Largest value bucket @p i can hold (the last bucket of a clamping
    /// histogram extends to the u64 maximum).
    std::uint64_t bucket_upper(std::size_t i) const;

    /// Accumulate @p other into this histogram; fatal if the two differ
    /// in policy or bucket count.
    void merge(const Histogram &other);

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    std::size_t
    bucket_index(std::uint64_t value) const
    {
        std::size_t i =
            policy_ == BucketPolicy::Log2
                ? static_cast<std::size_t>(std::bit_width(value))
                : static_cast<std::size_t>(value);
        return i < buckets_.size() ? i : buckets_.size() - 1;
    }

    BucketPolicy policy_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Named scalar snapshot used by reporters: an ordered name -> value map
 * that supports elementwise difference and percent-change formatting.
 */
class MetricSet {
  public:
    void set(const std::string &name, double v) { values_[name] = v; }
    double get(const std::string &name) const;
    bool has(const std::string &name) const { return values_.count(name) != 0; }

    const std::map<std::string, double> &values() const { return values_; }

    /// Percent change of each metric relative to @p baseline ((this-b)/b).
    MetricSet percent_change_from(const MetricSet &baseline) const;

    /// Pretty-print (one "name: value" line each) to stdout.
    void print(const std::string &title) const;

    /**
     * Print a Table 1/4-style change table: metric name, both values,
     * and the percent change of @p experiment relative to @p baseline.
     */
    static void print_change_table(const MetricSet &baseline,
                                   const MetricSet &experiment,
                                   const std::string &title);

  private:
    std::map<std::string, double> values_;
};

}  // namespace ptm
