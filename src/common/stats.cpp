#include "common/stats.hpp"

#include "common/log.hpp"

namespace ptm {

double
MetricSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        ptm_panic("unknown metric '%s'", name.c_str());
    return it->second;
}

MetricSet
MetricSet::percent_change_from(const MetricSet &baseline) const
{
    MetricSet out;
    for (const auto &[name, v] : values_) {
        if (!baseline.has(name))
            continue;
        double b = baseline.get(name);
        out.set(name, b == 0.0 ? 0.0 : 100.0 * (v - b) / b);
    }
    return out;
}

}  // namespace ptm
