#include "common/stats.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/log.hpp"

namespace ptm {

Histogram::Histogram(BucketPolicy policy, std::size_t buckets)
    : policy_(policy)
{
    if (buckets == 0) {
        if (policy_ == BucketPolicy::Linear)
            ptm_fatal("linear histogram needs an explicit bucket count");
        buckets = kLog2Buckets;
    }
    buckets_.assign(buckets, 0);
}

std::uint64_t
Histogram::bucket_lower(std::size_t i) const
{
    if (i >= buckets_.size())
        ptm_fatal("histogram bucket %zu out of %zu", i, buckets_.size());
    if (policy_ == BucketPolicy::Linear)
        return i;
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucket_upper(std::size_t i) const
{
    if (i >= buckets_.size())
        ptm_fatal("histogram bucket %zu out of %zu", i, buckets_.size());
    constexpr std::uint64_t kMaxU64 =
        std::numeric_limits<std::uint64_t>::max();
    // The last bucket absorbs everything bucket_index() clamps into it.
    if (i == buckets_.size() - 1)
        return kMaxU64;
    if (policy_ == BucketPolicy::Linear)
        return i;
    if (i == 0)
        return 0;
    return i >= 64 ? kMaxU64 : (std::uint64_t{1} << i) - 1;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (q < 0.0 || q > 100.0)
        ptm_fatal("percentile %g outside [0, 100]", q);
    if (count_ == 0)
        return 0;

    // 1-based rank of the requested sample in sorted order.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    if (rank > count_)
        rank = count_;

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank)
            return std::min(bucket_upper(i), max_);
    }
    return max_;  // unreachable: cumulative == count_ after the loop
}

void
Histogram::merge(const Histogram &other)
{
    if (policy_ != other.policy_ ||
        buckets_.size() != other.buckets_.size()) {
        ptm_fatal("merging histograms of different shape "
                  "(%zu vs %zu buckets)",
                  buckets_.size(), other.buckets_.size());
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_ != 0) {
        min_ = count_ ? std::min(min_, other.min_) : other.min_;
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
MetricSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        ptm_panic("unknown metric '%s'", name.c_str());
    return it->second;
}

MetricSet
MetricSet::percent_change_from(const MetricSet &baseline) const
{
    MetricSet out;
    for (const auto &[name, v] : values_) {
        if (!baseline.has(name))
            continue;
        double b = baseline.get(name);
        out.set(name, b == 0.0 ? 0.0 : 100.0 * (v - b) / b);
    }
    return out;
}

void
MetricSet::print(const std::string &title) const
{
    std::printf("%s\n", title.c_str());
    for (const auto &[name, value] : values_)
        std::printf("  %-28s %.4g\n", name.c_str(), value);
}

void
MetricSet::print_change_table(const MetricSet &baseline,
                              const MetricSet &experiment,
                              const std::string &title)
{
    std::printf("%s\n", title.c_str());
    std::printf("  %-28s %12s %12s %9s\n", "metric", "baseline",
                "experiment", "change");
    MetricSet delta = experiment.percent_change_from(baseline);
    for (const auto &[name, value] : baseline.values()) {
        if (!experiment.has(name))
            continue;
        std::printf("  %-28s %12.4g %12.4g %+8.1f%%\n", name.c_str(),
                    value, experiment.get(name),
                    delta.has(name) ? delta.get(name) : 0.0);
    }
}

}  // namespace ptm
