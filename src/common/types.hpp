/**
 * @file
 * Fundamental address, page, and cycle types shared by every subsystem.
 *
 * The simulator distinguishes four address spaces (guest-virtual,
 * guest-physical == host-virtual, and host-physical). To keep interfaces
 * self-documenting and prevent accidental mixing, each space gets its own
 * strong typedef built on the same 64-bit machinery.
 */
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace ptm {

/// Raw 64-bit address value (within some address space).
using Addr = std::uint64_t;

/// Simulated time / cost unit, expressed in CPU core cycles.
using Cycles = std::uint64_t;

inline constexpr unsigned kPageShift = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageShift;          ///< 4 KiB
inline constexpr Addr kPageOffsetMask = kPageSize - 1;

inline constexpr unsigned kCacheLineShift = 6;
inline constexpr Addr kCacheLineSize = Addr{1} << kCacheLineShift;  ///< 64 B

inline constexpr unsigned kPteSize = 8;                 ///< x86-64 PTE bytes
inline constexpr unsigned kPtesPerCacheLine =
    static_cast<unsigned>(kCacheLineSize) / kPteSize;   ///< 8
inline constexpr unsigned kPtesPerNode = 512;           ///< radix fan-out
inline constexpr unsigned kPtLevels = 4;                ///< PML4..PT

/// Pages covered by one leaf-PTE cache line: the paper's 32 KiB group.
inline constexpr unsigned kPagesPerReservation = kPtesPerCacheLine;
inline constexpr Addr kReservationBytes = kPagesPerReservation * kPageSize;

/// Round @p a down to the containing page boundary.
constexpr Addr page_floor(Addr a) { return a & ~kPageOffsetMask; }
/// Round @p a up to the next page boundary.
constexpr Addr page_ceil(Addr a) { return (a + kPageOffsetMask) & ~kPageOffsetMask; }
/// Page frame / page number of @p a.
constexpr Addr page_number(Addr a) { return a >> kPageShift; }
/// Byte address of page number @p pn.
constexpr Addr page_address(Addr pn) { return pn << kPageShift; }
/// Cache-line (block) number of @p a.
constexpr Addr line_number(Addr a) { return a >> kCacheLineShift; }

/**
 * Strongly-typed page-frame or page-number wrapper.
 *
 * @tparam Tag disambiguating marker type; the wrapper carries no behaviour
 *             beyond ordered comparison and explicit conversion.
 */
template <typename Tag>
struct PageId {
    std::uint64_t value = 0;

    constexpr PageId() = default;
    constexpr explicit PageId(std::uint64_t v) : value(v) {}

    constexpr auto operator<=>(const PageId &) const = default;

    /// Byte address of the first byte of this page.
    constexpr Addr address() const { return value << kPageShift; }
    /// Successor page (next higher page number).
    constexpr PageId next() const { return PageId{value + 1}; }
};

struct GuestVirtualTag {};
struct GuestPhysicalTag {};
struct HostPhysicalTag {};

/// Guest-virtual page number (what an application sees).
using Gvpn = PageId<GuestVirtualTag>;
/// Guest-physical frame number; identically a host-virtual page number.
using Gfn = PageId<GuestPhysicalTag>;
/// Host-physical frame number (machine frame).
using Hfn = PageId<HostPhysicalTag>;

}  // namespace ptm

namespace std {
template <typename Tag>
struct hash<ptm::PageId<Tag>> {
    size_t operator()(const ptm::PageId<Tag> &p) const noexcept
    {
        return std::hash<std::uint64_t>{}(p.value);
    }
};
}  // namespace std
