/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic idiom.
 *
 * - ptm_fatal(): the *user's* fault (bad configuration, impossible
 *   parameters); exits with status 1.
 * - ptm_panic(): the *simulator's* fault (broken invariant); aborts so a
 *   debugger or core dump can capture state.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace ptm {

[[noreturn]] void fatal_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void panic_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warn_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// printf-style formatting into a std::string.
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ptm

#define ptm_fatal(...) ::ptm::fatal_impl(__FILE__, __LINE__, __VA_ARGS__)
#define ptm_panic(...) ::ptm::panic_impl(__FILE__, __LINE__, __VA_ARGS__)
#define ptm_warn(...) ::ptm::warn_impl(__FILE__, __LINE__, __VA_ARGS__)

/// Invariant check that survives NDEBUG: panics with a message on failure.
#define ptm_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::ptm::panic_impl(__FILE__, __LINE__,                       \
                              "assertion failed: %s", #cond);           \
        }                                                               \
    } while (0)
