/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic idiom.
 *
 * - ptm_fatal(): the *user's* fault (bad configuration, impossible
 *   parameters); exits with status 1.
 * - ptm_panic(): the *simulator's* fault (broken invariant); aborts so a
 *   debugger or core dump can capture state.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace ptm {

[[noreturn]] void fatal_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void panic_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warn_impl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

// ptm_assert backends: with and without a caller-supplied context
// message. Both panic (an assertion failure is a simulator bug).
[[noreturn]] void assert_fail_impl(const char *file, int line,
                                   const char *cond);
[[noreturn]] void assert_fail_impl(const char *file, int line,
                                   const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/// printf-style formatting into a std::string.
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of strprintf (shared by the error/log backends).
std::string vstrprintf(const char *fmt, va_list ap);

}  // namespace ptm

#define ptm_fatal(...) ::ptm::fatal_impl(__FILE__, __LINE__, __VA_ARGS__)
#define ptm_panic(...) ::ptm::panic_impl(__FILE__, __LINE__, __VA_ARGS__)
#define ptm_warn(...) ::ptm::warn_impl(__FILE__, __LINE__, __VA_ARGS__)

/// Invariant check that survives NDEBUG: panics on failure, printing the
/// stringified condition plus the caller's optional printf-style context
/// (ptm_assert(x == y, "pid %d", pid) reports both the condition and the
/// pid).
#define ptm_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::ptm::assert_fail_impl(__FILE__, __LINE__,                 \
                                    #cond __VA_OPT__(, ) __VA_ARGS__);  \
        }                                                               \
    } while (0)
