/**
 * @file
 * SimError — the recoverable error channel of the simulator.
 *
 * Three-way error taxonomy (see DESIGN.md "Fault model & error taxonomy"):
 *
 * - ptm_fatal(): the *user's* fault (bad configuration, impossible
 *   parameters). Raised before a run starts; exits the process.
 * - ptm_panic(): the *simulator's* fault (broken invariant). Aborts so a
 *   debugger or core dump can capture state.
 * - SimError / ptm_throw(): the *run's* fault (guest/host OOM, an
 *   injected allocation denial that the kernel model cannot absorb).
 *   Thrown, not exiting: one scenario leg dies, its ExperimentSuite
 *   sibling legs keep running, and the failure is recorded as data.
 */
#pragma once

#include <stdexcept>
#include <string>

namespace ptm {

/// Recoverable per-run simulation error. Everything reachable from a
/// scenario's inputs (memory sizes, fault plans, workload demands) that
/// the simulated kernels cannot absorb must surface as a SimError, never
/// as a process exit.
class SimError : public std::runtime_error {
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

/// printf-style construction + throw; used via the ptm_throw macro so the
/// origin file/line lands in the message (error strings end up in
/// BENCH_*.json, where a bare "guest OOM" is not actionable).
[[noreturn]] void throw_sim_error(const char *file, int line,
                                  const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace ptm

#define ptm_throw(...) ::ptm::throw_sim_error(__FILE__, __LINE__, __VA_ARGS__)
