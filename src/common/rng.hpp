/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * Simulation runs must be exactly reproducible given a seed; we use
 * xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
 * SplitMix64, which is both faster and better-distributed than
 * std::minstd_rand and, unlike std::mt19937, cheap to copy per-workload.
 */
#pragma once

#include <cstdint>

namespace ptm {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
 * used with <random> distributions, though workloads mostly use the modulo
 * helpers below for speed and determinism across standard libraries.
 */
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9ee4c1d9a2f0b5cdULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). @p bound must be nonzero.
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction; the tiny
        // modulo bias is irrelevant for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability @p p.
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

}  // namespace ptm
