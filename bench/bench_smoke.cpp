/**
 * @file
 * Tier-1 smoke test for the experiment driver: one tiny paired scenario
 * plus a two-point sweep through ExperimentSuite on ≥4 worker threads,
 * exercising the whole bench path — registration, parallel execution,
 * text report, JSON sink — in a few seconds. Registered as a ctest
 * (`bench_smoke`) so a broken driver fails the tier-1 run, not just the
 * (slow) full bench tier.
 *
 * Exits nonzero on any violated invariant.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/suite.hpp"

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "bench_smoke: FAIL: %s\n", what);
        ++failures;
    }
}

}  // namespace

int
main()
{
    using namespace ptm::sim;

    ScenarioConfig tiny = ScenarioConfig{}
                              .with_victim("pagerank")
                              .with_corunner("objdet", 2)
                              .with_scale(0.05)
                              .with_measure_ops(20'000)
                              .with_warmup_ops(5'000);
    tiny.platform.guest_frames = 16 * 1024;
    tiny.platform.host_frames = 24 * 1024;

    ExperimentSuite suite("smoke");
    suite.add("pagerank_tiny", tiny);
    suite.sweep("pagerank_tiny", "reservation_pages", {4, 8},
                ScenarioConfig(tiny).with_ptemagnet(), RunKind::Single);

    // Robustness leg 1: a periodic pressure plan must drive real
    // reservation reclaim while the run still completes (fallback
    // singles, not failed faults).
    suite.add("pagerank_pressure",
              ScenarioConfig(tiny).with_ptemagnet().with_fault_plan(
                  FaultPlan{}.periodic_pressure(1'000)),
              RunKind::Single);

    // Robustness leg 2: a guest too small for the workload must fail as
    // an isolated entry — recorded in the JSON, siblings unaffected,
    // process exit still 0.
    ScenarioConfig doomed = tiny;
    doomed.corunners.clear();
    doomed.platform.guest_frames = 512;
    suite.add("pagerank_oom", doomed, RunKind::Single);

    SuiteOptions options;
    options.threads = 4;
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    check(result.threads() == 4, "suite ran on 4 threads");
    check(result.entries().size() == 5, "5 scenarios executed");
    check(result.has("pagerank_tiny"), "paired entry present");

    const EntryResult &paired = result.at("pagerank_tiny");
    check(paired.paired.baseline.victim_ops >= 20'000,
          "baseline measured the requested ops");
    check(paired.paired.ptemagnet.fragmentation.average_hpte_lines <=
              paired.paired.baseline.fragmentation.average_hpte_lines,
          "PTEMagnet does not increase fragmentation");

    const EntryResult &swept =
        result.at("pagerank_tiny/reservation_pages=8");
    check(swept.single.reservations_created > 0,
          "sweep leg ran under PTEMagnet");

    const EntryResult &pressured = result.at("pagerank_pressure");
    check(!pressured.failed(), "pressured run completed");
    check(pressured.single.fault_plan_armed, "fault plan was armed");
    check(pressured.single.reclaim_sweeps > 0, "pressure swept");
    check(pressured.single.frames_reclaimed > 0,
          "pressure reclaimed reservation frames");
    check(pressured.single.oom_events == 0,
          "reclaim degraded service without failing faults");
    check(pressured.single.metrics.has("frames_reclaimed"),
          "armed run exports robustness metrics");
    check(!paired.paired.ptemagnet.metrics.has("frames_reclaimed"),
          "unarmed run keeps the golden metric set");

    // Observability: every completed run exports the full registry
    // snapshot — component counters plus walk-latency percentiles.
    const ScenarioResult &base = paired.paired.baseline;
    check(!base.stats.empty(), "result carries a stats snapshot");
    check(base.stats.has("vm0.core0.job.ops"),
          "stats cover the job counters");
    check(base.stats.has("vm0.hier.llc.hits.data"),
          "stats cover the cache hierarchy");
    check(base.stats.has("vm0.core0.l2tlb.misses"),
          "stats cover the TLBs");
    check(base.stats.has("vm0.buddy.alloc_calls"),
          "stats cover the buddy allocator");
    check(base.stats.has("host.kernel.pages_backed"),
          "stats cover the host kernel");
    check(base.stats.histogram("vm0.core0.walker.walk_cycles_hist").p50 >
              0,
          "walk-latency p50 recorded");

    const EntryResult &doomed_result = result.at("pagerank_oom");
    check(doomed_result.failed(), "hopeless entry marked failed");
    check(!doomed_result.error.empty(), "failure recorded its error");
    check(doomed_result.attempts == 1, "no retries were configured");

    // The JSON sink must round-trip the whole result set.
    std::string path = "BENCH_smoke.json";
    Json reread;
    {
        FILE *f = std::fopen(path.c_str(), "rb");
        check(f != nullptr, "BENCH_smoke.json written");
        if (f != nullptr) {
            std::string text;
            char buf[4096];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
                text.append(buf, n);
            std::fclose(f);
            reread = Json::parse(text);
        }
    }
    if (reread.is_object()) {
        check(reread.at("suite").as_string() == "smoke",
              "JSON names the suite");
        check(reread.at("entries").as_array().size() == 5,
              "JSON carries every entry");
        ScenarioResult baseline = scenario_result_from_json(
            reread.at("entries").as_array()[0].at("baseline"));
        check(baseline.victim_cycles ==
                  paired.paired.baseline.victim_cycles,
              "JSON round-trips victim_cycles");
        check(baseline.stats.value("vm0.core0.job.ops") ==
                  base.stats.value("vm0.core0.job.ops"),
              "JSON round-trips the stats block");
        check(baseline.stats
                      .histogram("vm0.core0.walker.walk_cycles_hist")
                      .p99 ==
                  base.stats.histogram("vm0.core0.walker.walk_cycles_hist")
                      .p99,
              "JSON round-trips histogram summaries");

        // Per-entry status must land in the document, failed included.
        for (const Json &e : reread.at("entries").as_array()) {
            const std::string &name = e.at("name").as_string();
            if (name == "pagerank_oom") {
                check(e.at("status").as_string() == "failed",
                      "JSON marks the failed entry");
                check(e.contains("error"), "JSON carries the error");
            } else {
                check(e.at("status").as_string() == "ok",
                      "JSON marks completed entries ok");
            }
        }
        ScenarioResult rob = scenario_result_from_json(
            reread.at("entries").as_array()[3].at("result"));
        check(rob.frames_reclaimed ==
                  pressured.single.frames_reclaimed,
              "JSON round-trips robustness counters");
    }
    {
        // The atomic writer must not leave its temp file behind.
        FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
        check(tmp == nullptr, "no BENCH temp file left behind");
        if (tmp != nullptr)
            std::fclose(tmp);
    }
    std::remove(path.c_str());

    if (failures == 0)
        std::printf("bench_smoke: OK (5 scenarios, 4 threads, failure "
                    "isolation, JSON round-trip)\n");
    return failures == 0 ? 0 : 1;
}
