/**
 * @file
 * Reproduces Figure 5 (§6.1): host page-table fragmentation of the eight
 * evaluated benchmarks colocated with 8-threaded objdet, with the default
 * kernel and with PTEMagnet. Lower is better; PTEMagnet should drive the
 * metric to almost exactly 1 for every benchmark.
 */
#include <cstdio>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("fig5_host_pt_fragmentation");
    for (const std::string &name : ptm::workload::benchmark_names()) {
        suite.add(name, ScenarioConfig{}
                            .with_victim(name)
                            .with_corunner_preset("objdet8")
                            .with_scale(0.5)
                            .with_measure_ops(300'000));
    }
    SuiteResult result = suite.run();

    std::printf("Figure 5: host PT fragmentation in colocation with "
                "objdet (lower is better)\n");
    std::printf("%-10s %12s %12s\n", "benchmark", "default", "ptemagnet");
    for (const EntryResult &entry : result.entries()) {
        std::printf("%-10s %12.2f %12.2f\n", entry.entry.name.c_str(),
                    entry.paired.baseline.fragmentation.average_hpte_lines,
                    entry.paired.ptemagnet.fragmentation
                        .average_hpte_lines);
    }
    std::printf("\npaper reference: PTEMagnet reduces fragmentation to "
                "~1 for all benchmarks\n(e.g. pagerank 3.4 -> 1.2, "
                "Table 4).\n");
    return 0;
}
