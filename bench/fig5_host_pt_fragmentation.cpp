/**
 * @file
 * Reproduces Figure 5 (§6.1): host page-table fragmentation of the eight
 * evaluated benchmarks colocated with 8-threaded objdet, with the default
 * kernel and with PTEMagnet. Lower is better; PTEMagnet should drive the
 * metric to almost exactly 1 for every benchmark.
 */
#include <cstdio>

#include "sim/experiment.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Figure 5: host PT fragmentation in colocation with "
                "objdet (lower is better)\n");
    std::printf("%-10s %12s %12s\n", "benchmark", "default", "ptemagnet");

    for (const std::string &name : ptm::workload::benchmark_names()) {
        ScenarioConfig config;
        config.victim = name;
        config.corunners = {{"objdet", 8}};
        config.scale = 0.5;
        config.measure_ops = 300'000;

        PairedResult pair = run_paired(config);
        std::printf("%-10s %12.2f %12.2f\n", name.c_str(),
                    pair.baseline.fragmentation.average_hpte_lines,
                    pair.ptemagnet.fragmentation.average_hpte_lines);
    }
    std::printf("\npaper reference: PTEMagnet reduces fragmentation to "
                "~1 for all benchmarks\n(e.g. pagerank 3.4 -> 1.2, "
                "Table 4).\n");
    return 0;
}
