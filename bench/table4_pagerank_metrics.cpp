/**
 * @file
 * Reproduces Table 4 (§6.3): hardware-counter changes for pagerank
 * colocated with objdet, PTEMagnet vs default kernel. Unlike Table 1,
 * the co-runner keeps running through the whole measurement.
 *
 * Paper: host PT fragmentation -66% (3.4 -> 1.2), execution time -7%,
 * page walk cycles -17%, host-PT traversal cycles -26%, guest-PT
 * accesses from memory -1%, host-PT accesses from memory -13%.
 */
#include <cstdio>

#include "sim/suite.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("table4_pagerank_metrics");
    suite.add("pagerank", ScenarioConfig{}
                              .with_victim("pagerank")
                              .with_corunner_preset("objdet8")
                              .with_scale(0.5)
                              .with_measure_ops(600'000));
    SuiteResult result = suite.run();
    const PairedResult &pair = result.at("pagerank").paired;

    std::printf("Table 4: pagerank + objdet, PTEMagnet vs default "
                "kernel (co-runner active throughout)\n\n");

    ptm::MetricSet::print_change_table(pair.baseline.metrics,
                                  pair.ptemagnet.metrics,
                                  "metric changes delivered by PTEMagnet:");

    std::printf("\nhost PT fragmentation: %.2f -> %.2f   "
                "[paper: 3.4 -> 1.2, -66%%]\n",
                pair.baseline.fragmentation.average_hpte_lines,
                pair.ptemagnet.fragmentation.average_hpte_lines);
    std::printf("execution time improvement: %.1f%%   [paper: 7%%]\n",
                pair.improvement_percent());
    std::printf("\npaper reference deltas: exec -7%%, PW cycles -17%%, "
                "host-PT cycles -26%%,\n  guest-PT-from-memory -1%%, "
                "host-PT-from-memory -13%%\n");
    return 0;
}
