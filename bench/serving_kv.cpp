/**
 * @file
 * Cloud-serving KV-cache bench: a memcached-style tier (Zipfian key
 * popularity over a slab heap, per-connection request arenas, seeded
 * connection churn) as the victim workload, swept across allocation
 * policies, plus a ws_estimate leg whose dirty-ring working-set
 * estimate steers the host reclaim daemon.
 *
 * Two modes:
 *
 * - default: the slow bench tier. An ExperimentSuite with a policy
 *   sweep over the kv_tier victim, a paired (buddy vs PTEMagnet) run,
 *   and a 3-VM overcommit leg with the dirty ring armed, emitting
 *   BENCH_serving_kv.json.
 * - `--smoke`: the tier-1 ctest (`serving_kv_smoke`). Runs a scaled-
 *   down suite, asserts the serving tier actually serves (ops retired,
 *   slab faulted, ring epochs closed on the armed leg), and checks
 *   every result is bit-identical across repeats and across suite
 *   thread counts (1 vs 4). Writes BENCH_serving_kv.json into the
 *   working directory so CI can archive it. Exits nonzero on any
 *   violation.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/suite.hpp"

namespace {

using namespace ptm::sim;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "serving_kv: FAIL: %s\n", what);
        ++failures;
    }
}

/// The KV tier under colocation: Zipfian GET/SET traffic against a slab
/// heap while per-connection arenas churn through mmap/munmap.
ScenarioConfig
kv_config(double scale, std::uint64_t measure_ops)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_workload("kv_tier")
                                .with_workload_param("value_lines", 4)
                                .with_workload_param("connections", 16)
                                .with_scale(scale)
                                .with_measure_ops(measure_ops)
                                .with_warmup_ops(0);
    return config;
}

/// The overcommitted-host leg: the KV tier shares the host with two
/// stress-ng guests, the reclaim daemon is armed, and per-VM dirty
/// rings feed working-set estimates into the balloon sweep order.
ScenarioConfig
kv_overcommit_config(double scale, std::uint64_t measure_ops)
{
    ScenarioConfig config = kv_config(scale, measure_ops);
    config.with_vms(3);
    config.with_vm_spec(VmSpec{"stress-ng", 1, "", {}, 0.2, 0});
    config.platform.guest_frames = 8192;
    config.platform.host_frames = 20 * 1024;
    config.with_overcommit(OvercommitPolicy{}
                               .with_watermarks(128, 256)
                               .with_balloon_step(64)
                               .with_backoff(4, 64));
    config.with_dirty_ring(DirtyRingConfig{}
                               .with_ring_entries(512)
                               .with_epoch_ops(8192));
    return config;
}

ExperimentSuite
build_suite(double scale, std::uint64_t measure_ops)
{
    ExperimentSuite suite("serving_kv");
    suite.sweep("kv", "policy",
                std::vector<std::string>{"buddy", "ptemagnet", "thp"},
                kv_config(scale, measure_ops), RunKind::Single);
    suite.add("kv_paired", kv_config(scale, measure_ops),
              RunKind::Paired);
    suite.add("kv_overcommit_ws",
              kv_overcommit_config(scale, measure_ops),
              RunKind::Single);
    return suite;
}

/// Field-by-field equality over everything the serving tier reports.
bool
same_result(const ScenarioResult &a, const ScenarioResult &b,
            const char *what)
{
    bool ok = a.victim_ops == b.victim_ops &&
              a.victim_cycles == b.victim_cycles &&
              a.victim_rss_pages == b.victim_rss_pages &&
              a.buddy_calls == b.buddy_calls &&
              a.host_balloon_pages == b.host_balloon_pages &&
              a.dirty_ring_armed == b.dirty_ring_armed &&
              a.dirty_ring_logged == b.dirty_ring_logged &&
              a.dirty_ring_harvests == b.dirty_ring_harvests &&
              a.dirty_ring_epochs == b.dirty_ring_epochs &&
              a.ws_estimate_pages == b.ws_estimate_pages &&
              a.ws_guided_sweeps == b.ws_guided_sweeps &&
              a.vms.size() == b.vms.size();
    if (ok) {
        for (std::size_t i = 0; i < a.vms.size(); ++i) {
            ok = ok && a.vms[i].status == b.vms[i].status &&
                 a.vms[i].balloon_pages == b.vms[i].balloon_pages &&
                 a.vms[i].backed_pages == b.vms[i].backed_pages &&
                 a.vms[i].ws_estimate_pages ==
                     b.vms[i].ws_estimate_pages &&
                 a.vms[i].walk_cycles == b.vms[i].walk_cycles &&
                 a.vms[i].ops == b.vms[i].ops;
        }
    }
    check(ok, what);
    return ok;
}

int
smoke()
{
    const double scale = 0.25;
    const std::uint64_t measure_ops = 30'000;

    // Serial references for the two interesting legs.
    const ScenarioConfig kv = kv_config(scale, measure_ops);
    const ScenarioConfig oc = kv_overcommit_config(scale, measure_ops);

    ScenarioResult first = run_scenario(kv);
    check(first.victim_ops >= measure_ops, "the KV tier served traffic");
    check(first.victim_rss_pages > 0, "the slab heap was faulted in");
    check(!first.dirty_ring_armed,
          "a ring-disarmed run reports no ring telemetry");
    same_result(first, run_scenario(kv), "repeat run is bit-identical");

    ScenarioResult armed = run_scenario(oc);
    check(armed.dirty_ring_armed, "the overcommit leg armed the ring");
    check(armed.dirty_ring_logged > 0, "write walks reached the ring");
    check(armed.dirty_ring_epochs >= 1, "at least one epoch closed");
    check(!armed.vms.empty() && armed.vms[0].status == "alive",
          "the KV tier's VM survived the overcommit");
    same_result(armed, run_scenario(oc),
                "armed repeat run is bit-identical");

    // Thread-count invariance over the whole suite, then emit the BENCH
    // document from the 4-thread pass for CI to archive.
    for (unsigned threads : {1u, 4u}) {
        ExperimentSuite suite = build_suite(scale, measure_ops);
        SuiteOptions options;
        options.threads = threads;
        options.write_json = threads == 4;
        options.json_dir = ".";
        options.announce = false;
        SuiteResult result = suite.run(options);
        check(result.failed_count() == 0, "all suite entries completed");
        same_result(first, result.at("kv/policy=buddy").single,
                    "suite buddy leg matches the serial run");
        same_result(armed, result.at("kv_overcommit_ws").single,
                    "suite overcommit leg matches the serial run");
    }

    if (failures == 0)
        std::printf("serving_kv smoke OK: %llu ops, %llu dirty pages "
                    "logged, %llu epochs, identical across repeats and "
                    "1/4-thread suites\n",
                    (unsigned long long)first.victim_ops,
                    (unsigned long long)armed.dirty_ring_logged,
                    (unsigned long long)armed.dirty_ring_epochs);
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return smoke();

    ExperimentSuite suite = build_suite(1.0, 400'000);
    SuiteOptions options;
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    std::printf("\n== serving_kv ==\n");
    for (const EntryResult &entry : result.entries()) {
        if (entry.failed()) {
            std::printf("%-24s FAILED: %s\n", entry.entry.name.c_str(),
                        entry.error.c_str());
            continue;
        }
        if (entry.is_paired()) {
            std::printf("%-24s improvement=%+.1f%%\n",
                        entry.entry.name.c_str(),
                        entry.improvement_percent());
            continue;
        }
        const ScenarioResult &r = entry.single;
        std::printf("%-24s cycles=%-12llu ops=%-8llu rss=%-6llu "
                    "ring[logged=%llu epochs=%llu ws=%llu]\n",
                    entry.entry.name.c_str(),
                    (unsigned long long)r.victim_cycles,
                    (unsigned long long)r.victim_ops,
                    (unsigned long long)r.victim_rss_pages,
                    (unsigned long long)r.dirty_ring_logged,
                    (unsigned long long)r.dirty_ring_epochs,
                    (unsigned long long)r.ws_estimate_pages);
    }
    return EXIT_SUCCESS;
}
