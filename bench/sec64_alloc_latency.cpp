/**
 * @file
 * Reproduces §6.4: PTEMagnet's effect on memory-allocation latency.
 *
 * Two parts:
 *  1. The paper's macro experiment, simulated: a microbenchmark maps a
 *     large array and touches every page once; execution is dominated by
 *     the fault/allocation path. PTEMagnet replaces 7 of every 8 buddy
 *     calls with PaRT hits and should come out marginally *faster*
 *     (paper: -0.5%).
 *  2. google-benchmark microbenchmarks of the allocator fast paths
 *     themselves (buddy allocate/free, PaRT create/claim/release), which
 *     ground the cost-model constants.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/part.hpp"
#include "mem/buddy_allocator.hpp"
#include "sim/suite.hpp"

namespace {

void
BM_BuddyAllocFreeFrame(benchmark::State &state)
{
    ptm::mem::BuddyAllocator buddy(0, 1u << 16);
    for (auto _ : state) {
        auto frame = buddy.allocate_frame();
        benchmark::DoNotOptimize(frame);
        buddy.free(*frame);
    }
}
BENCHMARK(BM_BuddyAllocFreeFrame);

void
BM_BuddyAllocFreeChunk(benchmark::State &state)
{
    ptm::mem::BuddyAllocator buddy(0, 1u << 16);
    for (auto _ : state) {
        auto base = buddy.allocate_split(3);
        benchmark::DoNotOptimize(base);
        buddy.free_frames(*base, 8);
    }
}
BENCHMARK(BM_BuddyAllocFreeChunk);

void
BM_PartCreateClaimCycle(benchmark::State &state)
{
    ptm::core::Part part;
    std::uint64_t group = 0;
    for (auto _ : state) {
        // One full reservation lifecycle: create + 7 claims (the eighth
        // page deletes the entry), modelling 8 page faults.
        part.create(group, group * 8, 0);
        for (unsigned offset = 1; offset < 8; ++offset)
            benchmark::DoNotOptimize(part.claim(group, offset));
        ++group;
    }
}
BENCHMARK(BM_PartCreateClaimCycle);

void
BM_PartClaimHit(benchmark::State &state)
{
    ptm::core::Part part;
    // Pre-create reservations and cycle through claiming/releasing one
    // page so every iteration is a hit on a live entry.
    constexpr std::uint64_t kGroups = 1024;
    for (std::uint64_t g = 0; g < kGroups; ++g)
        part.create(g, g * 8, 0);
    std::uint64_t group = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(part.claim(group, 1));
        part.release(group, 1);
        group = (group + 1) % kGroups;
    }
}
BENCHMARK(BM_PartClaimHit);

void
BM_PartLookupMiss(benchmark::State &state)
{
    ptm::core::Part part;
    part.create(1, 8, 0);
    std::uint64_t group = 1u << 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(part.find(group));
        ++group;
    }
}
BENCHMARK(BM_PartLookupMiss);

/// The simulated §6.4 macro experiment.
void
run_alloc_sweep()
{
    using namespace ptm::sim;

    ExperimentSuite suite("sec64_alloc_latency");
    suite.add("alloc_sweep",
              ScenarioConfig{}
                  .with_victim("alloc_sweep")
                  .with_corunners({})
                  .with_scale(0.5)      // ~96 MiB array (paper: 60 GB)
                  .with_measure_ops(10) // the init sweep is the workload
                  .with_measure_init());
    SuiteResult result = suite.run();
    const PairedResult &pair = result.at("alloc_sweep").paired;
    double base = static_cast<double>(pair.baseline.victim_cycles);
    double ptm = static_cast<double>(pair.ptemagnet.victim_cycles);
    std::printf("\nSection 6.4: allocation-latency macro benchmark "
                "(touch every page of a large array)\n");
    std::printf("  default kernel: %13.0f cycles  (%llu buddy calls)\n",
                base,
                static_cast<unsigned long long>(
                    pair.baseline.buddy_calls));
    std::printf("  PTEMagnet:      %13.0f cycles  (%llu buddy calls, "
                "%llu PaRT hits)\n",
                ptm,
                static_cast<unsigned long long>(
                    pair.ptemagnet.buddy_calls),
                static_cast<unsigned long long>(pair.ptemagnet.part_hits));
    std::printf("  change: %+.2f%%   [paper: -0.5%% — PTEMagnet slightly "
                "faster, 7 of 8 buddy\n  calls replaced by PaRT hits]\n\n",
                100.0 * (ptm - base) / base);
}

}  // namespace

int
main(int argc, char **argv)
{
    run_alloc_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
