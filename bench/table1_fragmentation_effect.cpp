/**
 * @file
 * Reproduces Table 1 (§3.3): the effect of host-PT fragmentation on
 * pagerank, measured by colocating it with a 12-worker stress-ng whose
 * only job is to interleave page faults with pagerank's allocation
 * phase. Per the paper's protocol the co-runner is *stopped* once
 * pagerank finishes allocating, so the measured delta is attributable to
 * fragmentation alone, not to cache contention.
 *
 * Paper (colocation vs standalone, default kernel):
 *   execution time +11%, cache misses <1%, TLB misses <1%,
 *   page walk cycles +61%, host-PT traversal cycles +117%,
 *   guest-PT accesses from memory +3%, host-PT from memory +283%,
 *   host PT fragmentation +242% (2.8 -> 6.8).
 */
#include <cstdio>

#include "sim/suite.hpp"

int
main()
{
    using namespace ptm::sim;

    ScenarioConfig base = ScenarioConfig{}
                              .with_victim("pagerank")
                              .with_scale(0.5)
                              .with_measure_ops(600'000)
                              .with_stop_corunners_after_init();

    ExperimentSuite suite("table1_fragmentation_effect");
    // Standalone: pagerank has the allocator to itself.
    suite.add("standalone", base, RunKind::Single);
    // Colocation: 12 stress-ng workers churn memory during allocation.
    suite.add("colocated",
              ScenarioConfig(base).with_corunner_preset("stressng12"),
              RunKind::Single);
    SuiteResult result = suite.run();

    const ScenarioResult &standalone = result.at("standalone").single;
    const ScenarioResult &colocated = result.at("colocated").single;

    std::printf("Table 1: pagerank colocated with stress-ng (12 workers) "
                "vs standalone\n");
    std::printf("(co-runner stopped after pagerank's allocation phase; "
                "default kernel in both runs)\n\n");

    ptm::MetricSet::print_change_table(standalone.metrics, colocated.metrics,
                                  "metric changes caused by fragmentation "
                                  "(colocated vs standalone):");

    std::printf("\nhost PT fragmentation: %.2f (standalone) -> %.2f "
                "(colocated)   [paper: 2.8 -> 6.8]\n",
                standalone.fragmentation.average_hpte_lines,
                colocated.fragmentation.average_hpte_lines);
    std::printf("fraction of 8-page groups fragmented: %.0f%%   "
                "[paper: 63%% scattered to 8 blocks]\n",
                100.0 * colocated.fragmentation.fragmented_fraction);
    std::printf("\npaper reference deltas: exec +11%%, PW cycles +61%%, "
                "host-PT cycles +117%%,\n  guest-PT-from-memory +3%%, "
                "host-PT-from-memory +283%%, cache/TLB misses <1%%\n");
    return 0;
}
