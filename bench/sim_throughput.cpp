/**
 * @file
 * Simulator-throughput benchmark: how many simulated memory operations
 * per host second the per-access hot path (System::step ->
 * NestedWalker::translate -> Cache::access) sustains.
 *
 * Not a paper figure: this measures the *simulator itself*, so hot-path
 * refactors have a tracked perf trajectory. It drives the mixed
 * pagerank+objdet scenario (both policy legs) through ExperimentSuite on
 * one thread — per-leg wall-clock must not be perturbed by sibling legs —
 * and reports simulated ops/sec per leg; the numbers land in
 * BENCH_sim_throughput.json via the standard sink (`sim_perf` per leg).
 *
 * With --smoke (or PTM_SMOKE=1) the scenario shrinks to ctest size; the
 * run then only sanity-checks that throughput is reported, it does not
 * produce a meaningful rate.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/suite.hpp"

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "sim_throughput: FAIL: %s\n", what);
        ++failures;
    }
}

void
report_leg(const char *leg, const ptm::sim::ScenarioResult &result)
{
    std::printf("sim_throughput: %-9s ops=%llu host_seconds=%.3f "
                "ops_per_sec=%.0f\n",
                leg, static_cast<unsigned long long>(result.total_ops),
                result.host_seconds, result.ops_per_second());
    check(result.total_ops > 0, "leg executed operations");
    check(result.host_seconds > 0.0, "leg recorded wall-clock");
    check(result.ops_per_second() > 0.0, "leg reports a throughput");
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace ptm::sim;

    bool smoke = std::getenv("PTM_SMOKE") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    // The acceptance scenario: pagerank victim colocated with objdet
    // co-runners, both policies. Heavy enough that steady-state ops
    // dominate setup, small enough to finish in seconds.
    ScenarioConfig mixed = ScenarioConfig{}
                               .with_victim("pagerank")
                               .with_corunner("objdet", 2)
                               .with_scale(smoke ? 0.05 : 0.4)
                               .with_measure_ops(smoke ? 20'000 : 2'000'000)
                               .with_warmup_ops(smoke ? 5'000 : 100'000);
    if (smoke) {
        mixed.platform.guest_frames = 16 * 1024;
        mixed.platform.host_frames = 24 * 1024;
    }

    ExperimentSuite suite("sim_throughput");
    suite.add("pagerank_objdet", mixed);

    SuiteOptions options;
    options.threads = 1;  // per-leg wall-clock must be interference-free
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    const EntryResult &entry = result.at("pagerank_objdet");
    report_leg("baseline", entry.paired.baseline);
    report_leg("ptemagnet", entry.paired.ptemagnet);

    double total_ops =
        static_cast<double>(entry.paired.baseline.total_ops +
                            entry.paired.ptemagnet.total_ops);
    double total_seconds = entry.paired.baseline.host_seconds +
                           entry.paired.ptemagnet.host_seconds;
    if (total_seconds > 0.0) {
        std::printf("sim_throughput: combined  ops_per_sec=%.0f\n",
                    total_ops / total_seconds);
    }

    if (failures == 0)
        std::printf("sim_throughput: OK (%s mode)\n",
                    smoke ? "smoke" : "full");
    return failures == 0 ? 0 : 1;
}
